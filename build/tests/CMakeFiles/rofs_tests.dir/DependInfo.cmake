
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc_buddy_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_buddy_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_buddy_test.cc.o.d"
  "/root/repo/tests/alloc_extent_stats_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_extent_stats_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_extent_stats_test.cc.o.d"
  "/root/repo/tests/alloc_extent_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_extent_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_extent_test.cc.o.d"
  "/root/repo/tests/alloc_fixed_block_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_fixed_block_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_fixed_block_test.cc.o.d"
  "/root/repo/tests/alloc_free_extent_map_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_free_extent_map_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_free_extent_map_test.cc.o.d"
  "/root/repo/tests/alloc_log_structured_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_log_structured_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_log_structured_test.cc.o.d"
  "/root/repo/tests/alloc_property_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_property_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_property_test.cc.o.d"
  "/root/repo/tests/alloc_restricted_buddy_test.cc" "tests/CMakeFiles/rofs_tests.dir/alloc_restricted_buddy_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/alloc_restricted_buddy_test.cc.o.d"
  "/root/repo/tests/config_parser_test.cc" "tests/CMakeFiles/rofs_tests.dir/config_parser_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/config_parser_test.cc.o.d"
  "/root/repo/tests/config_sim_test.cc" "tests/CMakeFiles/rofs_tests.dir/config_sim_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/config_sim_test.cc.o.d"
  "/root/repo/tests/disk_geometry_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_geometry_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_geometry_test.cc.o.d"
  "/root/repo/tests/disk_layout_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_layout_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_layout_test.cc.o.d"
  "/root/repo/tests/disk_model_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_model_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_model_test.cc.o.d"
  "/root/repo/tests/disk_rotation_model_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_rotation_model_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_rotation_model_test.cc.o.d"
  "/root/repo/tests/disk_system_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_system_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_system_test.cc.o.d"
  "/root/repo/tests/disk_timing_property_test.cc" "tests/CMakeFiles/rofs_tests.dir/disk_timing_property_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/disk_timing_property_test.cc.o.d"
  "/root/repo/tests/exp_experiment_test.cc" "tests/CMakeFiles/rofs_tests.dir/exp_experiment_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/exp_experiment_test.cc.o.d"
  "/root/repo/tests/exp_paper_claims_test.cc" "tests/CMakeFiles/rofs_tests.dir/exp_paper_claims_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/exp_paper_claims_test.cc.o.d"
  "/root/repo/tests/exp_reporting_test.cc" "tests/CMakeFiles/rofs_tests.dir/exp_reporting_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/exp_reporting_test.cc.o.d"
  "/root/repo/tests/exp_throughput_tracker_test.cc" "tests/CMakeFiles/rofs_tests.dir/exp_throughput_tracker_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/exp_throughput_tracker_test.cc.o.d"
  "/root/repo/tests/exp_trace_test.cc" "tests/CMakeFiles/rofs_tests.dir/exp_trace_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/exp_trace_test.cc.o.d"
  "/root/repo/tests/fs_buffer_cache_test.cc" "tests/CMakeFiles/rofs_tests.dir/fs_buffer_cache_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/fs_buffer_cache_test.cc.o.d"
  "/root/repo/tests/fs_mapping_property_test.cc" "tests/CMakeFiles/rofs_tests.dir/fs_mapping_property_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/fs_mapping_property_test.cc.o.d"
  "/root/repo/tests/fs_read_optimized_fs_test.cc" "tests/CMakeFiles/rofs_tests.dir/fs_read_optimized_fs_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/fs_read_optimized_fs_test.cc.o.d"
  "/root/repo/tests/sim_event_queue_test.cc" "tests/CMakeFiles/rofs_tests.dir/sim_event_queue_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/sim_event_queue_test.cc.o.d"
  "/root/repo/tests/util_bitmap_test.cc" "tests/CMakeFiles/rofs_tests.dir/util_bitmap_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/util_bitmap_test.cc.o.d"
  "/root/repo/tests/util_histogram_test.cc" "tests/CMakeFiles/rofs_tests.dir/util_histogram_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/util_histogram_test.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/rofs_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/util_random_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/rofs_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/util_status_test.cc.o.d"
  "/root/repo/tests/util_units_test.cc" "tests/CMakeFiles/rofs_tests.dir/util_units_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/util_units_test.cc.o.d"
  "/root/repo/tests/workload_op_generator_test.cc" "tests/CMakeFiles/rofs_tests.dir/workload_op_generator_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/workload_op_generator_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/rofs_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/workload_trace_replay_test.cc" "tests/CMakeFiles/rofs_tests.dir/workload_trace_replay_test.cc.o" "gcc" "tests/CMakeFiles/rofs_tests.dir/workload_trace_replay_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rofs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
