# Empty compiler generated dependencies file for rofs_tests.
# This may be replaced when dependencies are built.
