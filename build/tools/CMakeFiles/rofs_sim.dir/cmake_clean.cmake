file(REMOVE_RECURSE
  "CMakeFiles/rofs_sim.dir/rofs_sim.cc.o"
  "CMakeFiles/rofs_sim.dir/rofs_sim.cc.o.d"
  "rofs_sim"
  "rofs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rofs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
