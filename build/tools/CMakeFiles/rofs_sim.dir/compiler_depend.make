# Empty compiler generated dependencies file for rofs_sim.
# This may be replaced when dependencies are built.
