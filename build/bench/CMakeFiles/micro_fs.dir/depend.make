# Empty dependencies file for micro_fs.
# This may be replaced when dependencies are built.
