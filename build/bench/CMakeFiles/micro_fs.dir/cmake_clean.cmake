file(REMOVE_RECURSE
  "CMakeFiles/micro_fs.dir/micro/micro_fs.cc.o"
  "CMakeFiles/micro_fs.dir/micro/micro_fs.cc.o.d"
  "micro_fs"
  "micro_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
