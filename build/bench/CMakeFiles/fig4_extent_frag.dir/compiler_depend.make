# Empty compiler generated dependencies file for fig4_extent_frag.
# This may be replaced when dependencies are built.
