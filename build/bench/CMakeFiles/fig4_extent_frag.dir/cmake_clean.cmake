file(REMOVE_RECURSE
  "CMakeFiles/fig4_extent_frag.dir/fig4_extent_frag.cc.o"
  "CMakeFiles/fig4_extent_frag.dir/fig4_extent_frag.cc.o.d"
  "fig4_extent_frag"
  "fig4_extent_frag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_extent_frag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
