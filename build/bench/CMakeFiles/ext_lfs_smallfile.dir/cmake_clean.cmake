file(REMOVE_RECURSE
  "CMakeFiles/ext_lfs_smallfile.dir/ext_lfs_smallfile.cc.o"
  "CMakeFiles/ext_lfs_smallfile.dir/ext_lfs_smallfile.cc.o.d"
  "ext_lfs_smallfile"
  "ext_lfs_smallfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lfs_smallfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
