# Empty compiler generated dependencies file for ext_lfs_smallfile.
# This may be replaced when dependencies are built.
