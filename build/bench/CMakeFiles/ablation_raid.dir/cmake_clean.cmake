file(REMOVE_RECURSE
  "CMakeFiles/ablation_raid.dir/ablation_raid.cc.o"
  "CMakeFiles/ablation_raid.dir/ablation_raid.cc.o.d"
  "ablation_raid"
  "ablation_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
