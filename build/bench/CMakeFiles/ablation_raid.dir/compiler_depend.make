# Empty compiler generated dependencies file for ablation_raid.
# This may be replaced when dependencies are built.
