file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_metadata.dir/ablation_cache_metadata.cc.o"
  "CMakeFiles/ablation_cache_metadata.dir/ablation_cache_metadata.cc.o.d"
  "ablation_cache_metadata"
  "ablation_cache_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
