# Empty compiler generated dependencies file for table3_buddy.
# This may be replaced when dependencies are built.
