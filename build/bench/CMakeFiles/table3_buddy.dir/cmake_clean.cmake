file(REMOVE_RECURSE
  "CMakeFiles/table3_buddy.dir/table3_buddy.cc.o"
  "CMakeFiles/table3_buddy.dir/table3_buddy.cc.o.d"
  "table3_buddy"
  "table3_buddy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_buddy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
