# Empty compiler generated dependencies file for fig3_grow_interaction.
# This may be replaced when dependencies are built.
