file(REMOVE_RECURSE
  "CMakeFiles/fig3_grow_interaction.dir/fig3_grow_interaction.cc.o"
  "CMakeFiles/fig3_grow_interaction.dir/fig3_grow_interaction.cc.o.d"
  "fig3_grow_interaction"
  "fig3_grow_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_grow_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
