# Empty dependencies file for table4_extents_per_file.
# This may be replaced when dependencies are built.
