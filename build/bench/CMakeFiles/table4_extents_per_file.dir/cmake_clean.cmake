file(REMOVE_RECURSE
  "CMakeFiles/table4_extents_per_file.dir/table4_extents_per_file.cc.o"
  "CMakeFiles/table4_extents_per_file.dir/table4_extents_per_file.cc.o.d"
  "table4_extents_per_file"
  "table4_extents_per_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_extents_per_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
