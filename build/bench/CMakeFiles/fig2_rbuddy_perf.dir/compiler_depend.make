# Empty compiler generated dependencies file for fig2_rbuddy_perf.
# This may be replaced when dependencies are built.
