file(REMOVE_RECURSE
  "CMakeFiles/fig2_rbuddy_perf.dir/fig2_rbuddy_perf.cc.o"
  "CMakeFiles/fig2_rbuddy_perf.dir/fig2_rbuddy_perf.cc.o.d"
  "fig2_rbuddy_perf"
  "fig2_rbuddy_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rbuddy_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
