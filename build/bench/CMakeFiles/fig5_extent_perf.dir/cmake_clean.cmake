file(REMOVE_RECURSE
  "CMakeFiles/fig5_extent_perf.dir/fig5_extent_perf.cc.o"
  "CMakeFiles/fig5_extent_perf.dir/fig5_extent_perf.cc.o.d"
  "fig5_extent_perf"
  "fig5_extent_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_extent_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
