# Empty compiler generated dependencies file for fig5_extent_perf.
# This may be replaced when dependencies are built.
