# Empty compiler generated dependencies file for rofs_bench_common.
# This may be replaced when dependencies are built.
