file(REMOVE_RECURSE
  "CMakeFiles/rofs_bench_common.dir/common.cc.o"
  "CMakeFiles/rofs_bench_common.dir/common.cc.o.d"
  "librofs_bench_common.a"
  "librofs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rofs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
