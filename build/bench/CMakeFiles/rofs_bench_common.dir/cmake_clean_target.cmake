file(REMOVE_RECURSE
  "librofs_bench_common.a"
)
