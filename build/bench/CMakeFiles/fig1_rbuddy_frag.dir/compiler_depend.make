# Empty compiler generated dependencies file for fig1_rbuddy_frag.
# This may be replaced when dependencies are built.
