file(REMOVE_RECURSE
  "CMakeFiles/fig1_rbuddy_frag.dir/fig1_rbuddy_frag.cc.o"
  "CMakeFiles/fig1_rbuddy_frag.dir/fig1_rbuddy_frag.cc.o.d"
  "fig1_rbuddy_frag"
  "fig1_rbuddy_frag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_rbuddy_frag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
