# Empty compiler generated dependencies file for disk_array_explorer.
# This may be replaced when dependencies are built.
