file(REMOVE_RECURSE
  "CMakeFiles/disk_array_explorer.dir/disk_array_explorer.cpp.o"
  "CMakeFiles/disk_array_explorer.dir/disk_array_explorer.cpp.o.d"
  "disk_array_explorer"
  "disk_array_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_array_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
