
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator.cc" "src/CMakeFiles/rofs.dir/alloc/allocator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/allocator.cc.o.d"
  "/root/repo/src/alloc/buddy_allocator.cc" "src/CMakeFiles/rofs.dir/alloc/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/buddy_allocator.cc.o.d"
  "/root/repo/src/alloc/extent_allocator.cc" "src/CMakeFiles/rofs.dir/alloc/extent_allocator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/extent_allocator.cc.o.d"
  "/root/repo/src/alloc/fixed_block_allocator.cc" "src/CMakeFiles/rofs.dir/alloc/fixed_block_allocator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/fixed_block_allocator.cc.o.d"
  "/root/repo/src/alloc/free_extent_map.cc" "src/CMakeFiles/rofs.dir/alloc/free_extent_map.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/free_extent_map.cc.o.d"
  "/root/repo/src/alloc/log_structured_allocator.cc" "src/CMakeFiles/rofs.dir/alloc/log_structured_allocator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/log_structured_allocator.cc.o.d"
  "/root/repo/src/alloc/restricted_buddy.cc" "src/CMakeFiles/rofs.dir/alloc/restricted_buddy.cc.o" "gcc" "src/CMakeFiles/rofs.dir/alloc/restricted_buddy.cc.o.d"
  "/root/repo/src/config/config_parser.cc" "src/CMakeFiles/rofs.dir/config/config_parser.cc.o" "gcc" "src/CMakeFiles/rofs.dir/config/config_parser.cc.o.d"
  "/root/repo/src/config/sim_config.cc" "src/CMakeFiles/rofs.dir/config/sim_config.cc.o" "gcc" "src/CMakeFiles/rofs.dir/config/sim_config.cc.o.d"
  "/root/repo/src/disk/disk_geometry.cc" "src/CMakeFiles/rofs.dir/disk/disk_geometry.cc.o" "gcc" "src/CMakeFiles/rofs.dir/disk/disk_geometry.cc.o.d"
  "/root/repo/src/disk/disk_model.cc" "src/CMakeFiles/rofs.dir/disk/disk_model.cc.o" "gcc" "src/CMakeFiles/rofs.dir/disk/disk_model.cc.o.d"
  "/root/repo/src/disk/disk_system.cc" "src/CMakeFiles/rofs.dir/disk/disk_system.cc.o" "gcc" "src/CMakeFiles/rofs.dir/disk/disk_system.cc.o.d"
  "/root/repo/src/disk/layout.cc" "src/CMakeFiles/rofs.dir/disk/layout.cc.o" "gcc" "src/CMakeFiles/rofs.dir/disk/layout.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/rofs.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/rofs.dir/exp/experiment.cc.o.d"
  "/root/repo/src/exp/reporting.cc" "src/CMakeFiles/rofs.dir/exp/reporting.cc.o" "gcc" "src/CMakeFiles/rofs.dir/exp/reporting.cc.o.d"
  "/root/repo/src/exp/throughput_tracker.cc" "src/CMakeFiles/rofs.dir/exp/throughput_tracker.cc.o" "gcc" "src/CMakeFiles/rofs.dir/exp/throughput_tracker.cc.o.d"
  "/root/repo/src/exp/trace.cc" "src/CMakeFiles/rofs.dir/exp/trace.cc.o" "gcc" "src/CMakeFiles/rofs.dir/exp/trace.cc.o.d"
  "/root/repo/src/fs/buffer_cache.cc" "src/CMakeFiles/rofs.dir/fs/buffer_cache.cc.o" "gcc" "src/CMakeFiles/rofs.dir/fs/buffer_cache.cc.o.d"
  "/root/repo/src/fs/read_optimized_fs.cc" "src/CMakeFiles/rofs.dir/fs/read_optimized_fs.cc.o" "gcc" "src/CMakeFiles/rofs.dir/fs/read_optimized_fs.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/rofs.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/rofs.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/util/bitmap.cc" "src/CMakeFiles/rofs.dir/util/bitmap.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/bitmap.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/rofs.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/rofs.dir/util/random.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/rofs.dir/util/status.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/rofs.dir/util/table.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/table.cc.o.d"
  "/root/repo/src/util/units.cc" "src/CMakeFiles/rofs.dir/util/units.cc.o" "gcc" "src/CMakeFiles/rofs.dir/util/units.cc.o.d"
  "/root/repo/src/workload/file_type.cc" "src/CMakeFiles/rofs.dir/workload/file_type.cc.o" "gcc" "src/CMakeFiles/rofs.dir/workload/file_type.cc.o.d"
  "/root/repo/src/workload/op_generator.cc" "src/CMakeFiles/rofs.dir/workload/op_generator.cc.o" "gcc" "src/CMakeFiles/rofs.dir/workload/op_generator.cc.o.d"
  "/root/repo/src/workload/trace_replay.cc" "src/CMakeFiles/rofs.dir/workload/trace_replay.cc.o" "gcc" "src/CMakeFiles/rofs.dir/workload/trace_replay.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/rofs.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/rofs.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
