# Empty dependencies file for rofs.
# This may be replaced when dependencies are built.
