file(REMOVE_RECURSE
  "librofs.a"
)
