#ifndef ROFS_OBS_TIMESERIES_H_
#define ROFS_OBS_TIMESERIES_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rofs::obs {

/// Columnar per-window metric series of one run: a time axis (simulated
/// window-end times) plus named value columns, one row appended per
/// `[obs] window_ms` tick. Columns are declared and the row capacity
/// reserved at setup; Append() is then allocation-free, so windowed
/// capture never perturbs the simulation's steady-state allocation
/// behavior. The container itself is deterministic by construction — it
/// stores exactly what the (deterministic) capture code hands it.
class WindowSeries {
 public:
  /// Setup: declares the next column. All columns must be declared before
  /// the first Append().
  void AddColumn(std::string name) { names_.push_back(std::move(name)); }

  /// Setup: reserves storage for `rows` appends per column.
  void Reserve(size_t rows) {
    t_ms_.reserve(rows);
    cols_.resize(names_.size());
    for (auto& c : cols_) c.reserve(rows);
  }

  /// Appends one row; `values` must hold num_columns() entries.
  void Append(double t_ms, const double* values) {
    t_ms_.push_back(t_ms);
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(values[c]);
    }
  }

  bool empty() const { return t_ms_.empty(); }
  size_t rows() const { return t_ms_.size(); }
  size_t num_columns() const { return names_.size(); }
  const std::string& column_name(size_t c) const { return names_[c]; }
  const std::vector<double>& column(size_t c) const { return cols_[c]; }
  /// Column by name, or nullptr.
  const std::vector<double>* Find(const std::string& name) const;
  const std::vector<double>& times() const { return t_ms_; }

  void clear() {
    t_ms_.clear();
    names_.clear();
    cols_.clear();
  }

  /// Clears the rows but keeps the declared columns (a recorder reuses
  /// its schema across the measurements of a performance pair).
  void ClearRows() {
    t_ms_.clear();
    for (auto& c : cols_) c.clear();
  }

  /// Prefixes every column name (RunRecord merge of an app./seq. half).
  void PrefixColumns(const std::string& prefix);

 private:
  std::vector<double> t_ms_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> cols_;
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_TIMESERIES_H_
