#ifndef ROFS_OBS_METRICS_H_
#define ROFS_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rofs::obs {

/// Monotonic counter. Record path is a single add; the registry owns the
/// storage, instrumented code holds the raw pointer.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins double value, with accumulate/max helpers for
/// end-of-run folds.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  void Max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: 96 log2-scaled buckets spanning [2^-32, 2^63),
/// sized at compile time so Record() is O(1) — one exponent extraction,
/// one array increment, no allocation ever. Exact count/sum/min/max are
/// kept alongside the buckets; percentiles interpolate within a bucket,
/// so snapshots are deterministic functions of the recorded multiset.
class Histogram {
 public:
  static constexpr int kNumBuckets = 96;

  void Record(double value);

  /// Folds another histogram in: the result is exactly what recording
  /// both multisets into one histogram would produce (bucket counts,
  /// count, sum, min, max all combine losslessly), so per-shard lane
  /// histograms merge into numbers independent of how records were
  /// split across lanes.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Approximate percentile (0 < p <= 100) from the log-scaled buckets,
  /// clamped to the exact [min, max].
  double Percentile(double p) const;

 private:
  /// Bucket index: 0 holds everything <= 2^-32 (including zero and
  /// negatives, which the simulator never records); bucket i holds
  /// (2^(i-33), 2^(i-32)].
  static int BucketFor(double value);
  static double BucketUpperBound(int bucket);

  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

/// The metric registry of one simulation run: named counters, gauges and
/// histograms. Registration (setup time) allocates and returns a stable
/// pointer; record paths (hot) never touch the registry again. Snapshot()
/// emits name -> value pairs sorted by name — registration order never
/// leaks into the output, so snapshots are byte-deterministic for any
/// thread count or wiring order.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration is idempotent: a second registration of the same name
  /// and kind returns the same object. Re-registering a name as a
  /// different kind dies (an instrumentation bug, not a runtime
  /// condition).
  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  Histogram* AddHistogram(const std::string& name);

  size_t size() const { return entries_.size(); }

  /// Folds another registry's metrics into this one by name: counters
  /// add, gauges add, histograms Merge(). Entries missing here are
  /// created. Same-name-different-kind dies, like re-registration.
  void MergeFrom(const Registry& other);

  /// Appends the registry contents to `out` sorted by metric name.
  /// Counters and gauges emit one entry under their own name; a histogram
  /// `h` emits `h.count`, `h.sum`, `h.min`, `h.max`, `h.p50`, `h.p95`,
  /// and `h.p99`.
  void Snapshot(std::vector<std::pair<std::string, double>>* out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrDie(const std::string& name, Kind kind);

  // Ordered by name, which is what makes Snapshot() deterministic.
  std::map<std::string, Entry> entries_;
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_METRICS_H_
