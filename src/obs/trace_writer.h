#ifndef ROFS_OBS_TRACE_WRITER_H_
#define ROFS_OBS_TRACE_WRITER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_buffer.h"

namespace rofs::obs {

/// One run's finished trace plus the label it registered under. `seq`
/// breaks ties between identically-labeled runs (registration order).
struct RunTrace {
  std::string label;
  uint64_t seq = 0;
  std::unique_ptr<TraceBuffer> buffer;
};

/// A wall-clock span (runner job) on the export's pid-0 timeline.
/// `start_ms` is relative to the sweep's start.
struct WallSpan {
  std::string name;
  double start_ms = 0;
  double dur_ms = 0;
};

/// Sets the ambient run label for the current thread; traces registered
/// with the collector while it is alive pick the label up. Worker threads
/// executing runs set this around each run so parallel sweeps label every
/// trace correctly without threading a label through the simulation.
class ScopedRunLabel {
 public:
  explicit ScopedRunLabel(std::string label);
  ~ScopedRunLabel();
  ScopedRunLabel(const ScopedRunLabel&) = delete;
  ScopedRunLabel& operator=(const ScopedRunLabel&) = delete;

  /// The current thread's label ("" when none is set).
  static const std::string& Current();

 private:
  std::string previous_;
};

/// Process-wide sink the per-run trace buffers drain into. Thread-safe:
/// worker threads register finished buffers as runs complete; the driver
/// takes everything at the end and writes one merged file. Export order
/// is (label, seq) — deterministic for a fixed sweep regardless of how
/// many jobs executed it.
class TraceCollector {
 public:
  static TraceCollector& Global();

  /// Registers one finished run buffer under the calling thread's ambient
  /// label.
  void AddRun(std::unique_ptr<TraceBuffer> buffer);
  void AddWallSpan(const std::string& name, double start_ms, double dur_ms);

  bool empty() const;
  /// Drains the collector, returning runs sorted by (label, seq).
  std::vector<RunTrace> TakeRuns();
  /// Drains wall-clock spans, sorted by (start, name).
  std::vector<WallSpan> TakeWallSpans();
  void Clear();
};

/// Renders runs + wall spans as a Chrome trace-event JSON document
/// (loadable in Perfetto / chrome://tracing). Each run becomes its own
/// process; wall-clock spans share pid 0 with greedy lane assignment so
/// concurrent jobs land on separate rows.
std::string ChromeTraceJson(const std::vector<RunTrace>& runs,
                            const std::vector<WallSpan>& wall_spans);

/// Drains the global collector and writes the merged trace to `path`.
/// Returns false (with a note on stderr) on I/O failure. Prints a one-line
/// summary to stderr; stdout is never touched.
bool WriteChromeTrace(const std::string& path);

}  // namespace rofs::obs

#endif  // ROFS_OBS_TRACE_WRITER_H_
