#ifndef ROFS_OBS_TRACER_H_
#define ROFS_OBS_TRACER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/options.h"
#include "obs/trace_buffer.h"

namespace rofs::obs {

/// Operation kinds as the tracer sees them; the exp layer converts from
/// workload::OpKind (obs stays below the workload layer so instrumented
/// code never creates an include cycle).
enum class OpEvent : uint8_t { kRead, kWrite, kExtend, kTruncate, kDelete };

/// The per-run event recorder handed to instrumented components. All
/// record methods are inline, allocation-free, and cheap enough to sit on
/// simulation hot paths; components hold a `SimTracer*` that is null when
/// observability is off, so the disabled cost is one predictable branch
/// at each instrumentation point.
///
/// Timestamps are *simulated* milliseconds. Components that know their
/// exact event times pass them; the others read the simulation clock
/// through the `now` pointer wired at construction (the event queue's
/// internal clock, stable for the life of the run).
class SimTracer {
 public:
  /// `now` must outlive the tracer. `buffer` may be null (metrics-only
  /// sessions record histograms but no events).
  SimTracer(TraceBuffer* buffer, const double* now, Registry* registry);

  double now() const { return *now_; }
  bool tracing() const { return buffer_ != nullptr; }

  /// Recording starts disarmed: the harness arms the tracer once the
  /// interesting phase begins, so instantaneous setup/fill churn neither
  /// fills the bounded trace buffer nor skews the latency histograms.
  void Arm() { armed_ = true; }
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  /// One disk access, decomposed into its service phases. Emits spans
  /// queue_wait | seek | rotate | transfer back to back from `start`
  /// (boundary-crossing costs inside a transfer are folded into their
  /// phase totals, so span edges are approximate within an access while
  /// phase durations are exact) and feeds the queue-wait histogram.
  void DiskAccess(uint32_t disk, double arrival, double start,
                  double seek_ms, double rotate_ms, double transfer_ms,
                  uint64_t bytes) {
    if (!armed_) return;
    const double wait = start - arrival;
    if (wait > 0) disk_queue_wait_ms_->Record(wait);
    if (buffer_ == nullptr) return;
    const uint8_t track =
        static_cast<uint8_t>(kTrackDiskBase + (disk & 0x7f));
    double t = start;
    if (wait > 0) {
      AddSpan(Name::kQueueWait, Cat::kDisk, track, arrival, wait, 0);
    }
    if (seek_ms > 0) {
      AddSpan(Name::kSeek, Cat::kDisk, track, t, seek_ms, 0);
      t += seek_ms;
    }
    if (rotate_ms > 0) {
      AddSpan(Name::kRotate, Cat::kDisk, track, t, rotate_ms, 0);
      t += rotate_ms;
    }
    if (transfer_ms > 0) {
      AddSpan(Name::kTransfer, Cat::kDisk, track, t, transfer_ms,
              static_cast<double>(bytes));
    }
  }

  void CacheHit() {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kCacheHit, Cat::kCache, kTrackCache, now(), 0);
    }
  }
  void CacheMiss() {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kCacheMiss, Cat::kCache, kTrackCache, now(), 0);
    }
  }
  void CacheEvict() {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kCacheEvict, Cat::kCache, kTrackCache, now(), 0);
    }
  }
  /// A readahead install of `pages` cache pages.
  void CachePrefetch(uint64_t pages) {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kCachePrefetch, Cat::kCache, kTrackCache, now(),
                 static_cast<double>(pages));
    }
  }
  /// A write-back flush of `pages` dirty pages toward the disk.
  void CacheFlush(uint64_t pages) {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kCacheFlush, Cat::kCache, kTrackCache, now(),
                 static_cast<double>(pages));
    }
  }

  void AllocBlock(uint64_t length_du) {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kAllocBlock, Cat::kAlloc, kTrackAlloc, now(),
                 static_cast<double>(length_du));
    }
  }
  void FreeBlock(uint64_t length_du) {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kFreeBlock, Cat::kAlloc, kTrackAlloc, now(),
                 static_cast<double>(length_du));
    }
  }
  void Coalesce(uint64_t merges) {
    if (armed_ && buffer_ != nullptr && merges > 0) {
      AddInstant(Name::kCoalesce, Cat::kAlloc, kTrackAlloc, now(),
                 static_cast<double>(merges));
    }
  }
  void AllocFailed() {
    if (armed_ && buffer_ != nullptr) {
      AddInstant(Name::kAllocFailed, Cat::kAlloc, kTrackAlloc, now(), 0);
    }
  }

  /// A modeled metadata (file descriptor) read that actually went to
  /// disk.
  void MetadataRead(double arrival, double done) {
    if (armed_ && buffer_ != nullptr) {
      AddSpan(Name::kMetadataRead, Cat::kFs, kTrackFs, arrival,
              done - arrival, 0);
    }
  }

  /// One executed workload operation: a span from issue to completion on
  /// the op track, plus the op-latency histogram.
  void Op(OpEvent op, double issued, double completed, uint64_t bytes) {
    if (!armed_) return;
    op_latency_ms_->Record(completed - issued);
    if (buffer_ == nullptr) return;
    static constexpr Name kOpNames[] = {Name::kOpRead, Name::kOpWrite,
                                        Name::kOpExtend, Name::kOpTruncate,
                                        Name::kOpDelete};
    AddSpan(kOpNames[static_cast<uint8_t>(op)], Cat::kOp, kTrackOps,
            issued, completed - issued, static_cast<double>(bytes));
  }

  /// One scheduler dispatch decision: the pending-queue depth observed
  /// when the head freed (counter on the disk's track) and the head
  /// travel it chose, in cylinders including sweep turnaround (instant).
  void DiskDispatch(uint32_t disk, size_t queue_depth,
                    uint64_t seek_cylinders) {
    if (!armed_ || buffer_ == nullptr) return;
    const uint8_t track =
        static_cast<uint8_t>(kTrackDiskBase + (disk & 0x7f));
    TraceEvent e;
    e.ts_ms = now();
    e.value = static_cast<double>(queue_depth);
    e.name = Name::kSchedQueueDepth;
    e.cat = Cat::kDisk;
    e.phase = Phase::kCounter;
    e.track = track;
    buffer_->Add(e);
    AddInstant(Name::kDispatch, Cat::kDisk, track, now(),
               static_cast<double>(seek_cylinders));
  }

  /// Sampled event-heap depth (counter track).
  void HeapDepth(double t, size_t depth) {
    if (!armed_ || buffer_ == nullptr) return;
    TraceEvent e;
    e.ts_ms = t;
    e.value = static_cast<double>(depth);
    e.name = Name::kHeapDepth;
    e.cat = Cat::kSim;
    e.phase = Phase::kCounter;
    e.track = kTrackSim;
    buffer_->Add(e);
  }

  Histogram* disk_queue_wait_ms() { return disk_queue_wait_ms_; }
  Histogram* op_latency_ms() { return op_latency_ms_; }

 private:
  void AddSpan(Name name, Cat cat, uint8_t track, double ts, double dur,
               double value) {
    TraceEvent e;
    e.ts_ms = ts;
    e.dur_ms = dur;
    e.value = value;
    e.name = name;
    e.cat = cat;
    e.phase = Phase::kComplete;
    e.track = track;
    buffer_->Add(e);
  }
  void AddInstant(Name name, Cat cat, uint8_t track, double ts,
                  double value) {
    TraceEvent e;
    e.ts_ms = ts;
    e.value = value;
    e.name = name;
    e.cat = cat;
    e.phase = Phase::kInstant;
    e.track = track;
    buffer_->Add(e);
  }

  TraceBuffer* buffer_;   // Null for metrics-only sessions.
  const double* now_;     // The owning run's simulation clock.
  bool armed_ = false;
  Histogram* disk_queue_wait_ms_;  // Owned by the registry.
  Histogram* op_latency_ms_;
};

/// Everything observability owns for one simulation run: the registry,
/// the (optional) trace buffer, and the tracer that instrumented
/// components record through. Constructed by the experiment harness when
/// either flag is on; never constructed otherwise.
class Session {
 public:
  Session(const Options& options, const double* sim_now);

  const Options& options() const { return options_; }
  SimTracer* tracer() { return &tracer_; }
  /// Per-op latency attribution, registered against the main registry;
  /// armed and disarmed with the tracers.
  OpAttribution* attribution() { return &attribution_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  /// Null unless tracing.
  TraceBuffer* buffer() { return buffer_.get(); }
  /// Moves the trace buffer out (for registration with the collector).
  /// FoldLaneTraces() first, or lane events are lost.
  std::unique_ptr<TraceBuffer> TakeBuffer() { return std::move(buffer_); }

  /// Adds an isolated recording lane — its own registry (and trace
  /// buffer, when tracing) behind a tracer reading `now`. A sharded run
  /// gives each shard one lane so its drives record without touching
  /// another thread's state; `now` is that shard's queue clock. Lanes
  /// must be added before traffic and live for the whole run.
  SimTracer* AddLane(const double* now);

  /// Arms / disarms the main tracer and every lane together.
  void ArmAll();
  void DisarmAll();

  /// Appends a name-sorted snapshot of the session's metrics — the main
  /// registry merged with every lane's — without disturbing any of them,
  /// so repeated snapshots (a performance pair measures twice) see the
  /// same accumulation a single shared registry would.
  void Snapshot(std::vector<std::pair<std::string, double>>* out) const;

  /// Appends every lane's trace events to the main buffer, lane-major
  /// (each lane's stream is itself deterministic). Call exactly once,
  /// before TakeBuffer.
  void FoldLaneTraces();

  /// Trace events dropped by capacity so far, across the main buffer and
  /// every lane. Zero when not tracing.
  uint64_t DroppedSpans() const;

 private:
  struct Lane {
    std::unique_ptr<Registry> registry;
    std::unique_ptr<TraceBuffer> buffer;  // Null unless tracing.
    std::unique_ptr<SimTracer> tracer;
  };

  Options options_;
  Registry registry_;
  std::unique_ptr<TraceBuffer> buffer_;
  SimTracer tracer_;
  OpAttribution attribution_;
  std::vector<Lane> lanes_;
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_TRACER_H_
