#include "obs/trace_writer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <set>

namespace rofs::obs {
namespace {

thread_local std::string g_run_label;

struct CollectorState {
  std::mutex mu;
  uint64_t next_seq = 0;
  std::vector<RunTrace> runs;
  std::vector<WallSpan> wall_spans;
};

CollectorState& State() {
  static CollectorState* state = new CollectorState();
  return *state;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

void AppendMeta(std::string* out, const char* meta_name, int pid, int tid,
                const std::string& value, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  AppendF(out, "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
               "\"args\":{\"name\":\"",
          meta_name, pid, tid);
  AppendEscaped(out, value);
  *out += "\"}}";
}

}  // namespace

ScopedRunLabel::ScopedRunLabel(std::string label)
    : previous_(std::move(g_run_label)) {
  g_run_label = std::move(label);
}

ScopedRunLabel::~ScopedRunLabel() { g_run_label = std::move(previous_); }

const std::string& ScopedRunLabel::Current() { return g_run_label; }

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::AddRun(std::unique_ptr<TraceBuffer> buffer) {
  if (buffer == nullptr) return;
  CollectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  RunTrace run;
  run.label = g_run_label;
  run.seq = state.next_seq++;
  run.buffer = std::move(buffer);
  state.runs.push_back(std::move(run));
}

void TraceCollector::AddWallSpan(const std::string& name, double start_ms,
                                 double dur_ms) {
  CollectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.wall_spans.push_back(WallSpan{name, start_ms, dur_ms});
}

bool TraceCollector::empty() const {
  CollectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.runs.empty() && state.wall_spans.empty();
}

std::vector<RunTrace> TraceCollector::TakeRuns() {
  CollectorState& state = State();
  std::vector<RunTrace> runs;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    runs = std::move(state.runs);
    state.runs.clear();
  }
  std::sort(runs.begin(), runs.end(),
            [](const RunTrace& a, const RunTrace& b) {
              if (a.label != b.label) return a.label < b.label;
              return a.seq < b.seq;
            });
  return runs;
}

std::vector<WallSpan> TraceCollector::TakeWallSpans() {
  CollectorState& state = State();
  std::vector<WallSpan> spans;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    spans = std::move(state.wall_spans);
    state.wall_spans.clear();
  }
  std::sort(spans.begin(), spans.end(),
            [](const WallSpan& a, const WallSpan& b) {
              if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
              return a.name < b.name;
            });
  return spans;
}

void TraceCollector::Clear() {
  CollectorState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.runs.clear();
  state.wall_spans.clear();
  state.next_seq = 0;
}

std::string ChromeTraceJson(const std::vector<RunTrace>& runs,
                            const std::vector<WallSpan>& wall_spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // pid 0: the runner's wall-clock timeline. Greedy lane assignment —
  // each span takes the lowest lane free at its start, so overlapping
  // jobs render on separate rows.
  if (!wall_spans.empty()) {
    AppendMeta(&out, "process_name", 0, 0, "runner (wall clock)", &first);
    std::vector<double> lane_busy_until;
    std::vector<int> lanes(wall_spans.size(), 0);
    for (size_t i = 0; i < wall_spans.size(); ++i) {
      const WallSpan& span = wall_spans[i];
      size_t lane = 0;
      while (lane < lane_busy_until.size() &&
             lane_busy_until[lane] > span.start_ms) {
        ++lane;
      }
      if (lane == lane_busy_until.size()) lane_busy_until.push_back(0);
      lane_busy_until[lane] = span.start_ms + span.dur_ms;
      lanes[i] = static_cast<int>(lane);
    }
    for (size_t lane = 0; lane < lane_busy_until.size(); ++lane) {
      char name[32];
      std::snprintf(name, sizeof(name), "lane %zu", lane);
      AppendMeta(&out, "thread_name", 0, static_cast<int>(lane), name,
                 &first);
    }
    for (size_t i = 0; i < wall_spans.size(); ++i) {
      const WallSpan& span = wall_spans[i];
      out += ",\n{\"name\":\"";
      AppendEscaped(&out, span.name);
      AppendF(&out, "\",\"cat\":\"runner\",\"ph\":\"X\",\"pid\":0,"
                    "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
              lanes[i], span.start_ms * 1000.0, span.dur_ms * 1000.0);
    }
  }

  int pid = 0;
  for (const RunTrace& run : runs) {
    ++pid;
    if (run.buffer == nullptr) continue;
    std::string process = run.label.empty() ? "run" : run.label;
    if (run.buffer->dropped() > 0) {
      char note[48];
      std::snprintf(note, sizeof(note), " [dropped %" PRIu64 "]",
                    run.buffer->dropped());
      process += note;
    }
    AppendMeta(&out, "process_name", pid, 0, process, &first);
    std::set<uint8_t> tracks;
    for (const TraceEvent& e : run.buffer->events()) tracks.insert(e.track);
    for (uint8_t track : tracks) {
      const char* name = TrackName(track);
      char disk_name[16];
      if (name == nullptr) {
        std::snprintf(disk_name, sizeof(disk_name), "disk %d",
                      track - kTrackDiskBase);
        name = disk_name;
      }
      AppendMeta(&out, "thread_name", pid, track, name, &first);
    }
    for (const TraceEvent& e : run.buffer->events()) {
      AppendF(&out, ",\n{\"name\":\"%s\",\"cat\":\"%s\",",
              NameString(e.name), CatName(e.cat));
      switch (e.phase) {
        case Phase::kComplete:
          AppendF(&out, "\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                        "\"ts\":%.3f,\"dur\":%.3f",
                  pid, e.track, e.ts_ms * 1000.0, e.dur_ms * 1000.0);
          break;
        case Phase::kInstant:
          AppendF(&out, "\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                        "\"ts\":%.3f",
                  pid, e.track, e.ts_ms * 1000.0);
          break;
        case Phase::kCounter:
          AppendF(&out, "\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f",
                  pid, e.track, e.ts_ms * 1000.0);
          break;
      }
      const char* arg_key =
          e.phase == Phase::kCounter ? "value" : NameArgKey(e.name);
      if (arg_key != nullptr) {
        AppendF(&out, ",\"args\":{\"%s\":%.17g}", arg_key, e.value);
      }
      out += '}';
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  TraceCollector& collector = TraceCollector::Global();
  const std::vector<RunTrace> runs = collector.TakeRuns();
  const std::vector<WallSpan> wall_spans = collector.TakeWallSpans();
  const std::string json = ChromeTraceJson(runs, wall_spans);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
    return false;
  }
  size_t events = 0;
  uint64_t dropped = 0;
  for (const RunTrace& run : runs) {
    if (run.buffer != nullptr) {
      events += run.buffer->size();
      dropped += run.buffer->dropped();
    }
  }
  std::fprintf(stderr,
               "trace: wrote %s (%zu runs, %zu events, %" PRIu64
               " dropped)\n",
               path.c_str(), runs.size(), events, dropped);
  return true;
}

}  // namespace rofs::obs
