#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rofs::obs {

int Histogram::BucketFor(double value) {
  if (!(value > 0.0) || std::isinf(value) || std::isnan(value)) return 0;
  // ilogb(x) = floor(log2(x)); values in (2^(e), 2^(e+1)] land in the
  // bucket bounded above by 2^(e+1). Exact powers of two sit at their
  // bucket's upper bound.
  int e = std::ilogb(value);
  if (std::ldexp(1.0, e) == value) --e;  // 2^e belongs to (2^(e-1), 2^e].
  const int bucket = e + 33;
  if (bucket < 0) return 0;
  if (bucket >= kNumBuckets) return kNumBuckets - 1;
  return bucket;
}

double Histogram::BucketUpperBound(int bucket) {
  return std::ldexp(1.0, bucket - 32);
}

void Histogram::Record(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<size_t>(BucketFor(value))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] +=
        other.buckets_[static_cast<size_t>(i)];
  }
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) continue;
    const uint64_t next = seen + buckets_[static_cast<size_t>(i)];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation inside the bucket.
      const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
      const double upper = BucketUpperBound(i);
      const double within =
          (rank - static_cast<double>(seen)) /
          static_cast<double>(buckets_[static_cast<size_t>(i)]);
      double v = lower + within * (upper - lower);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
    seen = next;
  }
  return max_;
}

Registry::Entry* Registry::FindOrDie(const std::string& name, Kind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  if (it->second.kind != kind) {
    std::fprintf(stderr,
                 "FATAL: obs metric '%s' registered twice with different "
                 "kinds\n",
                 name.c_str());
    std::abort();
  }
  return &it->second;
}

Counter* Registry::AddCounter(const std::string& name) {
  if (Entry* e = FindOrDie(name, Kind::kCounter)) return e->counter.get();
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter = std::make_unique<Counter>();
  Counter* ptr = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return ptr;
}

Gauge* Registry::AddGauge(const std::string& name) {
  if (Entry* e = FindOrDie(name, Kind::kGauge)) return e->gauge.get();
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  Gauge* ptr = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return ptr;
}

Histogram* Registry::AddHistogram(const std::string& name) {
  if (Entry* e = FindOrDie(name, Kind::kHistogram)) {
    return e->histogram.get();
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>();
  Histogram* ptr = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return ptr;
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [name, entry] : other.entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        AddCounter(name)->Inc(entry.counter->value());
        break;
      case Kind::kGauge:
        AddGauge(name)->Add(entry.gauge->value());
        break;
      case Kind::kHistogram:
        AddHistogram(name)->Merge(*entry.histogram);
        break;
    }
  }
}

void Registry::Snapshot(
    std::vector<std::pair<std::string, double>>* out) const {
  // entries_ iterates in name order; histogram sub-metrics share the
  // parent's prefix and are appended in a fixed suffix order, then the
  // whole batch is sorted so suffixes interleave deterministically with
  // sibling names.
  const size_t first = out->size();
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out->emplace_back(name,
                          static_cast<double>(entry.counter->value()));
        break;
      case Kind::kGauge:
        out->emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out->emplace_back(name + ".count",
                          static_cast<double>(h.count()));
        out->emplace_back(name + ".max", h.max());
        out->emplace_back(name + ".min", h.min());
        out->emplace_back(name + ".p50", h.Percentile(50));
        out->emplace_back(name + ".p95", h.Percentile(95));
        out->emplace_back(name + ".p99", h.Percentile(99));
        out->emplace_back(name + ".sum", h.sum());
        break;
      }
    }
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(first), out->end());
}

}  // namespace rofs::obs
