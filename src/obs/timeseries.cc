#include "obs/timeseries.h"

namespace rofs::obs {

const std::vector<double>* WindowSeries::Find(const std::string& name) const {
  for (size_t c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return &cols_[c];
  }
  return nullptr;
}

void WindowSeries::PrefixColumns(const std::string& prefix) {
  for (std::string& n : names_) n = prefix + n;
}

}  // namespace rofs::obs
