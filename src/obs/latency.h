#ifndef ROFS_OBS_LATENCY_H_
#define ROFS_OBS_LATENCY_H_

#include <cstdint>
#include <vector>

namespace rofs::obs {

class Histogram;
class Registry;

/// The service phases of one disk access, as the disk model computed
/// them: time queued behind other requests, then the three mechanical
/// phases. Trivially copyable; sized so it still fits (with a DiskSystem
/// pointer and a group handle) inside an event queue callback's inline
/// buffer — see DiskSystem's sharded completion path.
struct AccessPhases {
  double queue_wait_ms = 0.0;
  double seek_ms = 0.0;
  double rotation_ms = 0.0;
  double transfer_ms = 0.0;

  double total_ms() const {
    return queue_wait_ms + seek_ms + rotation_ms + transfer_ms;
  }
};

/// Per-op latency attribution: a pool of phase ledgers, one live ledger
/// per in-flight operation, accumulated at the disk completion points and
/// folded into per-phase latency histograms when the op completes.
///
/// The six folded phases — cache (metadata/descriptor I/O), queue, seek,
/// rotation, transfer, other — partition the measured op latency exactly:
/// when the raw phase sum exceeds the latency (parallel multi-disk
/// accesses overlap in time), every slot is scaled by latency/raw so that
/// sum(phase means x count) == sum of measured op latencies. Think time
/// and write-back flush service are recorded into separate histograms and
/// are not part of the partition.
///
/// Threading: every method runs on the run's central thread (issue stacks
/// and effect-commit/completion events); the disk shards never touch a
/// ledger. Allocation: the pool grows to the peak number of concurrently
/// in-flight ops and is reused through a free list afterwards, so steady
/// state records without allocating.
class OpAttribution {
 public:
  static constexpr uint32_t kNoLedger = 0xffffffffu;

  /// What a disk access currently being issued or completed should be
  /// charged to.
  enum class Mode : uint8_t {
    kNone,     ///< Untracked work (readahead): drop.
    kOp,       ///< An op's data I/O: per-phase into the ledger.
    kOpCache,  ///< An op's metadata I/O: total into the ledger's cache slot.
    kFlush,    ///< Write-back flush: total into the flush histogram.
  };

  struct Target {
    uint32_t ledger = kNoLedger;
    Mode mode = Mode::kNone;
  };

  /// Registers the `lat.*` histograms in `registry` (which must outlive
  /// this object).
  explicit OpAttribution(Registry* registry);

  /// Histograms only record while armed (the measurement phase), mirroring
  /// the tracer's armed gate. Ledger bookkeeping runs regardless so ops in
  /// flight across the arm boundary stay consistent.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

  /// Issue side (op generator): acquires a cleared ledger and makes it the
  /// current data-I/O target. The caller clears the target once the op's
  /// issue stack unwinds.
  uint32_t BeginOp();

  Target target() const { return current_; }
  void set_target(Target t) { current_ = t; }
  void ClearTarget() { current_ = Target{}; }

  /// Completion handshake for async ops, whose completion callbacks have
  /// no room to carry a ledger index: DiskSystem::FinishGroup publishes
  /// the finishing group's target immediately before invoking the op's
  /// callback, and the callback recovers it with TakeActive(). An op that
  /// completes synchronously inside its own issue stack still has the
  /// current target set, which wins.
  void SetFinishing(Target t) { finishing_ = t; }
  Target TakeActive() {
    const Target active =
        current_.ledger != kNoLedger ? current_ : finishing_;
    finishing_ = Target{};
    return active;
  }

  /// Charges one disk access to `t` (see Mode).
  void OnAccess(Target t, const AccessPhases& p);

  /// Folds the ledger into the per-phase histograms against the op's
  /// measured latency and releases it back to the pool.
  void FoldOp(uint32_t ledger, double latency_ms);

  void RecordThink(double think_ms);

  /// Ledgers currently acquired; exposed for tests.
  uint32_t live_ledgers() const { return live_; }

 private:
  /// Ledger slot order: cache, queue, seek, rotation, transfer.
  static constexpr int kSlots = 5;

  struct Ledger {
    double slot[kSlots];
    uint32_t next_free;
  };

  bool armed_ = false;
  Target current_;
  Target finishing_;
  uint32_t free_head_ = kNoLedger;
  uint32_t live_ = 0;
  std::vector<Ledger> pool_;
  /// phase_[0..4] mirror the ledger slots; then other.
  Histogram* phase_[kSlots + 1];
  Histogram* think_;
  Histogram* flush_;
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_LATENCY_H_
