#include "obs/latency.h"

#include "obs/metrics.h"

namespace rofs::obs {

OpAttribution::OpAttribution(Registry* registry) {
  phase_[0] = registry->AddHistogram("lat.cache");
  phase_[1] = registry->AddHistogram("lat.queue");
  phase_[2] = registry->AddHistogram("lat.seek");
  phase_[3] = registry->AddHistogram("lat.rotation");
  phase_[4] = registry->AddHistogram("lat.transfer");
  phase_[kSlots] = registry->AddHistogram("lat.other");
  think_ = registry->AddHistogram("lat.think");
  flush_ = registry->AddHistogram("lat.flush");
}

uint32_t OpAttribution::BeginOp() {
  uint32_t index;
  if (free_head_ != kNoLedger) {
    index = free_head_;
    free_head_ = pool_[index].next_free;
  } else {
    index = static_cast<uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Ledger& led = pool_[index];
  for (double& s : led.slot) s = 0.0;
  led.next_free = kNoLedger;
  ++live_;
  current_ = Target{index, Mode::kOp};
  return index;
}

void OpAttribution::OnAccess(Target t, const AccessPhases& p) {
  switch (t.mode) {
    case Mode::kNone:
      return;
    case Mode::kFlush:
      if (armed_) flush_->Record(p.total_ms());
      return;
    case Mode::kOp:
      if (t.ledger == kNoLedger) return;
      {
        Ledger& led = pool_[t.ledger];
        led.slot[1] += p.queue_wait_ms;
        led.slot[2] += p.seek_ms;
        led.slot[3] += p.rotation_ms;
        led.slot[4] += p.transfer_ms;
      }
      return;
    case Mode::kOpCache:
      if (t.ledger == kNoLedger) return;
      pool_[t.ledger].slot[0] += p.total_ms();
      return;
  }
}

void OpAttribution::RecordThink(double think_ms) {
  if (armed_) think_->Record(think_ms);
}

void OpAttribution::FoldOp(uint32_t ledger, double latency_ms) {
  if (ledger == kNoLedger) return;
  Ledger& led = pool_[ledger];
  if (armed_) {
    double raw = 0.0;
    for (const double s : led.slot) raw += s;
    if (raw > 0.0) {
      // Time not spent in a disk phase is "other" (cache hits, event
      // scheduling). Parallel accesses can overlap in time, so the raw
      // sum may exceed the measured latency; scaling down keeps the six
      // phases an exact partition of it.
      const double scale = raw > latency_ms ? latency_ms / raw : 1.0;
      for (int i = 0; i < kSlots; ++i) phase_[i]->Record(led.slot[i] * scale);
      phase_[kSlots]->Record(raw > latency_ms ? 0.0 : latency_ms - raw);
    } else {
      for (int i = 0; i < kSlots; ++i) phase_[i]->Record(0.0);
      phase_[kSlots]->Record(latency_ms);
    }
  }
  led.next_free = free_head_;
  free_head_ = ledger;
  --live_;
  if (current_.ledger == ledger) current_ = Target{};
  if (finishing_.ledger == ledger) finishing_ = Target{};
}

}  // namespace rofs::obs
