#ifndef ROFS_OBS_TRACE_BUFFER_H_
#define ROFS_OBS_TRACE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rofs::obs {

/// Event categories, matching the Chrome trace-event `cat` field. Fixed
/// at compile time so the hot path stores one byte and the writer owns
/// the strings.
enum class Cat : uint8_t {
  kDisk,
  kCache,
  kAlloc,
  kFs,
  kOp,
  kSim,
};

const char* CatName(Cat cat);

/// Event names, matching the Chrome trace-event `name` field.
enum class Name : uint8_t {
  // Disk service phases (spans on the per-disk tracks).
  kQueueWait,
  kSeek,
  kRotate,
  kTransfer,
  // Buffer cache (instants).
  kCacheHit,
  kCacheMiss,
  kCacheEvict,
  // Allocation policy (instants).
  kAllocBlock,
  kFreeBlock,
  kCoalesce,
  kAllocFailed,
  // File-system layer (spans).
  kMetadataRead,
  // Operation lifecycle (spans, one name per OpKind).
  kOpRead,
  kOpWrite,
  kOpExtend,
  kOpTruncate,
  kOpDelete,
  // Simulation core (counter track).
  kHeapDepth,
  // Disk scheduler (per-disk tracks): a dispatch decision (instant, head
  // travel in cylinders as the argument) and the pending-queue depth
  // observed at dispatch (counter).
  kDispatch,
  kSchedQueueDepth,
  // Buffer cache, continued (instants; appended to keep the wire values
  // of everything above stable): a readahead install and a write-back
  // flush, each carrying the page count.
  kCachePrefetch,
  kCacheFlush,
};

const char* NameString(Name name);

/// The fixed argument key an event's numeric `value` is reported under in
/// the exported JSON ("bytes", "du", ...); nullptr when the event carries
/// no argument.
const char* NameArgKey(Name name);

/// Chrome trace-event phases used by the simulator: complete spans,
/// instants, and counter samples.
enum class Phase : uint8_t {
  kComplete,  // "X": ts + dur.
  kInstant,   // "i".
  kCounter,   // "C": value plotted as a counter track.
};

/// One recorded event: a fixed-size POD so the buffer is a flat vector
/// with no per-event allocation or pointer chasing.
struct TraceEvent {
  double ts_ms = 0;   // Simulated time.
  double dur_ms = 0;  // kComplete only.
  double value = 0;   // Numeric argument / counter value.
  Name name = Name::kQueueWait;
  Cat cat = Cat::kSim;
  Phase phase = Phase::kInstant;
  uint8_t track = 0;  // Exported as the Chrome `tid`.
};

/// Track (tid) assignment within one run's process. Per-disk tracks
/// start at kTrackDiskBase + disk index.
inline constexpr uint8_t kTrackOps = 0;
inline constexpr uint8_t kTrackFs = 1;
inline constexpr uint8_t kTrackCache = 2;
inline constexpr uint8_t kTrackAlloc = 3;
inline constexpr uint8_t kTrackSim = 4;
inline constexpr uint8_t kTrackDiskBase = 8;

/// Human-readable name of a track, for the writer's thread_name
/// metadata.
const char* TrackName(uint8_t track);

/// A bounded, allocation-free-after-construction event sink. The
/// capacity is reserved up front; once full, further events are counted
/// as dropped rather than grown into — a trace must never change the
/// simulation's allocation behavior or blow up memory on long runs.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity);

  /// Records one event; drops (and counts) when full. Hot path: bounds
  /// check + push_back into reserved storage.
  void Add(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  size_t capacity_;
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_TRACE_BUFFER_H_
