#ifndef ROFS_OBS_OPTIONS_H_
#define ROFS_OBS_OPTIONS_H_

#include <cstddef>

namespace rofs::obs {

/// Observability knobs of one simulation run. Everything defaults to off:
/// with both flags clear no obs objects are constructed, instrumented
/// components keep null tracer pointers, and output is byte-identical to
/// a build without the subsystem.
struct Options {
  /// Snapshot the metric registry into the run's RunRecord as `obs.*`
  /// metrics (`--metrics` / ROFS_METRICS).
  bool metrics = false;
  /// Record simulated-time trace events for Chrome/Perfetto export
  /// (`--trace-out FILE` / ROFS_TRACE).
  bool trace = false;
  /// Trace event capacity per run; events beyond it are dropped and
  /// counted (`--trace-events N` / ROFS_TRACE_EVENTS).
  size_t trace_events = 1 << 16;
  /// When > 0, sample windowed time-series metrics every `window_ms` of
  /// simulated time during the measurement phase and attach the series to
  /// the RunRecord (`--window-ms N` / ROFS_WINDOW_MS, or `[obs]
  /// window_ms` in a config file).
  double window_ms = 0.0;

  bool enabled() const { return metrics || trace || window_ms > 0; }
};

}  // namespace rofs::obs

#endif  // ROFS_OBS_OPTIONS_H_
