#include "obs/tracer.h"

namespace rofs::obs {

SimTracer::SimTracer(TraceBuffer* buffer, const double* now,
                     Registry* registry)
    : buffer_(buffer),
      now_(now),
      disk_queue_wait_ms_(registry->AddHistogram("disk.queue_wait_ms")),
      op_latency_ms_(registry->AddHistogram("op.latency_ms")) {}

Session::Session(const Options& options, const double* sim_now)
    : options_(options),
      buffer_(options.trace
                  ? std::make_unique<TraceBuffer>(options.trace_events)
                  : nullptr),
      tracer_(buffer_.get(), sim_now, &registry_),
      attribution_(&registry_) {}

SimTracer* Session::AddLane(const double* now) {
  Lane lane;
  lane.registry = std::make_unique<Registry>();
  if (options_.trace) {
    lane.buffer = std::make_unique<TraceBuffer>(options_.trace_events);
  }
  lane.tracer = std::make_unique<SimTracer>(lane.buffer.get(), now,
                                            lane.registry.get());
  lanes_.push_back(std::move(lane));
  return lanes_.back().tracer.get();
}

void Session::ArmAll() {
  tracer_.Arm();
  attribution_.set_armed(true);
  for (Lane& lane : lanes_) lane.tracer->Arm();
}

void Session::DisarmAll() {
  tracer_.Disarm();
  attribution_.set_armed(false);
  for (Lane& lane : lanes_) lane.tracer->Disarm();
}

void Session::Snapshot(
    std::vector<std::pair<std::string, double>>* out) const {
  if (lanes_.empty()) {
    registry_.Snapshot(out);
    return;
  }
  Registry merged;
  merged.MergeFrom(registry_);
  for (const Lane& lane : lanes_) merged.MergeFrom(*lane.registry);
  merged.Snapshot(out);
}

uint64_t Session::DroppedSpans() const {
  uint64_t dropped = buffer_ != nullptr ? buffer_->dropped() : 0;
  for (const Lane& lane : lanes_) {
    if (lane.buffer != nullptr) dropped += lane.buffer->dropped();
  }
  return dropped;
}

void Session::FoldLaneTraces() {
  if (buffer_ == nullptr) return;
  for (Lane& lane : lanes_) {
    if (lane.buffer == nullptr) continue;
    // Append lane-major; the main buffer's cap still bounds the total
    // (overflow is counted as dropped, like any recording).
    for (const TraceEvent& e : lane.buffer->events()) buffer_->Add(e);
  }
}

}  // namespace rofs::obs
