#include "obs/tracer.h"

namespace rofs::obs {

SimTracer::SimTracer(TraceBuffer* buffer, const double* now,
                     Registry* registry)
    : buffer_(buffer),
      now_(now),
      disk_queue_wait_ms_(registry->AddHistogram("disk.queue_wait_ms")),
      op_latency_ms_(registry->AddHistogram("op.latency_ms")) {}

Session::Session(const Options& options, const double* sim_now)
    : options_(options),
      buffer_(options.trace
                  ? std::make_unique<TraceBuffer>(options.trace_events)
                  : nullptr),
      tracer_(buffer_.get(), sim_now, &registry_) {}

}  // namespace rofs::obs
