#include "obs/trace_buffer.h"

namespace rofs::obs {

const char* CatName(Cat cat) {
  switch (cat) {
    case Cat::kDisk:
      return "disk";
    case Cat::kCache:
      return "cache";
    case Cat::kAlloc:
      return "alloc";
    case Cat::kFs:
      return "fs";
    case Cat::kOp:
      return "op";
    case Cat::kSim:
      return "sim";
  }
  return "?";
}

const char* NameString(Name name) {
  switch (name) {
    case Name::kQueueWait:
      return "queue_wait";
    case Name::kSeek:
      return "seek";
    case Name::kRotate:
      return "rotate";
    case Name::kTransfer:
      return "transfer";
    case Name::kCacheHit:
      return "hit";
    case Name::kCacheMiss:
      return "miss";
    case Name::kCacheEvict:
      return "evict";
    case Name::kAllocBlock:
      return "alloc";
    case Name::kFreeBlock:
      return "free";
    case Name::kCoalesce:
      return "coalesce";
    case Name::kAllocFailed:
      return "alloc_failed";
    case Name::kMetadataRead:
      return "metadata_read";
    case Name::kOpRead:
      return "read";
    case Name::kOpWrite:
      return "write";
    case Name::kOpExtend:
      return "extend";
    case Name::kOpTruncate:
      return "truncate";
    case Name::kOpDelete:
      return "delete";
    case Name::kHeapDepth:
      return "heap_depth";
    case Name::kDispatch:
      return "dispatch";
    case Name::kSchedQueueDepth:
      return "sched_queue_depth";
    case Name::kCachePrefetch:
      return "prefetch";
    case Name::kCacheFlush:
      return "flush";
  }
  return "?";
}

const char* NameArgKey(Name name) {
  switch (name) {
    case Name::kTransfer:
    case Name::kOpRead:
    case Name::kOpWrite:
    case Name::kOpExtend:
    case Name::kOpTruncate:
    case Name::kOpDelete:
      return "bytes";
    case Name::kAllocBlock:
    case Name::kFreeBlock:
      return "du";
    case Name::kCoalesce:
      return "merges";
    case Name::kDispatch:
      return "seek_cyl";
    case Name::kCachePrefetch:
    case Name::kCacheFlush:
      return "pages";
    default:
      return nullptr;
  }
}

const char* TrackName(uint8_t track) {
  switch (track) {
    case kTrackOps:
      return "ops";
    case kTrackFs:
      return "fs";
    case kTrackCache:
      return "cache";
    case kTrackAlloc:
      return "alloc";
    case kTrackSim:
      return "sim";
    default:
      return nullptr;  // Per-disk tracks are named by the writer.
  }
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity_);
}

}  // namespace rofs::obs
