#ifndef ROFS_SIM_TIMER_WHEEL_H_
#define ROFS_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace rofs::sim {

/// One expired timer, as reported by TimerWheel::PopDue.
struct TimerEntry {
  TimeMs deadline;
  uint64_t seq;      // Schedule order; the FIFO tie-breaker at equal deadlines.
  uint64_t payload;  // Caller cookie (the workload layer stores a user id).
};

/// A hierarchical timer wheel for think-time expiry at million-user scale.
///
/// The event heap charges every idle user one 16-byte heap entry plus a
/// 48-byte callback slot and O(log n) sift work per reschedule. The wheel
/// replaces that with one 32-byte pooled node per idle user, bucketed by
/// deadline tick into kLevels levels of 64 slots (level L slots span
/// 64^L ticks), with O(1) insertion and per-slot occupancy bitmaps so
/// expiry scans skip empty regions in one tzcnt.
///
/// Exactness contract (what makes wheel mode byte-comparable to heap
/// mode): PopDue(now) returns exactly the entries with deadline <= now,
/// sorted by (deadline, seq), and next_deadline() is the exact minimum
/// pending deadline — ticks only bucket storage, never round firing
/// times. Bucketing uses floating-point division, so a node may land one
/// tick away from its mathematical bucket; PopDue therefore over-scans
/// one tick and re-checks every popped node's deadline, reinserting the
/// not-yet-due ones, and sorts the whole due batch at the end.
///
/// Nodes live in a pooled free list; steady-state churn allocates nothing
/// once the population peaks.
class TimerWheel {
 public:
  explicit TimerWheel(TimeMs tick_ms = 1.0);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Pre-sizes the node pool so Schedule() never allocates while the
  /// pending population stays within `timers`.
  void Reserve(size_t timers);

  /// Arms a timer. Deadlines in the past are allowed (they pop on the
  /// next PopDue). Returns the entry's sequence number.
  uint64_t Schedule(TimeMs deadline, uint64_t payload);

  /// Exact earliest pending deadline, or +infinity when empty.
  TimeMs next_deadline() const;

  /// Appends every entry with deadline <= now to `out`, sorted by
  /// (deadline, seq) within this call, and removes them from the wheel.
  void PopDue(TimeMs now, std::vector<TimerEntry>* out);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Largest pending population seen over the wheel's lifetime.
  size_t peak_size() const { return peak_size_; }
  TimeMs tick_ms() const { return tick_ms_; }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr uint32_t kSlots = 1u << kSlotBits;  // 64
  static constexpr int32_t kNil = -1;

  struct Node {
    TimeMs deadline;
    uint64_t seq;
    uint64_t payload;
    int32_t next;
  };

  uint64_t TickOf(TimeMs t) const {
    return t <= 0.0 ? 0 : static_cast<uint64_t>(t * inv_tick_);
  }

  int32_t AcquireNode();
  void ReleaseNode(int32_t idx);

  /// Buckets node `idx` (deadline tick `tick`, >= cur_tick_) into the
  /// finest level whose current window contains it, or overflow.
  void InsertNode(int32_t idx, uint64_t tick);

  /// Re-buckets every node of a level's slot (or the overflow list) after
  /// cur_tick_ advanced into its window.
  void CascadeSlot(int level, uint32_t slot);
  void CascadeOverflow();
  /// Refills lower levels after cur_tick_ reached a multiple of 64.
  void Cascade();

  /// Detaches slot (0, s); due nodes go to scratch_, not-yet-due nodes are
  /// reinserted at tick >= `retain_tick`.
  void FilterLevel0Slot(uint32_t s, TimeMs now, uint64_t retain_tick);

  TimeMs tick_ms_;
  double inv_tick_;
  std::vector<Node> nodes_;
  int32_t free_head_ = kNil;
  int32_t slots_[kLevels][kSlots];
  uint64_t occ_[kLevels] = {0, 0, 0, 0};
  int32_t overflow_head_ = kNil;
  uint64_t cur_tick_ = 0;  // Every tick below this has been scanned.
  uint64_t next_seq_ = 0;
  size_t size_ = 0;
  size_t peak_size_ = 0;
  std::vector<TimerEntry> scratch_;  // Due batch under construction.
};

}  // namespace rofs::sim

#endif  // ROFS_SIM_TIMER_WHEEL_H_
