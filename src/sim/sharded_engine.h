#ifndef ROFS_SIM_SHARDED_ENGINE_H_
#define ROFS_SIM_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace rofs::runner {
class ThreadPool;
}

namespace rofs::sim {

/// Conservative time-window engine: one serial central event domain plus
/// per-shard (per-disk) event queues that run in parallel inside safe
/// horizons.
///
/// Domains and ownership: the central queue carries everything that
/// touches shared state — user streams, FS/cache/allocator work, metric
/// crediting. Each shard queue carries exactly one disk's internal events
/// (admission, service completion), so a shard's events touch only that
/// disk's state and may run on a worker thread.
///
/// The round algorithm (see DESIGN.md §11):
///   1. Central phase: dispatch central events while their time is <= the
///      minimum pending shard event time (and <= `until`). The bound is
///      re-read every dispatch and *lowered* by a Schedule observer on the
///      shard queues, so a central event that submits new disk work can
///      never be overtaken by it: the central domain stops exactly at the
///      earliest pending shard event. Central wins ties (<=), giving one
///      deterministic total order.
///   2. Shard phase: every shard runs its local events with
///      time < central.next_time() and <= until — in parallel on the
///      worker gang when the window is worth it, inline in shard order
///      otherwise. Cross-shard effects emitted during the phase
///      (EmitEffect) are buffered per shard.
///   3. Commit: the barrier is waited, then buffered effects are merged
///      into the central queue in (time, shard, per-shard emission order)
///      — a total order independent of worker count and interleaving.
///
/// Why output is byte-identical for any `threads` value: round boundaries
/// depend only on queue contents, shards are deterministic serial
/// programs over disjoint state, and the commit order is a pure function
/// of the effects' (time, shard, index) keys. The worker count changes
/// only which OS thread runs a shard, never what it computes.
class ShardedEngine {
 public:
  /// `central` must outlive the engine. `threads` <= 1 runs every shard
  /// phase inline on the calling thread (no pool, still sharded).
  ShardedEngine(EventQueue* central, uint32_t num_shards, int threads);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  EventQueue* central() { return central_; }
  EventQueue* shard_queue(uint32_t s) { return &shards_[s]->queue; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  int threads() const { return threads_; }

  /// Commits a cross-shard effect. From shard context (a shard event
  /// executing, on any thread) the effect is buffered and merged at the
  /// next commit point; from central/coordinator context it is scheduled
  /// directly on the central queue. `when` must be >= the emitting
  /// event's time.
  template <typename F>
  void EmitEffect(TimeMs when, F&& fn) {
    const int shard = CurrentShard();
    if (shard < 0) {
      central_->Schedule(when, std::forward<F>(fn));
      ++effects_committed_;
    } else {
      shards_[shard]->effects.emplace_back(when,
                                           EventQueue::Callback(
                                               std::forward<F>(fn)));
    }
  }

  /// Drives both domains until every pending event is past `until`
  /// (inclusive, like EventQueue::RunUntil) or the central queue stops.
  /// Returns the number of events dispatched across all domains.
  uint64_t RunUntil(TimeMs until);
  uint64_t Run();

  /// Mirrors the central queue's stop flag (Stop() on the central queue —
  /// e.g. from a disk-full callback — aborts the engine's round loop).
  bool stopped() const { return central_->stopped(); }

  /// Deterministic counters (identical for any `threads` value).
  uint64_t windows() const { return windows_; }
  uint64_t effects_committed() const { return effects_committed_; }
  uint64_t total_dispatched() const;
  /// Sum of the central and per-shard peak heap depths: the engine's
  /// peak live event population (each term is that domain's own peak).
  size_t total_max_heap_depth() const;

  /// Shard phases that actually ran on the worker gang. Depends on the
  /// thread count — never fold into deterministic output.
  uint64_t parallel_windows() const { return parallel_windows_; }

  /// Shard index of the calling context, or -1 outside a shard phase.
  /// Exposed for DiskSystem's effect wrapping and for tests.
  static int CurrentShard();

 private:
  struct Effect {
    Effect(TimeMs w, EventQueue::Callback f) : when(w), fn(std::move(f)) {}
    TimeMs when;
    EventQueue::Callback fn;
  };

  /// Cache-line isolation: a shard's queue and effect buffer are written
  /// by its worker while neighbours run concurrently.
  struct alignas(64) Shard {
    EventQueue queue;
    std::vector<Effect> effects;
    uint64_t phase_dispatched = 0;
  };

  struct EffectRef {
    TimeMs when;
    uint32_t shard;
    uint32_t index;
  };

  static void OnShardSchedule(void* ctx, TimeMs when);

  TimeMs MinShardNextTime() const;
  /// Runs every shard's events below (tc, until]; returns events
  /// dispatched (0 means no shard had eligible work).
  uint64_t RunShardPhase(TimeMs tc, TimeMs until);
  /// Merges buffered effects into the central queue in
  /// (time, shard, emission index) order.
  void CommitEffects();

  EventQueue* central_;
  std::vector<std::unique_ptr<Shard>> shards_;
  int threads_;
  std::unique_ptr<runner::ThreadPool> pool_;

  // Countdown barrier for the worker gang.
  std::mutex mu_;
  std::condition_variable cv_;
  int pending_workers_ = 0;

  // Central-phase bound; lowered by the shard-queue Schedule observer
  // when a central event creates earlier shard work. Only touched from
  // the coordinator thread (the observer ignores shard-context calls).
  TimeMs central_bound_ = 0.0;

  std::vector<uint32_t> ready_;        // Shards eligible this phase.
  std::vector<EffectRef> commit_order_;

  uint64_t windows_ = 0;
  uint64_t parallel_windows_ = 0;
  uint64_t effects_committed_ = 0;
};

}  // namespace rofs::sim

#endif  // ROFS_SIM_SHARDED_ENGINE_H_
