#ifndef ROFS_SIM_EVENT_QUEUE_H_
#define ROFS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rofs::sim {

/// Simulation time in milliseconds (the paper expresses all timing
/// parameters — seek, rotation, process time, hit frequency — in ms).
using TimeMs = double;

/// Event-driven simulation core: a binary heap of (time, callback) pairs
/// with FIFO tie-breaking and a monotonically advancing clock.
///
/// The paper (section 2.2): "The events are maintained in a heap, sorted by
/// their scheduled time."
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances as events are dispatched.
  TimeMs now() const { return now_; }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Schedules `cb` at absolute time `when`. Events scheduled in the past
  /// are clamped to `now()` (they run next, in scheduling order).
  void Schedule(TimeMs when, Callback cb);

  /// Schedules `cb` at now() + delay.
  void ScheduleAfter(TimeMs delay, Callback cb) {
    Schedule(now_ + delay, std::move(cb));
  }

  /// Pops and dispatches the earliest event. Returns false when empty.
  bool RunNext();

  /// Dispatches events until the queue empties, `until` is reached, or
  /// Stop() is called. Returns the number of events dispatched.
  uint64_t RunUntil(TimeMs until);

  /// Runs to queue exhaustion (or Stop()).
  uint64_t Run();

  /// Requests that Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Total events dispatched over the queue's lifetime.
  uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    TimeMs time;
    uint64_t seq;  // Tie-breaker: FIFO among equal times.
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
  bool stopped_ = false;
};

}  // namespace rofs::sim

#endif  // ROFS_SIM_EVENT_QUEUE_H_
