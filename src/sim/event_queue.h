#ifndef ROFS_SIM_EVENT_QUEUE_H_
#define ROFS_SIM_EVENT_QUEUE_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/inline_function.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::sim {

/// Simulation time in milliseconds (the paper expresses all timing
/// parameters — seek, rotation, process time, hit frequency — in ms).
using TimeMs = double;

/// Event-driven simulation core: a contiguous 4-ary heap of
/// (time, seq, callback) entries with FIFO tie-breaking and a
/// monotonically advancing clock.
///
/// The paper (section 2.2): "The events are maintained in a heap, sorted by
/// their scheduled time." The heap is an implicit 4-ary array heap of
/// 16-byte entries — the (time, seq) priority and the callback-slot index
/// packed into one 128-bit integer whose unsigned order is the dispatch
/// order; the callbacks themselves sit in a side slab indexed by slot, so
/// sift operations compare and move single integers — four to a cache
/// line — instead of dragging a type-erased callable through every level. Callbacks are
/// util::InlineFunction (48-byte small-buffer, move-only), so steady-state
/// scheduling performs zero heap allocations: the heap vector, the slab,
/// and the slot free list all stop growing once the live event population
/// peaks (Reserve() pre-sizes them). Dispatch order is the strict total
/// order (time, seq), identical to the seed implementation, so simulation
/// output is byte-for-byte unchanged.
class EventQueue {
 public:
  using Callback = util::InlineFunction<void(), 48>;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Advances as events are dispatched.
  TimeMs now() const { return now_; }

  /// Stable pointer to the clock, for observers that outlive individual
  /// reads (the obs tracer). Valid for the queue's lifetime.
  const TimeMs* now_ptr() const { return &now_; }

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Pre-sizes the heap, slab, and free-list storage so Schedule() never
  /// allocates while the live event population stays within `events`.
  void Reserve(size_t events);

  /// Schedules `f` at absolute time `when`. Events scheduled in the past
  /// are clamped to `now()` (they run next, in scheduling order). The
  /// callable is constructed directly in its slab slot — no temporary
  /// wrapper, no copy.
  template <typename F>
  void Schedule(TimeMs when, F&& f) {
    // <= (not <): scheduling exactly at now() keeps the same time value
    // but normalizes a -0.0 argument to now_'s +0.0, which MakeEntry
    // requires.
    if (when <= now_) when = now_;
    const uint32_t slot = AcquireSlot();
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      SlotRef(slot) = std::forward<F>(f);
    } else {
      SlotRef(slot).Emplace(std::forward<F>(f));
    }
    assert(next_seq_ < (uint64_t{1} << kSeqBits) && "event sequence limit");
    heap_.push_back(MakeEntry(when, next_seq_++, slot));
    if (heap_.size() > max_heap_depth_) max_heap_depth_ = heap_.size();
    SiftUp(heap_.size() - 1);
    if (schedule_observer_ != nullptr) {
      schedule_observer_(schedule_observer_ctx_, when);
    }
  }

  /// Schedules `f` at now() + delay.
  template <typename F>
  void ScheduleAfter(TimeMs delay, F&& f) {
    Schedule(now_ + delay, std::forward<F>(f));
  }

  /// Scheduled time of the earliest pending event, or +infinity when the
  /// queue is empty. Used by the sharded engine to compute safe horizons.
  TimeMs next_time() const;

  /// Pops and dispatches the earliest event. Returns false when empty.
  bool RunNext();

  /// Dispatches events until the queue empties, `until` is reached, or
  /// Stop() is called. Returns the number of events dispatched.
  uint64_t RunUntil(TimeMs until);

  /// Shard-phase run: dispatches events with time strictly below
  /// `strict_bound` AND at-or-below `incl_bound`. The sharded engine uses
  /// the strict bound for the central domain's next event time (central
  /// wins ties, keeping one total order) and the inclusive bound for the
  /// caller's overall `until`. Returns the number of events dispatched.
  uint64_t RunBelow(TimeMs strict_bound, TimeMs incl_bound);

  /// Like RunUntil, but re-reads the (inclusive) bound through `bound`
  /// before every dispatch. The sharded engine lowers the bound mid-run
  /// when a dispatched event schedules earlier work onto a shard queue,
  /// so the central domain never overtakes a pending shard event.
  uint64_t RunUntilBound(const TimeMs* bound);

  /// Observer invoked on every Schedule() with the (clamped) event time.
  /// The sharded engine installs it on shard queues to shrink the central
  /// domain's safe horizon when new shard work appears mid-phase; queues
  /// without an observer pay one predictable branch.
  using ScheduleObserver = void (*)(void* ctx, TimeMs when);
  void set_schedule_observer(ScheduleObserver fn, void* ctx) {
    schedule_observer_ = fn;
    schedule_observer_ctx_ = ctx;
  }

  /// Runs to queue exhaustion (or Stop()).
  uint64_t Run();

  /// Requests that Run()/RunUntil() return after the current event.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Total events dispatched over the queue's lifetime.
  uint64_t dispatched() const { return dispatched_; }

  /// Largest live event population seen so far.
  size_t max_heap_depth() const { return max_heap_depth_; }

  /// Attaches an observability tracer (null detaches); the queue samples
  /// its heap depth onto the tracer's counter track every 1024 dispatches.
  void set_tracer(obs::SimTracer* tracer) { tracer_ = tracer; }

 private:
  /// Heap entry: time, sequence number, and callback slot packed into one
  /// 128-bit integer whose unsigned order IS the dispatch order — a single
  /// cmp/sbb pair per comparison, four entries per cache line.
  ///
  ///   bits 127..64  IEEE-754 bit pattern of the scheduled time. Time is
  ///                 always >= +0.0 (Schedule clamps to now_, which starts
  ///                 at 0, and normalizes -0.0 by clamping with <=), and
  ///                 for non-negative doubles the unsigned order of the
  ///                 bit pattern equals the numeric order.
  ///   bits 63..24   low 40 bits of seq, the FIFO tie-breaker. Unique per
  ///                 event, so the slot bits below never decide an order.
  ///                 40 bits bound one queue's lifetime at ~1.1e12 events
  ///                 (debug-asserted; weeks of wall clock per experiment).
  ///   bits 23..0    callback slot index (bounds live events at ~16.7M,
  ///                 ~1 GB of callback slab; debug-asserted).
  using Entry = unsigned __int128;

  static constexpr uint32_t kSeqBits = 40;
  static constexpr uint32_t kSlotBits = 24;

  static Entry MakeEntry(TimeMs when, uint64_t seq, uint32_t slot) {
    return (static_cast<Entry>(std::bit_cast<uint64_t>(when)) << 64) |
           (static_cast<Entry>(seq) << kSlotBits) | slot;
  }
  static TimeMs EntryTime(Entry e) {
    return std::bit_cast<TimeMs>(static_cast<uint64_t>(e >> 64));
  }
  static uint32_t EntrySlot(Entry e) {
    return static_cast<uint32_t>(e) & ((uint32_t{1} << kSlotBits) - 1);
  }

  static bool Earlier(Entry a, Entry b) { return a < b; }

  /// The callback slab is chunked so slots never move: growth appends a
  /// fixed-size chunk instead of relocating, which lets dispatch invoke a
  /// callable in place even when the callback itself schedules new events
  /// (and thereby grows the slab mid-invoke).
  static constexpr uint32_t kChunkShift = 9;  // 512 callbacks per chunk.
  static constexpr uint32_t kChunkSize = uint32_t{1} << kChunkShift;

  Callback& SlotRef(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  /// Returns a free slab slot, growing the slab by a chunk if needed.
  uint32_t AcquireSlot() {
    if (!free_slots_.empty()) {
      const uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const uint32_t slot = slots_used_++;
    assert(slot < (uint32_t{1} << kSlotBits) && "live event population limit");
    if ((slot >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
    }
    return slot;
  }

  /// Moves heap_[i] toward the root until the 4-ary heap property holds
  /// again.
  void SiftUp(size_t i);
  /// Index of the earliest child of `i` in a heap of `n` entries; `i` must
  /// have at least one child.
  size_t MinChild(size_t i, size_t n) const;

  /// Removes the root, restoring the heap, and returns its entry.
  Entry PopRoot();

  std::vector<Entry> heap_;  // Implicit 4-ary heap, root at index 0.
  std::vector<std::unique_ptr<Callback[]>> chunks_;  // Stable-address slab;
                                                     // grows to the peak
                                                     // live-event
                                                     // population, then
                                                     // stays.
  std::vector<uint32_t> free_slots_;   // Slab slots open for reuse.
  uint32_t slots_used_ = 0;            // High-water mark of the slab.
  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
  size_t max_heap_depth_ = 0;
  bool stopped_ = false;
  obs::SimTracer* tracer_ = nullptr;
  ScheduleObserver schedule_observer_ = nullptr;
  void* schedule_observer_ctx_ = nullptr;
};

/// Process-wide total of events dispatched by EventQueue instances that
/// have been destroyed (each queue folds its count in on destruction).
/// The bench harness reads it around a sweep for an end-to-end
/// events-per-second figure without touching any per-event hot path.
uint64_t RetiredDispatchedEvents();

}  // namespace rofs::sim

#endif  // ROFS_SIM_EVENT_QUEUE_H_
