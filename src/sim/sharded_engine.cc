#include "sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "runner/thread_pool.h"

namespace rofs::sim {

namespace {

constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();

/// Shard windows smaller than this run inline on the coordinator: the
/// handoff + wakeup cost of the gang dwarfs a handful of events. The
/// threshold reads only queue state, so the inline/parallel choice — and
/// therefore the execution, though never the output — is reproducible.
constexpr uint64_t kParallelThresholdEvents = 64;

/// Shard context of the executing thread: the shard whose events are
/// being dispatched, or -1 (coordinator / central domain).
thread_local int tls_shard = -1;

}  // namespace

int ShardedEngine::CurrentShard() { return tls_shard; }

ShardedEngine::ShardedEngine(EventQueue* central, uint32_t num_shards,
                             int threads)
    : central_(central), threads_(threads) {
  assert(central != nullptr);
  assert(num_shards > 0);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[s]->queue.set_schedule_observer(&ShardedEngine::OnShardSchedule,
                                            this);
  }
  if (threads_ > 1) {
    pool_ = std::make_unique<runner::ThreadPool>(threads_);
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::OnShardSchedule(void* ctx, TimeMs when) {
  // Shard-context schedules are a shard extending its own future; only a
  // central event creating new disk work must shrink the central bound.
  if (tls_shard >= 0) return;
  auto* engine = static_cast<ShardedEngine*>(ctx);
  if (when < engine->central_bound_) engine->central_bound_ = when;
}

TimeMs ShardedEngine::MinShardNextTime() const {
  TimeMs min_next = kInf;
  for (const auto& shard : shards_) {
    min_next = std::min(min_next, shard->queue.next_time());
  }
  return min_next;
}

uint64_t ShardedEngine::RunShardPhase(TimeMs tc, TimeMs until) {
  ready_.clear();
  uint64_t pending = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const TimeMs t = shards_[s]->queue.next_time();
    if (t < tc && t <= until) {
      ready_.push_back(s);
      pending += shards_[s]->queue.size();
    }
  }
  if (ready_.empty()) return 0;
  ++windows_;

  uint64_t dispatched = 0;
  if (pool_ == nullptr || ready_.size() < 2 ||
      pending < kParallelThresholdEvents) {
    // Inline: shards in index order on the coordinator. Effects still
    // buffer (tls_shard is set), so the commit order matches the
    // parallel path exactly.
    for (const uint32_t s : ready_) {
      tls_shard = static_cast<int>(s);
      dispatched += shards_[s]->queue.RunBelow(tc, until);
      tls_shard = -1;
    }
    return dispatched;
  }

  ++parallel_windows_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_workers_ = static_cast<int>(ready_.size());
  }
  for (const uint32_t s : ready_) {
    pool_->Submit([this, s, tc, until] {
      tls_shard = static_cast<int>(s);
      shards_[s]->phase_dispatched = shards_[s]->queue.RunBelow(tc, until);
      tls_shard = -1;
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) cv_.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_workers_ == 0; });
  }
  for (const uint32_t s : ready_) {
    dispatched += shards_[s]->phase_dispatched;
  }
  return dispatched;
}

void ShardedEngine::CommitEffects() {
  commit_order_.clear();
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const auto& effects = shards_[s]->effects;
    for (uint32_t i = 0; i < effects.size(); ++i) {
      commit_order_.push_back(EffectRef{effects[i].when, s, i});
    }
  }
  if (commit_order_.empty()) return;
  // Stable sort on time alone: ties keep the shard-major emission order,
  // yielding the (time, shard, index) total order. The central queue's
  // FIFO sequence numbers then preserve it among equal-time events.
  std::stable_sort(commit_order_.begin(), commit_order_.end(),
                   [](const EffectRef& a, const EffectRef& b) {
                     return a.when < b.when;
                   });
  for (const EffectRef& ref : commit_order_) {
    central_->Schedule(ref.when,
                       std::move(shards_[ref.shard]->effects[ref.index].fn));
  }
  effects_committed_ += commit_order_.size();
  for (const auto& shard : shards_) shard->effects.clear();
}

uint64_t ShardedEngine::RunUntil(TimeMs until) {
  uint64_t total = 0;
  for (;;) {
    // Central phase: never overtake the earliest pending shard event.
    // The bound is lowered mid-phase by the Schedule observer whenever a
    // central event submits earlier disk work.
    central_bound_ = std::min(until, MinShardNextTime());
    total += central_->RunUntilBound(&central_bound_);
    if (central_->stopped()) break;

    // Shard phase: strictly below the next central event (central wins
    // ties), inclusively bounded by `until`.
    const TimeMs tc = central_->next_time();
    const uint64_t n = RunShardPhase(tc, until);
    if (n == 0) break;  // Neither domain has eligible work left.
    total += n;
    CommitEffects();
  }
  return total;
}

uint64_t ShardedEngine::Run() { return RunUntil(kInf); }

uint64_t ShardedEngine::total_dispatched() const {
  uint64_t total = central_->dispatched();
  for (const auto& shard : shards_) total += shard->queue.dispatched();
  return total;
}

size_t ShardedEngine::total_max_heap_depth() const {
  size_t total = central_->max_heap_depth();
  for (const auto& shard : shards_) total += shard->queue.max_heap_depth();
  return total;
}

}  // namespace rofs::sim
