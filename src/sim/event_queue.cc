#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <utility>

#include "obs/tracer.h"

namespace rofs::sim {

namespace {

std::atomic<uint64_t> g_retired_dispatched{0};

}  // namespace

uint64_t RetiredDispatchedEvents() {
  return g_retired_dispatched.load(std::memory_order_relaxed);
}

EventQueue::~EventQueue() {
  g_retired_dispatched.fetch_add(dispatched_, std::memory_order_relaxed);
}

void EventQueue::SiftUp(size_t i) {
  const Entry moving = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

size_t EventQueue::MinChild(size_t i, size_t n) const {
  const size_t first_child = 4 * i + 1;
  if (first_child + 4 <= n) {
    // Full fan-out: a two-level tournament selected with setcc index
    // arithmetic (index += bool), which compiles branch-free — a
    // data-dependent branch here would mispredict half the time on
    // random keys and dominate the descent cost.
    const size_t a =
        first_child + size_t{Earlier(heap_[first_child + 1], heap_[first_child])};
    const size_t b = first_child + 2 +
                     size_t{Earlier(heap_[first_child + 3], heap_[first_child + 2])};
    return Earlier(heap_[b], heap_[a]) ? b : a;
  }
  size_t best = first_child;
  for (size_t c = first_child + 1; c < n; ++c) {
    best = Earlier(heap_[c], heap_[best]) ? c : best;
  }
  return best;
}

void EventQueue::Reserve(size_t events) {
  heap_.reserve(events);
  free_slots_.reserve(events);
  const size_t chunks = (events + kChunkSize - 1) >> kChunkShift;
  chunks_.reserve(chunks);
  while (chunks_.size() < chunks) {
    chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
  }
}

EventQueue::Entry EventQueue::PopRoot() {
  const Entry top = heap_.front();
  const size_t n = heap_.size() - 1;
  if (n > 0) {
    // Floyd's variant: walk the root hole down along min-children to a
    // leaf (one comparison fewer per level than sifting the tail down),
    // drop the old tail there, and bubble it up — it rarely rises, since
    // a leaf almost always belongs near the bottom.
    const Entry tail = heap_[n];
    heap_.pop_back();
    size_t hole = 0;
    while (4 * hole + 1 < n) {
      const size_t best = MinChild(hole, n);
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = tail;
    SiftUp(hole);
  } else {
    heap_.pop_back();
  }
  return top;
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  const Entry entry = PopRoot();
  now_ = EntryTime(entry);
  ++dispatched_;
  // Sampled (not per-event) so tracing stays cheap on multi-million-event
  // runs; the counter still resolves queue buildups thousands long.
  if (tracer_ != nullptr && (dispatched_ & 1023u) == 0) {
    tracer_->HeapDepth(now_, heap_.size());
  }
  // Invoke in place: the chunked slab guarantees the slot's address stays
  // valid even if the callback schedules new events and grows the slab.
  // The slot is recycled only after the invoke, so a schedule from inside
  // the callback cannot overwrite the running callable.
  const uint32_t slot = EntrySlot(entry);
  Callback& cb = SlotRef(slot);
  cb();
  cb = nullptr;  // Destroy the capture now, as the seed did after dispatch.
  free_slots_.push_back(slot);
  return true;
}

TimeMs EventQueue::next_time() const {
  return heap_.empty() ? std::numeric_limits<TimeMs>::infinity()
                       : EntryTime(heap_.front());
}

uint64_t EventQueue::RunUntil(TimeMs until) {
  uint64_t n = 0;
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && EntryTime(heap_.front()) <= until) {
    RunNext();
    ++n;
  }
  return n;
}

uint64_t EventQueue::RunUntilBound(const TimeMs* bound) {
  uint64_t n = 0;
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && EntryTime(heap_.front()) <= *bound) {
    RunNext();
    ++n;
  }
  return n;
}

uint64_t EventQueue::RunBelow(TimeMs strict_bound, TimeMs incl_bound) {
  uint64_t n = 0;
  stopped_ = false;
  while (!heap_.empty() && !stopped_) {
    const TimeMs t = EntryTime(heap_.front());
    if (!(t < strict_bound && t <= incl_bound)) break;
    RunNext();
    ++n;
  }
  return n;
}

uint64_t EventQueue::Run() {
  return RunUntil(std::numeric_limits<TimeMs>::infinity());
}

}  // namespace rofs::sim
