#include "sim/event_queue.h"

#include <limits>
#include <utility>

namespace rofs::sim {

void EventQueue::Schedule(TimeMs when, Callback cb) {
  if (when < now_) when = now_;
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never touch the moved-from entry.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  ++dispatched_;
  entry.cb();
  return true;
}

uint64_t EventQueue::RunUntil(TimeMs until) {
  uint64_t n = 0;
  stopped_ = false;
  while (!heap_.empty() && !stopped_ && heap_.top().time <= until) {
    RunNext();
    ++n;
  }
  return n;
}

uint64_t EventQueue::Run() {
  return RunUntil(std::numeric_limits<TimeMs>::infinity());
}

}  // namespace rofs::sim
