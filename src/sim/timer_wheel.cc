#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace rofs::sim {

namespace {

constexpr TimeMs kInf = std::numeric_limits<TimeMs>::infinity();

}  // namespace

TimerWheel::TimerWheel(TimeMs tick_ms)
    : tick_ms_(tick_ms), inv_tick_(1.0 / tick_ms) {
  assert(tick_ms > 0.0);
  for (int level = 0; level < kLevels; ++level) {
    for (uint32_t s = 0; s < kSlots; ++s) slots_[level][s] = kNil;
  }
}

void TimerWheel::Reserve(size_t timers) {
  nodes_.reserve(timers);
  scratch_.reserve(timers);
}

int32_t TimerWheel::AcquireNode() {
  if (free_head_ != kNil) {
    const int32_t idx = free_head_;
    free_head_ = nodes_[idx].next;
    return idx;
  }
  nodes_.emplace_back();
  return static_cast<int32_t>(nodes_.size() - 1);
}

void TimerWheel::ReleaseNode(int32_t idx) {
  nodes_[idx].next = free_head_;
  free_head_ = idx;
}

void TimerWheel::InsertNode(int32_t idx, uint64_t tick) {
  assert(tick >= cur_tick_);
  for (int level = 0; level < kLevels; ++level) {
    const int window_shift = (level + 1) * kSlotBits;
    if ((tick >> window_shift) == (cur_tick_ >> window_shift)) {
      const uint32_t s =
          static_cast<uint32_t>(tick >> (level * kSlotBits)) & (kSlots - 1);
      nodes_[idx].next = slots_[level][s];
      slots_[level][s] = idx;
      occ_[level] |= uint64_t{1} << s;
      return;
    }
  }
  nodes_[idx].next = overflow_head_;
  overflow_head_ = idx;
}

uint64_t TimerWheel::Schedule(TimeMs deadline, uint64_t payload) {
  const int32_t idx = AcquireNode();
  const uint64_t seq = next_seq_++;
  Node& n = nodes_[idx];
  n.deadline = deadline;
  n.seq = seq;
  n.payload = payload;
  uint64_t tick = TickOf(deadline);
  // Floating-point division may round the tick up across an integer
  // boundary; a too-late bucket would delay the pop past the deadline, so
  // correct it here (a too-early bucket only costs a filtered re-scan).
  if (tick > 0 && static_cast<TimeMs>(tick) * tick_ms_ > deadline) --tick;
  if (tick < cur_tick_) tick = cur_tick_;
  InsertNode(idx, tick);
  if (++size_ > peak_size_) peak_size_ = size_;
  return seq;
}

void TimerWheel::CascadeSlot(int level, uint32_t slot) {
  int32_t n = slots_[level][slot];
  if (n == kNil) return;
  slots_[level][slot] = kNil;
  occ_[level] &= ~(uint64_t{1} << slot);
  while (n != kNil) {
    const int32_t next = nodes_[n].next;
    uint64_t tick = TickOf(nodes_[n].deadline);
    if (tick > 0 && static_cast<TimeMs>(tick) * tick_ms_ > nodes_[n].deadline) {
      --tick;
    }
    InsertNode(n, std::max(tick, cur_tick_));
    n = next;
  }
}

void TimerWheel::CascadeOverflow() {
  int32_t n = overflow_head_;
  overflow_head_ = kNil;
  while (n != kNil) {
    const int32_t next = nodes_[n].next;
    uint64_t tick = TickOf(nodes_[n].deadline);
    if (tick > 0 && static_cast<TimeMs>(tick) * tick_ms_ > nodes_[n].deadline) {
      --tick;
    }
    InsertNode(n, std::max(tick, cur_tick_));
    n = next;
  }
}

void TimerWheel::Cascade() {
  // cur_tick_ just reached a multiple of kSlots. Refill from the coarsest
  // crossed boundary downward so nodes trickle into their exact
  // lower-level slots before those are scanned.
  if ((cur_tick_ & ((uint64_t{1} << (kLevels * kSlotBits)) - 1)) == 0) {
    CascadeOverflow();
  }
  for (int level = kLevels - 1; level >= 1; --level) {
    if ((cur_tick_ & ((uint64_t{1} << (level * kSlotBits)) - 1)) != 0) continue;
    CascadeSlot(level,
                static_cast<uint32_t>(cur_tick_ >> (level * kSlotBits)) &
                    (kSlots - 1));
  }
}

void TimerWheel::FilterLevel0Slot(uint32_t s, TimeMs now,
                                  uint64_t retain_tick) {
  int32_t n = slots_[0][s];
  slots_[0][s] = kNil;
  occ_[0] &= ~(uint64_t{1} << s);
  while (n != kNil) {
    const int32_t next = nodes_[n].next;
    if (nodes_[n].deadline <= now) {
      scratch_.push_back(
          TimerEntry{nodes_[n].deadline, nodes_[n].seq, nodes_[n].payload});
      ReleaseNode(n);
      --size_;
    } else {
      uint64_t tick = TickOf(nodes_[n].deadline);
      if (tick > 0 &&
          static_cast<TimeMs>(tick) * tick_ms_ > nodes_[n].deadline) {
        --tick;
      }
      InsertNode(n, std::max(tick, retain_tick));
    }
    n = next;
  }
}

void TimerWheel::PopDue(TimeMs now, std::vector<TimerEntry>* out) {
  if (size_ == 0) return;
  // Over-scan one tick past now's bucket: with the floor correction every
  // node's bucket is at most its true tick, so every due node lives at a
  // tick <= end.
  uint64_t end = TickOf(now) + 1;
  if (end < cur_tick_) end = cur_tick_;
  scratch_.clear();
  while (true) {
    const uint64_t base = cur_tick_ & ~uint64_t{kSlots - 1};
    const uint64_t window_last = base + (kSlots - 1);
    const uint64_t last = std::min(end, window_last);
    uint64_t m = occ_[0] & (~uint64_t{0} << (cur_tick_ - base));
    const uint32_t hi = static_cast<uint32_t>(last - base);
    if (hi < kSlots - 1) m &= (uint64_t{1} << (hi + 1)) - 1;
    while (m != 0) {
      const uint32_t s = static_cast<uint32_t>(std::countr_zero(m));
      m &= m - 1;
      FilterLevel0Slot(s, now, end);
    }
    if (end <= window_last) {
      cur_tick_ = end;
      break;
    }
    cur_tick_ = base + kSlots;
    Cascade();
  }
  // One sort over the whole batch: slots only bucket approximately, but
  // the emitted order is the exact (deadline, seq) total order.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const TimerEntry& a, const TimerEntry& b) {
              return a.deadline != b.deadline ? a.deadline < b.deadline
                                              : a.seq < b.seq;
            });
  out->insert(out->end(), scratch_.begin(), scratch_.end());
}

TimeMs TimerWheel::next_deadline() const {
  if (size_ == 0) return kInf;
  for (int level = 0; level < kLevels; ++level) {
    const uint32_t off =
        static_cast<uint32_t>(cur_tick_ >> (level * kSlotBits)) & (kSlots - 1);
    const uint64_t m = occ_[level] & (~uint64_t{0} << off);
    if (m == 0) continue;
    const uint32_t s = static_cast<uint32_t>(std::countr_zero(m));
    TimeMs best = kInf;
    for (int32_t n = slots_[level][s]; n != kNil; n = nodes_[n].next) {
      best = std::min(best, nodes_[n].deadline);
    }
    return best;
  }
  TimeMs best = kInf;
  for (int32_t n = overflow_head_; n != kNil; n = nodes_[n].next) {
    best = std::min(best, nodes_[n].deadline);
  }
  return best;
}

}  // namespace rofs::sim
