#ifndef ROFS_EXP_RUN_RECORD_H_
#define ROFS_EXP_RUN_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace rofs::exp {

/// The machine-readable result of one simulation run: a flat
/// string -> double metric map plus string tags identifying the run. All
/// result kinds (allocation tests, performance tests, whole bench cells)
/// funnel through this one shape, so replication aggregation, JSONL/CSV
/// emission, and downstream tooling consume a single schema instead of a
/// hand-rolled struct per experiment.
///
/// Both maps are ordered, and no wall-clock or host-dependent value is
/// ever recorded, so serialized records are byte-identical for any
/// `--jobs` count.
struct RunRecord {
  /// The producing driver ("fig1_rbuddy_frag", "rofs_sim", ...).
  std::string experiment;
  /// The grid-cell label within the experiment.
  std::string cell;
  /// Replicate index == the RNG stream the run drew from (0-based).
  int replicate = 0;
  /// The derived seed the run actually used (SplitSeed(base, replicate)).
  uint64_t seed = 0;

  std::map<std::string, std::string> tags;
  std::map<std::string, double> metrics;
  /// Windowed time-series sampled over the run's measurement phase; empty
  /// unless `[obs] window_ms` / `--window-ms` was set. Serialized as a
  /// trailing "series" object only when non-empty, so records without one
  /// are byte-identical to the earlier schema.
  obs::WindowSeries series;

  void Set(const std::string& name, double value) { metrics[name] = value; }
  /// The metric's value, or `fallback` when absent.
  double Get(const std::string& name, double fallback = 0.0) const;
  bool Has(const std::string& name) const;

  /// Copies every metric of `other` into this record with the metric
  /// names prefixed ("app." + "throughput_of_max" ->
  /// "app.throughput_of_max"), and merges its tags (un-prefixed; existing
  /// keys win). Drivers compose one cell record from several test results
  /// this way, with "alloc." / "app." / "seq." as the conventional
  /// prefixes.
  void MergeMetrics(const RunRecord& other, const std::string& prefix = "");

  /// One JSON object, single line, no trailing newline. Key order is
  /// fixed (identity fields, then tags, then metrics, each sorted), and
  /// doubles render as shortest round-trip decimals, so equal records
  /// serialize to equal bytes.
  std::string ToJson() const;
};

/// JSONL: one record per line, in order.
std::string RecordsToJsonl(const std::vector<RunRecord>& records);

/// CSV with a fixed identity prefix (experiment, cell, replicate, seed),
/// then the sorted union of tag keys (prefixed "tag."), then the sorted
/// union of metric keys. Absent cells are empty. Series are not included
/// (see SeriesToCsv).
std::string RecordsToCsv(const std::vector<RunRecord>& records);

/// Long-format CSV of every record's windowed series: one row per
/// (record, window), identity prefix then t_ms then the sorted union of
/// column names. Empty string when no record carries a series.
std::string SeriesToCsv(const std::vector<RunRecord>& records);

}  // namespace rofs::exp

#endif  // ROFS_EXP_RUN_RECORD_H_
