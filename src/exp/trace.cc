#include "exp/trace.h"

#include <algorithm>
#include <cstddef>
#include <fstream>

#include "util/table.h"

namespace rofs::exp {

OpTrace::OpTrace(size_t capacity) : capacity_(capacity) {
  records_.reserve(std::min<size_t>(capacity, 4096));
}

void OpTrace::Attach(workload::OpGenerator* generator) {
  generator->on_op = [this](const workload::OpRecord& record) {
    Record(record);
  };
}

void OpTrace::Record(const workload::OpRecord& record) {
  ++total_recorded_;
  if (records_.size() < capacity_) {
    records_.push_back(record);
    return;
  }
  // Ring: overwrite the oldest.
  records_[head_] = record;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
}

const std::vector<workload::OpRecord>& OpTrace::records() {
  if (wrapped_ && head_ != 0) {
    // Rotate the oldest record to index 0. The ring stays valid: the
    // vector is full, so the next overwrite position is the oldest
    // element, which is now the front.
    std::rotate(records_.begin(),
                records_.begin() + static_cast<ptrdiff_t>(head_),
                records_.end());
    head_ = 0;
  }
  return records_;
}

void OpTrace::Clear() {
  records_.clear();
  head_ = 0;
  wrapped_ = false;
  total_recorded_ = 0;
}

std::string OpTrace::ToCsv(const workload::WorkloadSpec& workload) const {
  std::string out = "issued_ms,completed_ms,latency_ms,type,op,file,bytes\n";
  auto append = [&](const workload::OpRecord& r) {
    out += FormatString(
        "%.3f,%.3f,%.3f,%s,%s,%llu,%llu\n", r.issued, r.completed,
        r.completed - r.issued,
        r.type_index < workload.types.size()
            ? workload.types[r.type_index].name.c_str()
            : "?",
        workload::OpKindToString(r.op).c_str(),
        static_cast<unsigned long long>(r.file),
        static_cast<unsigned long long>(r.bytes));
  };
  // Oldest first.
  if (wrapped_) {
    for (size_t i = head_; i < records_.size(); ++i) append(records_[i]);
    for (size_t i = 0; i < head_; ++i) append(records_[i]);
  } else {
    for (const auto& r : records_) append(r);
  }
  if (dropped() > 0) {
    out += FormatString("# dropped=%llu\n",
                        static_cast<unsigned long long>(dropped()));
  }
  return out;
}

Status OpTrace::WriteCsv(const std::string& path,
                         const workload::WorkloadSpec& workload) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << ToCsv(workload);
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

std::string OpTrace::ToJsonl(const workload::WorkloadSpec& workload) const {
  std::string out;
  out.reserve(records_.size() * 96);
  auto append = [&](const workload::OpRecord& r) {
    out += FormatString(
        "{\"issued_ms\":%.3f,\"completed_ms\":%.3f,\"latency_ms\":%.3f,"
        "\"type\":\"%s\",\"op\":\"%s\",\"file\":%llu,\"bytes\":%llu}\n",
        r.issued, r.completed, r.completed - r.issued,
        r.type_index < workload.types.size()
            ? workload.types[r.type_index].name.c_str()
            : "?",
        workload::OpKindToString(r.op).c_str(),
        static_cast<unsigned long long>(r.file),
        static_cast<unsigned long long>(r.bytes));
  };
  // Oldest first (same order as ToCsv, without mutating the ring).
  if (wrapped_) {
    for (size_t i = head_; i < records_.size(); ++i) append(records_[i]);
    for (size_t i = 0; i < head_; ++i) append(records_[i]);
  } else {
    for (const auto& r : records_) append(r);
  }
  out += FormatString("{\"records\":%llu,\"dropped\":%llu}\n",
                      static_cast<unsigned long long>(records_.size()),
                      static_cast<unsigned long long>(dropped()));
  return out;
}

Status OpTrace::WriteJsonl(const std::string& path,
                           const workload::WorkloadSpec& workload) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << ToJsonl(workload);
  return out.good() ? Status::OK()
                    : Status::Internal("short write to '" + path + "'");
}

}  // namespace rofs::exp
