#ifndef ROFS_EXP_EXPERIMENT_H_
#define ROFS_EXP_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alloc/allocator.h"
#include "disk/disk_system.h"
#include "exp/run_record.h"
#include "fs/read_optimized_fs.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/sharded_engine.h"
#include "util/statusor.h"
#include "workload/file_type.h"
#include "workload/op_generator.h"

namespace rofs::exp {

/// Live state of one measurement's windowed time-series capture (defined
/// in experiment.cc; present in a Sim only when obs.window_ms > 0).
struct WindowRecorder;

/// Intra-run parallel engine and per-user state compaction (DESIGN.md
/// §11). Defaults reproduce every earlier release byte for byte.
struct SimEngineOptions {
  /// 0 runs the classic single event queue. >= 1 shards disk-internal
  /// events per drive behind a conservative time-window engine; the
  /// value is the worker-thread budget (1 = sharded but inline). Output
  /// is byte-identical across all values >= 1; the effective worker
  /// count is further capped at hardware_concurrency / runner jobs.
  int threads = 0;
  /// Keep idle users in a hierarchical timer wheel instead of the event
  /// heap: the memory-lean path for 10^5-10^6 user configurations.
  bool timer_wheel = false;
  /// Wheel tick granularity (buckets storage only, never firing times).
  double wheel_tick_ms = 1.0;
};

/// Harness parameters (paper sections 2.2 and 3).
struct ExperimentConfig {
  /// The measurement band [N, M] of disk utilization for performance
  /// tests: the disks are at least 90% and at most 95% full.
  double fill_lower = 0.90;
  double fill_upper = 0.95;

  /// Throughput sampling interval (paper: 10 simulated seconds).
  double sample_interval_ms = 10'000;
  /// Stabilization tolerance between consecutive samples, in absolute
  /// percentage points of utilization (paper: 0.1; benches use a looser
  /// value plus the time cap below — see DESIGN.md substitutions).
  double stable_tolerance_pp = 0.25;
  int stable_samples = 3;

  /// Warm-up simulated time discarded before measurement begins, and caps
  /// on the measured simulated time. The sequential test gets larger caps:
  /// a single whole-file operation can take minutes of simulated time.
  double warmup_ms = 20'000;
  double min_measure_ms = 30'000;
  double max_measure_ms = 300'000;
  double seq_min_measure_ms = 100'000;
  double seq_max_measure_ms = 1'200'000;

  /// Allocation-test termination: the test ends at the first allocation
  /// failure; these caps guard configurations whose churn equilibrium
  /// never quite reaches a failing request (a tiny-extent policy can pack
  /// essentially the whole disk). At `alloc_full_utilization` the system
  /// is declared full with ~zero external fragmentation.
  double alloc_full_utilization = 0.999;
  uint64_t max_alloc_test_ops = 20'000'000;

  uint64_t seed = 1;

  /// File-system extensions (buffer cache, metadata I/O). Defaults to the
  /// paper's cache-less, metadata-free model.
  fs::FsOptions fs_options;

  /// Observability (metric snapshots, sim-time tracing). Defaults to off:
  /// no obs objects are constructed and every instrumentation point stays
  /// a null-pointer check.
  obs::Options obs;

  /// Intra-run parallelism and user-state compaction. Defaults to the
  /// classic serial engine and per-user heap events.
  SimEngineOptions engine;

  /// Rejects nonsense configurations instead of silently running them:
  /// the fill band must satisfy 0 < lower <= upper <= 1, every interval
  /// and cap must be positive and ordered (min <= max measurement
  /// windows), and the seed must be non-zero (stream derivation reserves
  /// 0-seeded streams as degenerate). Called by Experiment at the start
  /// of every Run* entry point.
  Status Validate() const;
};

/// Result of an allocation test: fragmentation when the disk system first
/// cannot satisfy a request (paper section 3).
struct AllocationResult {
  /// Space allocated but unused, as a fraction of allocated space.
  double internal_fragmentation = 0;
  /// Space still free when the first request failed, as a fraction of the
  /// total space.
  double external_fragmentation = 0;
  /// Space utilization when the test ended.
  double utilization = 0;
  double avg_extents_per_file = 0;
  uint64_t ops_executed = 0;
  /// Simulated time at which the disk filled.
  double simulated_ms = 0;
  /// Allocation-policy counters accumulated over the whole test.
  alloc::AllocatorStats alloc_stats;
  /// Deterministic capacity metrics (identical for any thread count or
  /// wall-clock conditions): simulated users, the peak live event
  /// population across every event queue, and the timer wheel's peak
  /// entry count (0 in heap mode).
  uint64_t users_peak = 0;
  uint64_t events_peak = 0;
  uint64_t wheel_peak = 0;
  /// Metric-registry snapshot ("disk.queue_wait_ms.p50", ...) when the
  /// run had --metrics on; empty otherwise. Name-sorted.
  std::vector<std::pair<std::string, double>> obs_metrics;

  /// Flat RunRecord view of this result ("internal_frag",
  /// "external_frag", ..., "alloc.splits"); identity fields are left for
  /// the harness to fill. FromRecord inverts the mapping, so aggregation
  /// and reporting can consume records while callers keep the typed view.
  RunRecord ToRecord() const;
  static AllocationResult FromRecord(const RunRecord& record);
};

/// Result of an application or sequential performance test.
struct PerfResult {
  /// Throughput as a fraction of the maximum sequential bandwidth.
  double utilization_of_max = 0;
  bool stabilized = false;
  double measured_ms = 0;
  uint64_t ops_executed = 0;
  uint64_t bytes_moved = 0;
  uint64_t disk_full_events = 0;
  double avg_extents_per_file = 0;
  double internal_fragmentation = 0;
  /// Mean operation latency during measurement (ms).
  double mean_op_latency_ms = 0;
  /// Open-loop arrivals only (workload arrivals != closed): operations
  /// offered (injected) and completed during the measured window, and the
  /// peak pending-op queue depth since arrivals started. Offered minus
  /// completed is the backlog an overloaded system accumulated. The
  /// "open.*" record keys exist only for open-loop runs, so closed-loop
  /// records (and their goldens) are byte-identical to earlier releases.
  bool open_loop = false;
  uint64_t offered_ops = 0;
  uint64_t completed_ops = 0;
  uint64_t pending_peak = 0;
  /// Allocation-policy counters since the simulation was constructed.
  alloc::AllocatorStats alloc_stats;
  /// Deterministic capacity metrics; see AllocationResult.
  uint64_t users_peak = 0;
  uint64_t events_peak = 0;
  uint64_t wheel_peak = 0;
  /// Metric-registry snapshot when the run had --metrics on; empty
  /// otherwise. Name-sorted.
  std::vector<std::pair<std::string, double>> obs_metrics;
  /// Windowed time-series over the measurement phase when obs.window_ms
  /// was set; empty otherwise. Carried into the RunRecord by ToRecord.
  obs::WindowSeries series;

  /// Flat RunRecord view ("throughput_of_max", "measured_ms", ...,
  /// "alloc.splits"); FromRecord inverts it (the series rides along
  /// verbatim). See AllocationResult.
  RunRecord ToRecord() const;
  static PerfResult FromRecord(const RunRecord& record);
};

/// Builds and runs the paper's three tests for one (workload, allocation
/// policy, disk configuration) triple. A fresh simulation is constructed
/// per Run* call; RunPerformancePair() runs the application test and then
/// the sequential test on the same aged file system, exactly as the paper
/// sequences them.
class Experiment {
 public:
  using AllocatorFactory =
      std::function<std::unique_ptr<alloc::Allocator>(uint64_t total_du)>;

  Experiment(workload::WorkloadSpec workload, AllocatorFactory factory,
             disk::DiskSystemConfig disk_config, ExperimentConfig config);

  /// Paper section 3: run create/extend/truncate/delete until the first
  /// allocation failure; report fragmentation.
  StatusOr<AllocationResult> RunAllocationTest();

  /// Application performance test alone.
  StatusOr<PerfResult> RunApplicationTest();

  /// Sequential performance test alone.
  StatusOr<PerfResult> RunSequentialTest();

  /// Hook invoked with each freshly constructed operation generator (e.g.
  /// to attach an OpTrace) before any events run.
  void set_instrument(std::function<void(workload::OpGenerator*)> fn) {
    instrument_ = std::move(fn);
  }

  /// When set, the application-phase per-type statistics report is copied
  /// here after measurement.
  void set_stats_sink(std::string* sink) { stats_sink_ = sink; }

  /// Application test followed by the sequential test on the same system.
  struct PerfPair {
    PerfResult application;
    PerfResult sequential;
  };
  StatusOr<PerfPair> RunPerformancePair();

 private:
  /// Live simulation state for one run. Member order is destruction
  /// order in reverse: components holding tracer pointers (allocator,
  /// disk, fs, gen) are destroyed before the obs session, and the queue
  /// — whose clock the session reads — outlives everything.
  struct Sim {
    Sim();
    ~Sim();  // Out of line: WindowRecorder is complete in experiment.cc.

    sim::EventQueue queue;
    /// Present only when config.engine.threads >= 1. Declared right
    /// after the queue (its central domain) so everything that binds
    /// shard queues — disk, obs lanes — is destroyed first.
    std::unique_ptr<sim::ShardedEngine> engine;
    std::unique_ptr<obs::Session> obs;
    std::unique_ptr<alloc::Allocator> allocator;
    std::unique_ptr<disk::DiskSystem> disk;
    std::unique_ptr<fs::ReadOptimizedFs> fs;
    std::unique_ptr<workload::OpGenerator> gen;
    /// Windowed-metrics capture; created by the first Measure that needs
    /// it (self-rescheduling tick events keep a pointer to it, so it
    /// lives with the Sim, not the measurement).
    std::unique_ptr<WindowRecorder> window;
  };

  /// Creates the disk/allocator/fs/generator and the initial files, and
  /// fills the disk into the measurement band when `fill` is set.
  StatusOr<std::unique_ptr<Sim>> Setup(workload::OpMode mode, bool fill);

  /// Advances the simulation to `until` through whichever engine the run
  /// uses; returns events dispatched.
  static uint64_t RunSim(Sim* sim, sim::TimeMs until);

  /// Fills the capacity metrics shared by both result kinds.
  void FillCapacity(Sim* sim, uint64_t* users_peak, uint64_t* events_peak,
                    uint64_t* wheel_peak) const;

  /// Runs the measurement loop of a performance test in the given mode.
  PerfResult Measure(Sim* sim, workload::OpMode mode);

  /// Folds end-of-run component statistics into the obs registry and
  /// snapshots it into `out` (no-op unless --metrics).
  void SnapshotObs(Sim* sim,
                   std::vector<std::pair<std::string, double>>* out);

  /// Hands the run's trace buffer to the global collector (no-op unless
  /// tracing).
  void FinishObs(Sim* sim);

  workload::WorkloadSpec workload_;
  AllocatorFactory factory_;
  disk::DiskSystemConfig disk_config_;
  ExperimentConfig config_;
  std::function<void(workload::OpGenerator*)> instrument_;
  std::string* stats_sink_ = nullptr;
};

}  // namespace rofs::exp

#endif  // ROFS_EXP_EXPERIMENT_H_
