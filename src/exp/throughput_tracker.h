#ifndef ROFS_EXP_THROUGHPUT_TRACKER_H_
#define ROFS_EXP_THROUGHPUT_TRACKER_H_

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace rofs::exp {

/// Accumulates logical bytes moved and computes throughput as a fraction
/// of the disk system's maximum sequential bandwidth, sampled on a fixed
/// interval; detects the paper's stabilization condition ("the throughput
/// calculation for 3 consecutive 10 second intervals are within .1% of
/// each other").
///
/// The sampled statistic is the cumulative utilization since measurement
/// start, which converges to the steady-state value; the tolerance is in
/// absolute percentage points and configurable (benches trade the paper's
/// 0.1% for a faster 0.25% + time cap; see DESIGN.md).
class ThroughputTracker {
 public:
  /// `max_bandwidth` in bytes/ms; `sample_interval` in ms.
  ThroughputTracker(double max_bandwidth_bytes_per_ms,
                    double sample_interval_ms, double tolerance_pp,
                    int required_stable_samples);

  /// Begins (or restarts) measurement at simulated time `now`.
  void Start(sim::TimeMs now);

  /// Records an operation that moved `bytes`, completing at `completion`.
  void Record(uint64_t bytes, sim::TimeMs completion);

  /// Takes a sample at time `now` (call on interval boundaries). Returns
  /// the cumulative utilization in [0,1].
  double Sample(sim::TimeMs now);

  /// True once `required_stable_samples` consecutive samples agree within
  /// the tolerance.
  bool Stabilized() const;

  /// Cumulative utilization in [0,1] at time `now`.
  double CumulativeUtilization(sim::TimeMs now) const;

  sim::TimeMs NextSampleTime() const { return next_sample_; }
  double sample_interval_ms() const { return sample_interval_; }
  uint64_t bytes_moved() const { return bytes_; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  double max_bw_;
  double sample_interval_;
  double tolerance_;  // Fraction (percentage points / 100).
  int required_;
  sim::TimeMs start_ = 0;
  sim::TimeMs next_sample_ = 0;
  uint64_t bytes_ = 0;
  std::vector<double> samples_;
};

}  // namespace rofs::exp

#endif  // ROFS_EXP_THROUGHPUT_TRACKER_H_
