#include "exp/reporting.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/table.h"

namespace rofs::exp {

std::string Pct(double fraction) {
  return FormatString("%.1f%%", fraction * 100.0);
}

void PrintBanner(const std::string& title, const std::string& paper_item,
                 const disk::DiskSystemConfig& disk_config) {
  disk::DiskSystem disk(disk_config);
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s of Seltzer & Stonebraker, \"Read Optimized File "
              "System Designs\" (ICDE 1991)\n",
              paper_item.c_str());
  std::printf("Disk system: %s\n", disk.DescribeConfig().c_str());
  std::printf("==============================================================="
              "=\n\n");
}

std::string Summarize(const AllocationResult& r) {
  return FormatString(
      "internal=%s external=%s util=%s extents/file=%.1f ops=%llu",
      Pct(r.internal_fragmentation).c_str(),
      Pct(r.external_fragmentation).c_str(), Pct(r.utilization).c_str(),
      r.avg_extents_per_file, static_cast<unsigned long long>(r.ops_executed));
}

std::string Summarize(const PerfResult& r) {
  return FormatString(
      "throughput=%s%s measured=%.0fs ops=%llu lat=%.1fms extents/file=%.1f",
      Pct(r.utilization_of_max).c_str(), r.stabilized ? "" : " (cap)",
      r.measured_ms / 1000.0, static_cast<unsigned long long>(r.ops_executed),
      r.mean_op_latency_ms, r.avg_extents_per_file);
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_err = std::fclose(f);
  if (written != content.size() || close_err != 0) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteJsonl(const std::string& path,
                  const std::vector<RunRecord>& records) {
  return WriteTextFile(path, RecordsToJsonl(records));
}

Status WriteCsv(const std::string& path,
                const std::vector<RunRecord>& records) {
  return WriteTextFile(path, RecordsToCsv(records));
}

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<RunRecord>& records) {
  const std::string csv = SeriesToCsv(records);
  if (csv.empty()) return Status::OK();
  return WriteTextFile(path, csv);
}

std::string SummaryTable(const std::map<std::string, stats::Summary>& m) {
  Table table({"Metric", "Mean", "±CI", "Min", "Max"});
  for (const auto& [name, s] : m) {
    table.AddRow({name, FormatString("%.6g", s.mean),
                  s.count >= 2 ? FormatString("%.3g", s.ci_half_width)
                               : std::string("-"),
                  FormatString("%.6g", s.min),
                  FormatString("%.6g", s.max)});
  }
  return table.ToString();
}

std::string LayoutAsciiMap(const fs::ReadOptimizedFs& fs, size_t width) {
  if (width == 0) return "";
  const uint64_t total = fs.allocator().total_du();
  std::vector<uint64_t> used(width, 0);
  const double scale = static_cast<double>(width) / static_cast<double>(total);
  for (size_t i = 0; i < fs.num_files(); ++i) {
    const fs::File& f = fs.file(i);
    if (!f.exists) continue;
    for (const alloc::Extent& e : f.alloc.extents) {
      // Distribute the extent's units across the buckets it overlaps.
      uint64_t pos = e.start_du;
      uint64_t left = e.length_du;
      while (left > 0) {
        const size_t bucket = std::min<size_t>(
            width - 1, static_cast<size_t>(pos * scale));
        const uint64_t bucket_end = static_cast<uint64_t>(
            static_cast<double>(bucket + 1) / scale);
        const uint64_t in_bucket =
            std::min(left, bucket_end > pos ? bucket_end - pos : 1);
        used[bucket] += in_bucket;
        pos += in_bucket;
        left -= in_bucket;
      }
    }
  }
  const double bucket_du = static_cast<double>(total) / width;
  std::string out;
  out.reserve(width + 2);
  out += '|';
  for (size_t b = 0; b < width; ++b) {
    const double fullness = static_cast<double>(used[b]) / bucket_du;
    const char* levels = " .:+#";
    // Any occupancy at all renders as at least '.'.
    int idx = used[b] == 0 ? 0
                           : std::max(1, static_cast<int>(fullness * 4.0 +
                                                          0.5));
    if (idx > 4) idx = 4;
    out += levels[idx];
  }
  out += '|';
  return out;
}

}  // namespace rofs::exp
