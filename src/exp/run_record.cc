#include "exp/run_record.h"

#include <charconv>
#include <cstdio>
#include <set>

namespace rofs::exp {

namespace {

/// Shortest decimal that round-trips to the same double (std::to_chars),
/// locale-independent and byte-deterministic.
std::string DoubleToString(double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += hex;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendCsvEscaped(std::string* out, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

double RunRecord::Get(const std::string& name, double fallback) const {
  const auto it = metrics.find(name);
  return it == metrics.end() ? fallback : it->second;
}

bool RunRecord::Has(const std::string& name) const {
  return metrics.count(name) != 0;
}

void RunRecord::MergeMetrics(const RunRecord& other,
                             const std::string& prefix) {
  for (const auto& [name, value] : other.metrics) {
    metrics[prefix + name] = value;
  }
  for (const auto& [key, value] : other.tags) {
    tags.emplace(key, value);  // Existing keys win.
  }
  // A composed cell adopts the first series it sees, with its columns
  // carrying the same prefix as the metrics they accompany.
  if (series.empty() && !other.series.empty()) {
    series = other.series;
    if (!prefix.empty()) series.PrefixColumns(prefix);
  }
}

std::string RunRecord::ToJson() const {
  std::string out;
  out.reserve(256);
  out += "{\"experiment\":";
  AppendJsonEscaped(&out, experiment);
  out += ",\"cell\":";
  AppendJsonEscaped(&out, cell);
  out += ",\"replicate\":" + std::to_string(replicate);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"tags\":{";
  bool first = true;
  for (const auto& [key, value] : tags) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonEscaped(&out, key);
    out.push_back(':');
    AppendJsonEscaped(&out, value);
  }
  out += "},\"metrics\":{";
  first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonEscaped(&out, name);
    out.push_back(':');
    out += DoubleToString(value);
  }
  out += "}";
  if (!series.empty()) {
    out += ",\"series\":{\"t_ms\":[";
    for (size_t i = 0; i < series.rows(); ++i) {
      if (i > 0) out.push_back(',');
      out += DoubleToString(series.times()[i]);
    }
    out += "],\"cols\":{";
    for (size_t c = 0; c < series.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      AppendJsonEscaped(&out, series.column_name(c));
      out += ":[";
      const std::vector<double>& col = series.column(c);
      for (size_t i = 0; i < col.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += DoubleToString(col[i]);
      }
      out.push_back(']');
    }
    out += "}}";
  }
  out += "}";
  return out;
}

std::string RecordsToJsonl(const std::vector<RunRecord>& records) {
  std::string out;
  for (const RunRecord& r : records) {
    out += r.ToJson();
    out.push_back('\n');
  }
  return out;
}

std::string RecordsToCsv(const std::vector<RunRecord>& records) {
  std::set<std::string> tag_keys;
  std::set<std::string> metric_keys;
  for (const RunRecord& r : records) {
    for (const auto& [key, value] : r.tags) tag_keys.insert(key);
    for (const auto& [name, value] : r.metrics) metric_keys.insert(name);
  }
  std::string out = "experiment,cell,replicate,seed";
  for (const std::string& key : tag_keys) {
    out.push_back(',');
    AppendCsvEscaped(&out, "tag." + key);
  }
  for (const std::string& name : metric_keys) {
    out.push_back(',');
    AppendCsvEscaped(&out, name);
  }
  out.push_back('\n');
  for (const RunRecord& r : records) {
    AppendCsvEscaped(&out, r.experiment);
    out.push_back(',');
    AppendCsvEscaped(&out, r.cell);
    out += ',' + std::to_string(r.replicate);
    out += ',' + std::to_string(r.seed);
    for (const std::string& key : tag_keys) {
      out.push_back(',');
      const auto it = r.tags.find(key);
      if (it != r.tags.end()) AppendCsvEscaped(&out, it->second);
    }
    for (const std::string& name : metric_keys) {
      out.push_back(',');
      const auto it = r.metrics.find(name);
      if (it != r.metrics.end()) out += DoubleToString(it->second);
    }
    out.push_back('\n');
  }
  return out;
}

std::string SeriesToCsv(const std::vector<RunRecord>& records) {
  std::set<std::string> columns;
  for (const RunRecord& r : records) {
    for (size_t c = 0; c < r.series.num_columns(); ++c) {
      columns.insert(r.series.column_name(c));
    }
  }
  if (columns.empty()) return "";
  std::string out = "experiment,cell,replicate,seed,t_ms";
  for (const std::string& name : columns) {
    out.push_back(',');
    AppendCsvEscaped(&out, name);
  }
  out.push_back('\n');
  for (const RunRecord& r : records) {
    for (size_t i = 0; i < r.series.rows(); ++i) {
      AppendCsvEscaped(&out, r.experiment);
      out.push_back(',');
      AppendCsvEscaped(&out, r.cell);
      out += ',' + std::to_string(r.replicate);
      out += ',' + std::to_string(r.seed);
      out += ',' + DoubleToString(r.series.times()[i]);
      for (const std::string& name : columns) {
        out.push_back(',');
        const std::vector<double>* col = r.series.Find(name);
        if (col != nullptr) out += DoubleToString((*col)[i]);
      }
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace rofs::exp
