#include "exp/experiment.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "exp/throughput_tracker.h"
#include "obs/trace_writer.h"
#include "runner/thread_pool.h"
#include "stats/steady.h"

namespace rofs::exp {

/// Samples cumulative component counters every `window_ms` of simulated
/// time through a self-rescheduling central event and appends the
/// per-window deltas to a WindowSeries. Every sampled value is simulation
/// state read on the central thread at a deterministic event time, so the
/// series is byte-identical across --jobs and --sim-threads counts.
/// The epoch invalidates ticks left in the heap by an earlier
/// measurement (a performance pair measures twice on one queue).
struct WindowRecorder {
  WindowRecorder(sim::EventQueue* q, workload::OpGenerator* g,
                 fs::ReadOptimizedFs* f, disk::DiskSystem* d,
                 obs::SimTracer* t, double window)
      : queue(q), gen(g), fs(f), disk(d), tracer(t), window_ms(window) {
    for (const char* name :
         {"ops", "lat_count", "lat_sum_ms", "read_du", "write_du",
          "disk_busy_ms", "disk_accesses", "disk_queue_wait_ms",
          "cache_hits", "cache_misses"}) {
      series.AddColumn(name);
    }
  }

  void CaptureRaw(std::vector<double>* out) const {
    out->clear();
    out->push_back(static_cast<double>(gen->ops_executed()));
    out->push_back(static_cast<double>(tracer->op_latency_ms()->count()));
    out->push_back(tracer->op_latency_ms()->sum());
    out->push_back(static_cast<double>(fs->physical_read_du()));
    out->push_back(static_cast<double>(fs->physical_write_du()));
    double busy_ms = 0.0;
    double queue_wait_ms = 0.0;
    uint64_t accesses = 0;
    // Fixed per-disk order keeps the floating-point sums deterministic.
    for (uint32_t i = 0; i < disk->num_disks(); ++i) {
      const disk::Disk& d = disk->disk(i);
      busy_ms += d.busy_time_ms();
      queue_wait_ms += d.queue_wait_ms();
      accesses += d.accesses();
    }
    out->push_back(busy_ms);
    out->push_back(static_cast<double>(accesses));
    out->push_back(queue_wait_ms);
    const fs::BufferCache* cache = fs->cache();
    out->push_back(
        cache != nullptr ? static_cast<double>(cache->hits()) : 0.0);
    out->push_back(
        cache != nullptr ? static_cast<double>(cache->misses()) : 0.0);
  }

  void Start(sim::TimeMs now, size_t expected_rows) {
    ++epoch;
    active = true;
    series.ClearRows();
    series.Reserve(expected_rows);
    CaptureRaw(&prev);
    delta.reserve(prev.size());
    queue->Schedule(now + window_ms, [this, e = epoch] { Tick(e); });
  }

  void Tick(uint64_t tick_epoch) {
    if (!active || tick_epoch != epoch) return;
    CaptureRaw(&raw);
    delta.clear();
    for (size_t i = 0; i < raw.size(); ++i) {
      delta.push_back(raw[i] - prev[i]);
    }
    std::swap(prev, raw);
    series.Append(queue->now(), delta.data());
    queue->Schedule(queue->now() + window_ms, [this, e = epoch] { Tick(e); });
  }

  /// Any tick still in the heap becomes a no-op.
  void Stop() {
    active = false;
    ++epoch;
  }

  sim::EventQueue* queue;
  workload::OpGenerator* gen;
  fs::ReadOptimizedFs* fs;
  disk::DiskSystem* disk;
  obs::SimTracer* tracer;
  double window_ms;
  uint64_t epoch = 0;
  bool active = false;
  obs::WindowSeries series;
  std::vector<double> prev;
  std::vector<double> raw;
  std::vector<double> delta;
};

Experiment::Sim::Sim() = default;
Experiment::Sim::~Sim() = default;

namespace {

/// Oversubscription guard: `--jobs N` already runs N simulations in
/// parallel, so each run's shard gang is capped at hardware_concurrency
/// / jobs. Purely an execution decision — the simulation output is
/// byte-identical for any worker count — so the cap never perturbs
/// results, only keeps N x M runnable threads off a smaller machine.
int EffectiveEngineThreads(int requested) {
  if (requested <= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return requested;
  const int jobs = runner::ActiveJobs();
  int cap = static_cast<int>(hw) / (jobs < 1 ? 1 : jobs);
  if (cap < 1) cap = 1;
  if (requested <= cap) return requested;
  static std::once_flag warned;
  std::call_once(warned, [&] {
    std::fprintf(stderr,
                 "[sim] warning: threads = %d with %d runner jobs would "
                 "oversubscribe %u hardware threads; capping each run's "
                 "workers at %d\n",
                 requested, jobs, hw, cap);
  });
  return cap;
}

/// Shared metric names for the counters every allocation policy exposes.
void AllocatorStatsToRecord(const alloc::AllocatorStats& s, RunRecord* r) {
  r->Set("allocator.calls", static_cast<double>(s.alloc_calls));
  r->Set("allocator.blocks_allocated", static_cast<double>(s.blocks_allocated));
  r->Set("allocator.blocks_freed", static_cast<double>(s.blocks_freed));
  r->Set("allocator.splits", static_cast<double>(s.splits));
  r->Set("allocator.coalesces", static_cast<double>(s.coalesces));
  r->Set("allocator.failed_allocs", static_cast<double>(s.failed_allocs));
}

alloc::AllocatorStats AllocatorStatsFromRecord(const RunRecord& r) {
  alloc::AllocatorStats s;
  s.alloc_calls = static_cast<uint64_t>(r.Get("allocator.calls"));
  s.blocks_allocated =
      static_cast<uint64_t>(r.Get("allocator.blocks_allocated"));
  s.blocks_freed = static_cast<uint64_t>(r.Get("allocator.blocks_freed"));
  s.splits = static_cast<uint64_t>(r.Get("allocator.splits"));
  s.coalesces = static_cast<uint64_t>(r.Get("allocator.coalesces"));
  s.failed_allocs = static_cast<uint64_t>(r.Get("allocator.failed_allocs"));
  return s;
}

}  // namespace

Status ExperimentConfig::Validate() const {
  if (!(fill_lower > 0.0 && fill_lower <= fill_upper && fill_upper <= 1.0)) {
    return Status::InvalidArgument(
        "fill band must satisfy 0 < fill_lower <= fill_upper <= 1");
  }
  if (sample_interval_ms <= 0.0) {
    return Status::InvalidArgument("sample_interval_ms must be positive");
  }
  if (stable_tolerance_pp < 0.0) {
    return Status::InvalidArgument(
        "stable_tolerance_pp must be non-negative");
  }
  if (stable_samples < 1) {
    return Status::InvalidArgument("stable_samples must be >= 1");
  }
  if (warmup_ms < 0.0) {
    return Status::InvalidArgument("warmup_ms must be non-negative");
  }
  if (min_measure_ms <= 0.0 || max_measure_ms < min_measure_ms) {
    return Status::InvalidArgument(
        "measurement window must satisfy 0 < min_measure_ms <= "
        "max_measure_ms");
  }
  if (seq_min_measure_ms <= 0.0 ||
      seq_max_measure_ms < seq_min_measure_ms) {
    return Status::InvalidArgument(
        "sequential window must satisfy 0 < seq_min_measure_ms <= "
        "seq_max_measure_ms");
  }
  if (!(alloc_full_utilization > 0.0 && alloc_full_utilization <= 1.0)) {
    return Status::InvalidArgument(
        "alloc_full_utilization must be in (0, 1]");
  }
  if (max_alloc_test_ops == 0) {
    return Status::InvalidArgument("max_alloc_test_ops must be positive");
  }
  if (seed == 0) {
    return Status::InvalidArgument(
        "seed must be non-zero (replicate streams derive from it)");
  }
  if (obs.trace && obs.trace_events == 0) {
    return Status::InvalidArgument(
        "obs.trace_events must be positive when tracing is on");
  }
  if (obs.window_ms < 0.0) {
    return Status::InvalidArgument("obs.window_ms must be non-negative");
  }
  if (fs_options.cache_bytes > 0 && fs_options.cache_page_bytes == 0) {
    return Status::InvalidArgument(
        "cache_page_bytes must be positive when the cache is enabled");
  }
  if (fs_options.readahead_pages > 0 && fs_options.cache_bytes == 0) {
    return Status::InvalidArgument(
        "readahead_pages requires the buffer cache ([fs] cache > 0)");
  }
  if (fs_options.writeback_dirty_max > 0 && fs_options.cache_bytes == 0) {
    return Status::InvalidArgument(
        "writeback_dirty_max requires the buffer cache ([fs] cache > 0)");
  }
  {
    const Status policy = fs_options.cache_policy.Validate();
    if (!policy.ok()) return policy;
  }
  if (engine.threads < 0) {
    return Status::InvalidArgument("sim threads must be >= 0");
  }
  if (!(engine.wheel_tick_ms > 0.0)) {
    return Status::InvalidArgument("sim wheel_tick must be positive");
  }
  return Status::OK();
}

RunRecord AllocationResult::ToRecord() const {
  RunRecord r;
  r.tags["result_kind"] = "allocation";
  r.Set("internal_frag", internal_fragmentation);
  r.Set("external_frag", external_fragmentation);
  r.Set("utilization", utilization);
  r.Set("extents_per_file", avg_extents_per_file);
  r.Set("ops", static_cast<double>(ops_executed));
  r.Set("simulated_ms", simulated_ms);
  r.Set("sim.users.peak", static_cast<double>(users_peak));
  r.Set("sim.events.peak", static_cast<double>(events_peak));
  r.Set("sim.wheel.peak", static_cast<double>(wheel_peak));
  AllocatorStatsToRecord(alloc_stats, &r);
  for (const auto& [name, value] : obs_metrics) r.Set("obs." + name, value);
  return r;
}

AllocationResult AllocationResult::FromRecord(const RunRecord& record) {
  // obs.* metrics are intentionally not recovered: they are observability
  // output, not part of the typed result, and stay in the record.
  AllocationResult a;
  a.internal_fragmentation = record.Get("internal_frag");
  a.external_fragmentation = record.Get("external_frag");
  a.utilization = record.Get("utilization");
  a.avg_extents_per_file = record.Get("extents_per_file");
  a.ops_executed = static_cast<uint64_t>(record.Get("ops"));
  a.simulated_ms = record.Get("simulated_ms");
  a.users_peak = static_cast<uint64_t>(record.Get("sim.users.peak"));
  a.events_peak = static_cast<uint64_t>(record.Get("sim.events.peak"));
  a.wheel_peak = static_cast<uint64_t>(record.Get("sim.wheel.peak"));
  a.alloc_stats = AllocatorStatsFromRecord(record);
  return a;
}

RunRecord PerfResult::ToRecord() const {
  RunRecord r;
  r.tags["result_kind"] = "perf";
  r.Set("throughput_of_max", utilization_of_max);
  r.Set("stabilized", stabilized ? 1.0 : 0.0);
  r.Set("measured_ms", measured_ms);
  r.Set("ops", static_cast<double>(ops_executed));
  r.Set("bytes_moved", static_cast<double>(bytes_moved));
  r.Set("disk_full_events", static_cast<double>(disk_full_events));
  r.Set("extents_per_file", avg_extents_per_file);
  r.Set("internal_frag", internal_fragmentation);
  r.Set("mean_op_latency_ms", mean_op_latency_ms);
  if (open_loop) {
    r.Set("open.offered_ops", static_cast<double>(offered_ops));
    r.Set("open.completed_ops", static_cast<double>(completed_ops));
    r.Set("open.pending_peak", static_cast<double>(pending_peak));
  }
  r.Set("sim.users.peak", static_cast<double>(users_peak));
  r.Set("sim.events.peak", static_cast<double>(events_peak));
  r.Set("sim.wheel.peak", static_cast<double>(wheel_peak));
  AllocatorStatsToRecord(alloc_stats, &r);
  for (const auto& [name, value] : obs_metrics) r.Set("obs." + name, value);
  r.series = series;
  return r;
}

PerfResult PerfResult::FromRecord(const RunRecord& record) {
  // obs.* metrics are intentionally not recovered (see AllocationResult).
  PerfResult p;
  p.utilization_of_max = record.Get("throughput_of_max");
  p.stabilized = record.Get("stabilized") != 0.0;
  p.measured_ms = record.Get("measured_ms");
  p.ops_executed = static_cast<uint64_t>(record.Get("ops"));
  p.bytes_moved = static_cast<uint64_t>(record.Get("bytes_moved"));
  p.disk_full_events =
      static_cast<uint64_t>(record.Get("disk_full_events"));
  p.avg_extents_per_file = record.Get("extents_per_file");
  p.internal_fragmentation = record.Get("internal_frag");
  p.mean_op_latency_ms = record.Get("mean_op_latency_ms");
  p.open_loop = record.Has("open.offered_ops");
  p.offered_ops = static_cast<uint64_t>(record.Get("open.offered_ops"));
  p.completed_ops = static_cast<uint64_t>(record.Get("open.completed_ops"));
  p.pending_peak = static_cast<uint64_t>(record.Get("open.pending_peak"));
  p.users_peak = static_cast<uint64_t>(record.Get("sim.users.peak"));
  p.events_peak = static_cast<uint64_t>(record.Get("sim.events.peak"));
  p.wheel_peak = static_cast<uint64_t>(record.Get("sim.wheel.peak"));
  p.alloc_stats = AllocatorStatsFromRecord(record);
  return p;
}

Experiment::Experiment(workload::WorkloadSpec workload,
                       AllocatorFactory factory,
                       disk::DiskSystemConfig disk_config,
                       ExperimentConfig config)
    : workload_(std::move(workload)), factory_(std::move(factory)),
      disk_config_(disk_config), config_(config) {}

StatusOr<std::unique_ptr<Experiment::Sim>> Experiment::Setup(
    workload::OpMode mode, bool fill) {
  ROFS_RETURN_IF_ERROR(config_.Validate());
  // The scheduler spec lives in the disk config (it is per-disk-system
  // state); validate it here where every driver funnels through. Same for
  // the workload's arrival model and file-pick skew.
  ROFS_RETURN_IF_ERROR(disk_config_.scheduler.Validate());
  ROFS_RETURN_IF_ERROR(workload_.arrivals.Validate());
  if (workload_.zipf_theta < 0.0) {
    return Status::InvalidArgument("workload zipf_theta must be >= 0");
  }
  auto sim = std::make_unique<Sim>();
  sim->disk = std::make_unique<disk::DiskSystem>(disk_config_);
  if (config_.engine.threads >= 1) {
    // Sharded engine: one shard (local event queue) per drive, workers
    // capped by the oversubscription guard. The cap changes only which
    // thread runs a shard window, never the simulation's output.
    sim->engine = std::make_unique<sim::ShardedEngine>(
        &sim->queue, static_cast<uint32_t>(disk_config_.disks.size()),
        EffectiveEngineThreads(config_.engine.threads));
    sim->disk->BindSharded(sim->engine.get());
  } else {
    // Dispatch-driven disks: every request flows through the configured
    // per-disk scheduler and completes via an event-queue callback.
    sim->disk->BindQueue(&sim->queue);
  }
  sim->allocator = factory_(sim->disk->capacity_du());
  sim->fs = std::make_unique<fs::ReadOptimizedFs>(
      sim->allocator.get(), sim->disk.get(), config_.fs_options);
  // Initialization and filling are instantaneous: measurement starts only
  // once the system is in the target band.
  sim->fs->set_io_enabled(false);
  workload::OpGeneratorOptions options;
  options.mode = mode;
  // Allocation tests must be allowed to drive the disk to failure; only
  // fill and measurement phases clamp utilization at the upper bound M.
  options.upper_bound_util = fill ? config_.fill_upper : 2.0;
  options.seed = config_.seed;
  // Reordering schedulers cannot report completion times at issue; the
  // generator must account for operations in completion callbacks.
  options.async = !sim->disk->predictable();
  options.timer_wheel = config_.engine.timer_wheel;
  options.wheel_tick_ms = config_.engine.wheel_tick_ms;
  sim->gen = std::make_unique<workload::OpGenerator>(
      &workload_, sim->fs.get(), &sim->queue, options);
  if (instrument_) instrument_(sim->gen.get());

  if (config_.obs.enabled()) {
    sim->obs =
        std::make_unique<obs::Session>(config_.obs, sim->queue.now_ptr());
    obs::SimTracer* tracer = sim->obs->tracer();
    sim->queue.set_tracer(tracer);
    if (sim->engine != nullptr) {
      // Sharded runs record disk events through per-shard lanes —
      // isolated registries/buffers behind that shard's clock — so
      // worker threads never touch shared recording state. Snapshots
      // merge the lanes by name, which is order-independent.
      for (uint32_t i = 0; i < sim->disk->num_disks(); ++i) {
        sim::EventQueue* shard =
            sim->engine->shard_queue(i % sim->engine->num_shards());
        sim->disk->set_disk_tracer(i, sim->obs->AddLane(shard->now_ptr()));
      }
    } else {
      sim->disk->set_tracer(tracer);
    }
    sim->allocator->set_tracer(tracer);
    sim->fs->set_tracer(tracer);
    // Per-op latency attribution: the generator opens/folds the ledgers;
    // the fs retargets around metadata, flush, and readahead I/O; the
    // disk system charges each access. All of it runs on the central
    // thread (sync issue stacks and effect-commit completions).
    obs::OpAttribution* attr = sim->obs->attribution();
    sim->disk->set_attribution(attr);
    sim->fs->set_attribution(attr);
    sim->gen->set_attribution(attr);
    // Chain onto whatever sink instrument_ installed (e.g. an OpTrace),
    // after it ran, so both observers see every executed op. The tracer
    // stays disarmed until a test's interesting phase begins.
    auto prev = std::move(sim->gen->on_op);
    sim->gen->on_op = [tracer, prev = std::move(prev)](
                          const workload::OpRecord& r) {
      if (prev) prev(r);
      tracer->Op(static_cast<obs::OpEvent>(r.op), r.issued, r.completed,
                 r.bytes);
    };
  }

  const Status init = sim->gen->CreateInitialFiles();
  if (!init.ok() && !fill) {
    // Allocation tests may legitimately fill the disk during
    // initialization; the caller inspects utilization.
    return sim;
  }
  ROFS_RETURN_IF_ERROR(init);

  sim->gen->ScheduleUserStreams();

  if (fill) {
    // Age the layout with growth-biased churn until the utilization band
    // is reached (the paper's lower bound N).
    sim->gen->set_mode(workload::OpMode::kFill);
    const double chunk = 10 * config_.sample_interval_ms;
    double best_util = -1.0;
    int stalled = 0;
    while (sim->fs->SpaceUtilization() < config_.fill_lower) {
      RunSim(sim.get(), sim->queue.now() + chunk);
      const double util = sim->fs->SpaceUtilization();
      if (util - best_util < 5e-4) {
        // A policy whose external fragmentation keeps it from ever
        // reaching the band (e.g. Koch buddy, Table 3) measures at the
        // utilization it can sustain.
        if (++stalled > 20) break;
      } else {
        stalled = 0;
        best_util = std::max(best_util, util);
      }
    }
  }
  return sim;
}

uint64_t Experiment::RunSim(Sim* sim, sim::TimeMs until) {
  return sim->engine != nullptr ? sim->engine->RunUntil(until)
                                : sim->queue.RunUntil(until);
}

void Experiment::FillCapacity(Sim* sim, uint64_t* users_peak,
                              uint64_t* events_peak,
                              uint64_t* wheel_peak) const {
  uint64_t users = 0;
  for (const workload::FileTypeSpec& t : workload_.types) {
    users += t.num_users;
  }
  *users_peak = users;
  *events_peak = sim->engine != nullptr
                     ? sim->engine->total_max_heap_depth()
                     : sim->queue.max_heap_depth();
  const sim::TimerWheel* wheel = sim->gen->wheel();
  *wheel_peak = wheel != nullptr ? wheel->peak_size() : 0;
}

PerfResult Experiment::Measure(Sim* sim, workload::OpMode mode) {
  sim->gen->set_mode(mode);
  sim->gen->set_upper_bound_util(config_.fill_upper);
  sim->fs->set_io_enabled(true);
  // Open-loop workloads switch to arrival-time injection here — after the
  // closed-loop fill aged the layout — so the disk queues feel the offered
  // load through warm-up and measurement. Idempotent across the sequential
  // half of a performance pair.
  if (workload_.arrivals.open()) {
    sim->gen->StartOpenLoop(workload_.arrivals);
  }

  const bool sequential = mode == workload::OpMode::kSequential;
  const double min_measure =
      sequential ? config_.seq_min_measure_ms : config_.min_measure_ms;
  const double max_measure =
      sequential ? config_.seq_max_measure_ms : config_.max_measure_ms;

  // Shared ownership: operations still in flight when this measurement
  // ends keep a reference to their tracker (see OpGenerator).
  auto tracker = std::make_shared<ThroughputTracker>(
      sim->disk->MaxSequentialBandwidthBytesPerMs(),
      config_.sample_interval_ms, config_.stable_tolerance_pp,
      config_.stable_samples);
  sim->gen->on_bytes_moved = [tracker](uint64_t bytes, sim::TimeMs done) {
    tracker->Record(bytes, done);
  };

  // Warm up the disk queues in the measured mode, then measure.
  RunSim(sim, sim->queue.now() + config_.warmup_ms);
  const uint64_t disk_full_before = sim->gen->disk_full_count();
  const uint64_t offered_before = sim->gen->open_offered();
  const uint64_t completed_before = sim->gen->open_completed();
  sim->gen->ResetStats();
  // Recording starts with the measurement window (stays armed across the
  // sequential half of a performance pair).
  if (sim->obs != nullptr) sim->obs->ArmAll();
  tracker->Start(sim->queue.now());
  const sim::TimeMs start = sim->queue.now();
  WindowRecorder* windows = nullptr;
  if (sim->obs != nullptr && config_.obs.window_ms > 0) {
    if (sim->window == nullptr) {
      sim->window = std::make_unique<WindowRecorder>(
          &sim->queue, sim->gen.get(), sim->fs.get(), sim->disk.get(),
          sim->obs->tracer(), config_.obs.window_ms);
    }
    windows = sim->window.get();
    windows->Start(start, static_cast<size_t>(
                              max_measure / config_.obs.window_ms) +
                              2);
  }

  double util = 0.0;
  while (true) {
    const sim::TimeMs t = tracker->NextSampleTime();
    RunSim(sim, t);
    util = tracker->Sample(t);
    const double elapsed = t - start;
    if (elapsed >= min_measure && tracker->Stabilized()) break;
    if (elapsed >= max_measure) break;
  }

  // Write-back mode: flush the buffered dirty pages inside the measured
  // window so a policy cannot look cheap by deferring its writes past the
  // end of the measurement. No-op without write-back buffering.
  sim->gen->FlushWriteBack(sim->queue.now());

  PerfResult result;
  if (windows != nullptr) {
    windows->Stop();
    result.series = windows->series;
    // Steady-state onset: the first window whose ops-per-window block
    // mean is statistically indistinguishable (overlapping Student-t
    // CIs) from the following block; -1 when the series never settles.
    const std::vector<double>* ops = windows->series.Find("ops");
    const int steady =
        ops != nullptr
            ? stats::DetectSteadyWindow(
                  *ops, stats::SteadyBlockLength(ops->size()))
            : -1;
    sim->obs->registry()
        .AddGauge("steady.window")
        ->Set(static_cast<double>(steady));
  }
  result.utilization_of_max = util;
  result.stabilized = tracker->Stabilized();
  result.measured_ms = sim->queue.now() - start;
  result.ops_executed = sim->gen->ops_executed();
  result.bytes_moved = tracker->bytes_moved();
  result.disk_full_events = sim->gen->disk_full_count() - disk_full_before;
  result.avg_extents_per_file = sim->fs->AverageExtentsPerFile();
  result.internal_fragmentation = sim->fs->InternalFragmentation();
  result.mean_op_latency_ms = sim->gen->op_latency_ms().Mean();
  if (sim->gen->open_loop()) {
    result.open_loop = true;
    result.offered_ops = sim->gen->open_offered() - offered_before;
    result.completed_ops = sim->gen->open_completed() - completed_before;
    result.pending_peak = sim->gen->open_pending_peak();
  }
  result.alloc_stats = sim->allocator->stats();
  FillCapacity(sim, &result.users_peak, &result.events_peak,
               &result.wheel_peak);
  SnapshotObs(sim, &result.obs_metrics);
  if (stats_sink_ != nullptr && mode == workload::OpMode::kApplication) {
    *stats_sink_ = sim->gen->StatsReport();
  }
  sim->gen->on_bytes_moved = nullptr;
  return result;
}

void Experiment::SnapshotObs(
    Sim* sim, std::vector<std::pair<std::string, double>>* out) {
  if (sim->obs == nullptr || !sim->obs->options().metrics) return;
  obs::Registry& reg = sim->obs->registry();
  // End-of-run gauges folded from the components' own counters. Every
  // value derives from simulation state, never wall clock, so snapshots
  // are identical however many runner jobs executed the sweep.
  if (sim->engine != nullptr) {
    reg.AddGauge("sim.events_dispatched")
        ->Set(static_cast<double>(sim->engine->total_dispatched()));
    reg.AddGauge("sim.max_heap_depth")
        ->Set(static_cast<double>(sim->engine->total_max_heap_depth()));
    reg.AddGauge("sim.engine.windows")
        ->Set(static_cast<double>(sim->engine->windows()));
    reg.AddGauge("sim.engine.effects")
        ->Set(static_cast<double>(sim->engine->effects_committed()));
  } else {
    reg.AddGauge("sim.events_dispatched")
        ->Set(static_cast<double>(sim->queue.dispatched()));
    reg.AddGauge("sim.max_heap_depth")
        ->Set(static_cast<double>(sim->queue.max_heap_depth()));
  }
  if (const sim::TimerWheel* wheel = sim->gen->wheel()) {
    reg.AddGauge("sim.wheel.peak")
        ->Set(static_cast<double>(wheel->peak_size()));
  }
  double seek_ms = 0, rotation_ms = 0, transfer_ms = 0, busy_ms = 0;
  uint64_t seeks = 0, accesses = 0, bytes = 0;
  for (uint32_t i = 0; i < sim->disk->num_disks(); ++i) {
    const disk::Disk& d = sim->disk->disk(i);
    seek_ms += d.seek_time_ms();
    rotation_ms += d.rotation_time_ms();
    transfer_ms += d.transfer_time_ms();
    busy_ms += d.busy_time_ms();
    seeks += d.seeks();
    accesses += d.accesses();
    bytes += d.bytes_transferred();
  }
  reg.AddGauge("disk.seek_ms")->Set(seek_ms);
  reg.AddGauge("disk.rotation_ms")->Set(rotation_ms);
  reg.AddGauge("disk.transfer_ms")->Set(transfer_ms);
  reg.AddGauge("disk.busy_ms")->Set(busy_ms);
  reg.AddGauge("disk.seeks")->Set(static_cast<double>(seeks));
  reg.AddGauge("disk.accesses")->Set(static_cast<double>(accesses));
  reg.AddGauge("disk.bytes")->Set(static_cast<double>(bytes));
  uint64_t dispatches = 0, reorders = 0, depth_sum = 0;
  Histogram seek_cyl;
  for (uint32_t i = 0; i < sim->disk->num_disks(); ++i) {
    const disk::Disk& d = sim->disk->disk(i);
    dispatches += d.dispatches();
    reorders += d.reorders();
    depth_sum += static_cast<uint64_t>(d.mean_dispatch_queue_depth() *
                                           static_cast<double>(d.dispatches()) +
                                       0.5);
    seek_cyl.Merge(d.dispatch_seek_cylinders());
  }
  reg.AddGauge("disk.sched.dispatches")
      ->Set(static_cast<double>(dispatches));
  reg.AddGauge("disk.sched.reorders")->Set(static_cast<double>(reorders));
  reg.AddGauge("disk.sched.mean_queue_depth")
      ->Set(dispatches == 0 ? 0.0
                            : static_cast<double>(depth_sum) /
                                  static_cast<double>(dispatches));
  reg.AddGauge("disk.sched.seek_cylinders.mean")
      ->Set(seek_cyl.count() == 0 ? 0.0 : seek_cyl.Mean());
  reg.AddGauge("disk.sched.seek_cylinders.p95")
      ->Set(seek_cyl.count() == 0 ? 0.0 : seek_cyl.Percentile(95));
  if (const fs::BufferCache* cache = sim->fs->cache()) {
    reg.AddGauge("cache.hits")->Set(static_cast<double>(cache->hits()));
    reg.AddGauge("cache.misses")->Set(static_cast<double>(cache->misses()));
    reg.AddGauge("cache.evictions")
        ->Set(static_cast<double>(cache->evictions()));
    reg.AddGauge("cache.requests")
        ->Set(static_cast<double>(cache->requests()));
    reg.AddGauge("cache.hit_rate")->Set(cache->HitRate());
    reg.AddGauge("cache.policy")
        ->Set(static_cast<double>(cache->policy_kind()));
    reg.AddGauge("cache.prefetch.issued")
        ->Set(static_cast<double>(cache->prefetch_issued()));
    reg.AddGauge("cache.prefetch.hits")
        ->Set(static_cast<double>(cache->prefetch_hits()));
    reg.AddGauge("cache.writeback.dirty")
        ->Set(static_cast<double>(cache->dirty_pages()));
    reg.AddGauge("cache.writeback.flushed")
        ->Set(static_cast<double>(cache->flushed_pages()));
  }
  reg.AddGauge("fs.physical_read_du")
      ->Set(static_cast<double>(sim->fs->physical_read_du()));
  reg.AddGauge("fs.prefetch_read_du")
      ->Set(static_cast<double>(sim->fs->prefetch_read_du()));
  reg.AddGauge("fs.physical_write_du")
      ->Set(static_cast<double>(sim->fs->physical_write_du()));
  if (sim->obs->options().trace) {
    reg.AddGauge("trace.dropped_spans")
        ->Set(static_cast<double>(sim->obs->DroppedSpans()));
  }
  out->clear();
  // Merges the per-shard lanes (sharded runs) with the main registry;
  // identical to reg.Snapshot(out) when there are none.
  sim->obs->Snapshot(out);
}

void Experiment::FinishObs(Sim* sim) {
  if (sim->obs == nullptr || sim->obs->buffer() == nullptr) return;
  sim->obs->FoldLaneTraces();
  obs::TraceCollector::Global().AddRun(sim->obs->TakeBuffer());
}

StatusOr<AllocationResult> Experiment::RunAllocationTest() {
  ROFS_ASSIGN_OR_RETURN(std::unique_ptr<Sim> sim,
                        Setup(workload::OpMode::kAllocation, /*fill=*/false));
  // Stop at the first allocation failure ("As soon as the first allocation
  // request fails, the external and internal fragmentation are computed").
  // The churn is growth-biased (kFill) so every configuration reliably
  // reaches the failure point; see DESIGN.md. Policies that can pack the
  // disk almost perfectly (tiny extents) are declared full at the
  // utilization cap instead — their external fragmentation is ~zero.
  if (sim->obs != nullptr) sim->obs->ArmAll();
  if (!sim->gen->hit_disk_full()) {
    sim->gen->set_mode(workload::OpMode::kFill);
    sim->gen->on_disk_full = [&sim] { sim->queue.Stop(); };
    while (!sim->gen->hit_disk_full() &&
           sim->fs->SpaceUtilization() < config_.alloc_full_utilization &&
           sim->gen->ops_executed() < config_.max_alloc_test_ops) {
      RunSim(sim.get(),
             sim->queue.now() + 10 * config_.sample_interval_ms);
      if (sim->queue.stopped()) break;
    }
  }
  AllocationResult result;
  result.internal_fragmentation = sim->fs->InternalFragmentation();
  result.external_fragmentation = sim->fs->ExternalFragmentation();
  result.utilization = sim->fs->SpaceUtilization();
  result.avg_extents_per_file = sim->fs->AverageExtentsPerFile();
  result.ops_executed = sim->gen->ops_executed();
  result.simulated_ms = sim->queue.now();
  result.alloc_stats = sim->allocator->stats();
  FillCapacity(sim.get(), &result.users_peak, &result.events_peak,
               &result.wheel_peak);
  SnapshotObs(sim.get(), &result.obs_metrics);
  FinishObs(sim.get());
  return result;
}

StatusOr<PerfResult> Experiment::RunApplicationTest() {
  ROFS_ASSIGN_OR_RETURN(std::unique_ptr<Sim> sim,
                        Setup(workload::OpMode::kApplication, /*fill=*/true));
  PerfResult result = Measure(sim.get(), workload::OpMode::kApplication);
  FinishObs(sim.get());
  return result;
}

StatusOr<PerfResult> Experiment::RunSequentialTest() {
  ROFS_ASSIGN_OR_RETURN(std::unique_ptr<Sim> sim,
                        Setup(workload::OpMode::kApplication, /*fill=*/true));
  PerfResult result = Measure(sim.get(), workload::OpMode::kSequential);
  FinishObs(sim.get());
  return result;
}

StatusOr<Experiment::PerfPair> Experiment::RunPerformancePair() {
  ROFS_ASSIGN_OR_RETURN(std::unique_ptr<Sim> sim,
                        Setup(workload::OpMode::kApplication, /*fill=*/true));
  PerfPair pair;
  // "When the throughput has stabilized the throughput numbers are
  // recorded and the sequential test begins."
  pair.application = Measure(sim.get(), workload::OpMode::kApplication);
  pair.sequential = Measure(sim.get(), workload::OpMode::kSequential);
  FinishObs(sim.get());
  return pair;
}

}  // namespace rofs::exp
