#ifndef ROFS_EXP_REPORTING_H_
#define ROFS_EXP_REPORTING_H_

#include <map>
#include <string>
#include <vector>

#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "exp/run_record.h"
#include "fs/read_optimized_fs.h"
#include "stats/summary.h"

namespace rofs::exp {

/// "88.0%" style formatting of a fraction.
std::string Pct(double fraction);

/// Prints the standard benchmark banner: experiment title, paper
/// reference, and the simulated disk configuration (Table 1).
void PrintBanner(const std::string& title, const std::string& paper_item,
                 const disk::DiskSystemConfig& disk_config);

/// One-line summaries used by the drivers.
std::string Summarize(const AllocationResult& r);
std::string Summarize(const PerfResult& r);

/// ASCII occupancy map of the disk's linear address space: `width`
/// buckets, each rendered by fullness (' ' empty, '.', ':', '+', '#'
/// full). Built from the live files' extent lists — a quick visual of how
/// a policy lays data out.
std::string LayoutAsciiMap(const fs::ReadOptimizedFs& fs, size_t width);

/// Writes the records as JSONL (one JSON object per line) / CSV. The
/// bytes depend only on the records, never on scheduling or the clock, so
/// artifacts are comparable across `--jobs` counts. Overwrites `path`.
Status WriteJsonl(const std::string& path,
                  const std::vector<RunRecord>& records);
Status WriteCsv(const std::string& path,
                const std::vector<RunRecord>& records);

/// Writes the long-format windowed-series CSV (SeriesToCsv). No-op —
/// no file is created — when no record carries a series.
Status WriteSeriesCsv(const std::string& path,
                      const std::vector<RunRecord>& records);

/// Renders per-metric replication summaries as an aligned table (metric,
/// mean, the ± confidence half-width, min, max).
std::string SummaryTable(const std::map<std::string, stats::Summary>& m);

}  // namespace rofs::exp

#endif  // ROFS_EXP_REPORTING_H_
