#ifndef ROFS_EXP_REPORTING_H_
#define ROFS_EXP_REPORTING_H_

#include <string>

#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "fs/read_optimized_fs.h"

namespace rofs::exp {

/// "88.0%" style formatting of a fraction.
std::string Pct(double fraction);

/// Prints the standard benchmark banner: experiment title, paper
/// reference, and the simulated disk configuration (Table 1).
void PrintBanner(const std::string& title, const std::string& paper_item,
                 const disk::DiskSystemConfig& disk_config);

/// One-line summaries used by the drivers.
std::string Summarize(const AllocationResult& r);
std::string Summarize(const PerfResult& r);

/// ASCII occupancy map of the disk's linear address space: `width`
/// buckets, each rendered by fullness (' ' empty, '.', ':', '+', '#'
/// full). Built from the live files' extent lists — a quick visual of how
/// a policy lays data out.
std::string LayoutAsciiMap(const fs::ReadOptimizedFs& fs, size_t width);

}  // namespace rofs::exp

#endif  // ROFS_EXP_REPORTING_H_
