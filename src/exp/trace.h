#ifndef ROFS_EXP_TRACE_H_
#define ROFS_EXP_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/op_generator.h"

namespace rofs::exp {

/// Bounded collector of executed operations, for debugging simulations and
/// exporting timelines. Attach with Attach(); the newest `capacity`
/// records are kept (older ones are dropped FIFO).
class OpTrace {
 public:
  explicit OpTrace(size_t capacity = 1'000'000);

  /// Installs this trace as the generator's on_op sink (replacing any
  /// previous sink).
  void Attach(workload::OpGenerator* generator);

  void Record(const workload::OpRecord& record);

  size_t size() const { return records_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const { return total_recorded_ - records_.size(); }
  /// Records oldest-first, even after the ring wraps: the first access
  /// after a wrap rotates the ring in place (O(n), once; recording may
  /// resume afterwards and the ring stays consistent).
  const std::vector<workload::OpRecord>& records();
  void Clear();

  /// CSV with a header row:
  /// issued_ms,completed_ms,latency_ms,type,op,file,bytes
  /// Rows are oldest-first. When the ring evicted records, a final
  /// "# dropped=N" comment line reports how many.
  std::string ToCsv(const workload::WorkloadSpec& workload) const;

  /// Writes ToCsv() to a file.
  Status WriteCsv(const std::string& path,
                  const workload::WorkloadSpec& workload) const;

  /// JSONL: one object per record, oldest-first —
  /// {"issued_ms":..,"completed_ms":..,"latency_ms":..,"type":"..",
  ///  "op":"..","file":N,"bytes":N}
  /// — then a final summary line {"records":M,"dropped":N} that always
  /// reports the ring's eviction accounting (N == 0 when nothing was
  /// lost), so consumers can detect truncation without counting lines.
  std::string ToJsonl(const workload::WorkloadSpec& workload) const;

  /// Writes ToJsonl() to a file.
  Status WriteJsonl(const std::string& path,
                    const workload::WorkloadSpec& workload) const;

 private:
  size_t capacity_;
  size_t head_ = 0;  // Index of the oldest record once wrapped.
  bool wrapped_ = false;
  uint64_t total_recorded_ = 0;
  std::vector<workload::OpRecord> records_;
};

}  // namespace rofs::exp

#endif  // ROFS_EXP_TRACE_H_
