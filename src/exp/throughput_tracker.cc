#include "exp/throughput_tracker.h"

#include <algorithm>
#include <cassert>

namespace rofs::exp {

ThroughputTracker::ThroughputTracker(double max_bandwidth_bytes_per_ms,
                                     double sample_interval_ms,
                                     double tolerance_pp,
                                     int required_stable_samples)
    : max_bw_(max_bandwidth_bytes_per_ms),
      sample_interval_(sample_interval_ms),
      tolerance_(tolerance_pp / 100.0),
      required_(required_stable_samples) {
  assert(max_bw_ > 0 && sample_interval_ > 0 && required_ >= 2);
}

void ThroughputTracker::Start(sim::TimeMs now) {
  start_ = now;
  next_sample_ = now + sample_interval_;
  bytes_ = 0;
  samples_.clear();
}

void ThroughputTracker::Record(uint64_t bytes, sim::TimeMs completion) {
  (void)completion;
  bytes_ += bytes;
}

double ThroughputTracker::CumulativeUtilization(sim::TimeMs now) const {
  const double elapsed = now - start_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes_) / elapsed / max_bw_;
}

double ThroughputTracker::Sample(sim::TimeMs now) {
  const double util = CumulativeUtilization(now);
  samples_.push_back(util);
  next_sample_ = now + sample_interval_;
  return util;
}

bool ThroughputTracker::Stabilized() const {
  if (static_cast<int>(samples_.size()) < required_) return false;
  const auto tail = samples_.end() - required_;
  const double lo = *std::min_element(tail, samples_.end());
  const double hi = *std::max_element(tail, samples_.end());
  // The all-zero startup plateau (no operation has completed yet) is not
  // stability; long whole-file transfers can outlast several samples.
  if (hi <= 0.0) return false;
  return hi - lo <= tolerance_;
}

}  // namespace rofs::exp
