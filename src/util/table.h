#ifndef ROFS_UTIL_TABLE_H_
#define ROFS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace rofs {

/// Minimal fixed-column text table used by the benchmark drivers to print
/// the paper's tables and figure series in aligned, copy-pastable form.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same number of cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline and right-padded columns.
  std::string ToString() const;

  /// Renders as CSV (for downstream plotting).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// snprintf-style convenience: FormatString("%5.1f%%", x).
std::string FormatString(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rofs

#endif  // ROFS_UTIL_TABLE_H_
