#include "util/units.h"

#include <cstdio>

namespace rofs {

namespace {

std::string FormatWithSuffix(double value, const char* suffix) {
  char buf[32];
  if (value == static_cast<uint64_t>(value)) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(value), suffix);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffix);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  if (bytes >= kGiB && bytes % (kGiB / 100) == 0) {
    return FormatWithSuffix(static_cast<double>(bytes) / kGiB, "G");
  }
  if (bytes >= kGiB) {
    return FormatWithSuffix(static_cast<double>(bytes) / kGiB, "G");
  }
  if (bytes >= kMiB) {
    return FormatWithSuffix(static_cast<double>(bytes) / kMiB, "M");
  }
  if (bytes >= kKiB) {
    return FormatWithSuffix(static_cast<double>(bytes) / kKiB, "K");
  }
  return FormatWithSuffix(static_cast<double>(bytes), "B");
}

std::string FormatMillis(double ms) {
  char buf[32];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  }
  return buf;
}

}  // namespace rofs
