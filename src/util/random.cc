#include "util/random.h"

#include <cassert>
#include <cmath>

namespace rofs {

namespace {

// SplitMix64, used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (cannot happen with SplitMix64, but cheap to
  // guarantee).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  const uint64_t range = hi - lo + 1;
  if (range == 0) return Next();  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + v % range;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

double Rng::Exponential(double mean) {
  // Guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t SplitSeed(uint64_t base_seed, uint64_t stream) {
  if (stream == 0) return base_seed;
  uint64_t x = base_seed ^ (stream * 0xBF58476D1CE4E5B9ull);
  SplitMix64(x);  // Advance once so adjacent streams decorrelate.
  return SplitMix64(x);
}

}  // namespace rofs
