#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rofs {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(double value) {
  if (value <= 1.0) return 0;
  // Each bucket covers a factor of 2^(1/4): ~4 buckets per octave.
  const int b = static_cast<int>(std::log2(value) * 4.0) + 1;
  return std::min(b, kNumBuckets - 1);
}

double Histogram::BucketLimit(int bucket) {
  if (bucket <= 0) return 1.0;
  return std::exp2(static_cast<double>(bucket) / 4.0);
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double variance = sum_squares_ / n - (sum_ / n) * (sum_ / n);
  return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Clamp the bucket's upper limit into the observed range.
      return std::min(std::max(BucketLimit(i), min()), max());
    }
  }
  return max();
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f stddev=%.3f min=%.3f max=%.3f "
                "p50=%.3f p99=%.3f",
                static_cast<unsigned long long>(count_), Mean(), StdDev(),
                min(), max(), Percentile(50), Percentile(99));
  return buf;
}

}  // namespace rofs
