#include "util/table.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

namespace rofs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += ',';
    }
    line += '\n';
    return line;
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string FormatString(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace rofs
