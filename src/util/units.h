#ifndef ROFS_UTIL_UNITS_H_
#define ROFS_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace rofs {

/// Byte-size literals used throughout the simulator. The paper's block and
/// extent sizes (1K, 8K, 64K, 1M, 16M, ...) are binary units.
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }

/// Decimal units. The paper quotes capacities and file sizes in decimal
/// ("2.8 G" for the 8-drive array, "210M" relations); block and transfer
/// sizes are binary.
constexpr uint64_t KB(uint64_t n) { return n * 1000; }
constexpr uint64_t MB(uint64_t n) { return n * 1000 * 1000; }

/// True when `x` is a (nonzero) power of two.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x must be nonzero and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Rounds `x` up to the nearest multiple of `m` (m > 0).
constexpr uint64_t RoundUp(uint64_t x, uint64_t m) {
  return (x + m - 1) / m * m;
}

/// Rounds `x` down to the nearest multiple of `m` (m > 0).
constexpr uint64_t RoundDown(uint64_t x, uint64_t m) { return x / m * m; }

/// Integer ceiling division.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Formats a byte count compactly ("8K", "1.5M", "2.64G", "123B").
std::string FormatBytes(uint64_t bytes);

/// Formats milliseconds as "12.3s" / "456ms".
std::string FormatMillis(double ms);

}  // namespace rofs

#endif  // ROFS_UTIL_UNITS_H_
