#include "util/bitmap.h"

#include <bit>
#include <cassert>

namespace rofs {

Bitmap::Bitmap(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

bool Bitmap::Test(size_t i) const {
  assert(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1;
}

void Bitmap::Set(size_t i) {
  assert(i < size_);
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void Bitmap::Clear(size_t i) {
  assert(i < size_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

size_t Bitmap::CountSet() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::optional<size_t> Bitmap::FindFirstClear(size_t from) const {
  return FindFirstClearInRange(from, size_);
}

std::optional<size_t> Bitmap::FindFirstClearInRange(size_t from,
                                                    size_t limit) const {
  if (limit > size_) limit = size_;
  if (from >= limit) return std::nullopt;
  size_t word = from / 64;
  const size_t last_word = (limit - 1) / 64;
  // Mask off bits below `from` in the first word by pretending they are set.
  uint64_t masked = words_[word] | ((uint64_t{1} << (from % 64)) - 1);
  while (true) {
    if (masked != UINT64_MAX) {
      const size_t bit = word * 64 +
                         static_cast<size_t>(std::countr_one(masked));
      if (bit < limit) return bit;
      return std::nullopt;
    }
    if (++word > last_word) return std::nullopt;
    masked = words_[word];
  }
}

std::optional<size_t> Bitmap::FindFirstSet(size_t from) const {
  if (from >= size_) return std::nullopt;
  size_t word = from / 64;
  uint64_t masked = words_[word] & ~((uint64_t{1} << (from % 64)) - 1);
  while (true) {
    if (masked != 0) {
      const size_t bit = word * 64 +
                         static_cast<size_t>(std::countr_zero(masked));
      if (bit < size_) return bit;
      return std::nullopt;
    }
    if (++word >= words_.size()) return std::nullopt;
    masked = words_[word];
  }
}

std::optional<size_t> Bitmap::FindFirstClearCircular(size_t from) const {
  if (size_ == 0) return std::nullopt;
  from %= size_;
  if (auto hit = FindFirstClear(from)) return hit;
  // Wrapped scan: [from, size) found nothing, so only [0, from) is left —
  // rescanning the whole map would re-visit every set bit above `from` a
  // second time on each fully-loaded lookup.
  return FindFirstClearInRange(0, from);
}

}  // namespace rofs
