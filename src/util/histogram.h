#ifndef ROFS_UTIL_HISTOGRAM_H_
#define ROFS_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rofs {

/// Streaming summary statistics plus a log-scaled histogram. Used for
/// per-operation latency, extents-per-file counts, and transfer sizes.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  double Mean() const;
  /// Population standard deviation.
  double StdDev() const;
  /// Approximate percentile (0 < p <= 100) from the log-scaled buckets.
  double Percentile(double p) const;

  /// Multi-line human-readable summary.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 128;
  // Bucket index for a value (log2-scaled above 1.0, bucket 0 for <= 1).
  static int BucketFor(double value);
  // Upper bound of a bucket.
  static double BucketLimit(int bucket);

  uint64_t count_;
  double sum_;
  double sum_squares_;
  double min_;
  double max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace rofs

#endif  // ROFS_UTIL_HISTOGRAM_H_
