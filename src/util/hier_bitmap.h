#ifndef ROFS_UTIL_HIER_BITMAP_H_
#define ROFS_UTIL_HIER_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace rofs::util {

/// A bitmap with a word-level summary hierarchy: level 0 holds the bits,
/// and bit `i` of a level-k word records whether level-(k-1) word `i` is
/// non-zero. Set/Clear maintain the summaries in O(levels); FindFirstSet
/// skips runs of zero words through the hierarchy instead of scanning
/// them, so lowest-set-bit queries over sparse maps are O(levels) word
/// operations. The buddy allocators use one of these per block-size level
/// as their free lists (the paper's own restricted-buddy bookkeeping is a
/// bitmap over maximum-size blocks; see DESIGN.md "Hot-path
/// architecture").
///
/// All storage is allocated at construction; Set/Clear/Find never
/// allocate.
class HierBitmap {
 public:
  explicit HierBitmap(size_t size = 0);

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    return (levels_[0][i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i);
  void Clear(size_t i);

  /// True when no bit is set.
  bool none() const;

  /// Index of the first set bit at or after `from`, or nullopt.
  std::optional<size_t> FindFirstSet(size_t from = 0) const;

  /// Index of the first set bit in [from, limit), or nullopt. `limit` is
  /// clamped to size().
  std::optional<size_t> FindFirstSetInRange(size_t from, size_t limit) const;

 private:
  /// Index of the first non-zero level-0 word at or after `word`, found by
  /// ascending the summary hierarchy, or nullopt.
  std::optional<size_t> NextNonZeroWord(size_t word) const;

  size_t size_ = 0;
  /// levels_[0]: the bits; levels_[k>0]: summary of levels_[k-1]. The top
  /// level always fits in one word.
  std::vector<std::vector<uint64_t>> levels_;
};

}  // namespace rofs::util

#endif  // ROFS_UTIL_HIER_BITMAP_H_
