#include "util/hier_bitmap.h"

#include <bit>
#include <cassert>

namespace rofs::util {

namespace {

size_t WordsFor(size_t bits) { return (bits + 63) / 64; }

}  // namespace

HierBitmap::HierBitmap(size_t size) : size_(size) {
  size_t bits = size;
  do {
    bits = WordsFor(bits);
    levels_.emplace_back(bits, uint64_t{0});
  } while (bits > 64);
}

void HierBitmap::Set(size_t i) {
  assert(i < size_);
  for (auto& level : levels_) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    uint64_t& word = level[i >> 6];
    const bool was_zero = word == 0;
    word |= mask;
    if (!was_zero) break;  // Summaries above were already set.
    i >>= 6;
  }
}

void HierBitmap::Clear(size_t i) {
  assert(i < size_);
  for (auto& level : levels_) {
    uint64_t& word = level[i >> 6];
    word &= ~(uint64_t{1} << (i & 63));
    if (word != 0) break;  // Summaries above stay set.
    i >>= 6;
  }
}

bool HierBitmap::none() const {
  for (uint64_t w : levels_.back()) {
    if (w != 0) return false;
  }
  return true;
}

std::optional<size_t> HierBitmap::NextNonZeroWord(size_t word) const {
  // Ascend through the summaries until one shows a non-zero word at or
  // after the current position; the top level (<= 64 words) is scanned
  // linearly when every summary on the way up is exhausted.
  size_t level = 1;
  size_t idx = word;  // Candidate word index into levels_[level - 1].
  for (;;) {
    const auto& cur = levels_[level - 1];
    if (idx >= cur.size()) return std::nullopt;
    if (level == levels_.size()) {
      while (idx < cur.size() && cur[idx] == 0) ++idx;
      if (idx == cur.size()) return std::nullopt;
      break;  // cur[idx] != 0 at the top level.
    }
    const uint64_t summary =
        levels_[level][idx >> 6] & ~((uint64_t{1} << (idx & 63)) - 1);
    if (summary != 0) {
      idx = ((idx >> 6) << 6) +
            static_cast<size_t>(std::countr_zero(summary));
      break;  // levels_[level - 1][idx] != 0.
    }
    idx = (idx >> 6) + 1;  // Next summary word, one level up.
    ++level;
  }
  // `idx` names a non-zero word of levels_[level - 1]; descend taking the
  // first set bit of each summary word.
  while (level > 1) {
    const uint64_t w = levels_[level - 1][idx];
    assert(w != 0);
    idx = (idx << 6) + static_cast<size_t>(std::countr_zero(w));
    --level;
  }
  return idx;
}

std::optional<size_t> HierBitmap::FindFirstSet(size_t from) const {
  return FindFirstSetInRange(from, size_);
}

std::optional<size_t> HierBitmap::FindFirstSetInRange(size_t from,
                                                      size_t limit) const {
  if (limit > size_) limit = size_;
  if (from >= limit) return std::nullopt;
  const auto& words = levels_[0];
  size_t word = from >> 6;
  uint64_t masked = words[word] & ~((uint64_t{1} << (from & 63)) - 1);
  if (masked == 0) {
    const auto next = NextNonZeroWord(word + 1);
    if (!next.has_value()) return std::nullopt;
    word = *next;
    masked = words[word];
  }
  const size_t bit = (word << 6) + static_cast<size_t>(std::countr_zero(masked));
  if (bit >= limit) return std::nullopt;
  return bit;
}

}  // namespace rofs::util
