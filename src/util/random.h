#ifndef ROFS_UTIL_RANDOM_H_
#define ROFS_UTIL_RANDOM_H_

#include <cstdint>

namespace rofs {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every simulation object takes an explicit seed so experiments are exactly
/// reproducible run to run. Not thread-safe; each simulation owns its own
/// generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Normal deviate with the given mean and standard deviation
  /// (Box-Muller). Used for extent-size ranges: N(mean, 0.1 * mean).
  double Normal(double mean, double stddev);

  /// Exponential deviate with the given mean (inter-arrival think times).
  double Exponential(double mean);

  /// Returns true with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  // Cached second Box-Muller deviate.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derives the seed of an independent RNG stream from a base seed and a
/// stream index (SplitMix64 double-mixing, the same mixer Rng uses to
/// expand seeds into xoshiro256** state).
///
/// Stream 0 is the base stream: SplitSeed(s, 0) == s, so sweeps that want
/// common random numbers across grid cells simply share stream 0, while
/// replicates take streams 1, 2, ... for independent draws.
uint64_t SplitSeed(uint64_t base_seed, uint64_t stream);

}  // namespace rofs

#endif  // ROFS_UTIL_RANDOM_H_
