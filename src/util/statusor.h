#ifndef ROFS_UTIL_STATUSOR_H_
#define ROFS_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rofs {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a failed StatusOr is a
/// programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
/// otherwise assigns the value to `lhs`.
#define ROFS_ASSIGN_OR_RETURN(lhs, rexpr)            \
  auto ROFS_CONCAT_(_statusor_, __LINE__) = (rexpr); \
  if (!ROFS_CONCAT_(_statusor_, __LINE__).ok())      \
    return ROFS_CONCAT_(_statusor_, __LINE__).status(); \
  lhs = std::move(ROFS_CONCAT_(_statusor_, __LINE__)).value()

#define ROFS_CONCAT_INNER_(a, b) a##b
#define ROFS_CONCAT_(a, b) ROFS_CONCAT_INNER_(a, b)

}  // namespace rofs

#endif  // ROFS_UTIL_STATUSOR_H_
