#ifndef ROFS_UTIL_STATUS_H_
#define ROFS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace rofs {

/// Error categories used across the library. Modeled after the
/// Status idiom used by RocksDB/Arrow: no exceptions cross API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  /// The disk system cannot satisfy an allocation request (disk full).
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  /// A run exceeded its wall-clock budget (runner per-run timeouts).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// Typical use:
///   Status s = allocator.Extend(file, bytes);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when the error indicates the disk system is full. Experiment
  /// drivers use this to detect the end of an allocation test.
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status to the caller.
#define ROFS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::rofs::Status _rofs_status = (expr);           \
    if (!_rofs_status.ok()) return _rofs_status;    \
  } while (false)

}  // namespace rofs

#endif  // ROFS_UTIL_STATUS_H_
