#ifndef ROFS_UTIL_BITMAP_H_
#define ROFS_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace rofs {

/// Fixed-size bitmap. The restricted-buddy allocator uses one bit per
/// maximum-size block (paper section 4.2: "A bit map is used to record the
/// state (free or used) of every maximum sized block in the system").
class Bitmap {
 public:
  /// Creates a bitmap of `size` bits, all clear (0 = free).
  explicit Bitmap(size_t size = 0);

  size_t size() const { return size_; }

  bool Test(size_t i) const;
  void Set(size_t i);
  void Clear(size_t i);

  /// Number of set bits.
  size_t CountSet() const;

  /// Index of the first clear bit at or after `from`, or nullopt.
  std::optional<size_t> FindFirstClear(size_t from = 0) const;

  /// Index of the first clear bit in [from, limit), or nullopt. `limit`
  /// is clamped to size().
  std::optional<size_t> FindFirstClearInRange(size_t from,
                                              size_t limit) const;

  /// Index of the first set bit at or after `from`, or nullopt.
  std::optional<size_t> FindFirstSet(size_t from = 0) const;

  /// Index of the first clear bit at or after `from`, wrapping around to the
  /// start of the map if none is found above `from`. nullopt when the map is
  /// fully set.
  std::optional<size_t> FindFirstClearCircular(size_t from) const;

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace rofs

#endif  // ROFS_UTIL_BITMAP_H_
