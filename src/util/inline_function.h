#ifndef ROFS_UTIL_INLINE_FUNCTION_H_
#define ROFS_UTIL_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace rofs::util {

/// A move-only type-erased callable with a small-buffer optimization sized
/// for the simulator's hot path. Every callback captured in the event loop
/// (op_generator, trace_replay, throughput crediting) fits in the default
/// 48-byte inline buffer, so scheduling an event performs no heap
/// allocation — unlike std::function, whose copyability requirement also
/// forces every capture to be copyable.
///
/// Callables larger than `InlineBytes` (or without a noexcept move
/// constructor) fall back to the heap; `is_inline()` lets tests pin down
/// that a given capture stays inline. The callable is destroyed on
/// assignment, on destruction, and when the wrapper is moved from.
template <typename Signature, size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(&other); }

  /// Destroys the current callable (if any) and constructs `f` directly in
  /// this wrapper's storage — the hot path for writing into a callback
  /// slab without routing the capture through a temporary wrapper.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  void Emplace(F&& f) {
    Reset();
    using D = std::decay_t<F>;
    if constexpr (kStoredInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kVTable<D, true>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kVTable<D, false>;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the wrapped callable lives in the inline buffer (empty
  /// wrappers report false). Used by tests to verify the zero-allocation
  /// contract of the event loop.
  bool is_inline() const { return vtable_ != nullptr && vtable_->inline_stored; }

  static constexpr size_t inline_bytes() { return InlineBytes; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable from `src` into `dst` and destroys the
    /// source (a "relocate"). nullptr when relocation is equivalent to
    /// copying the raw buffer — trivially-copyable inline callables and all
    /// heap-stored ones (only the owning pointer moves) — so the common
    /// case is a branch plus a fixed-size memcpy instead of an indirect
    /// call.
    void (*relocate)(void* src, void* dst) noexcept;
    /// nullptr when destruction is a no-op (trivially-destructible inline
    /// callables — the overwhelmingly common capture shape), so Reset()
    /// skips the indirect call on every dispatch and reassignment.
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  template <typename D>
  static constexpr bool kStoredInline =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D, bool kInline>
  static R Invoke(void* s, Args&&... args) {
    if constexpr (kInline) {
      return (*std::launder(reinterpret_cast<D*>(s)))(
          std::forward<Args>(args)...);
    } else {
      return (**std::launder(reinterpret_cast<D**>(s)))(
          std::forward<Args>(args)...);
    }
  }

  template <typename D, bool kInline>
  static void Relocate(void* src, void* dst) noexcept {
    if constexpr (kInline) {
      D* from = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    } else {
      ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
    }
  }

  template <typename D, bool kInline>
  static void Destroy(void* s) noexcept {
    if constexpr (kInline) {
      std::launder(reinterpret_cast<D*>(s))->~D();
    } else {
      delete *std::launder(reinterpret_cast<D**>(s));
    }
  }

  template <typename D, bool kInline>
  static constexpr bool kTrivialRelocate =
      !kInline || std::is_trivially_copyable_v<D>;

  template <typename D, bool kInline>
  static constexpr bool kTrivialDestroy =
      kInline && std::is_trivially_destructible_v<D>;

  template <typename D, bool kInline>
  static constexpr VTable kVTable = {
      &Invoke<D, kInline>,
      kTrivialRelocate<D, kInline> ? nullptr : &Relocate<D, kInline>,
      kTrivialDestroy<D, kInline> ? nullptr : &Destroy<D, kInline>, kInline};

  void MoveFrom(InlineFunction* other) noexcept {
    vtable_ = other->vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate == nullptr) {
        __builtin_memcpy(storage_, other->storage_, InlineBytes);
      } else {
        vtable_->relocate(other->storage_, storage_);
      }
      other->vtable_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace rofs::util

#endif  // ROFS_UTIL_INLINE_FUNCTION_H_
