#ifndef ROFS_ALLOC_LOG_STRUCTURED_ALLOCATOR_H_
#define ROFS_ALLOC_LOG_STRUCTURED_ALLOCATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/free_extent_map.h"
#include "util/units.h"

namespace rofs::alloc {

/// Configuration of the log-structured policy.
struct LogStructuredConfig {
  /// Segment size in disk units (LFS: 512K-1M segments).
  uint64_t segment_du = 1024;
};

/// A log-structured allocation policy — the paper's section 6 future-work
/// item ("In the small file environment we might want to incorporate
/// policies from a log structured file system to allocate blocks
/// [ROSE90]").
///
/// The disk is divided into fixed segments. All allocation appends
/// sequentially to the active segment, so data written together lands
/// together (ideal small-file write locality and good read locality for
/// data with temporal affinity); extents never cross a segment boundary.
/// Freed space is accounted per segment; a segment whose live count drops
/// to zero becomes clean and is reused in full. When no clean segment
/// remains the allocator *hole-plugs*: it fills the dead holes of dirty
/// segments first-fit. (A copying cleaner that relocates live data — the
/// full LFS design — is out of scope; hole-plugging is the classic
/// non-copying alternative and keeps the simulation honest about
/// fragmentation.)
class LogStructuredAllocator : public Allocator {
 public:
  LogStructuredAllocator(uint64_t total_du, LogStructuredConfig config = {});

  std::string name() const override { return "log-structured"; }
  const LogStructuredConfig& config() const { return config_; }
  uint64_t free_du() const override { return dead_space_.free_du(); }

  Status Extend(FileAllocState* f, uint64_t want_du) override;

  uint64_t CheckConsistency() const override;

  /// Number of clean (fully reusable) segments.
  size_t clean_segments() const { return clean_.size(); }
  size_t num_segments() const { return live_du_.size(); }
  /// Live units within segment `s` (testing/diagnostics).
  uint64_t SegmentLiveDu(size_t s) const { return live_du_[s]; }

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;

 private:
  size_t SegmentOf(uint64_t addr) const { return addr / config_.segment_du; }
  uint64_t SegmentStart(size_t s) const { return s * config_.segment_du; }
  uint64_t SegmentLen(size_t s) const;

  /// Makes a clean segment active (preferring the one after the current
  /// head, for sequential layout). False when no clean segment exists.
  bool ActivateCleanSegment();

  /// Adds `len` to the live count of the segment containing [addr,
  /// addr+len) (the range never crosses a boundary).
  void AddLive(uint64_t addr, uint64_t len);

  LogStructuredConfig config_;
  FreeExtentMap dead_space_;
  std::vector<uint64_t> live_du_;  // Live units per segment.
  std::set<size_t> clean_;         // Segments with zero live units.
  // Append head: the active segment and the next offset within it; the
  // active segment is excluded from clean_ while it is being filled.
  bool has_active_ = false;
  size_t active_segment_ = 0;
  uint64_t active_offset_ = 0;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_LOG_STRUCTURED_ALLOCATOR_H_
