#include "alloc/allocator.h"

#include <algorithm>

namespace rofs::alloc {

uint64_t Allocator::TruncateTail(FileAllocState* f, uint64_t n_du) {
  uint64_t remaining = std::min(n_du, f->allocated_du);
  uint64_t freed = 0;
  while (remaining > 0 && !f->extents.empty()) {
    Extent& tail = f->extents.back();
    if (tail.length_du <= remaining) {
      FreeRun(tail.start_du, tail.length_du);
      ++stats_.blocks_freed;
      remaining -= tail.length_du;
      freed += tail.length_du;
      f->extents.pop_back();
      f->cum_du.pop_back();
      continue;
    }
    // Partial tail block: free what the policy's granularity allows.
    const uint64_t gran = PartialFreeGranularity();
    const uint64_t part = remaining / gran * gran;
    if (part == 0) break;
    tail.length_du -= part;
    FreeRun(tail.start_du + tail.length_du, part);
    ++stats_.blocks_freed;
    freed += part;
    remaining -= part;
    f->RebuildCumFrom(f->extents.size() - 1);
  }
  f->allocated_du = f->extents.empty() ? 0 : f->cum_du.back();
  return freed;
}

void Allocator::DeleteFile(FileAllocState* f) {
  for (const Extent& e : f->extents) {
    FreeRun(e.start_du, e.length_du);
    ++stats_.blocks_freed;
  }
  f->extents.clear();
  f->cum_du.clear();
  f->allocated_du = 0;
}

}  // namespace rofs::alloc
