#include "alloc/allocator.h"

#include <algorithm>

#include "obs/tracer.h"

namespace rofs::alloc {

void Allocator::TraceAllocSlow(uint64_t len_du) {
  tracer_->AllocBlock(len_du);
}

void Allocator::TraceFreeSlow(uint64_t len_du) {
  tracer_->FreeBlock(len_du);
}

void Allocator::TraceCoalesceSlow(uint64_t merges) {
  tracer_->Coalesce(merges);
}

void Allocator::TraceAllocFailedSlow() { tracer_->AllocFailed(); }

uint64_t Allocator::TruncateTail(FileAllocState* f, uint64_t n_du) {
  uint64_t remaining = std::min(n_du, f->allocated_du);
  uint64_t freed = 0;
  while (remaining > 0 && !f->extents.empty()) {
    Extent& tail = f->extents.back();
    if (tail.length_du <= remaining) {
      FreeRun(tail.start_du, tail.length_du);
      ++stats_.blocks_freed;
      TraceFree(tail.length_du);
      remaining -= tail.length_du;
      freed += tail.length_du;
      f->extents.pop_back();
      f->cum_du.pop_back();
      continue;
    }
    // Partial tail block: free what the policy's granularity allows.
    const uint64_t gran = PartialFreeGranularity();
    const uint64_t part = remaining / gran * gran;
    if (part == 0) break;
    tail.length_du -= part;
    FreeRun(tail.start_du + tail.length_du, part);
    ++stats_.blocks_freed;
    TraceFree(part);
    freed += part;
    remaining -= part;
    f->RebuildCumFrom(f->extents.size() - 1);
  }
  f->allocated_du = f->extents.empty() ? 0 : f->cum_du.back();
  return freed;
}

void Allocator::DeleteFile(FileAllocState* f) {
  for (const Extent& e : f->extents) {
    FreeRun(e.start_du, e.length_du);
    ++stats_.blocks_freed;
    TraceFree(e.length_du);
  }
  f->extents.clear();
  f->cum_du.clear();
  f->allocated_du = 0;
}

}  // namespace rofs::alloc
