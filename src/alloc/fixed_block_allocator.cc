#include "alloc/fixed_block_allocator.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/units.h"

namespace rofs::alloc {

FixedBlockAllocator::FixedBlockAllocator(uint64_t total_du, uint64_t block_du)
    : Allocator(total_du), block_du_(block_du) {
  assert(block_du > 0);
  const uint64_t blocks = total_du / block_du;
  for (uint64_t b = 0; b < blocks; ++b) free_list_.push_back(b * block_du);
  // Any trailing partial block is unusable; exclude it from the space.
  total_du_ = blocks * block_du;
}

Status FixedBlockAllocator::Extend(FileAllocState* f, uint64_t want_du) {
  ++stats_.alloc_calls;
  const uint64_t blocks = CeilDiv(want_du, block_du_);
  for (uint64_t b = 0; b < blocks; ++b) {
    if (free_list_.empty()) {
      ++stats_.failed_allocs;
      TraceAllocFailed();
      return Status::ResourceExhausted("fixed-block: free list empty");
    }
    // "Free blocks are maintained on a free list and allocated off the
    // head of this list."
    const uint64_t addr = free_list_.front();
    free_list_.pop_front();
    ++stats_.blocks_allocated;
    TraceAlloc(block_du_);
    f->AppendExtent(Extent{addr, block_du_});
  }
  return Status::OK();
}

void FixedBlockAllocator::FreeRun(uint64_t start_du, uint64_t len_du) {
  assert(start_du % block_du_ == 0);
  assert(len_du % block_du_ == 0);
  for (uint64_t a = start_du; a < start_du + len_du; a += block_du_) {
    free_list_.push_back(a);
  }
}

uint64_t FixedBlockAllocator::CheckConsistency() const {
  std::vector<uint64_t> addrs(free_list_.begin(), free_list_.end());
  std::sort(addrs.begin(), addrs.end());
  for (size_t i = 0; i < addrs.size(); ++i) {
    assert(addrs[i] % block_du_ == 0);
    assert(addrs[i] + block_du_ <= total_du_);
    if (i > 0) assert(addrs[i] != addrs[i - 1] && "duplicate free block");
  }
  return static_cast<uint64_t>(addrs.size()) * block_du_;
}

}  // namespace rofs::alloc
