#include "alloc/extent_allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/table.h"

namespace rofs::alloc {

std::string FitPolicyToString(FitPolicy p) {
  return p == FitPolicy::kFirstFit ? "first-fit" : "best-fit";
}

std::string ExtentAllocatorConfig::Label() const {
  std::string out = FormatString("%zu-range/%s", range_means_du.size(),
                                 FitPolicyToString(fit).c_str());
  return out;
}

ExtentAllocator::ExtentAllocator(uint64_t total_du,
                                 ExtentAllocatorConfig config)
    : Allocator(total_du), config_(std::move(config)), rng_(config_.seed) {
  assert(!config_.range_means_du.empty());
  assert(std::is_sorted(config_.range_means_du.begin(),
                        config_.range_means_du.end()));
  free_map_.Free(0, total_du);
}

int32_t ExtentAllocator::RangeFor(uint64_t pref_du) const {
  // Nearest range mean in log space.
  const double want = std::log2(static_cast<double>(std::max<uint64_t>(
      pref_du, 1)));
  int32_t best = 0;
  double best_dist = 1e300;
  for (size_t i = 0; i < config_.range_means_du.size(); ++i) {
    const double dist = std::abs(
        std::log2(static_cast<double>(config_.range_means_du[i])) - want);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

void ExtentAllocator::OnCreateFile(FileAllocState* f) {
  f->range_index = RangeFor(f->pref_extent_du);
}

uint64_t ExtentAllocator::DrawExtentSize(int32_t r) {
  const double mean =
      static_cast<double>(config_.range_means_du[static_cast<size_t>(r)]);
  const double drawn = rng_.Normal(mean, 0.1 * mean);
  const long long rounded = std::llround(drawn);
  return rounded < 1 ? 1 : static_cast<uint64_t>(rounded);
}

Status ExtentAllocator::Extend(FileAllocState* f, uint64_t want_du) {
  ++stats_.alloc_calls;
  if (f->range_index < 0) OnCreateFile(f);
  const uint64_t target = f->allocated_du + want_du;
  while (f->allocated_du < target) {
    const uint64_t len = DrawExtentSize(f->range_index);
    const auto addr = config_.fit == FitPolicy::kFirstFit
                          ? free_map_.AllocateFirstFit(len)
                          : free_map_.AllocateBestFit(len);
    if (!addr) {
      ++stats_.failed_allocs;
      TraceAllocFailed();
      return Status::ResourceExhausted(
          FormatString("extent: no free extent of %llu du",
                       static_cast<unsigned long long>(len)));
    }
    ++stats_.blocks_allocated;
    TraceAlloc(len);
    f->AppendExtent(Extent{*addr, len});
  }
  return Status::OK();
}

void ExtentAllocator::FreeRun(uint64_t start_du, uint64_t len_du) {
  const uint64_t merges =
      static_cast<uint64_t>(free_map_.Free(start_du, len_du));
  stats_.coalesces += merges;
  TraceCoalesce(merges);
}

uint64_t ExtentAllocator::CheckConsistency() const {
  return free_map_.CheckConsistency();
}

}  // namespace rofs::alloc
