#ifndef ROFS_ALLOC_RESTRICTED_BUDDY_H_
#define ROFS_ALLOC_RESTRICTED_BUDDY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "util/hier_bitmap.h"
#include "util/units.h"

namespace rofs::alloc {

/// Configuration of the restricted buddy policy (paper section 4.2).
struct RestrictedBuddyConfig {
  /// Supported block sizes in disk units, ascending. Each size must be an
  /// integral multiple of every smaller size. The paper's configurations:
  /// {1K,8K}, {1K,8K,64K}, {1K,8K,64K,1M}, {1K,8K,64K,1M,16M} (with 1K DU).
  std::vector<uint64_t> block_sizes_du = {1, 8, 64, 1024, 16384};

  /// The grow-policy multiplier g: the allocation unit advances from a_i to
  /// a_{i+1} once the file holds g * a_{i+1} units in size-a_i blocks.
  uint32_t grow_factor = 1;

  /// Whether the disk is divided into bookkeeping regions with per-region
  /// free lists and the paper's region-selection algorithm.
  bool clustered = true;

  /// Bookkeeping region size in disk units (paper: 32 MB).
  uint64_t region_du = 32 * kMiB / kKiB;

  /// Human-readable tag like "5sz/g1/clustered".
  std::string Label() const;
};

/// The restricted buddy allocation policy: a small set of block sizes,
/// blocks of size N aligned to N, buddy coalescing on free, sequential
/// (contiguous) placement of logically sequential blocks whenever possible,
/// and optional clustering into 32 MB bookkeeping regions.
///
/// Free space is tracked with one hierarchical bitmap per block size (bit i
/// of level l = the block at address i * block_sizes_du[l] is free) plus a
/// per-region per-level block count. This matches the paper's own
/// bookkeeping more closely than the seed's ordered sets — "A bit map is
/// used to record the state (free or used) of every maximum sized block in
/// the system" — generalized to every level: the address-ordered
/// within-region lookup is a bounded word scan, sibling checks for
/// coalescing are O(1) bit tests, and no free-list node is ever allocated
/// after construction. Allocation order is identical to the seed's
/// lowest-address-with-wrap policy.
class RestrictedBuddyAllocator : public Allocator {
 public:
  RestrictedBuddyAllocator(uint64_t total_du, RestrictedBuddyConfig config);

  std::string name() const override { return "restricted-buddy"; }
  const RestrictedBuddyConfig& config() const { return config_; }
  uint64_t free_du() const override { return free_du_; }

  void OnCreateFile(FileAllocState* f) override;
  Status Extend(FileAllocState* f, uint64_t want_du) override;

  /// The block-size level (index into block_sizes_du) the grow policy
  /// prescribes for a file whose current allocation is `allocated_du`.
  /// Exposed for tests and the Figure 3 analysis bench.
  uint32_t LevelFor(uint64_t allocated_du) const;

  uint64_t CheckConsistency() const override;

  size_t num_regions() const { return regions_.size(); }
  /// Free units within one region (testing / diagnostics).
  uint64_t RegionFreeDu(size_t r) const { return regions_[r].free_du; }

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;
  uint64_t PartialFreeGranularity() const override {
    return config_.block_sizes_du.front();
  }

 private:
  struct Region {
    uint64_t start_du;
    uint64_t end_du;
    /// free_count[l]: number of free blocks of block_sizes_du[l] inside
    /// this region (the bits themselves live in the disk-wide per-level
    /// bitmaps). Lets the region-selection loops skip empty regions in
    /// O(1) exactly like the seed's set::empty().
    std::vector<uint32_t> free_count;
    uint64_t free_du = 0;
  };

  size_t RegionOf(uint64_t addr) const { return addr / config_.region_du; }

  bool IsFree(uint64_t addr, uint32_t level) const {
    return free_bits_[level].Test(
        static_cast<size_t>(addr / config_.block_sizes_du[level]));
  }

  /// Lowest-addressed free block of `level` within region `r` at address
  /// >= `from`, wrapping to the region start; nullopt when the region has
  /// none. Does not remove the block.
  std::optional<uint64_t> FindInRegion(size_t r, uint32_t level,
                                       uint64_t from) const;

  /// Allocates one block of level `level`, preferring the address
  /// `want_addr` (physical contiguity with the file's previous block) and
  /// the region `want_region` (clustering), falling back per the paper's
  /// region-selection algorithm. Returns the block address or nullopt when
  /// no block can be found anywhere (disk full for this size).
  std::optional<uint64_t> AllocateBlock(uint32_t level,
                                        std::optional<uint64_t> want_addr,
                                        size_t want_region);

  /// Carves a block of `level` at exactly `addr` out of the enclosing free
  /// block of level `src_level` starting at `src_addr`; the remainder is
  /// linked back into the free lists. Caller guarantees containment.
  uint64_t CarveFromBlock(uint32_t level, uint64_t addr, uint32_t src_level,
                          uint64_t src_addr);

  /// Attempts to claim a block of exactly `level` at exactly `addr` by
  /// carving it out of whatever free block covers it. nullopt when the
  /// address is not inside any free block.
  std::optional<uint64_t> TryExactCarve(uint32_t level, uint64_t addr);

  /// Finds a free block of exactly `level` inside region `r` at the lowest
  /// address >= `from`, wrapping to the region start. nullopt if none.
  std::optional<uint64_t> TakeInRegion(size_t r, uint32_t level,
                                       uint64_t from);

  /// Finds a larger free block in region `r` to split for a `level` block,
  /// preferring the next-sequential larger block after `from`.
  std::optional<uint64_t> SplitInRegion(size_t r, uint32_t level,
                                        uint64_t from);

  /// Returns a free block of `level` at `addr` to its region's lists,
  /// coalescing complete sibling sets into parent blocks recursively.
  void FreeBlock(uint64_t addr, uint32_t level);

  void RemoveFreeBlock(uint64_t addr, uint32_t level);
  void InsertFreeBlock(uint64_t addr, uint32_t level);

  /// Inserts the range [start, end) into the free lists as maximal aligned
  /// blocks, without coalescing checks (used for split remainders and
  /// initial seeding).
  void SeedRange(uint64_t start, uint64_t end, bool coalesce);

  RestrictedBuddyConfig config_;
  std::vector<Region> regions_;
  /// free_bits_[l] bit i: the block at address i * block_sizes_du[l] is
  /// free. Disk-wide; regions restrict searches by index range.
  std::vector<util::HierBitmap> free_bits_;
  uint64_t free_du_ = 0;
  size_t last_fd_region_ = 0;
  uint32_t num_levels_;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_RESTRICTED_BUDDY_H_
