#ifndef ROFS_ALLOC_RESTRICTED_BUDDY_H_
#define ROFS_ALLOC_RESTRICTED_BUDDY_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "util/units.h"

namespace rofs::alloc {

/// Configuration of the restricted buddy policy (paper section 4.2).
struct RestrictedBuddyConfig {
  /// Supported block sizes in disk units, ascending. Each size must be an
  /// integral multiple of every smaller size. The paper's configurations:
  /// {1K,8K}, {1K,8K,64K}, {1K,8K,64K,1M}, {1K,8K,64K,1M,16M} (with 1K DU).
  std::vector<uint64_t> block_sizes_du = {1, 8, 64, 1024, 16384};

  /// The grow-policy multiplier g: the allocation unit advances from a_i to
  /// a_{i+1} once the file holds g * a_{i+1} units in size-a_i blocks.
  uint32_t grow_factor = 1;

  /// Whether the disk is divided into bookkeeping regions with per-region
  /// free lists and the paper's region-selection algorithm.
  bool clustered = true;

  /// Bookkeeping region size in disk units (paper: 32 MB).
  uint64_t region_du = 32 * kMiB / kKiB;

  /// Human-readable tag like "5sz/g1/clustered".
  std::string Label() const;
};

/// The restricted buddy allocation policy: a small set of block sizes,
/// blocks of size N aligned to N, buddy coalescing on free, sequential
/// (contiguous) placement of logically sequential blocks whenever possible,
/// and optional clustering into 32 MB bookkeeping regions.
///
/// Free space is tracked per region with one address-ordered set per block
/// size (the paper stores the top level as a bitmap over maximum-size
/// blocks and smaller levels as sorted free lists; an ordered set per level
/// is behaviour-identical and is used uniformly here).
class RestrictedBuddyAllocator : public Allocator {
 public:
  RestrictedBuddyAllocator(uint64_t total_du, RestrictedBuddyConfig config);

  std::string name() const override { return "restricted-buddy"; }
  const RestrictedBuddyConfig& config() const { return config_; }
  uint64_t free_du() const override { return free_du_; }

  void OnCreateFile(FileAllocState* f) override;
  Status Extend(FileAllocState* f, uint64_t want_du) override;

  /// The block-size level (index into block_sizes_du) the grow policy
  /// prescribes for a file whose current allocation is `allocated_du`.
  /// Exposed for tests and the Figure 3 analysis bench.
  uint32_t LevelFor(uint64_t allocated_du) const;

  uint64_t CheckConsistency() const override;

  size_t num_regions() const { return regions_.size(); }
  /// Free units within one region (testing / diagnostics).
  uint64_t RegionFreeDu(size_t r) const { return regions_[r].free_du; }

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;
  uint64_t PartialFreeGranularity() const override {
    return config_.block_sizes_du.front();
  }

 private:
  struct Region {
    uint64_t start_du;
    uint64_t end_du;
    /// free_by_level[i] holds start addresses of free blocks of size
    /// block_sizes_du[i], ordered by address.
    std::vector<std::set<uint64_t>> free_by_level;
    uint64_t free_du = 0;
  };

  size_t RegionOf(uint64_t addr) const { return addr / config_.region_du; }

  /// Allocates one block of level `level`, preferring the address
  /// `want_addr` (physical contiguity with the file's previous block) and
  /// the region `want_region` (clustering), falling back per the paper's
  /// region-selection algorithm. Returns the block address or nullopt when
  /// no block can be found anywhere (disk full for this size).
  std::optional<uint64_t> AllocateBlock(uint32_t level,
                                        std::optional<uint64_t> want_addr,
                                        size_t want_region);

  /// Carves a block of `level` at exactly `addr` out of the enclosing free
  /// block of level `src_level` starting at `src_addr`; the remainder is
  /// linked back into the free lists. Caller guarantees containment.
  uint64_t CarveFromBlock(uint32_t level, uint64_t addr, uint32_t src_level,
                          uint64_t src_addr);

  /// Attempts to claim a block of exactly `level` at exactly `addr` by
  /// carving it out of whatever free block covers it. nullopt when the
  /// address is not inside any free block.
  std::optional<uint64_t> TryExactCarve(uint32_t level, uint64_t addr);

  /// Finds a free block of exactly `level` inside region `r` at the lowest
  /// address >= `from`, wrapping to the region start. nullopt if none.
  std::optional<uint64_t> TakeInRegion(size_t r, uint32_t level,
                                       uint64_t from);

  /// Finds a larger free block in region `r` to split for a `level` block,
  /// preferring the next-sequential larger block after `from`.
  std::optional<uint64_t> SplitInRegion(size_t r, uint32_t level,
                                        uint64_t from);

  /// Returns a free block of `level` at `addr` to its region's lists,
  /// coalescing complete sibling sets into parent blocks recursively.
  void FreeBlock(uint64_t addr, uint32_t level);

  void RemoveFreeBlock(uint64_t addr, uint32_t level);
  void InsertFreeBlock(uint64_t addr, uint32_t level);

  /// Inserts the range [start, end) into the free lists as maximal aligned
  /// blocks, without coalescing checks (used for split remainders and
  /// initial seeding).
  void SeedRange(uint64_t start, uint64_t end, bool coalesce);

  RestrictedBuddyConfig config_;
  std::vector<Region> regions_;
  uint64_t free_du_ = 0;
  size_t last_fd_region_ = 0;
  uint32_t num_levels_;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_RESTRICTED_BUDDY_H_
