#include "alloc/buddy_allocator.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rofs::alloc {

namespace {

uint32_t OrderOf(uint64_t size_du) {
  assert(IsPowerOfTwo(size_du));
  return static_cast<uint32_t>(std::countr_zero(size_du));
}

}  // namespace

BuddyAllocator::BuddyAllocator(uint64_t total_du, uint64_t max_extent_du)
    : Allocator(total_du), max_extent_du_(max_extent_du) {
  assert(total_du > 0);
  assert(IsPowerOfTwo(max_extent_du_));
  num_orders_ = static_cast<uint32_t>(std::bit_width(total_du));
  assert(num_orders_ < kMaxOrders);
  free_bits_.reserve(num_orders_);
  for (uint32_t o = 0; o < num_orders_; ++o) {
    free_bits_.emplace_back(static_cast<size_t>(total_du >> o));
  }
  free_counts_.assign(num_orders_, 0);
  // Tile the (possibly non-power-of-two) space with maximal aligned blocks.
  uint64_t addr = 0;
  while (addr < total_du) {
    uint64_t size = uint64_t{1} << (num_orders_ - 1);
    while (addr % size != 0 || addr + size > total_du) size >>= 1;
    InsertFree(addr, OrderOf(size));
    free_du_ += size;
    addr += size;
  }
  assert(free_du_ == total_du);
}

void BuddyAllocator::InsertFree(uint64_t addr, uint32_t order) {
  const size_t idx = static_cast<size_t>(addr >> order);
  assert(!free_bits_[order].Test(idx) && "double free of a block");
  free_bits_[order].Set(idx);
  ++free_counts_[order];
}

void BuddyAllocator::RemoveFree(uint64_t addr, uint32_t order) {
  const size_t idx = static_cast<size_t>(addr >> order);
  assert(free_bits_[order].Test(idx) && "removing a block that is not free");
  free_bits_[order].Clear(idx);
  --free_counts_[order];
}

bool BuddyAllocator::AllocateBlock(uint32_t order, uint64_t* addr) {
  uint32_t o = order;
  while (o < num_orders_ && free_counts_[o] == 0) ++o;
  if (o >= num_orders_) return false;
  // Lowest-addressed block, to mimic the natural low-address clustering of
  // a fresh system; splits cascade down to the requested order.
  const auto idx = free_bits_[o].FindFirstSet(0);
  assert(idx.has_value());
  uint64_t block = static_cast<uint64_t>(*idx) << o;
  RemoveFree(block, o);
  while (o > order) {
    --o;
    const uint64_t half = uint64_t{1} << o;
    InsertFree(block + half, o);
    ++stats_.splits;
  }
  free_du_ -= uint64_t{1} << order;
  ++stats_.blocks_allocated;
  TraceAlloc(uint64_t{1} << order);
  *addr = block;
  return true;
}

void BuddyAllocator::FreeBlock(uint64_t addr, uint32_t order) {
  // The freed block contributes its own size; coalescing merges buddies
  // that are already counted in free_du_.
  free_du_ += uint64_t{1} << order;
  while (order + 1 < num_orders_) {
    const uint64_t size = uint64_t{1} << order;
    const uint64_t buddy = addr ^ size;
    if (buddy + size > total_du_) break;
    if (!free_bits_[order].Test(static_cast<size_t>(buddy >> order))) break;
    RemoveFree(buddy, order);
    addr = std::min(addr, buddy);
    ++order;
    ++stats_.coalesces;
    TraceCoalesce(1);
  }
  InsertFree(addr, order);
}

void BuddyAllocator::FreeRun(uint64_t start_du, uint64_t len_du) {
  // Greedy decomposition into maximal aligned power-of-two blocks; freeing
  // them individually is equivalent to freeing the original extents, since
  // coalescing reconstructs larger blocks.
  uint64_t addr = start_du;
  uint64_t remaining = len_du;
  while (remaining > 0) {
    uint64_t size = uint64_t{1} << (num_orders_ - 1);
    while (addr % size != 0 || size > remaining) size >>= 1;
    FreeBlock(addr, OrderOf(size));
    addr += size;
    remaining -= size;
  }
}

Status BuddyAllocator::Extend(FileAllocState* f, uint64_t want_du) {
  ++stats_.alloc_calls;
  if (want_du == 0) return Status::OK();
  const uint64_t target = f->allocated_du + want_du;
  while (f->allocated_du < target) {
    // "Each time a new extent is required, the extent size is chosen to
    // double the current size of the file."
    uint64_t ext = f->allocated_du == 0
                       ? NextPowerOfTwo(std::min(want_du, max_extent_du_))
                       : NextPowerOfTwo(f->allocated_du);
    ext = std::min(ext, max_extent_du_);
    uint64_t addr = 0;
    if (!AllocateBlock(OrderOf(ext), &addr)) {
      ++stats_.failed_allocs;
      TraceAllocFailed();
      return Status::ResourceExhausted("buddy: no free block of " +
                                       std::to_string(ext) + " du");
    }
    f->AppendExtent(Extent{addr, ext});
  }
  return Status::OK();
}

uint64_t BuddyAllocator::CheckConsistency() const {
  uint64_t total = 0;
  std::vector<std::pair<uint64_t, uint64_t>> blocks;  // (addr, size)
  for (uint32_t o = 0; o < num_orders_; ++o) {
    const uint64_t size = uint64_t{1} << o;
    uint64_t count = 0;
    for (auto idx = free_bits_[o].FindFirstSet(0); idx.has_value();
         idx = free_bits_[o].FindFirstSet(*idx + 1)) {
      const uint64_t addr = static_cast<uint64_t>(*idx) << o;
      assert(addr % size == 0);
      assert(addr + size <= total_du_);
      blocks.emplace_back(addr, size);
      total += size;
      ++count;
    }
    assert(count == free_counts_[o]);
    (void)count;
  }
  std::sort(blocks.begin(), blocks.end());
  for (size_t i = 1; i < blocks.size(); ++i) {
    assert(blocks[i - 1].first + blocks[i - 1].second <= blocks[i].first &&
           "free blocks overlap");
  }
  assert(total == free_du_);
  return total;
}

}  // namespace rofs::alloc
