#ifndef ROFS_ALLOC_ALLOCATOR_H_
#define ROFS_ALLOC_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::alloc {

/// A contiguous run of disk units assigned to a file. Extents are recorded
/// one per allocated block/extent (never merged), so the owning policy can
/// free each with its original granularity; the file-system layer merges
/// physically adjacent extents when building disk transfers.
struct Extent {
  uint64_t start_du = 0;
  uint64_t length_du = 0;

  uint64_t end_du() const { return start_du + length_du; }
  friend bool operator==(const Extent& a, const Extent& b) {
    return a.start_du == b.start_du && a.length_du == b.length_du;
  }
};

/// Per-file allocation state, owned by the file-system layer and mutated
/// only by the allocation policy.
struct FileAllocState {
  /// Extents in logical order. `cum_du[i]` is the total allocation through
  /// extent i, maintained for O(log n) offset lookup.
  std::vector<Extent> extents;
  std::vector<uint64_t> cum_du;
  uint64_t allocated_du = 0;

  /// Preferred extent size in DU (Table 2 "Allocation Size"); used by the
  /// extent-based policy to choose an extent-size range.
  uint64_t pref_extent_du = 0;
  /// Bookkeeping region holding this file's descriptor (clustered
  /// restricted-buddy policy).
  uint64_t fd_region = 0;
  /// Extent-size range chosen for this file (extent-based policy).
  int32_t range_index = -1;

  void AppendExtent(Extent e) {
    extents.push_back(e);
    allocated_du += e.length_du;
    cum_du.push_back(allocated_du);
  }

  /// Recomputes cum_du from extent index `from` onward (after tail edits).
  void RebuildCumFrom(size_t from) {
    cum_du.resize(extents.size());
    uint64_t acc = from == 0 ? 0 : cum_du[from - 1];
    for (size_t i = from; i < extents.size(); ++i) {
      acc += extents[i].length_du;
      cum_du[i] = acc;
    }
    allocated_du = extents.empty() ? 0 : cum_du.back();
  }
};

/// Counters shared by all policies; exposed for tests and microbenchmarks.
struct AllocatorStats {
  uint64_t alloc_calls = 0;
  uint64_t blocks_allocated = 0;
  uint64_t blocks_freed = 0;
  uint64_t splits = 0;
  uint64_t coalesces = 0;
  uint64_t failed_allocs = 0;
};

/// Interface implemented by the four allocation policies under study
/// (paper section 4): Koch buddy, restricted buddy, extent-based, and the
/// fixed-block baseline.
///
/// All sizes are in disk units (DU). The allocator manages the linear
/// logical address space [0, total_du); the disk layout beneath it turns
/// contiguous logical runs into striped physical transfers.
class Allocator {
 public:
  explicit Allocator(uint64_t total_du) : total_du_(total_du) {}
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  virtual std::string name() const = 0;

  uint64_t total_du() const { return total_du_; }
  virtual uint64_t free_du() const = 0;
  uint64_t used_du() const { return total_du_ - free_du(); }

  /// Fraction of the disk system in use.
  double Utilization() const {
    return total_du_ == 0
               ? 0.0
               : static_cast<double>(used_du()) / static_cast<double>(total_du_);
  }

  /// Hook called when a file is created (e.g. to place its descriptor in a
  /// bookkeeping region). Default: nothing.
  virtual void OnCreateFile(FileAllocState* f) { (void)f; }

  /// Grows `f` by at least `want_du` units (policies round up to their own
  /// block/extent granularity). Appends the new extents to `f` and returns
  /// OK, or ResourceExhausted when the disk system cannot satisfy the
  /// request — the paper's "disk full condition". On failure the file
  /// keeps whatever extents were appended before the failing block.
  virtual Status Extend(FileAllocState* f, uint64_t want_du) = 0;

  /// Frees up to `n_du` units from the file's tail, whole blocks at a time
  /// (the boundary block is split when the policy supports it). Returns the
  /// number of units actually freed.
  virtual uint64_t TruncateTail(FileAllocState* f, uint64_t n_du);

  /// Frees the entire allocation of `f`.
  virtual void DeleteFile(FileAllocState* f);

  const AllocatorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AllocatorStats{}; }

  /// Attaches an observability tracer (null detaches). Policies report
  /// alloc/free/coalesce events through the Trace* hooks below.
  void set_tracer(obs::SimTracer* tracer) { tracer_ = tracer; }

  /// Validates internal free-space bookkeeping; used by tests. Returns the
  /// recomputed free unit count.
  virtual uint64_t CheckConsistency() const = 0;

 protected:
  /// Returns the units of [start, start+len) to the policy's free store.
  /// `len` endpoints are always aligned to the policy's smallest unit.
  virtual void FreeRun(uint64_t start_du, uint64_t len_du) = 0;

  /// Largest prefix of `want_du` that may be freed from a partial tail
  /// block (policies that only free whole blocks round down). Default:
  /// everything.
  virtual uint64_t PartialFreeGranularity() const { return 1; }

  /// Tracer hooks, called by policies beside their stats_ increments.
  /// The null check inlines so the disabled cost is one branch; the
  /// recording body lives in allocator.cc to keep obs headers out of
  /// every policy's include graph.
  void TraceAlloc(uint64_t len_du) {
    if (tracer_ != nullptr) TraceAllocSlow(len_du);
  }
  void TraceFree(uint64_t len_du) {
    if (tracer_ != nullptr) TraceFreeSlow(len_du);
  }
  void TraceCoalesce(uint64_t merges) {
    if (tracer_ != nullptr) TraceCoalesceSlow(merges);
  }
  void TraceAllocFailed() {
    if (tracer_ != nullptr) TraceAllocFailedSlow();
  }

  uint64_t total_du_;
  AllocatorStats stats_;

 private:
  void TraceAllocSlow(uint64_t len_du);
  void TraceFreeSlow(uint64_t len_du);
  void TraceCoalesceSlow(uint64_t merges);
  void TraceAllocFailedSlow();

  obs::SimTracer* tracer_ = nullptr;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_ALLOCATOR_H_
