#ifndef ROFS_ALLOC_EXTENT_ALLOCATOR_H_
#define ROFS_ALLOC_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/free_extent_map.h"
#include "util/random.h"

namespace rofs::alloc {

/// Fit policy for choosing a free extent (paper section 4.3).
enum class FitPolicy { kFirstFit, kBestFit };

std::string FitPolicyToString(FitPolicy p);

/// Configuration of the extent-based policy.
struct ExtentAllocatorConfig {
  /// Means of the extent-size ranges, in disk units. Each range is a
  /// normal distribution with standard deviation 10% of the mean. The
  /// paper sweeps 1 to 5 ranges per workload.
  std::vector<uint64_t> range_means_du = {512, 1024, 16384};
  FitPolicy fit = FitPolicy::kFirstFit;
  /// Seed for the extent-size draws.
  uint64_t seed = 42;

  std::string Label() const;
};

/// Extent-based allocation following the paper's STON89-style model:
/// extents may start at any disk-unit address; freed extents coalesce with
/// free neighbors; each file draws its extent sizes from the size range
/// closest (in log space) to its preferred allocation size (Table 2
/// "Allocation Size"), which reproduces Table 4's extents-per-file
/// behaviour. No attempt is made to place logically sequential extents
/// contiguously — large extents themselves provide the bandwidth.
class ExtentAllocator : public Allocator {
 public:
  ExtentAllocator(uint64_t total_du, ExtentAllocatorConfig config);

  std::string name() const override {
    return "extent-" + FitPolicyToString(config_.fit);
  }
  const ExtentAllocatorConfig& config() const { return config_; }
  uint64_t free_du() const override { return free_map_.free_du(); }

  void OnCreateFile(FileAllocState* f) override;
  Status Extend(FileAllocState* f, uint64_t want_du) override;

  uint64_t CheckConsistency() const override;

  /// The range index a file with the given preferred allocation size
  /// would use (testing).
  int32_t RangeFor(uint64_t pref_du) const;

  /// Number of free fragments (external-fragmentation diagnostics).
  size_t num_fragments() const { return free_map_.num_fragments(); }

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;

 private:
  /// Draws an extent size from range `r`: N(mean, 0.1 * mean), clamped to
  /// at least one disk unit.
  uint64_t DrawExtentSize(int32_t r);

  ExtentAllocatorConfig config_;
  FreeExtentMap free_map_;
  Rng rng_;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_EXTENT_ALLOCATOR_H_
