#include "alloc/restricted_buddy.h"

#include <algorithm>
#include <cassert>

#include "util/table.h"

namespace rofs::alloc {

std::string RestrictedBuddyConfig::Label() const {
  return FormatString("%zusz/g%u/%s", block_sizes_du.size(), grow_factor,
                      clustered ? "clustered" : "unclustered");
}

RestrictedBuddyAllocator::RestrictedBuddyAllocator(
    uint64_t total_du, RestrictedBuddyConfig config)
    : Allocator(total_du), config_(std::move(config)) {
  assert(!config_.block_sizes_du.empty());
  assert(config_.grow_factor >= 1);
  num_levels_ = static_cast<uint32_t>(config_.block_sizes_du.size());
  for (uint32_t i = 0; i + 1 < num_levels_; ++i) {
    assert(config_.block_sizes_du[i] < config_.block_sizes_du[i + 1]);
    assert(config_.block_sizes_du[i + 1] % config_.block_sizes_du[i] == 0 &&
           "each block size must be a multiple of all smaller sizes");
  }
  if (!config_.clustered) {
    // Unclustered: a single bookkeeping region spans the whole disk.
    config_.region_du = total_du;
  }
  assert(config_.region_du >= config_.block_sizes_du.back());
  assert(config_.clustered
             ? config_.region_du % config_.block_sizes_du.back() == 0
             : true);
  const uint64_t region_du = config_.region_du;
  const size_t num_regions =
      static_cast<size_t>(CeilDiv(total_du, region_du));
  regions_.resize(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    regions_[r].start_du = r * region_du;
    regions_[r].end_du = std::min(total_du, (r + 1) * region_du);
    regions_[r].free_count.assign(num_levels_, 0);
  }
  free_bits_.reserve(num_levels_);
  for (uint32_t l = 0; l < num_levels_; ++l) {
    free_bits_.emplace_back(
        static_cast<size_t>(total_du / config_.block_sizes_du[l]));
  }
  SeedRange(0, total_du, /*coalesce=*/false);
  assert(free_du_ == total_du);
}

void RestrictedBuddyAllocator::InsertFreeBlock(uint64_t addr, uint32_t level) {
  Region& region = regions_[RegionOf(addr)];
  const uint64_t size = config_.block_sizes_du[level];
  assert(addr >= region.start_du && addr + size <= region.end_du);
  const size_t idx = static_cast<size_t>(addr / size);
  assert(!free_bits_[level].Test(idx) && "double free of a block");
  free_bits_[level].Set(idx);
  ++region.free_count[level];
  region.free_du += size;
  free_du_ += size;
}

void RestrictedBuddyAllocator::RemoveFreeBlock(uint64_t addr, uint32_t level) {
  Region& region = regions_[RegionOf(addr)];
  const uint64_t size = config_.block_sizes_du[level];
  const size_t idx = static_cast<size_t>(addr / size);
  assert(free_bits_[level].Test(idx) && "removing a block that is not free");
  free_bits_[level].Clear(idx);
  assert(region.free_count[level] > 0);
  --region.free_count[level];
  region.free_du -= size;
  free_du_ -= size;
}

void RestrictedBuddyAllocator::SeedRange(uint64_t start, uint64_t end,
                                         bool coalesce) {
  uint64_t addr = start;
  while (addr < end) {
    uint32_t level = num_levels_;
    while (level > 0) {
      const uint64_t s = config_.block_sizes_du[level - 1];
      if (addr % s == 0 && addr + s <= end) break;
      --level;
    }
    assert(level > 0 && "range endpoints must be aligned to smallest block");
    const uint64_t s = config_.block_sizes_du[level - 1];
    if (coalesce) {
      FreeBlock(addr, level - 1);
    } else {
      InsertFreeBlock(addr, level - 1);
    }
    addr += s;
  }
}

void RestrictedBuddyAllocator::FreeBlock(uint64_t addr, uint32_t level) {
  InsertFreeBlock(addr, level);
  // Coalesce complete sibling sets into the parent block, recursively.
  // Sibling residency is an O(1) bit test per sibling in the level's
  // bitmap.
  while (level + 1 < num_levels_) {
    const uint64_t size = config_.block_sizes_du[level];
    const uint64_t parent_size = config_.block_sizes_du[level + 1];
    const uint64_t parent_addr = RoundDown(addr, parent_size);
    if (parent_addr + parent_size > total_du_) break;
    const uint64_t siblings = parent_size / size;
    bool all_free = true;
    for (uint64_t j = 0; j < siblings; ++j) {
      if (!IsFree(parent_addr + j * size, level)) {
        all_free = false;
        break;
      }
    }
    if (!all_free) break;
    for (uint64_t j = 0; j < siblings; ++j) {
      RemoveFreeBlock(parent_addr + j * size, level);
    }
    ++level;
    InsertFreeBlock(parent_addr, level);
    ++stats_.coalesces;
    TraceCoalesce(1);
    addr = parent_addr;
  }
}

void RestrictedBuddyAllocator::FreeRun(uint64_t start_du, uint64_t len_du) {
  assert(start_du % config_.block_sizes_du.front() == 0);
  assert(len_du % config_.block_sizes_du.front() == 0);
  SeedRange(start_du, start_du + len_du, /*coalesce=*/true);
}

uint64_t RestrictedBuddyAllocator::CarveFromBlock(uint32_t level,
                                                  uint64_t addr,
                                                  uint32_t src_level,
                                                  uint64_t src_addr) {
  const uint64_t size = config_.block_sizes_du[level];
  const uint64_t src_size = config_.block_sizes_du[src_level];
  assert(addr >= src_addr && addr + size <= src_addr + src_size);
  RemoveFreeBlock(src_addr, src_level);
  if (src_level != level) ++stats_.splits;
  // Return the remainder before and after the carved block as maximal
  // aligned blocks. They cannot coalesce (their sibling is the carved,
  // now-allocated block), so plain insertion suffices.
  if (addr > src_addr) SeedRange(src_addr, addr, /*coalesce=*/false);
  if (addr + size < src_addr + src_size) {
    SeedRange(addr + size, src_addr + src_size, /*coalesce=*/false);
  }
  ++stats_.blocks_allocated;
  TraceAlloc(size);
  return addr;
}

std::optional<uint64_t> RestrictedBuddyAllocator::FindInRegion(
    size_t r, uint32_t level, uint64_t from) const {
  const Region& region = regions_[r];
  if (region.free_count[level] == 0) return std::nullopt;
  const uint64_t size = config_.block_sizes_du[level];
  // Valid block indices within the region: [lo, hi). Region starts are
  // aligned to every block size; hi rounds the (possibly ragged) region
  // end down so any in-range block fits entirely.
  const size_t lo = static_cast<size_t>(region.start_du / size);
  const size_t hi = static_cast<size_t>(region.end_du / size);
  size_t from_idx =
      from <= region.start_du ? lo : static_cast<size_t>(CeilDiv(from, size));
  from_idx = std::min(from_idx, hi);
  // Exactly the seed's lower_bound-with-wrap over an address-ordered set:
  // lowest address >= from, else the lowest address in the region.
  auto idx = free_bits_[level].FindFirstSetInRange(from_idx, hi);
  if (!idx.has_value() && from_idx > lo) {
    idx = free_bits_[level].FindFirstSetInRange(lo, from_idx);
  }
  assert(idx.has_value() && "free_count disagrees with the bitmap");
  return static_cast<uint64_t>(*idx) * size;
}

std::optional<uint64_t> RestrictedBuddyAllocator::TakeInRegion(size_t r,
                                                               uint32_t level,
                                                               uint64_t from) {
  const auto addr = FindInRegion(r, level, from);
  if (!addr.has_value()) return std::nullopt;
  RemoveFreeBlock(*addr, level);
  ++stats_.blocks_allocated;
  TraceAlloc(config_.block_sizes_du[level]);
  return addr;
}

std::optional<uint64_t> RestrictedBuddyAllocator::SplitInRegion(size_t r,
                                                                uint32_t level,
                                                                uint64_t from) {
  // Prefer the smallest sufficient source block, keeping the largest
  // blocks intact for large allocations; among equals prefer the next
  // sequential block after `from`.
  for (uint32_t j = level + 1; j < num_levels_; ++j) {
    const auto src = FindInRegion(r, j, from);
    if (!src.has_value()) continue;
    return CarveFromBlock(level, *src, j, *src);
  }
  return std::nullopt;
}

std::optional<uint64_t> RestrictedBuddyAllocator::TryExactCarve(
    uint32_t level, uint64_t addr) {
  const uint64_t size = config_.block_sizes_du[level];
  if (addr % size != 0 || addr + size > total_du_) return std::nullopt;
  for (uint32_t j = level; j < num_levels_; ++j) {
    const uint64_t src_size = config_.block_sizes_du[j];
    const uint64_t src = RoundDown(addr, src_size);
    if (src + src_size > total_du_) break;
    if (IsFree(src, j)) {
      return CarveFromBlock(level, addr, j, src);
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> RestrictedBuddyAllocator::AllocateBlock(
    uint32_t level, std::optional<uint64_t> want_addr, size_t want_region) {
  // 1. Exact physical contiguity with the file's previous block: carve at
  // want_addr out of whatever free block covers it. In the clustered
  // configuration contiguity is only attempted within the optimal region
  // (a forced region change places the next block without regard to the
  // previous allocation; paper section 4.2).
  if (want_addr &&
      (!config_.clustered || RegionOf(*want_addr) == want_region)) {
    if (auto addr = TryExactCarve(level, *want_addr)) return addr;
  }
  const uint64_t from =
      want_addr.value_or(regions_[want_region].start_du);
  // 2. A block of the correct size in the optimal region.
  if (auto addr = TakeInRegion(want_region, level, from)) return addr;
  // 3. Adequate contiguous space in the optimal region: split a larger
  // block, preferably the next sequential one.
  if (auto addr = SplitInRegion(want_region, level, from)) return addr;
  // 4. A block of the correct size in any region.
  const size_t n = regions_.size();
  for (size_t k = 1; k < n; ++k) {
    const size_t r = (want_region + k) % n;
    if (auto addr =
            TakeInRegion(r, level, regions_[r].start_du)) {
      return addr;
    }
  }
  // 5. The next region with available contiguous space: split anywhere.
  for (size_t k = 1; k < n; ++k) {
    const size_t r = (want_region + k) % n;
    if (auto addr = SplitInRegion(r, level, regions_[r].start_du)) {
      return addr;
    }
  }
  return std::nullopt;
}

uint32_t RestrictedBuddyAllocator::LevelFor(uint64_t allocated_du) const {
  uint64_t x = allocated_du;
  for (uint32_t i = 0; i + 1 < num_levels_; ++i) {
    const uint64_t quota =
        static_cast<uint64_t>(config_.grow_factor) *
        config_.block_sizes_du[i + 1];
    if (x < quota) return i;
    x -= quota;
  }
  return num_levels_ - 1;
}

void RestrictedBuddyAllocator::OnCreateFile(FileAllocState* f) {
  if (config_.clustered) {
    // "If the allocation request is for a file descriptor, the optimal
    // region is the region after the region in which the last request was
    // satisfied."
    last_fd_region_ = (last_fd_region_ + 1) % regions_.size();
    f->fd_region = last_fd_region_;
  } else {
    f->fd_region = 0;
  }
}

Status RestrictedBuddyAllocator::Extend(FileAllocState* f, uint64_t want_du) {
  ++stats_.alloc_calls;
  const uint64_t target = f->allocated_du + want_du;
  while (f->allocated_du < target) {
    const uint32_t level = LevelFor(f->allocated_du);
    std::optional<uint64_t> want_addr;
    size_t want_region = config_.clustered ? f->fd_region : 0;
    if (!f->extents.empty()) {
      const Extent& last = f->extents.back();
      if (last.end_du() < total_du_) want_addr = last.end_du();
      if (config_.clustered) want_region = RegionOf(last.start_du);
    }
    // Allocate at the grow policy's preferred level, falling back to
    // smaller block sizes when no block of the preferred size can be found
    // or split anywhere. Without the fallback a nearly full system wastes
    // all sub-maximum free space for large files (see DESIGN.md). Note
    // that a file whose length is not a multiple of the new block size
    // pays a seek when its block size grows — the Figure 3 interaction —
    // because exact-address carving requires alignment.
    std::optional<uint64_t> addr;
    uint32_t chosen = level;
    for (int32_t l = static_cast<int32_t>(level); !addr && l >= 0; --l) {
      addr = AllocateBlock(static_cast<uint32_t>(l), want_addr, want_region);
      if (addr) chosen = static_cast<uint32_t>(l);
    }
    if (!addr) {
      ++stats_.failed_allocs;
      TraceAllocFailed();
      return Status::ResourceExhausted(
          FormatString("restricted-buddy: no block of %llu du or smaller",
                       static_cast<unsigned long long>(
                           config_.block_sizes_du[level])));
    }
    f->AppendExtent(Extent{*addr, config_.block_sizes_du[chosen]});
  }
  return Status::OK();
}

uint64_t RestrictedBuddyAllocator::CheckConsistency() const {
  uint64_t total = 0;
  std::vector<std::pair<uint64_t, uint64_t>> blocks;
  for (size_t r = 0; r < regions_.size(); ++r) {
    const Region& region = regions_[r];
    uint64_t region_total = 0;
    for (uint32_t level = 0; level < num_levels_; ++level) {
      const uint64_t size = config_.block_sizes_du[level];
      const size_t lo = static_cast<size_t>(region.start_du / size);
      const size_t hi = static_cast<size_t>(region.end_du / size);
      uint64_t count = 0;
      for (auto idx = free_bits_[level].FindFirstSetInRange(lo, hi);
           idx.has_value();
           idx = free_bits_[level].FindFirstSetInRange(*idx + 1, hi)) {
        const uint64_t addr = static_cast<uint64_t>(*idx) * size;
        assert(addr % size == 0);
        assert(addr >= region.start_du && addr + size <= region.end_du);
        blocks.emplace_back(addr, size);
        region_total += size;
        ++count;
        // Coalescing invariant: a free non-top block must have at least
        // one non-free sibling.
        if (level + 1 < num_levels_) {
          const uint64_t parent_size = config_.block_sizes_du[level + 1];
          const uint64_t parent = RoundDown(addr, parent_size);
          if (parent + parent_size <= total_du_) {
            bool all_free = true;
            for (uint64_t a = parent; a < parent + parent_size; a += size) {
              if (!IsFree(a, level)) {
                all_free = false;
                break;
              }
            }
            assert(!all_free && "uncoalesced complete sibling set");
            (void)all_free;
          }
        }
      }
      assert(count == region.free_count[level]);
      (void)count;
    }
    assert(region_total == region.free_du);
    total += region_total;
  }
  std::sort(blocks.begin(), blocks.end());
  for (size_t i = 1; i < blocks.size(); ++i) {
    assert(blocks[i - 1].first + blocks[i - 1].second <= blocks[i].first &&
           "free blocks overlap");
  }
  assert(total == free_du_);
  return total;
}

}  // namespace rofs::alloc
