#ifndef ROFS_ALLOC_FREE_EXTENT_MAP_H_
#define ROFS_ALLOC_FREE_EXTENT_MAP_H_

#include <cstdint>
#include <optional>
#include <set>
#include <utility>

namespace rofs::alloc {

/// Free-space index for the extent-based policy (paper section 4.3):
/// address-ordered free extents with eager coalescing ("When an extent is
/// freed, it is coalesced with its adjoining extents if they are free").
///
/// The address order lives in a treap augmented with the maximum extent
/// length per subtree, which makes exact first-fit (lowest-addressed
/// extent of sufficient length) an O(log n) descent instead of a linear
/// scan — the TS workload churns hundreds of thousands of small extents,
/// where a scanning first-fit is quadratic. A (length, address) ordered
/// set provides best-fit.
class FreeExtentMap {
 public:
  /// Starts empty; seed with Free() calls (typically one covering the
  /// whole address space).
  FreeExtentMap() = default;
  ~FreeExtentMap();

  FreeExtentMap(const FreeExtentMap&) = delete;
  FreeExtentMap& operator=(const FreeExtentMap&) = delete;

  uint64_t free_du() const { return free_du_; }
  size_t num_fragments() const { return by_size_.size(); }

  /// Length of the largest free extent (0 when empty).
  uint64_t LargestFragment() const;

  /// First-fit: carves `n` units from the front of the lowest-addressed
  /// free extent of length >= n. Returns the start address, or nullopt.
  std::optional<uint64_t> AllocateFirstFit(uint64_t n);

  /// Best-fit: carves `n` units from the smallest free extent of length
  /// >= n (ties broken toward lower addresses). Returns start or nullopt.
  std::optional<uint64_t> AllocateBestFit(uint64_t n);

  /// Claims exactly [addr, addr+n) if that range is entirely free.
  bool AllocateAt(uint64_t addr, uint64_t n);

  /// Returns [addr, addr+n) to the free store, coalescing with neighbors.
  /// The range must currently be allocated (checked in debug builds).
  /// Returns how many adjoining free extents were merged in (0..2), so
  /// callers can feed AllocatorStats::coalesces.
  int Free(uint64_t addr, uint64_t n);

  /// True when [addr, addr+n) lies entirely within one free extent.
  bool IsFree(uint64_t addr, uint64_t n) const;

  /// Recomputes the free count from the index, verifying that the treap
  /// order/augmentation and the size index agree and that no extents touch
  /// or overlap. Returns the recomputed free unit count.
  uint64_t CheckConsistency() const;

 private:
  struct Node {
    uint64_t addr;
    uint64_t len;
    uint64_t max_len;   // Maximum extent length within this subtree.
    uint32_t priority;  // Treap heap priority.
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static uint64_t MaxLen(const Node* t) { return t ? t->max_len : 0; }
  static void Pull(Node* t);
  static void SplitByAddr(Node* t, uint64_t addr, Node** lo, Node** hi);
  static Node* MergeTrees(Node* lo, Node* hi);
  static void DeleteTree(Node* t);

  Node* InsertNode(Node* t, Node* n);
  Node* EraseNode(Node* t, uint64_t addr);

  /// Greatest node with node->addr <= addr, or null.
  Node* FindFloor(uint64_t addr) const;
  /// Least node with node->addr >= addr, or null.
  Node* FindCeil(uint64_t addr) const;
  /// Lowest-addressed node with len >= n; requires MaxLen(root_) >= n.
  Node* FindFirstFit(uint64_t n) const;

  uint32_t NextPriority();

  void Insert(uint64_t addr, uint64_t len);
  void Erase(uint64_t addr, uint64_t len);

  uint64_t CheckSubtree(const Node* t, uint64_t lo_bound,
                        uint64_t* prev_end, bool* have_prev) const;

  Node* root_ = nullptr;
  std::set<std::pair<uint64_t, uint64_t>> by_size_;  // (len, addr)
  uint64_t free_du_ = 0;
  uint64_t prio_state_ = 0x853C49E6748FEA9Bull;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_FREE_EXTENT_MAP_H_
