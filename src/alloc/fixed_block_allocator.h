#ifndef ROFS_ALLOC_FIXED_BLOCK_ALLOCATOR_H_
#define ROFS_ALLOC_FIXED_BLOCK_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <string>

#include "alloc/allocator.h"

namespace rofs::alloc {

/// The fixed-block baseline of the paper's section 5 comparison: a single
/// block size (4K for the time-sharing workload, 16K for TP/SC), blocks
/// allocated off the head of a free list and returned to its tail, with no
/// bias toward striping or contiguous layout — the UNIX V7 style system
/// whose logically sequential blocks scatter across the disk as it ages.
class FixedBlockAllocator : public Allocator {
 public:
  FixedBlockAllocator(uint64_t total_du, uint64_t block_du);

  std::string name() const override { return "fixed-block"; }
  uint64_t block_du() const { return block_du_; }
  uint64_t free_du() const override {
    return static_cast<uint64_t>(free_list_.size()) * block_du_;
  }

  Status Extend(FileAllocState* f, uint64_t want_du) override;

  uint64_t CheckConsistency() const override;

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;
  uint64_t PartialFreeGranularity() const override { return block_du_; }

 private:
  uint64_t block_du_;
  std::deque<uint64_t> free_list_;  // Block start addresses, FIFO.
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_FIXED_BLOCK_ALLOCATOR_H_
