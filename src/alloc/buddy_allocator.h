#ifndef ROFS_ALLOC_BUDDY_ALLOCATOR_H_
#define ROFS_ALLOC_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "util/hier_bitmap.h"
#include "util/units.h"

namespace rofs::alloc {

/// Koch's buddy-system file allocation (paper section 4.1, [KOCH87]).
///
/// A file is composed of extents whose sizes are powers of two (in disk
/// units). Each time a new extent is required, its size is chosen to double
/// the current size of the file, capped at `max_extent_du` (Koch's DTSS
/// system bounds extent size; the paper notes 64M blocks for the 100M+
/// files of the SC workload). The nightly reallocation process of KOCH87 is
/// deliberately not simulated, exactly as in the paper.
///
/// Free space is kept in classic binary-buddy free lists, one per
/// power-of-two order — stored as hierarchical bitmaps (bit i of order o =
/// block at address i<<o is free) rather than ordered sets: the
/// lowest-address lookup is an O(levels) word scan, buddy checks are O(1)
/// bit tests, and no allocation happens after construction.
class BuddyAllocator : public Allocator {
 public:
  /// `total_du` need not be a power of two; the space is seeded with the
  /// maximal aligned power-of-two blocks that tile it.
  explicit BuddyAllocator(uint64_t total_du,
                          uint64_t max_extent_du = 64 * kMiB / kKiB);

  std::string name() const override { return "buddy"; }
  uint64_t free_du() const override { return free_du_; }

  Status Extend(FileAllocState* f, uint64_t want_du) override;

  uint64_t CheckConsistency() const override;

  /// Number of free blocks of the given order (testing).
  size_t FreeBlocksOfOrder(uint32_t order) const {
    return free_counts_[order];
  }

 protected:
  void FreeRun(uint64_t start_du, uint64_t len_du) override;

  /// Removes and returns a free block of exactly `order`, splitting larger
  /// blocks as needed. Returns false when no block of order >= `order` is
  /// free anywhere (external fragmentation / disk full). Protected so the
  /// block-level microbenchmark can drive the free lists directly, without
  /// per-call FileAllocState bookkeeping.
  bool AllocateBlock(uint32_t order, uint64_t* addr);

  /// Returns a block to the free lists, coalescing with its buddy while
  /// possible. Note: adjusts free_du_ by the freed size (FreeRun's
  /// counterpart); callers pairing it with AllocateBlock stay balanced.
  void FreeBlock(uint64_t addr, uint32_t order);

 private:
  static constexpr uint32_t kMaxOrders = 40;

  void InsertFree(uint64_t addr, uint32_t order);
  void RemoveFree(uint64_t addr, uint32_t order);

  uint64_t max_extent_du_;
  uint32_t num_orders_;  // Orders 0 .. num_orders_-1 are usable.
  /// free_bits_[o] bit i: the block at address i << o is free.
  std::vector<util::HierBitmap> free_bits_;
  std::vector<uint64_t> free_counts_;
  uint64_t free_du_ = 0;
};

}  // namespace rofs::alloc

#endif  // ROFS_ALLOC_BUDDY_ALLOCATOR_H_
