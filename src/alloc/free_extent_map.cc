#include "alloc/free_extent_map.h"

#include <algorithm>
#include <cassert>

namespace rofs::alloc {

FreeExtentMap::~FreeExtentMap() { DeleteTree(root_); }

void FreeExtentMap::DeleteTree(Node* t) {
  if (t == nullptr) return;
  DeleteTree(t->left);
  DeleteTree(t->right);
  delete t;
}

void FreeExtentMap::Pull(Node* t) {
  t->max_len = std::max({t->len, MaxLen(t->left), MaxLen(t->right)});
}

void FreeExtentMap::SplitByAddr(Node* t, uint64_t addr, Node** lo,
                                Node** hi) {
  if (t == nullptr) {
    *lo = *hi = nullptr;
    return;
  }
  if (t->addr < addr) {
    SplitByAddr(t->right, addr, &t->right, hi);
    *lo = t;
  } else {
    SplitByAddr(t->left, addr, lo, &t->left);
    *hi = t;
  }
  Pull(t);
}

FreeExtentMap::Node* FreeExtentMap::MergeTrees(Node* lo, Node* hi) {
  if (lo == nullptr) return hi;
  if (hi == nullptr) return lo;
  if (lo->priority > hi->priority) {
    lo->right = MergeTrees(lo->right, hi);
    Pull(lo);
    return lo;
  }
  hi->left = MergeTrees(lo, hi->left);
  Pull(hi);
  return hi;
}

uint32_t FreeExtentMap::NextPriority() {
  // xorshift64*: deterministic treap shapes for reproducible runs.
  prio_state_ ^= prio_state_ >> 12;
  prio_state_ ^= prio_state_ << 25;
  prio_state_ ^= prio_state_ >> 27;
  return static_cast<uint32_t>((prio_state_ * 0x2545F4914F6CDD1Dull) >> 32);
}

FreeExtentMap::Node* FreeExtentMap::InsertNode(Node* t, Node* n) {
  if (t == nullptr) return n;
  if (n->priority > t->priority) {
    SplitByAddr(t, n->addr, &n->left, &n->right);
    Pull(n);
    return n;
  }
  if (n->addr < t->addr) {
    t->left = InsertNode(t->left, n);
  } else {
    t->right = InsertNode(t->right, n);
  }
  Pull(t);
  return t;
}

FreeExtentMap::Node* FreeExtentMap::EraseNode(Node* t, uint64_t addr) {
  assert(t != nullptr && "erasing a missing extent");
  if (t->addr == addr) {
    Node* merged = MergeTrees(t->left, t->right);
    delete t;
    return merged;
  }
  if (addr < t->addr) {
    t->left = EraseNode(t->left, addr);
  } else {
    t->right = EraseNode(t->right, addr);
  }
  Pull(t);
  return t;
}

void FreeExtentMap::Insert(uint64_t addr, uint64_t len) {
  assert(len > 0);
  Node* n = new Node{addr, len, len, NextPriority()};
  root_ = InsertNode(root_, n);
  by_size_.emplace(len, addr);
  free_du_ += len;
}

void FreeExtentMap::Erase(uint64_t addr, uint64_t len) {
  root_ = EraseNode(root_, addr);
  by_size_.erase({len, addr});
  free_du_ -= len;
}

FreeExtentMap::Node* FreeExtentMap::FindFloor(uint64_t addr) const {
  Node* best = nullptr;
  Node* t = root_;
  while (t != nullptr) {
    if (t->addr <= addr) {
      best = t;
      t = t->right;
    } else {
      t = t->left;
    }
  }
  return best;
}

FreeExtentMap::Node* FreeExtentMap::FindCeil(uint64_t addr) const {
  Node* best = nullptr;
  Node* t = root_;
  while (t != nullptr) {
    if (t->addr >= addr) {
      best = t;
      t = t->left;
    } else {
      t = t->right;
    }
  }
  return best;
}

FreeExtentMap::Node* FreeExtentMap::FindFirstFit(uint64_t n) const {
  Node* t = root_;
  while (t != nullptr) {
    if (MaxLen(t->left) >= n) {
      t = t->left;
    } else if (t->len >= n) {
      return t;
    } else {
      t = t->right;
    }
  }
  return nullptr;
}

uint64_t FreeExtentMap::LargestFragment() const { return MaxLen(root_); }

std::optional<uint64_t> FreeExtentMap::AllocateFirstFit(uint64_t n) {
  assert(n > 0);
  if (MaxLen(root_) < n) return std::nullopt;
  Node* hit = FindFirstFit(n);
  assert(hit != nullptr);
  const uint64_t addr = hit->addr;
  const uint64_t len = hit->len;
  Erase(addr, len);
  if (len > n) Insert(addr + n, len - n);
  return addr;
}

std::optional<uint64_t> FreeExtentMap::AllocateBestFit(uint64_t n) {
  assert(n > 0);
  auto it = by_size_.lower_bound({n, 0});
  if (it == by_size_.end()) return std::nullopt;
  const uint64_t len = it->first;
  const uint64_t addr = it->second;
  Erase(addr, len);
  if (len > n) Insert(addr + n, len - n);
  return addr;
}

bool FreeExtentMap::IsFree(uint64_t addr, uint64_t n) const {
  const Node* floor = FindFloor(addr);
  return floor != nullptr && addr >= floor->addr &&
         addr + n <= floor->addr + floor->len;
}

bool FreeExtentMap::AllocateAt(uint64_t addr, uint64_t n) {
  assert(n > 0);
  Node* floor = FindFloor(addr);
  if (floor == nullptr || addr + n > floor->addr + floor->len) return false;
  const uint64_t ext_addr = floor->addr;
  const uint64_t ext_len = floor->len;
  Erase(ext_addr, ext_len);
  if (addr > ext_addr) Insert(ext_addr, addr - ext_addr);
  if (addr + n < ext_addr + ext_len) {
    Insert(addr + n, ext_addr + ext_len - (addr + n));
  }
  return true;
}

int FreeExtentMap::Free(uint64_t addr, uint64_t n) {
  assert(n > 0);
  assert(!IsFree(addr, 1) && "double free");
  uint64_t new_addr = addr;
  uint64_t new_len = n;
  int merges = 0;
  // Coalesce with the predecessor if it ends exactly at `addr`.
  if (Node* floor = FindFloor(addr)) {
    assert(floor->addr + floor->len <= addr && "free overlaps predecessor");
    if (floor->addr + floor->len == addr) {
      new_addr = floor->addr;
      new_len += floor->len;
      Erase(floor->addr, floor->len);
      ++merges;
    }
  }
  // Coalesce with the successor if it starts exactly at addr + n.
  if (Node* ceil = FindCeil(addr + n)) {
    assert(ceil->addr >= addr + n && "free overlaps successor");
    if (ceil->addr == addr + n) {
      new_len += ceil->len;
      Erase(ceil->addr, ceil->len);
      ++merges;
    }
  }
  Insert(new_addr, new_len);
  return merges;
}

uint64_t FreeExtentMap::CheckSubtree(const Node* t, uint64_t /*lo_bound*/,
                                     uint64_t* prev_end,
                                     bool* have_prev) const {
  if (t == nullptr) return 0;
  uint64_t total = CheckSubtree(t->left, 0, prev_end, have_prev);
  assert(t->len > 0);
  if (*have_prev) {
    // Strictly separated: adjacent extents must have coalesced.
    assert(t->addr > *prev_end && "uncoalesced or overlapping extents");
  }
  *prev_end = t->addr + t->len;
  *have_prev = true;
  assert(by_size_.count({t->len, t->addr}) == 1);
  assert(t->max_len ==
         std::max({t->len, MaxLen(t->left), MaxLen(t->right)}));
  total += t->len;
  total += CheckSubtree(t->right, 0, prev_end, have_prev);
  return total;
}

uint64_t FreeExtentMap::CheckConsistency() const {
  uint64_t prev_end = 0;
  bool have_prev = false;
  const uint64_t total = CheckSubtree(root_, 0, &prev_end, &have_prev);
  assert(total == free_du_);
  assert(by_size_.size() >= (root_ == nullptr ? 0u : 1u));
  uint64_t size_total = 0;
  for (const auto& [len, addr] : by_size_) {
    (void)addr;
    size_total += len;
  }
  assert(size_total == free_du_);
  return total;
}

}  // namespace rofs::alloc
