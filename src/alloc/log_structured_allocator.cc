#include "alloc/log_structured_allocator.h"

#include <algorithm>
#include <cassert>

namespace rofs::alloc {

LogStructuredAllocator::LogStructuredAllocator(uint64_t total_du,
                                               LogStructuredConfig config)
    : Allocator(total_du), config_(config) {
  assert(config_.segment_du > 0);
  const size_t segments =
      static_cast<size_t>(CeilDiv(total_du, config_.segment_du));
  live_du_.assign(segments, 0);
  for (size_t s = 0; s < segments; ++s) clean_.insert(s);
  dead_space_.Free(0, total_du);
}

uint64_t LogStructuredAllocator::SegmentLen(size_t s) const {
  const uint64_t start = SegmentStart(s);
  return std::min(config_.segment_du, total_du_ - start);
}

void LogStructuredAllocator::AddLive(uint64_t addr, uint64_t len) {
  const size_t s = SegmentOf(addr);
  assert(SegmentOf(addr + len - 1) == s && "extent crosses segment");
  live_du_[s] += len;
  assert(live_du_[s] <= SegmentLen(s));
  clean_.erase(s);
}

bool LogStructuredAllocator::ActivateCleanSegment() {
  if (clean_.empty()) return false;
  // Prefer the segment following the current head: consecutive segments of
  // the log stay physically sequential on a fresh disk.
  auto it = clean_.lower_bound(has_active_ ? active_segment_ + 1 : 0);
  if (it == clean_.end()) it = clean_.begin();
  active_segment_ = *it;
  clean_.erase(it);
  active_offset_ = 0;
  has_active_ = true;
  return true;
}

Status LogStructuredAllocator::Extend(FileAllocState* f, uint64_t want_du) {
  ++stats_.alloc_calls;
  const uint64_t target = f->allocated_du + want_du;
  while (f->allocated_du < target) {
    const uint64_t remaining = target - f->allocated_du;
    // 1. Append at the log head.
    if (has_active_) {
      const uint64_t seg_len = SegmentLen(active_segment_);
      if (active_offset_ < seg_len) {
        const uint64_t addr = SegmentStart(active_segment_) + active_offset_;
        const uint64_t len = std::min(remaining, seg_len - active_offset_);
        if (dead_space_.AllocateAt(addr, len)) {
          active_offset_ += len;
          AddLive(addr, len);
          ++stats_.blocks_allocated;
          TraceAlloc(len);
          f->AppendExtent(Extent{addr, len});
          continue;
        }
        // The head's tail was consumed by hole-plugging: abandon it.
      }
      has_active_ = false;
    }
    // 2. Start a new segment from the clean pool.
    if (ActivateCleanSegment()) continue;
    // 3. No clean segment: hole-plug the dead space of dirty segments.
    const uint64_t largest = dead_space_.LargestFragment();
    if (largest == 0) {
      ++stats_.failed_allocs;
      TraceAllocFailed();
      return Status::ResourceExhausted("log-structured: no dead space left");
    }
    const uint64_t len = std::min(remaining, largest);
    const auto addr = dead_space_.AllocateBestFit(len);
    assert(addr.has_value());
    ++stats_.splits;  // Count plugs as splits for diagnostics.
    // The hole may span segment boundaries; chop for live accounting and
    // to keep the extent-per-segment invariant.
    uint64_t pos = *addr;
    uint64_t left = len;
    while (left > 0) {
      const size_t s = SegmentOf(pos);
      const uint64_t in_seg =
          std::min(left, SegmentStart(s) + SegmentLen(s) - pos);
      AddLive(pos, in_seg);
      ++stats_.blocks_allocated;
      TraceAlloc(in_seg);
      f->AppendExtent(Extent{pos, in_seg});
      pos += in_seg;
      left -= in_seg;
    }
  }
  return Status::OK();
}

void LogStructuredAllocator::FreeRun(uint64_t start_du, uint64_t len_du) {
  const uint64_t merges =
      static_cast<uint64_t>(dead_space_.Free(start_du, len_du));
  stats_.coalesces += merges;
  TraceCoalesce(merges);
  uint64_t pos = start_du;
  uint64_t left = len_du;
  while (left > 0) {
    const size_t s = SegmentOf(pos);
    const uint64_t in_seg =
        std::min(left, SegmentStart(s) + SegmentLen(s) - pos);
    assert(live_du_[s] >= in_seg);
    live_du_[s] -= in_seg;
    if (live_du_[s] == 0) {
      // Fully dead: the segment is clean and reusable in full.
      if (has_active_ && s == active_segment_) has_active_ = false;
      clean_.insert(s);
    }
    pos += in_seg;
    left -= in_seg;
  }
}

uint64_t LogStructuredAllocator::CheckConsistency() const {
  const uint64_t free = dead_space_.CheckConsistency();
  uint64_t live = 0;
  for (size_t s = 0; s < live_du_.size(); ++s) {
    live += live_du_[s];
    if (clean_.count(s) != 0) {
      assert(live_du_[s] == 0 && "clean segment with live data");
    }
    // A segment with zero live data is clean unless it is the active head.
    if (live_du_[s] == 0 && !(has_active_ && s == active_segment_)) {
      assert(clean_.count(s) == 1 && "dead segment missing from clean set");
    }
  }
  assert(live + free == total_du_);
  return free;
}

}  // namespace rofs::alloc
