#include "fs/buffer_cache.h"

#include <cassert>

#include "obs/tracer.h"

namespace rofs::fs {

namespace {

uint64_t NextPowerOfTwoAtLeast(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

BufferCache::BufferCache(uint64_t capacity_pages, uint64_t page_du)
    : capacity_pages_(capacity_pages), page_du_(page_du) {
  assert(capacity_pages_ > 0 && page_du_ > 0);
  assert(capacity_pages_ < kNil);
  slots_.resize(capacity_pages_);
  // Load factor <= 0.5 keeps linear probe chains short.
  table_.assign(NextPowerOfTwoAtLeast(2 * capacity_pages_), kNil);
  table_mask_ = table_.size() - 1;
  // Chain every slot into the free list.
  for (uint32_t i = 0; i < capacity_pages_; ++i) {
    slots_[i].next = i + 1 < capacity_pages_ ? i + 1 : kNil;
  }
  free_head_ = 0;
}

uint64_t BufferCache::Hash(uint64_t page) {
  // Fibonacci hashing: one multiply spreads the dense, sequential page
  // indices across the table; folding the high half down matters because
  // ProbeFor masks off the low bits, which the multiply alone leaves
  // correlated for adjacent pages.
  const uint64_t x = page * 0x9e3779b97f4a7c15ull;
  return x ^ (x >> 32);
}

size_t BufferCache::ProbeFor(uint64_t page) const {
  size_t i = Hash(page) & table_mask_;
  while (table_[i] != kNil && slots_[table_[i]].page != page) {
    i = (i + 1) & table_mask_;
  }
  return i;
}

uint32_t BufferCache::FindSlot(uint64_t page) const {
  return table_[ProbeFor(page)];
}

void BufferCache::LinkFront(uint32_t slot) {
  slots_[slot].prev = kNil;
  slots_[slot].next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void BufferCache::Unlink(uint32_t slot) {
  const uint32_t prev = slots_[slot].prev;
  const uint32_t next = slots_[slot].next;
  if (prev != kNil) slots_[prev].next = next; else head_ = next;
  if (next != kNil) slots_[next].prev = prev; else tail_ = prev;
}

void BufferCache::MoveToFront(uint32_t slot) {
  if (head_ == slot) return;
  Unlink(slot);
  LinkFront(slot);
}

void BufferCache::EraseKey(uint64_t page) {
  size_t i = ProbeFor(page);
  assert(table_[i] != kNil);
  table_[i] = kNil;
  // Backward-shift deletion: re-seat every entry of the probe chain that
  // follows the hole, so lookups never need tombstones.
  size_t j = i;
  for (;;) {
    j = (j + 1) & table_mask_;
    const uint32_t slot = table_[j];
    if (slot == kNil) break;
    const size_t ideal = Hash(slots_[slot].page) & table_mask_;
    // Move slot j into the hole unless its ideal position lies cyclically
    // within (i, j] — then the hole does not break its probe chain.
    const size_t dist_hole = (j - i) & table_mask_;
    const size_t dist_ideal = (j - ideal) & table_mask_;
    if (dist_ideal >= dist_hole) {
      table_[i] = slot;
      table_[j] = kNil;
      i = j;
    }
  }
}

void BufferCache::ReleaseSlot(uint32_t slot) {
  Unlink(slot);
  EraseKey(slots_[slot].page);
  slots_[slot].next = free_head_;
  free_head_ = slot;
  --size_;
}

bool BufferCache::TouchPage(uint64_t page) {
  const uint32_t slot = FindSlot(page);
  if (slot == kNil) return false;
  MoveToFront(slot);
  return true;
}

bool BufferCache::Touch(uint64_t du) {
  ++requests_;
  if (TouchPage(PageOf(du))) {
    ++hits_;
    if (tracer_ != nullptr) tracer_->CacheHit();
    return true;
  }
  ++misses_;
  if (tracer_ != nullptr) tracer_->CacheMiss();
  return false;
}

void BufferCache::InsertPage(uint64_t page) {
  const size_t pos = ProbeFor(page);
  if (table_[pos] != kNil) {
    MoveToFront(table_[pos]);
    return;
  }
  if (size_ >= capacity_pages_) {
    // Evict the LRU page; its slot is reused for the insertion, but the
    // probe position must be recomputed — the eviction's backward shift
    // may have moved entries.
    const uint32_t victim = tail_;
    ReleaseSlot(victim);
    ++evictions_;
    if (tracer_ != nullptr) tracer_->CacheEvict();
  }
  const uint32_t slot = free_head_;
  assert(slot != kNil);
  free_head_ = slots_[slot].next;
  slots_[slot].page = page;
  LinkFront(slot);
  table_[ProbeFor(page)] = slot;
  ++size_;
}

void BufferCache::Insert(uint64_t du) { InsertPage(PageOf(du)); }

bool BufferCache::CoversRange(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  // Residency probe first, reordering nothing: a miss must not perturb
  // the LRU order (the caller re-inserts the whole range, which is what
  // establishes recency). One hit or one miss per request — per-page
  // accounting would weight one 32-page request like 32 single-page ones.
  ++requests_;
  for (uint64_t p = first; p <= last; ++p) {
    if (FindSlot(p) == kNil) {
      ++misses_;
      if (tracer_ != nullptr) tracer_->CacheMiss();
      return false;
    }
  }
  for (uint64_t p = first; p <= last; ++p) TouchPage(p);
  ++hits_;
  if (tracer_ != nullptr) tracer_->CacheHit();
  return true;
}

void BufferCache::InsertRange(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  for (uint64_t p = first; p <= last; ++p) InsertPage(p);
}

void BufferCache::InvalidateRange(uint64_t start_du, uint64_t n_du) {
  if (n_du == 0) return;
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  if (last - first + 1 < size_) {
    for (uint64_t p = first; p <= last; ++p) {
      const uint32_t slot = FindSlot(p);
      if (slot != kNil) ReleaseSlot(slot);
    }
    return;
  }
  // Huge range: sweep the (smaller) cache instead.
  uint32_t slot = head_;
  while (slot != kNil) {
    const uint32_t next = slots_[slot].next;
    if (slots_[slot].page >= first && slots_[slot].page <= last) {
      ReleaseSlot(slot);
    }
    slot = next;
  }
}

void BufferCache::Clear() {
  table_.assign(table_.size(), kNil);
  for (uint32_t i = 0; i < capacity_pages_; ++i) {
    slots_[i].next = i + 1 < capacity_pages_ ? i + 1 : kNil;
  }
  free_head_ = 0;
  head_ = tail_ = kNil;
  size_ = 0;
}

}  // namespace rofs::fs
