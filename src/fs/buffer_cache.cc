#include "fs/buffer_cache.h"

#include <cassert>

namespace rofs::fs {

BufferCache::BufferCache(uint64_t capacity_pages, uint64_t page_du)
    : capacity_pages_(capacity_pages), page_du_(page_du) {
  assert(capacity_pages_ > 0 && page_du_ > 0);
}

bool BufferCache::TouchPage(uint64_t page) {
  auto it = map_.find(page);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool BufferCache::Touch(uint64_t du) {
  if (TouchPage(PageOf(du))) {
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void BufferCache::InsertPage(uint64_t page) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_pages_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
}

void BufferCache::Insert(uint64_t du) { InsertPage(PageOf(du)); }

bool BufferCache::CoversRange(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  bool all = true;
  for (uint64_t p = first; p <= last; ++p) {
    if (TouchPage(p)) {
      ++hits_;
    } else {
      ++misses_;
      all = false;
    }
  }
  return all;
}

void BufferCache::InsertRange(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  for (uint64_t p = first; p <= last; ++p) InsertPage(p);
}

void BufferCache::InvalidateRange(uint64_t start_du, uint64_t n_du) {
  if (n_du == 0) return;
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  if (last - first + 1 < map_.size()) {
    for (uint64_t p = first; p <= last; ++p) {
      auto it = map_.find(p);
      if (it == map_.end()) continue;
      lru_.erase(it->second);
      map_.erase(it);
    }
    return;
  }
  // Huge range: sweep the (smaller) cache instead.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (*it >= first && *it <= last) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace rofs::fs
