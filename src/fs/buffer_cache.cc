#include "fs/buffer_cache.h"

#include <cassert>

#include "obs/tracer.h"

namespace rofs::fs {

namespace {

uint64_t NextPowerOfTwoAtLeast(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

BufferCache::BufferCache(uint64_t capacity_pages, uint64_t page_du,
                         CachePolicySpec policy)
    : capacity_pages_(capacity_pages),
      page_du_(page_du),
      policy_(MakeCachePolicy(policy, capacity_pages)) {
  assert(capacity_pages_ > 0 && page_du_ > 0);
  assert(capacity_pages_ < kNil);
  slots_.resize(capacity_pages_);
  // Load factor <= 0.5 keeps linear probe chains short.
  table_.assign(NextPowerOfTwoAtLeast(2 * capacity_pages_), kNil);
  table_mask_ = table_.size() - 1;
  sweep_scratch_.reserve(capacity_pages_);
  // Chain every slot into the free list.
  for (uint32_t i = 0; i < capacity_pages_; ++i) {
    slots_[i].next = i + 1 < capacity_pages_ ? i + 1 : kNil;
    slots_[i].flags = 0;
  }
  free_head_ = 0;
}

BufferCache::~BufferCache() = default;

uint64_t BufferCache::Hash(uint64_t page) {
  // Fibonacci hashing: one multiply spreads the dense, sequential page
  // indices across the table; folding the high half down matters because
  // ProbeFor masks off the low bits, which the multiply alone leaves
  // correlated for adjacent pages.
  const uint64_t x = page * 0x9e3779b97f4a7c15ull;
  return x ^ (x >> 32);
}

size_t BufferCache::ProbeFor(uint64_t page) const {
  size_t i = Hash(page) & table_mask_;
  while (table_[i] != kNil && slots_[table_[i]].page != page) {
    i = (i + 1) & table_mask_;
  }
  return i;
}

uint32_t BufferCache::FindSlot(uint64_t page) const {
  return table_[ProbeFor(page)];
}

void BufferCache::EraseKey(uint64_t page) {
  size_t i = ProbeFor(page);
  assert(table_[i] != kNil);
  table_[i] = kNil;
  // Backward-shift deletion: re-seat every entry of the probe chain that
  // follows the hole, so lookups never need tombstones.
  size_t j = i;
  for (;;) {
    j = (j + 1) & table_mask_;
    const uint32_t slot = table_[j];
    if (slot == kNil) break;
    const size_t ideal = Hash(slots_[slot].page) & table_mask_;
    // Move slot j into the hole unless its ideal position lies cyclically
    // within (i, j] — then the hole does not break its probe chain.
    const size_t dist_hole = (j - i) & table_mask_;
    const size_t dist_ideal = (j - ideal) & table_mask_;
    if (dist_ideal >= dist_hole) {
      table_[i] = slot;
      table_[j] = kNil;
      i = j;
    }
  }
}

void BufferCache::MarkDirty(uint32_t slot) {
  if (slots_[slot].flags & kFlagDirty) return;  // Keeps its FIFO position.
  slots_[slot].flags |= kFlagDirty;
  slots_[slot].dirty_prev = dirty_tail_;
  slots_[slot].dirty_next = kNil;
  if (dirty_tail_ != kNil) {
    slots_[dirty_tail_].dirty_next = slot;
  } else {
    dirty_head_ = slot;
  }
  dirty_tail_ = slot;
  ++dirty_pages_;
}

void BufferCache::CleanSlot(uint32_t slot) {
  const uint32_t prev = slots_[slot].dirty_prev;
  const uint32_t next = slots_[slot].dirty_next;
  if (prev != kNil) slots_[prev].dirty_next = next; else dirty_head_ = next;
  if (next != kNil) slots_[next].dirty_prev = prev; else dirty_tail_ = prev;
  slots_[slot].flags &= static_cast<uint8_t>(~kFlagDirty);
  --dirty_pages_;
}

void BufferCache::ReleaseSlot(uint32_t slot) {
  policy_->OnInvalidate(slot, slots_[slot].page);
  if (slots_[slot].flags & kFlagDirty) CleanSlot(slot);
  slots_[slot].flags = 0;
  EraseKey(slots_[slot].page);
  slots_[slot].next = free_head_;
  free_head_ = slot;
  --size_;
}

void BufferCache::EvictOne(uint64_t incoming_page) {
  // Evict per policy; the victim's slot is reused for the insertion, but
  // the probe position must be recomputed — the eviction's backward shift
  // may have moved entries. PickVictim already removed the slot from the
  // policy's queues.
  const uint32_t victim = policy_->PickVictim(incoming_page);
  if (slots_[victim].flags & kFlagDirty) {
    // Flush before the page disappears: clean the slot first so a
    // re-entrant call from the flush callback sees consistent state.
    const uint64_t victim_page = slots_[victim].page;
    CleanSlot(victim);
    ++flushed_pages_;
    if (tracer_ != nullptr) tracer_->CacheFlush(1);
    if (flush_fn_) flush_fn_(victim_page * page_du_, page_du_);
  }
  slots_[victim].flags = 0;
  EraseKey(slots_[victim].page);
  slots_[victim].next = free_head_;
  free_head_ = victim;
  --size_;
  ++evictions_;
  if (tracer_ != nullptr) tracer_->CacheEvict();
}

bool BufferCache::TouchPage(uint64_t page) {
  const uint32_t slot = FindSlot(page);
  if (slot == kNil) return false;
  policy_->OnAccess(slot);
  NotePrefetchUse(slot);
  return true;
}

void BufferCache::InsertPage(uint64_t page, bool prefetch) {
  const size_t pos = ProbeFor(page);
  if (table_[pos] != kNil) {
    const uint32_t slot = table_[pos];
    if (!prefetch) {
      // Demand install of a resident page is a reference; a speculative
      // one is not, so prefetch leaves the replacement order untouched.
      policy_->OnAccess(slot);
      NotePrefetchUse(slot);
    }
    return;
  }
  if (size_ >= capacity_pages_) EvictOne(page);
  const uint32_t slot = free_head_;
  assert(slot != kNil);
  free_head_ = slots_[slot].next;
  slots_[slot].page = page;
  slots_[slot].flags = prefetch ? kFlagPrefetched : uint8_t{0};
  if (prefetch) ++prefetch_issued_;
  policy_->OnInsert(slot, page);
  table_[ProbeFor(page)] = slot;
  ++size_;
}

bool BufferCache::Access(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  // Residency probe first, reordering nothing: a miss must not perturb
  // the replacement order (the caller installs the whole range, which is
  // what establishes recency). One hit or one miss per request — per-page
  // accounting would weight one 32-page request like 32 single-page ones.
  ++requests_;
  for (uint64_t p = first; p <= last; ++p) {
    if (FindSlot(p) == kNil) {
      ++misses_;
      if (tracer_ != nullptr) tracer_->CacheMiss();
      return false;
    }
  }
  for (uint64_t p = first; p <= last; ++p) TouchPage(p);
  ++hits_;
  if (tracer_ != nullptr) tracer_->CacheHit();
  return true;
}

void BufferCache::Install(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  for (uint64_t p = first; p <= last; ++p) InsertPage(p, /*prefetch=*/false);
}

bool BufferCache::IsResident(uint64_t start_du, uint64_t n_du) const {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  for (uint64_t p = first; p <= last; ++p) {
    if (FindSlot(p) == kNil) return false;
  }
  return true;
}

void BufferCache::InstallPrefetch(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  const uint64_t before = prefetch_issued_;
  for (uint64_t p = first; p <= last; ++p) InsertPage(p, /*prefetch=*/true);
  const uint64_t added = prefetch_issued_ - before;
  if (added > 0 && tracer_ != nullptr) tracer_->CachePrefetch(added);
}

void BufferCache::InstallDirty(uint64_t start_du, uint64_t n_du) {
  assert(n_du > 0);
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  // Dirty each page right after its install, not after the whole range:
  // installing a later page can evict an earlier one (range larger than
  // the cache), and an evicted dirty page flushes — so every written page
  // either stays buffered or reaches the disk, never silently vanishes.
  for (uint64_t p = first; p <= last; ++p) {
    InsertPage(p, /*prefetch=*/false);
    MarkDirty(FindSlot(p));
  }
}

bool BufferCache::PopOldestDirty(uint64_t* start_du, uint64_t* n_du) {
  if (dirty_head_ == kNil) return false;
  const uint64_t first_page = slots_[dirty_head_].page;
  uint64_t pages = 0;
  // Greedy run coalescing: while the next-oldest dirty page is physically
  // adjacent, fold it into the same flush so the background write is one
  // contiguous disk request.
  while (dirty_head_ != kNil &&
         slots_[dirty_head_].page == first_page + pages) {
    CleanSlot(dirty_head_);
    ++pages;
  }
  flushed_pages_ += pages;
  if (tracer_ != nullptr) tracer_->CacheFlush(pages);
  *start_du = first_page * page_du_;
  *n_du = pages * page_du_;
  return true;
}

void BufferCache::InvalidateRange(uint64_t start_du, uint64_t n_du) {
  if (n_du == 0) return;
  const uint64_t first = PageOf(start_du);
  const uint64_t last = PageOf(start_du + n_du - 1);
  if (last - first + 1 < size_) {
    for (uint64_t p = first; p <= last; ++p) {
      const uint32_t slot = FindSlot(p);
      if (slot != kNil) ReleaseSlot(slot);
    }
    return;
  }
  // Huge range: sweep the (smaller) cache instead. Collect first, then
  // release — ReleaseSlot's backward shift rearranges table_ under an
  // in-flight scan.
  sweep_scratch_.clear();
  for (const uint32_t slot : table_) {
    if (slot != kNil && slots_[slot].page >= first &&
        slots_[slot].page <= last) {
      sweep_scratch_.push_back(slot);
    }
  }
  for (const uint32_t slot : sweep_scratch_) ReleaseSlot(slot);
}

void BufferCache::Clear() {
  table_.assign(table_.size(), kNil);
  for (uint32_t i = 0; i < capacity_pages_; ++i) {
    slots_[i].next = i + 1 < capacity_pages_ ? i + 1 : kNil;
    slots_[i].flags = 0;
  }
  free_head_ = 0;
  size_ = 0;
  dirty_head_ = dirty_tail_ = kNil;
  dirty_pages_ = 0;
  policy_->Clear();
}

}  // namespace rofs::fs
