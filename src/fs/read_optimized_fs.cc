#include "fs/read_optimized_fs.h"

#include <algorithm>
#include <cassert>

#include "obs/tracer.h"
#include "util/units.h"

namespace rofs::fs {

namespace {

/// Retargets latency attribution for a scope (a no-op when attribution is
/// detached). The fs uses it to charge metadata reads to the op's cache
/// slot, flushes to the flush histogram, and readahead to nothing.
class ScopedAttrTarget {
 public:
  ScopedAttrTarget(obs::OpAttribution* attr, obs::OpAttribution::Target t)
      : attr_(attr) {
    if (attr_ != nullptr) {
      saved_ = attr_->target();
      attr_->set_target(t);
    }
  }
  ~ScopedAttrTarget() {
    if (attr_ != nullptr) attr_->set_target(saved_);
  }
  ScopedAttrTarget(const ScopedAttrTarget&) = delete;
  ScopedAttrTarget& operator=(const ScopedAttrTarget&) = delete;

 private:
  obs::OpAttribution* attr_;
  obs::OpAttribution::Target saved_;
};

/// The current target with its mode switched (kNoLedger stays untargeted).
obs::OpAttribution::Target WithMode(obs::OpAttribution* attr,
                                    obs::OpAttribution::Mode mode) {
  obs::OpAttribution::Target t;
  if (attr != nullptr) t.ledger = attr->target().ledger;
  t.mode = mode;
  return t;
}

}  // namespace

ReadOptimizedFs::ReadOptimizedFs(alloc::Allocator* allocator,
                                 disk::DiskSystem* disk, FsOptions options)
    : allocator_(allocator), disk_(disk),
      du_bytes_(disk ? disk->disk_unit_bytes() : 1 * kKiB),
      options_(options) {
  assert(allocator_ != nullptr);
  if (disk_ != nullptr) {
    assert(disk_->capacity_du() >= allocator_->total_du() &&
           "allocator address space exceeds the disk system");
  }
  if (options_.cache_bytes > 0) {
    const uint64_t page_du =
        std::max<uint64_t>(1, options_.cache_page_bytes / du_bytes_);
    const uint64_t pages = std::max<uint64_t>(
        1, options_.cache_bytes / (page_du * du_bytes_));
    cache_ = std::make_unique<BufferCache>(pages, page_du,
                                           options_.cache_policy);
    if (options_.writeback_dirty_max > 0) {
      // Replacement of a dirty page forces it out through this callback,
      // stamped with the in-flight operation's arrival time.
      cache_->set_flush_fn([this](uint64_t start_du, uint64_t n_du) {
        BackgroundWrite(start_du, n_du);
      });
    }
  }
}

sim::TimeMs ReadOptimizedFs::MetadataRead(File& f, sim::TimeMs arrival) {
  if (!options_.model_metadata_io || disk_ == nullptr || !io_enabled_) {
    return arrival;
  }
  if (f.fd_alloc.extents.empty()) return arrival;  // No descriptor block.
  const uint64_t fd_du = f.fd_alloc.extents.front().start_du;
  if (cache_ != nullptr && cache_->Touch(fd_du)) return arrival;
  // The descriptor read charges the op's metadata/cache slot, not the
  // data phases.
  const ScopedAttrTarget scope(
      attr_, WithMode(attr_, obs::OpAttribution::Mode::kOpCache));
  const sim::TimeMs done = disk_->Read(arrival, fd_du, 1);
  ++physical_read_du_;
  if (cache_ != nullptr) cache_->Insert(fd_du);
  if (tracer_ != nullptr) tracer_->MetadataRead(arrival, done);
  return done;
}

void ReadOptimizedFs::set_tracer(obs::SimTracer* tracer) {
  tracer_ = tracer;
  if (cache_ != nullptr) cache_->set_tracer(tracer);
}

FileId ReadOptimizedFs::Create(uint64_t pref_extent_bytes) {
  File f;
  f.id = files_.size();
  f.exists = true;
  f.alloc.pref_extent_du = std::max<uint64_t>(
      1, pref_extent_bytes / du_bytes_);
  allocator_->OnCreateFile(&f.alloc);
  if (options_.model_metadata_io) {
    // One descriptor block per file; best effort — a file without a
    // descriptor (disk full at create) simply skips metadata reads.
    f.fd_alloc.pref_extent_du = 1;
    (void)allocator_->Extend(&f.fd_alloc, 1);
  }
  files_.push_back(std::move(f));
  return files_.back().id;
}

void ReadOptimizedFs::Recreate(FileId id) {
  File& f = files_[id];
  assert(!f.exists && f.alloc.allocated_du == 0);
  f.exists = true;
  f.logical_bytes = 0;
  f.cursor_bytes = 0;
  f.ra_expected_bytes = 0;
  f.ra_streak = 0;
  f.alloc.range_index = -1;
  allocator_->OnCreateFile(&f.alloc);
}

Status ReadOptimizedFs::ExtendAlloc(FileId id, uint64_t bytes,
                                    uint64_t* write_offset,
                                    uint64_t* write_bytes) {
  File& f = files_[id];
  assert(f.exists);
  *write_offset = 0;
  *write_bytes = 0;
  if (bytes == 0) return Status::OK();
  const uint64_t old_logical = f.logical_bytes;
  const uint64_t new_logical = old_logical + bytes;
  const uint64_t need_du = CeilDiv(new_logical, du_bytes_);
  Status status;
  if (need_du > f.alloc.allocated_du) {
    status = allocator_->Extend(&f.alloc, need_du - f.alloc.allocated_du);
  }
  // Grow the logical size as far as the (possibly partial) allocation
  // allows; the caller writes the newly valid bytes.
  const uint64_t grown = std::min<uint64_t>(
      new_logical, f.alloc.allocated_du * du_bytes_);
  if (grown > old_logical) {
    f.logical_bytes = grown;
    total_logical_bytes_ += grown - old_logical;
    *write_offset = old_logical;
    *write_bytes = grown - old_logical;
  }
  return status;
}

Status ReadOptimizedFs::Extend(FileId id, uint64_t bytes, sim::TimeMs arrival,
                               sim::TimeMs* done) {
  File& f = files_[id];
  assert(f.exists);
  arrival = MetadataRead(f, arrival);
  *done = arrival;
  uint64_t write_offset = 0;
  uint64_t write_bytes = 0;
  const Status status = ExtendAlloc(id, bytes, &write_offset, &write_bytes);
  if (write_bytes > 0) {
    *done = DoIo(id, write_offset, write_bytes, arrival, /*is_write=*/true);
  }
  return status;
}

sim::TimeMs ReadOptimizedFs::Read(FileId id, uint64_t offset, uint64_t bytes,
                                  sim::TimeMs arrival) {
  return DoIo(id, offset, bytes, arrival, /*is_write=*/false);
}

sim::TimeMs ReadOptimizedFs::Write(FileId id, uint64_t offset, uint64_t bytes,
                                   sim::TimeMs arrival) {
  return DoIo(id, offset, bytes, arrival, /*is_write=*/true);
}

sim::TimeMs ReadOptimizedFs::DoIo(FileId id, uint64_t offset, uint64_t bytes,
                                  sim::TimeMs arrival, bool is_write) {
  File& f = files_[id];
  assert(f.exists);
  if (offset >= f.logical_bytes) return arrival;
  bytes = std::min(bytes, f.logical_bytes - offset);
  if (bytes == 0 || disk_ == nullptr || !io_enabled_) return arrival;
  arrival = MetadataRead(f, arrival);
  flush_now_ms_ = arrival;
  run_scratch_.clear();
  MapRange(f, offset, bytes, &run_scratch_);
  const bool cacheable =
      cache_ != nullptr && bytes <= options_.cache_bypass_bytes;
  if (cacheable && !is_write) {
    bool all_resident = true;
    for (const Run& r : run_scratch_) {
      if (!cache_->Access(r.start_du, r.n_du)) all_resident = false;
    }
    if (all_resident) {
      MaybeReadahead(f, offset, bytes, arrival, cacheable);
      return arrival;  // Served from memory.
    }
  }
  if (is_write && cacheable && options_.writeback_dirty_max > 0) {
    // Write-behind: buffer the whole write as dirty pages and complete
    // immediately; the oldest dirty runs flush in the background once the
    // dirty population exceeds the bound.
    BufferWrite(arrival);
    return arrival;
  }
  // All runs are issued at the arrival time: the paper's designs use read
  // ahead and write behind, so transfers to distinct disks pipeline while
  // per-disk FCFS queues serialize same-disk runs in order.
  sim::TimeMs done = arrival;
  for (const Run& r : run_scratch_) {
    const sim::TimeMs t = is_write ? disk_->Write(arrival, r.start_du, r.n_du)
                                   : disk_->Read(arrival, r.start_du, r.n_du);
    if (is_write) physical_write_du_ += r.n_du;
    else physical_read_du_ += r.n_du;
    done = std::max(done, t);
    if (cacheable) cache_->Install(r.start_du, r.n_du);
  }
  if (cacheable && !is_write) {
    MaybeReadahead(f, offset, bytes, arrival, cacheable);
  }
  return done;
}

void ReadOptimizedFs::BufferWrite(sim::TimeMs arrival) {
  flush_now_ms_ = arrival;
  for (const Run& r : run_scratch_) cache_->InstallDirty(r.start_du, r.n_du);
  uint64_t start_du = 0;
  uint64_t n_du = 0;
  while (cache_->dirty_pages() > options_.writeback_dirty_max &&
         cache_->PopOldestDirty(&start_du, &n_du)) {
    BackgroundWrite(start_du, n_du);
  }
}

void ReadOptimizedFs::BackgroundWrite(uint64_t start_du, uint64_t n_du) {
  physical_write_du_ += n_du;
  if (disk_ == nullptr || !io_enabled_) return;
  // Flush traffic is not part of any op's latency; it feeds the flush
  // histogram instead.
  const ScopedAttrTarget scope(
      attr_, obs::OpAttribution::Target{obs::OpAttribution::kNoLedger,
                                        obs::OpAttribution::Mode::kFlush});
  if (disk_->predictable()) {
    (void)disk_->Write(flush_now_ms_, start_du, n_du);
    return;
  }
  // Reordering scheduler: the flush rides the async path; nothing waits
  // on its completion.
  const uint32_t group = disk_->OpenGroup(flush_now_ms_, [](sim::TimeMs) {});
  disk_->GroupWrite(group, flush_now_ms_, start_du, n_du);
  disk_->CloseGroup(group);
}

void ReadOptimizedFs::FlushAll(sim::TimeMs now) {
  if (cache_ == nullptr) return;
  flush_now_ms_ = now;
  uint64_t start_du = 0;
  uint64_t n_du = 0;
  while (cache_->PopOldestDirty(&start_du, &n_du)) {
    BackgroundWrite(start_du, n_du);
  }
}

void ReadOptimizedFs::MaybeReadahead(File& f, uint64_t offset, uint64_t bytes,
                                     sim::TimeMs arrival, bool cacheable) {
  if (options_.readahead_pages == 0 || cache_ == nullptr) return;
  // Sequential detector: this read either continues where the last one
  // ended or restarts the streak.
  f.ra_streak = offset == f.ra_expected_bytes ? f.ra_streak + 1 : 1;
  f.ra_expected_bytes = offset + bytes;
  // Prefetch only once the pattern is established (second consecutive
  // sequential read) and only for cache-sized reads.
  if (f.ra_streak < 2 || !cacheable) return;
  const uint64_t start = offset + bytes;
  if (start >= f.logical_bytes) return;
  const uint64_t window =
      options_.readahead_pages * cache_->page_du() * du_bytes_;
  const uint64_t n = std::min(window, f.logical_bytes - start);
  // Readahead is speculative background traffic — untracked.
  const ScopedAttrTarget scope(attr_, obs::OpAttribution::Target{});
  prefetch_scratch_.clear();
  MapRange(f, start, n, &prefetch_scratch_);
  for (const Run& r : prefetch_scratch_) {
    // Run-level residency probe, not counted as a cache request:
    // readahead is the cache talking to itself.
    if (cache_->IsResident(r.start_du, r.n_du)) continue;
    physical_read_du_ += r.n_du;
    prefetch_read_du_ += r.n_du;
    if (disk_->predictable()) {
      (void)disk_->Read(arrival, r.start_du, r.n_du);
    } else {
      const uint32_t group = disk_->OpenGroup(arrival, [](sim::TimeMs) {});
      disk_->GroupRead(group, arrival, r.start_du, r.n_du);
      disk_->CloseGroup(group);
    }
    cache_->InstallPrefetch(r.start_du, r.n_du);
  }
}

void ReadOptimizedFs::ReadAsync(FileId id, uint64_t offset, uint64_t bytes,
                                sim::TimeMs arrival, DoneFn on_done) {
  DoIoAsync(id, offset, bytes, arrival, /*is_write=*/false,
            std::move(on_done));
}

void ReadOptimizedFs::WriteAsync(FileId id, uint64_t offset, uint64_t bytes,
                                 sim::TimeMs arrival, DoneFn on_done) {
  DoIoAsync(id, offset, bytes, arrival, /*is_write=*/true,
            std::move(on_done));
}

uint32_t ReadOptimizedFs::AcquireAsyncSlot() {
  if (free_async_ != 0xffffffffu) {
    const uint32_t slot = free_async_;
    free_async_ = async_ops_[slot].next_free;
    return slot;
  }
  async_ops_.emplace_back();
  return static_cast<uint32_t>(async_ops_.size() - 1);
}

void ReadOptimizedFs::ReleaseAsyncSlot(uint32_t slot) {
  async_ops_[slot].on_done = nullptr;
  async_ops_[slot].next_free = free_async_;
  free_async_ = slot;
}

void ReadOptimizedFs::DoIoAsync(FileId id, uint64_t offset, uint64_t bytes,
                                sim::TimeMs arrival, bool is_write,
                                DoneFn on_done) {
  File& f = files_[id];
  assert(f.exists);
  if (offset >= f.logical_bytes) {
    on_done(arrival);
    return;
  }
  bytes = std::min(bytes, f.logical_bytes - offset);
  if (bytes == 0 || disk_ == nullptr || !io_enabled_) {
    on_done(arrival);
    return;
  }
  // Metadata first: the data runs issue when the descriptor read lands.
  if (options_.model_metadata_io && !f.fd_alloc.extents.empty()) {
    const uint64_t fd_du = f.fd_alloc.extents.front().start_du;
    if (cache_ == nullptr || !cache_->Touch(fd_du)) {
      const uint32_t slot = AcquireAsyncSlot();
      AsyncOp& op = async_ops_[slot];
      op.id = id;
      op.offset = offset;
      op.bytes = bytes;
      op.is_write = is_write;
      op.on_done = std::move(on_done);
      // The continuation callback has no room to carry the op's target, so
      // the slot saves it; the descriptor read itself charges the op's
      // metadata/cache slot (the group captures the target at OpenGroup).
      if (attr_ != nullptr) op.attr_target = attr_->target();
      const ScopedAttrTarget scope(
          attr_, WithMode(attr_, obs::OpAttribution::Mode::kOpCache));
      const uint32_t group = disk_->OpenGroup(
          arrival, [this, slot, arrival](sim::TimeMs md_done) {
            if (tracer_ != nullptr) tracer_->MetadataRead(arrival, md_done);
            FinishDataIo(slot, md_done);
          });
      disk_->GroupRead(group, arrival, fd_du, 1);
      ++physical_read_du_;
      flush_now_ms_ = arrival;
      if (cache_ != nullptr) cache_->Insert(fd_du);
      disk_->CloseGroup(group);
      return;
    }
  }
  IssueRuns(f, offset, bytes, arrival, is_write, std::move(on_done));
}

void ReadOptimizedFs::FinishDataIo(uint32_t slot, sim::TimeMs md_done) {
  AsyncOp& op = async_ops_[slot];
  const FileId id = op.id;
  const uint64_t offset = op.offset;
  uint64_t bytes = op.bytes;
  const bool is_write = op.is_write;
  DoneFn on_done = std::move(op.on_done);
  // Restore the op's attribution target for the data runs (and for the
  // completion callback's fold); runs in event context, so the saved
  // target around this scope is the empty one.
  const ScopedAttrTarget scope(attr_, op.attr_target);
  ReleaseAsyncSlot(slot);
  File& f = files_[id];
  // Re-clip: a truncate or delete may have raced the metadata read.
  if (!f.exists || offset >= f.logical_bytes) {
    on_done(md_done);
    return;
  }
  bytes = std::min(bytes, f.logical_bytes - offset);
  IssueRuns(f, offset, bytes, md_done, is_write, std::move(on_done));
}

void ReadOptimizedFs::IssueRuns(File& f, uint64_t offset, uint64_t bytes,
                                sim::TimeMs arrival, bool is_write,
                                DoneFn on_done) {
  flush_now_ms_ = arrival;
  run_scratch_.clear();
  MapRange(f, offset, bytes, &run_scratch_);
  const bool cacheable =
      cache_ != nullptr && bytes <= options_.cache_bypass_bytes;
  if (cacheable && !is_write) {
    bool all_resident = true;
    for (const Run& r : run_scratch_) {
      if (!cache_->Access(r.start_du, r.n_du)) all_resident = false;
    }
    if (all_resident) {
      MaybeReadahead(f, offset, bytes, arrival, cacheable);
      on_done(arrival);  // Served from memory.
      return;
    }
  }
  if (is_write && cacheable && options_.writeback_dirty_max > 0) {
    BufferWrite(arrival);
    on_done(arrival);  // Buffered: the write completes immediately.
    return;
  }
  // As in DoIo, all runs issue at the arrival time and the operation
  // completes when the slowest run does; the group tracks that.
  const uint32_t group = disk_->OpenGroup(arrival, std::move(on_done));
  for (const Run& r : run_scratch_) {
    if (is_write) {
      disk_->GroupWrite(group, arrival, r.start_du, r.n_du);
      physical_write_du_ += r.n_du;
    } else {
      disk_->GroupRead(group, arrival, r.start_du, r.n_du);
      physical_read_du_ += r.n_du;
    }
    if (cacheable) cache_->Install(r.start_du, r.n_du);
  }
  if (cacheable && !is_write) {
    MaybeReadahead(f, offset, bytes, arrival, cacheable);
  }
  disk_->CloseGroup(group);
}

void ReadOptimizedFs::MapRange(const File& f, uint64_t offset, uint64_t bytes,
                               std::vector<Run>* out) const {
  assert(offset + bytes <= f.logical_bytes);
  // The byte range, widened to whole disk units, expressed in file-relative
  // disk-unit indexes.
  uint64_t rel = offset / du_bytes_;
  const uint64_t rel_end = CeilDiv(offset + bytes, du_bytes_);
  // Locate the extent containing `rel` via the cumulative index.
  const auto& cum = f.alloc.cum_du;
  size_t i = static_cast<size_t>(
      std::upper_bound(cum.begin(), cum.end(), rel) - cum.begin());
  while (rel < rel_end) {
    assert(i < f.alloc.extents.size());
    const alloc::Extent& e = f.alloc.extents[i];
    const uint64_t extent_first_rel = cum[i] - e.length_du;
    const uint64_t within = rel - extent_first_rel;
    const uint64_t n = std::min(e.length_du - within, rel_end - rel);
    const uint64_t abs_start = e.start_du + within;
    if (!out->empty() && out->back().start_du + out->back().n_du == abs_start) {
      out->back().n_du += n;  // Physically contiguous with previous run.
    } else {
      out->push_back(Run{abs_start, n});
    }
    rel += n;
    ++i;
  }
}

uint64_t ReadOptimizedFs::Truncate(FileId id, uint64_t bytes) {
  File& f = files_[id];
  assert(f.exists);
  const uint64_t removed = std::min(bytes, f.logical_bytes);
  f.logical_bytes -= removed;
  total_logical_bytes_ -= removed;
  if (f.cursor_bytes > f.logical_bytes) f.cursor_bytes = 0;
  // Free now-unused blocks beyond the new logical size — but never more
  // than the truncated byte count: space a policy pre-allocated ahead of
  // the logical size (e.g. a fresh 16M extent) stays with the file for
  // future growth rather than being shredded into stranded holes.
  const uint64_t need_du = CeilDiv(f.logical_bytes, du_bytes_);
  if (f.alloc.allocated_du > need_du) {
    const uint64_t excess = f.alloc.allocated_du - need_du;
    std::vector<alloc::Extent> before;
    if (cache_ != nullptr) before = f.alloc.extents;
    allocator_->TruncateTail(&f.alloc,
                             std::min(excess, CeilDiv(removed, du_bytes_)));
    if (cache_ != nullptr) InvalidateRemovedTail(before, f.alloc.extents);
  }
  return removed;
}

void ReadOptimizedFs::InvalidateRemovedTail(
    const std::vector<alloc::Extent>& before,
    const std::vector<alloc::Extent>& after) {
  for (size_t i = 0; i < before.size(); ++i) {
    if (i < after.size() && after[i] == before[i]) continue;
    if (i < after.size() && after[i].start_du == before[i].start_du) {
      // Trimmed in place: drop only the freed suffix.
      cache_->InvalidateRange(after[i].end_du(),
                              before[i].length_du - after[i].length_du);
    } else {
      cache_->InvalidateRange(before[i].start_du, before[i].length_du);
    }
  }
}

void ReadOptimizedFs::Delete(FileId id) {
  File& f = files_[id];
  assert(f.exists);
  if (cache_ != nullptr) {
    for (const alloc::Extent& e : f.alloc.extents) {
      cache_->InvalidateRange(e.start_du, e.length_du);
    }
  }
  allocator_->DeleteFile(&f.alloc);
  total_logical_bytes_ -= f.logical_bytes;
  f.logical_bytes = 0;
  f.cursor_bytes = 0;
  f.exists = false;
}

double ReadOptimizedFs::InternalFragmentation() const {
  const uint64_t allocated = total_allocated_bytes();
  if (allocated == 0) return 0.0;
  return static_cast<double>(allocated - total_logical_bytes_) /
         static_cast<double>(allocated);
}

double ReadOptimizedFs::ExternalFragmentation() const {
  const uint64_t total = allocator_->total_du();
  if (total == 0) return 0.0;
  return static_cast<double>(allocator_->free_du()) /
         static_cast<double>(total);
}

double ReadOptimizedFs::AverageExtentsPerFile() const {
  uint64_t files = 0;
  uint64_t extents = 0;
  for (const File& f : files_) {
    if (!f.exists || f.alloc.extents.empty()) continue;
    ++files;
    extents += f.alloc.extents.size();
  }
  return files == 0 ? 0.0
                    : static_cast<double>(extents) /
                          static_cast<double>(files);
}

}  // namespace rofs::fs
