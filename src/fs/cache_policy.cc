#include "fs/cache_policy.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace rofs::fs {
namespace {

constexpr uint32_t kNil = UINT32_MAX;

uint64_t NextPowerOfTwoAtLeast(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Same Fibonacci hash as the engine's page table (see buffer_cache.cc).
uint64_t HashPage(uint64_t page) {
  const uint64_t x = page * 0x9e3779b97f4a7c15ull;
  return x ^ (x >> 32);
}

/// An intrusive doubly-linked list over slot indices. All storage is
/// allocated at construction; a slot is in at most one list at a time
/// (the owning policy guarantees it).
class SlotList {
 public:
  explicit SlotList(uint64_t capacity)
      : prev_(capacity, kNil), next_(capacity, kNil) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t head() const { return head_; }
  uint32_t tail() const { return tail_; }

  void PushFront(uint32_t slot) {
    prev_[slot] = kNil;
    next_[slot] = head_;
    if (head_ != kNil) prev_[head_] = slot;
    head_ = slot;
    if (tail_ == kNil) tail_ = slot;
    ++size_;
  }

  void Remove(uint32_t slot) {
    const uint32_t prev = prev_[slot];
    const uint32_t next = next_[slot];
    if (prev != kNil) next_[prev] = next; else head_ = next;
    if (next != kNil) prev_[next] = prev; else tail_ = prev;
    --size_;
  }

  void MoveToFront(uint32_t slot) {
    if (head_ == slot) return;
    Remove(slot);
    PushFront(slot);
  }

  uint32_t PopBack() {
    assert(tail_ != kNil);
    const uint32_t slot = tail_;
    Remove(slot);
    return slot;
  }

  void Clear() {
    head_ = tail_ = kNil;
    size_ = 0;
  }

 private:
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  size_t size_ = 0;
};

/// A bounded list of page numbers ordered by recency of insertion, with
/// O(1) membership: the ghost ("history") structure 2Q and ARC keep for
/// pages already evicted. Node pool plus an open-addressed page->node
/// index (linear probing, backward-shift deletion — the engine's table
/// scheme). Inserting into a full list drops the oldest entry.
class GhostList {
 public:
  explicit GhostList(uint64_t capacity)
      : capacity_(std::max<uint64_t>(1, capacity)) {
    pages_.resize(capacity_);
    prev_.assign(capacity_, kNil);
    next_.assign(capacity_, kNil);
    table_.assign(NextPowerOfTwoAtLeast(2 * capacity_), kNil);
    mask_ = table_.size() - 1;
    Clear();
  }

  size_t size() const { return size_; }

  bool Contains(uint64_t page) const { return table_[ProbeFor(page)] != kNil; }

  /// Inserts `page` at the MRU end, refreshing it if already present and
  /// dropping the oldest ghost when full.
  void PushFront(uint64_t page) {
    Remove(page);
    if (size_ >= capacity_) RemoveOldest();
    const uint32_t node = free_head_;
    assert(node != kNil);
    free_head_ = next_[node];
    pages_[node] = page;
    prev_[node] = kNil;
    next_[node] = head_;
    if (head_ != kNil) prev_[head_] = node;
    head_ = node;
    if (tail_ == kNil) tail_ = node;
    table_[ProbeFor(page)] = node;
    ++size_;
  }

  /// Removes `page` when present; reports whether it was.
  bool Remove(uint64_t page) {
    const uint32_t node = table_[ProbeFor(page)];
    if (node == kNil) return false;
    Release(node);
    return true;
  }

  void RemoveOldest() {
    assert(tail_ != kNil);
    Release(tail_);
  }

  void Clear() {
    table_.assign(table_.size(), kNil);
    for (uint32_t i = 0; i < capacity_; ++i) {
      next_[i] = i + 1 < capacity_ ? i + 1 : kNil;
    }
    free_head_ = 0;
    head_ = tail_ = kNil;
    size_ = 0;
  }

 private:
  size_t ProbeFor(uint64_t page) const {
    size_t i = HashPage(page) & mask_;
    while (table_[i] != kNil && pages_[table_[i]] != page) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void EraseKey(uint64_t page) {
    size_t i = ProbeFor(page);
    assert(table_[i] != kNil);
    table_[i] = kNil;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      const uint32_t node = table_[j];
      if (node == kNil) break;
      const size_t ideal = HashPage(pages_[node]) & mask_;
      const size_t dist_hole = (j - i) & mask_;
      const size_t dist_ideal = (j - ideal) & mask_;
      if (dist_ideal >= dist_hole) {
        table_[i] = node;
        table_[j] = kNil;
        i = j;
      }
    }
  }

  void Release(uint32_t node) {
    const uint32_t prev = prev_[node];
    const uint32_t next = next_[node];
    if (prev != kNil) next_[prev] = next; else head_ = next;
    if (next != kNil) prev_[next] = prev; else tail_ = prev;
    EraseKey(pages_[node]);
    next_[node] = free_head_;
    free_head_ = node;
    --size_;
  }

  uint64_t capacity_;
  std::vector<uint64_t> pages_;
  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> table_;
  size_t mask_ = 0;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t free_head_ = kNil;
  size_t size_ = 0;
};

/// The seed policy: one intrusive list, MRU at the head. Must reproduce
/// the pre-seam cache exactly — OnAccess is the old MoveToFront (with its
/// already-at-head early-out), PickVictim the old tail eviction.
class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(uint64_t capacity) : list_(capacity) {}

  CachePolicyKind kind() const override { return CachePolicyKind::kLru; }

  void OnInsert(uint32_t slot, uint64_t /*page*/) override {
    list_.PushFront(slot);
  }

  void OnAccess(uint32_t slot) override { list_.MoveToFront(slot); }

  uint32_t PickVictim(uint64_t /*incoming_page*/) override {
    return list_.PopBack();
  }

  void OnInvalidate(uint32_t slot, uint64_t /*page*/) override {
    list_.Remove(slot);
  }

  void Clear() override { list_.Clear(); }

  std::string DescribeQueues() const override {
    return "lru:" + std::to_string(list_.size());
  }

 private:
  SlotList list_;
};

/// CLOCK (second chance): resident slots form a circular list; the hand
/// sweeps it clearing reference bits until it finds a clear one. Accesses
/// only set a bit — no list surgery on the hit path.
class ClockPolicy final : public CachePolicy {
 public:
  explicit ClockPolicy(uint64_t capacity)
      : prev_(capacity, kNil), next_(capacity, kNil), ref_(capacity, 0) {}

  CachePolicyKind kind() const override { return CachePolicyKind::kClock; }

  void OnInsert(uint32_t slot, uint64_t /*page*/) override {
    ref_[slot] = 0;
    if (hand_ == kNil) {
      prev_[slot] = next_[slot] = slot;
      hand_ = slot;
    } else {
      // Insert immediately behind the hand: the new page is examined last
      // in the current sweep, giving it one full revolution of grace.
      const uint32_t back = prev_[hand_];
      next_[back] = slot;
      prev_[slot] = back;
      next_[slot] = hand_;
      prev_[hand_] = slot;
    }
    ++size_;
  }

  void OnAccess(uint32_t slot) override { ref_[slot] = 1; }

  uint32_t PickVictim(uint64_t /*incoming_page*/) override {
    assert(hand_ != kNil);
    while (ref_[hand_] != 0) {
      ref_[hand_] = 0;
      hand_ = next_[hand_];
    }
    const uint32_t victim = hand_;
    hand_ = next_[victim];
    Unlink(victim);
    return victim;
  }

  void OnInvalidate(uint32_t slot, uint64_t /*page*/) override {
    // Clearing the reference bit here is the whole point: the engine will
    // recycle this slot for an unrelated page, which must not start life
    // with a second chance it never earned.
    ref_[slot] = 0;
    if (hand_ == slot) hand_ = next_[slot];
    Unlink(slot);
  }

  void Clear() override {
    std::fill(ref_.begin(), ref_.end(), uint8_t{0});
    hand_ = kNil;
    size_ = 0;
  }

  std::string DescribeQueues() const override {
    size_t referenced = 0;
    if (hand_ != kNil) {
      uint32_t slot = hand_;
      do {
        referenced += ref_[slot];
        slot = next_[slot];
      } while (slot != hand_);
    }
    return "clock:" + std::to_string(size_) +
           " ref:" + std::to_string(referenced);
  }

 private:
  void Unlink(uint32_t slot) {
    if (next_[slot] == slot) {
      hand_ = kNil;
    } else {
      next_[prev_[slot]] = next_[slot];
      prev_[next_[slot]] = prev_[slot];
    }
    --size_;
  }

  std::vector<uint32_t> prev_;
  std::vector<uint32_t> next_;
  std::vector<uint8_t> ref_;
  uint32_t hand_ = kNil;
  size_t size_ = 0;
};

/// 2Q (Johnson & Shasha, VLDB '94), full version: new pages enter the
/// FIFO admission queue A1in; pages evicted from A1in leave a ghost in
/// A1out; only a re-reference while ghosted earns promotion into the main
/// LRU Am. Accesses inside A1in deliberately do not reorder — that is the
/// scan resistance. Kin = capacity/4, Kout = capacity/2 (the paper's
/// tuning).
class TwoQPolicy final : public CachePolicy {
 public:
  explicit TwoQPolicy(uint64_t capacity)
      : a1in_(capacity), am_(capacity),
        a1out_(std::max<uint64_t>(1, capacity / 2)),
        kin_(std::max<uint64_t>(1, capacity / 4)),
        where_(capacity, kInA1in), page_of_(capacity, 0) {}

  CachePolicyKind kind() const override { return CachePolicyKind::k2Q; }

  void OnInsert(uint32_t slot, uint64_t page) override {
    page_of_[slot] = page;
    if (a1out_.Remove(page)) {
      // Referenced again after aging out of A1in: hot, goes to Am.
      where_[slot] = kInAm;
      am_.PushFront(slot);
    } else {
      where_[slot] = kInA1in;
      a1in_.PushFront(slot);
    }
  }

  void OnAccess(uint32_t slot) override {
    if (where_[slot] == kInAm) am_.MoveToFront(slot);
  }

  uint32_t PickVictim(uint64_t /*incoming_page*/) override {
    if (!a1in_.empty() && (a1in_.size() > kin_ || am_.empty())) {
      const uint32_t victim = a1in_.PopBack();
      a1out_.PushFront(page_of_[victim]);
      return victim;
    }
    // Am evictions leave no ghost: the page had its chance to prove
    // itself hot and lost it.
    return am_.PopBack();
  }

  void OnInvalidate(uint32_t slot, uint64_t page) override {
    if (where_[slot] == kInAm) {
      am_.Remove(slot);
    } else {
      a1in_.Remove(slot);
    }
    // A resident page has no ghost, but the address may be recycled for a
    // new owner — make sure no stale history survives.
    a1out_.Remove(page);
  }

  void Clear() override {
    a1in_.Clear();
    am_.Clear();
    a1out_.Clear();
  }

  std::string DescribeQueues() const override {
    return "a1in:" + std::to_string(a1in_.size()) +
           " am:" + std::to_string(am_.size()) +
           " a1out:" + std::to_string(a1out_.size());
  }

 private:
  static constexpr uint8_t kInA1in = 0;
  static constexpr uint8_t kInAm = 1;

  SlotList a1in_;
  SlotList am_;
  GhostList a1out_;
  const uint64_t kin_;
  std::vector<uint8_t> where_;
  std::vector<uint64_t> page_of_;
};

/// ARC-style adaptive replacement (Megiddo & Modha, FAST '03): resident
/// pages live in a recency list T1 or a frequency list T2; ghosts of
/// recently evicted pages live in B1/B2. A hit in B1 says "recency is
/// being under-served" and grows the adaptive target p for |T1|; a hit in
/// B2 shrinks it. REPLACE evicts from whichever list exceeds its target.
class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(uint64_t capacity)
      : c_(capacity), t1_(capacity), t2_(capacity), b1_(capacity),
        b2_(capacity), where_(capacity, kInT1), page_of_(capacity, 0) {}

  CachePolicyKind kind() const override { return CachePolicyKind::kArc; }

  void OnInsert(uint32_t slot, uint64_t page) override {
    page_of_[slot] = page;
    if (b1_.Contains(page)) {
      // Ghost hit in the recency history: grow the recency target.
      const uint64_t delta =
          b1_.size() >= b2_.size() ? 1 : b2_.size() / b1_.size();
      p_ = std::min(c_, p_ + delta);
      b1_.Remove(page);
      where_[slot] = kInT2;
      t2_.PushFront(slot);
      return;
    }
    if (b2_.Contains(page)) {
      const uint64_t delta =
          b2_.size() >= b1_.size() ? 1 : b1_.size() / b2_.size();
      p_ = p_ > delta ? p_ - delta : 0;
      b2_.Remove(page);
      where_[slot] = kInT2;
      t2_.PushFront(slot);
      return;
    }
    // Brand-new page: bound the directory (|T1|+|B1| <= c, total <= 2c)
    // before admitting it to T1.
    if (t1_.size() + b1_.size() >= c_ && b1_.size() > 0) {
      b1_.RemoveOldest();
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c_ &&
               b2_.size() > 0) {
      b2_.RemoveOldest();
    }
    where_[slot] = kInT1;
    t1_.PushFront(slot);
  }

  void OnAccess(uint32_t slot) override {
    if (where_[slot] == kInT1) {
      t1_.Remove(slot);
      where_[slot] = kInT2;
      t2_.PushFront(slot);
    } else {
      t2_.MoveToFront(slot);
    }
  }

  uint32_t PickVictim(uint64_t incoming_page) override {
    // REPLACE(p): T1 gives up a page when it exceeds its target — or
    // exactly meets it while the incoming page is frequency history (a B2
    // ghost), which signals T2 deserves the room.
    const bool from_t1 =
        !t1_.empty() &&
        (t1_.size() > p_ ||
         (t1_.size() == p_ && b2_.Contains(incoming_page)) || t2_.empty());
    if (from_t1) {
      const uint32_t victim = t1_.PopBack();
      b1_.PushFront(page_of_[victim]);
      return victim;
    }
    const uint32_t victim = t2_.PopBack();
    b2_.PushFront(page_of_[victim]);
    return victim;
  }

  void OnInvalidate(uint32_t slot, uint64_t page) override {
    if (where_[slot] == kInT1) {
      t1_.Remove(slot);
    } else {
      t2_.Remove(slot);
    }
    // The disk space was freed; its access history must not leak to the
    // address's next owner (see OnInvalidate contract).
    b1_.Remove(page);
    b2_.Remove(page);
  }

  void Clear() override {
    t1_.Clear();
    t2_.Clear();
    b1_.Clear();
    b2_.Clear();
    p_ = 0;
  }

  std::string DescribeQueues() const override {
    return "t1:" + std::to_string(t1_.size()) +
           " t2:" + std::to_string(t2_.size()) +
           " b1:" + std::to_string(b1_.size()) +
           " b2:" + std::to_string(b2_.size()) + " p:" + std::to_string(p_);
  }

 private:
  static constexpr uint8_t kInT1 = 0;
  static constexpr uint8_t kInT2 = 1;

  const uint64_t c_;
  SlotList t1_;
  SlotList t2_;
  GhostList b1_;
  GhostList b2_;
  uint64_t p_ = 0;  // Adaptive target for |T1|, in pages.
  std::vector<uint8_t> where_;
  std::vector<uint64_t> page_of_;
};

}  // namespace

std::string CachePolicyKindToString(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kLru:
      return "lru";
    case CachePolicyKind::kClock:
      return "clock";
    case CachePolicyKind::k2Q:
      return "2q";
    case CachePolicyKind::kArc:
      return "arc";
  }
  return "unknown";
}

std::string CachePolicySpec::Label() const {
  return CachePolicyKindToString(kind);
}

Status CachePolicySpec::Validate() const {
  // No parameters yet; the clause exists so the config layer validates
  // specs the same way it validates SchedulerSpec.
  return Status::OK();
}

StatusOr<CachePolicySpec> ParseCachePolicySpec(const std::string& text) {
  CachePolicySpec spec;
  if (text == "lru") {
    spec.kind = CachePolicyKind::kLru;
  } else if (text == "clock") {
    spec.kind = CachePolicyKind::kClock;
  } else if (text == "2q") {
    spec.kind = CachePolicyKind::k2Q;
  } else if (text == "arc") {
    spec.kind = CachePolicyKind::kArc;
  } else {
    return Status::InvalidArgument("unknown cache policy '" + text +
                                   "' (want lru|clock|2q|arc)");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  return spec;
}

std::unique_ptr<CachePolicy> MakeCachePolicy(const CachePolicySpec& spec,
                                             uint64_t capacity_pages) {
  assert(capacity_pages > 0 && capacity_pages < kNil);
  switch (spec.kind) {
    case CachePolicyKind::kLru:
      return std::make_unique<LruPolicy>(capacity_pages);
    case CachePolicyKind::kClock:
      return std::make_unique<ClockPolicy>(capacity_pages);
    case CachePolicyKind::k2Q:
      return std::make_unique<TwoQPolicy>(capacity_pages);
    case CachePolicyKind::kArc:
      return std::make_unique<ArcPolicy>(capacity_pages);
  }
  return nullptr;
}

}  // namespace rofs::fs
