#ifndef ROFS_FS_READ_OPTIMIZED_FS_H_
#define ROFS_FS_READ_OPTIMIZED_FS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "disk/disk_system.h"
#include "fs/buffer_cache.h"
#include "sim/event_queue.h"
#include "util/statusor.h"
#include "util/units.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::fs {

using FileId = uint64_t;

/// Optional file-system features beyond the paper's baseline model.
struct FsOptions {
  /// Buffer cache capacity in bytes; 0 disables caching (the paper's
  /// setup: every transfer goes to the disk system).
  uint64_t cache_bytes = 0;
  /// Cache page size.
  uint64_t cache_page_bytes = 8 * kKiB;
  /// Reads/writes larger than this bypass the cache so large sequential
  /// scans do not flush it.
  uint64_t cache_bypass_bytes = 256 * kKiB;
  /// Cache replacement policy (`[cache] policy =`); LRU, the paper's
  /// silent assumption, is the default.
  CachePolicySpec cache_policy;
  /// Sequential readahead depth in cache pages; 0 disables. Once a file
  /// sees its second consecutive sequential read, each further sequential
  /// read prefetches up to this many pages past the requested range.
  uint64_t readahead_pages = 0;
  /// Write-back buffering: cacheable writes are buffered as dirty pages
  /// and complete immediately; when more than this many pages are dirty,
  /// the oldest flush to disk in the background. 0 keeps the paper's
  /// write-through behavior.
  uint64_t writeback_dirty_max = 0;
  /// Model metadata I/O: each operation first reads the file's descriptor
  /// block (one disk unit, allocated at create time) unless it is cached.
  /// Gives teeth to the paper's goal of "minimizing the bandwidth
  /// dedicated to the transfer of meta data".
  bool model_metadata_io = false;
};

/// A simulated file: logical size, a sequential-burst cursor, and the
/// allocation state owned by the policy.
struct File {
  FileId id = 0;
  bool exists = false;
  uint64_t logical_bytes = 0;
  /// Next offset for sequential-burst access patterns.
  uint64_t cursor_bytes = 0;
  alloc::FileAllocState alloc;
  /// Descriptor block (one disk unit) when metadata I/O is modeled; the
  /// descriptor survives delete/recreate of the slot.
  alloc::FileAllocState fd_alloc;
  /// Readahead detector: where the next read would start if the access
  /// pattern is sequential, and how many reads in a row matched.
  uint64_t ra_expected_bytes = 0;
  uint32_t ra_streak = 0;
};

/// The read-optimized file system facade: the paper's file-level
/// operations (create, read, write, extend, truncate, delete) implemented
/// on top of a pluggable allocation policy and the simulated disk system.
///
/// Logical file offsets map through the file's extent list onto the linear
/// disk-unit address space; physically adjacent extents are merged into
/// single transfers, so contiguous allocation directly buys large
/// sequential transfers (the point of the paper's policies). All
/// operations return the simulated completion time of their disk I/O.
///
/// `disk` may be null: allocation tests (paper section 3) exercise only
/// the allocation machinery, and every operation then completes at its
/// arrival time.
class ReadOptimizedFs {
 public:
  /// Completion callback for the asynchronous operations; receives the
  /// simulated completion time.
  using DoneFn = disk::DiskSystem::DoneFn;

  ReadOptimizedFs(alloc::Allocator* allocator, disk::DiskSystem* disk,
                  FsOptions options = {});

  ReadOptimizedFs(const ReadOptimizedFs&) = delete;
  ReadOptimizedFs& operator=(const ReadOptimizedFs&) = delete;

  /// Disables/enables disk I/O timing. Initialization and fill phases run
  /// with I/O disabled (instantaneous), matching the paper's separation of
  /// setup from measurement.
  void set_io_enabled(bool enabled) { io_enabled_ = enabled; }
  bool io_enabled() const { return io_enabled_; }

  alloc::Allocator& allocator() { return *allocator_; }
  const alloc::Allocator& allocator() const { return *allocator_; }
  disk::DiskSystem* disk() { return disk_; }
  uint64_t disk_unit_bytes() const { return du_bytes_; }

  /// Registers an empty file. `pref_extent_bytes` is the Table 2
  /// "Allocation Size" hint used by the extent-based policy.
  FileId Create(uint64_t pref_extent_bytes);

  /// Re-initializes a deleted file slot (the workload's delete/recreate
  /// churn reuses slots so event streams keep a stable file set).
  void Recreate(FileId id);

  const File& file(FileId id) const { return files_[id]; }
  /// Mutable access for the workload driver (e.g. the sequential-burst
  /// cursor).
  File& mutable_file(FileId id) { return files_[id]; }
  size_t num_files() const { return files_.size(); }

  /// Grows the file by `bytes` (allocating per policy) and writes the new
  /// bytes. On ResourceExhausted (disk full) the file keeps whatever was
  /// allocated, and *done is the completion of any partial write.
  Status Extend(FileId id, uint64_t bytes, sim::TimeMs arrival,
                sim::TimeMs* done);

  /// Reads/writes `bytes` at `offset`, clipped to the logical size.
  /// Returns the completion time (== arrival when nothing to transfer).
  /// These sync paths require a predictable disk (passive or FCFS).
  sim::TimeMs Read(FileId id, uint64_t offset, uint64_t bytes,
                   sim::TimeMs arrival);
  sim::TimeMs Write(FileId id, uint64_t offset, uint64_t bytes,
                    sim::TimeMs arrival);

  /// Asynchronous read/write: `on_done` fires at the operation's
  /// completion time (possibly inside this call when no disk I/O is
  /// needed). Required when the disk runs a reordering scheduler, whose
  /// completion times are unknowable at submit; also valid under FCFS.
  void ReadAsync(FileId id, uint64_t offset, uint64_t bytes,
                 sim::TimeMs arrival, DoneFn on_done);
  void WriteAsync(FileId id, uint64_t offset, uint64_t bytes,
                  sim::TimeMs arrival, DoneFn on_done);

  /// The allocation half of Extend(), with no disk I/O: grows the file as
  /// far as the policy allows and reports the newly valid byte range for
  /// the caller to write (WriteAsync). Returns the allocator status
  /// (ResourceExhausted on disk full, possibly with a partial grow).
  Status ExtendAlloc(FileId id, uint64_t bytes, uint64_t* write_offset,
                     uint64_t* write_bytes);

  /// Removes up to `bytes` from the end of the file, freeing now-unused
  /// blocks per the policy. Returns the logical bytes removed.
  uint64_t Truncate(FileId id, uint64_t bytes);

  /// Frees the whole file. The slot remains and may be Recreate()d.
  void Delete(FileId id);

  /// --- Metrics (paper section 3) ---

  /// Space allocated to files but not used by them, as a fraction of the
  /// total allocated space.
  double InternalFragmentation() const;

  /// Space still available in the disk system, as a fraction of the total
  /// space. Meaningful when the first allocation failure occurs.
  double ExternalFragmentation() const;

  /// Mean number of extents across existing, non-empty files (Table 4).
  double AverageExtentsPerFile() const;

  /// The buffer cache, when enabled (nullptr otherwise).
  const BufferCache* cache() const { return cache_.get(); }
  const FsOptions& options() const { return options_; }

  /// Flushes every buffered dirty page to disk at `now` (write-back mode
  /// only; a no-op otherwise). The workload driver calls this when its
  /// run ends so buffered writes land inside the measured window.
  void FlushAll(sim::TimeMs now);

  /// --- Physical I/O accounting (disk units actually transferred, as
  /// opposed to the logical bytes the workload asked for). What the fig8
  /// buffer-pressure sweep compares across cache policies.

  /// Disk units read from the disk system, including metadata descriptor
  /// reads and readahead.
  uint64_t physical_read_du() const { return physical_read_du_; }
  /// The readahead share of physical_read_du().
  uint64_t prefetch_read_du() const { return prefetch_read_du_; }
  /// Disk units written, including background write-back flushes.
  uint64_t physical_write_du() const { return physical_write_du_; }

  /// Attaches an observability tracer (null detaches) to this layer and
  /// the buffer cache it owns. The caller wires the allocator, disk
  /// system, and event queue separately — the fs does not own those.
  void set_tracer(obs::SimTracer* tracer);

  /// Attaches per-op latency attribution (null detaches). The fs retargets
  /// it around its internal I/O: metadata descriptor reads charge the
  /// op's cache slot, write-back flushes charge the flush histogram, and
  /// readahead is untracked.
  void set_attribution(obs::OpAttribution* attr) { attr_ = attr; }

  uint64_t total_logical_bytes() const { return total_logical_bytes_; }
  uint64_t total_allocated_bytes() const {
    return allocator_->used_du() * du_bytes_;
  }
  /// Disk-system utilization (allocated fraction of total space).
  double SpaceUtilization() const { return allocator_->Utilization(); }

 private:
  struct Run {
    uint64_t start_du;
    uint64_t n_du;
  };

  /// An async operation waiting on its metadata read; pooled so the
  /// steady-state async path performs no allocation (callbacks capture
  /// {this, slot}, never the DoneFn itself).
  struct AsyncOp {
    FileId id = 0;
    uint64_t offset = 0;
    uint64_t bytes = 0;
    bool is_write = false;
    DoneFn on_done;
    uint32_t next_free = 0;
    /// The op's attribution target, restored around the data runs once
    /// the metadata read lands (the continuation callbacks have no room
    /// to carry it).
    obs::OpAttribution::Target attr_target;
  };

  /// Maps a logical byte range of a file onto merged physically
  /// contiguous disk-unit runs.
  void MapRange(const File& f, uint64_t offset, uint64_t bytes,
                std::vector<Run>* out) const;

  sim::TimeMs DoIo(FileId id, uint64_t offset, uint64_t bytes,
                   sim::TimeMs arrival, bool is_write);

  /// Async analogue of DoIo. Models at most ONE metadata read per
  /// operation (the sync Extend path's descriptor re-read inside DoIo is
  /// a quirk this path deliberately does not copy; see DESIGN.md §9).
  void DoIoAsync(FileId id, uint64_t offset, uint64_t bytes,
                 sim::TimeMs arrival, bool is_write, DoneFn on_done);
  /// Issues the mapped disk runs of a clipped range as one request group.
  void IssueRuns(File& f, uint64_t offset, uint64_t bytes,
                 sim::TimeMs arrival, bool is_write, DoneFn on_done);
  /// Continuation after an async metadata read: re-clips against the
  /// current logical size (the file may have shrunk since issue) and
  /// issues the data runs.
  void FinishDataIo(uint32_t slot, sim::TimeMs md_done);
  uint32_t AcquireAsyncSlot();
  void ReleaseAsyncSlot(uint32_t slot);

  /// Reads the file descriptor block (metadata modeling); returns the
  /// completion time, == arrival on a cache hit or when not modeled.
  sim::TimeMs MetadataRead(File& f, sim::TimeMs arrival);

  /// Feeds the sequential detector with a read of [offset, offset+bytes)
  /// and, on an established sequential streak, prefetches the next
  /// `readahead_pages` pages of the file that are not already resident.
  /// `cacheable` gates the prefetch itself (bypass-sized scans never
  /// prefetch) but the detector always updates.
  void MaybeReadahead(File& f, uint64_t offset, uint64_t bytes,
                      sim::TimeMs arrival, bool cacheable);

  /// Buffers a cacheable write's runs as dirty pages, then flushes the
  /// oldest dirty runs until at most `writeback_dirty_max` remain.
  void BufferWrite(sim::TimeMs arrival);

  /// Issues one background (completion-ignored) physical write — the
  /// write-back flush path, also used when eviction forces a dirty page
  /// out through the cache's flush callback.
  void BackgroundWrite(uint64_t start_du, uint64_t n_du);

  /// Drops cached pages for extents removed by a truncate (diff of the
  /// extent list before/after).
  void InvalidateRemovedTail(const std::vector<alloc::Extent>& before,
                             const std::vector<alloc::Extent>& after);

  alloc::Allocator* allocator_;
  disk::DiskSystem* disk_;
  bool io_enabled_ = true;
  uint64_t du_bytes_;
  FsOptions options_;
  std::unique_ptr<BufferCache> cache_;
  std::vector<File> files_;
  uint64_t total_logical_bytes_ = 0;
  mutable std::vector<Run> run_scratch_;
  /// Separate from run_scratch_: readahead runs while the demand runs are
  /// still being iterated.
  std::vector<Run> prefetch_scratch_;
  std::vector<AsyncOp> async_ops_;
  uint32_t free_async_ = 0xffffffffu;
  uint64_t physical_read_du_ = 0;
  uint64_t prefetch_read_du_ = 0;
  uint64_t physical_write_du_ = 0;
  /// The arrival time of the operation currently executing; the time the
  /// cache's eviction-flush callback stamps on its background write.
  sim::TimeMs flush_now_ms_ = 0;
  obs::SimTracer* tracer_ = nullptr;
  obs::OpAttribution* attr_ = nullptr;
};

}  // namespace rofs::fs

#endif  // ROFS_FS_READ_OPTIMIZED_FS_H_
