#ifndef ROFS_FS_CACHE_POLICY_H_
#define ROFS_FS_CACHE_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/statusor.h"

namespace rofs::fs {

/// Buffer-cache replacement policies. The paper evaluates every
/// allocation policy under one fixed LRU cache; making replacement
/// pluggable (ROADMAP item 4) lets the buffer-pressure study ask how much
/// of the headline numbers depend on that silent assumption. The seam has
/// the same shape as sched::DiskScheduler: a spec parsed from a config
/// key, an interface over pre-allocated storage, and a factory.
enum class CachePolicyKind : uint8_t {
  /// Least recently used — the seed behavior, and the default. The LRU
  /// implementation reproduces the pre-seam cache byte for byte.
  kLru,
  /// CLOCK (second chance): a reference bit per resident page and a
  /// sweeping hand; an access sets the bit instead of moving a node, so
  /// hits are O(1) stores with no list surgery.
  kClock,
  /// 2Q (Johnson & Shasha): a FIFO admission queue (A1in), a ghost queue
  /// of recently evicted page numbers (A1out), and a main LRU (Am). Only
  /// pages re-referenced after leaving A1in are promoted to Am, so one
  /// sequential scan cannot flush the hot set.
  k2Q,
  /// ARC-style adaptive (Megiddo & Modha): recency (T1) and frequency
  /// (T2) lists with ghost lists (B1/B2) steering an adaptive target size
  /// for T1. Self-tunes between LRU-like and LFU-like behavior.
  kArc,
};

std::string CachePolicyKindToString(CachePolicyKind kind);

/// Policy selection, carried by fs::FsOptions and parsed from the
/// `[cache] policy =` config key (same style as `[disk] scheduler =`).
struct CachePolicySpec {
  CachePolicyKind kind = CachePolicyKind::kLru;

  /// "lru", "clock", "2q", "arc" — the config-file syntax.
  std::string Label() const;
  Status Validate() const;
};

/// Parses the config-file syntax: lru | clock | 2q | arc. Unknown
/// policies are rejected.
StatusOr<CachePolicySpec> ParseCachePolicySpec(const std::string& text);

/// The replacement-decision half of the buffer cache. The cache engine
/// (BufferCache) owns residency: the flat slot vector, the open-addressed
/// page table, hit/miss accounting, and dirty/prefetch state. The policy
/// owns recency: which resident slot to evict next. The engine addresses
/// pages by slot index, so policies keep their queues in flat arrays
/// sized at construction — steady-state OnAccess/OnInsert/PickVictim
/// churn performs no heap allocation (verified by perf_noalloc_test).
///
/// Contract, in the engine's call order:
///  - OnInsert(slot, page): `page` was just installed into `slot`
///    (a miss fill). The slot is not currently in any policy queue.
///  - OnAccess(slot): a resident slot was referenced again.
///  - PickVictim(incoming_page): the cache is full; return the slot to
///    evict and remove it from the policy's queues (recording a ghost
///    entry when the policy keeps them). `incoming_page` is the page
///    about to be installed — adaptive policies use it to direct the
///    replacement; others ignore it.
///  - OnInvalidate(slot, page): the slot's page was dropped because its
///    disk space was freed (not a replacement). The policy must forget
///    every trace of per-access state — reference bits, queue
///    membership — so a recycled slot never inherits stale recency.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  virtual CachePolicyKind kind() const = 0;

  virtual void OnInsert(uint32_t slot, uint64_t page) = 0;
  virtual void OnAccess(uint32_t slot) = 0;
  virtual uint32_t PickVictim(uint64_t incoming_page) = 0;
  virtual void OnInvalidate(uint32_t slot, uint64_t page) = 0;

  /// Forgets everything (resident queues and ghosts).
  virtual void Clear() = 0;

  /// Queue introspection for tests and debugging: per-queue populations
  /// in a fixed format, e.g. "lru:5", "clock:5 ref:2",
  /// "a1in:3 am:2 a1out:4", "t1:3 t2:2 b1:1 b2:0 p:2". Not a hot path —
  /// may allocate.
  virtual std::string DescribeQueues() const = 0;
};

/// Creates a policy for a cache of `capacity_pages` slots. All queue
/// storage (including ghost lists) is allocated here, up front.
std::unique_ptr<CachePolicy> MakeCachePolicy(const CachePolicySpec& spec,
                                             uint64_t capacity_pages);

}  // namespace rofs::fs

#endif  // ROFS_FS_CACHE_POLICY_H_
