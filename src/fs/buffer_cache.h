#ifndef ROFS_FS_BUFFER_CACHE_H_
#define ROFS_FS_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace rofs::fs {

/// An LRU buffer cache over the disk-unit address space, used by the file
/// system to absorb repeated small reads (and file-descriptor reads when
/// metadata I/O is modeled). The paper's experiments run cache-less — the
/// cache is an extension, off by default — but the simulator supports it
/// because "high bandwidth between disks and main memory" (paper §1) in a
/// real deployment is always mediated by one.
///
/// Granularity is a fixed page of `page_du` disk units; lookups and
/// inserts address pages by their page index (address / page_du).
class BufferCache {
 public:
  /// `capacity_pages` > 0; `page_du` > 0.
  BufferCache(uint64_t capacity_pages, uint64_t page_du);

  uint64_t page_du() const { return page_du_; }
  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t size_pages() const { return map_.size(); }

  /// True when the page holding disk unit range [du, du+1) is resident;
  /// touches it (moves to the MRU position).
  bool Touch(uint64_t du);

  /// Inserts the page holding `du`, evicting the LRU page if full.
  void Insert(uint64_t du);

  /// True when every page covering [start_du, start_du+n_du) is resident
  /// (touching them all). n_du > 0.
  bool CoversRange(uint64_t start_du, uint64_t n_du);

  /// Inserts every page covering the range.
  void InsertRange(uint64_t start_du, uint64_t n_du);

  /// Drops any resident pages overlapping [start_du, start_du+n_du) —
  /// called when disk space is freed so a later owner never false-hits.
  void InvalidateRange(uint64_t start_du, uint64_t n_du);

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  uint64_t PageOf(uint64_t du) const { return du / page_du_; }
  void InsertPage(uint64_t page);
  bool TouchPage(uint64_t page);

  uint64_t capacity_pages_;
  uint64_t page_du_;
  // MRU at front.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace rofs::fs

#endif  // ROFS_FS_BUFFER_CACHE_H_
