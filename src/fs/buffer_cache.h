#ifndef ROFS_FS_BUFFER_CACHE_H_
#define ROFS_FS_BUFFER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fs/cache_policy.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::fs {

/// The buffer cache over the disk-unit address space, used by the file
/// system to absorb repeated small reads (and file-descriptor reads when
/// metadata I/O is modeled). The paper's experiments run cache-less — the
/// cache is an extension, off by default — but the simulator supports it
/// because "high bandwidth between disks and main memory" (paper §1) in a
/// real deployment is always mediated by one.
///
/// Granularity is a fixed page of `page_du` disk units; lookups and
/// inserts address pages by their page index (address / page_du).
///
/// The cache splits into an engine and a policy. This class is the
/// engine: a flat slot vector with an open-addressed page->slot index
/// (linear probing with backward-shift deletion), hit/miss accounting,
/// and the prefetch/dirty page state. Replacement order lives behind the
/// CachePolicy seam (LRU — the default, byte-identical to the pre-seam
/// cache — plus CLOCK, 2Q, ARC; see cache_policy.h). Every byte is
/// allocated in the constructor; Access/Install/Invalidate never allocate
/// and never chase list nodes scattered across the heap (see DESIGN.md
/// "Hot-path architecture" and "Cache hierarchy").
class BufferCache {
 public:
  /// Called when a dirty page must reach the disk because its slot was
  /// evicted: (start_du, n_du) of the page. Installed by the owning file
  /// system when write-back buffering is on.
  using FlushFn = std::function<void(uint64_t start_du, uint64_t n_du)>;

  /// `capacity_pages` > 0; `page_du` > 0.
  BufferCache(uint64_t capacity_pages, uint64_t page_du,
              CachePolicySpec policy = {});
  ~BufferCache();

  uint64_t page_du() const { return page_du_; }
  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t size_pages() const { return size_; }

  /// --- The range-first lookup/install API. Hit/miss accounting lives
  /// here and only here: one request is one hit or one miss, however many
  /// pages it covers (per-page accounting would weight one 32-page
  /// request like 32 single-page ones).

  /// True when every page covering [start_du, start_du+n_du) is resident.
  /// n_du > 0. On a hit every covered page is referenced in ascending
  /// page order (so the last page ends up most recent, matching
  /// Install); on a miss the replacement order is left completely
  /// untouched — the caller installs the whole range right afterwards,
  /// which establishes the range's recency.
  bool Access(uint64_t start_du, uint64_t n_du);

  /// Installs every page covering the range, evicting per policy when
  /// full.
  void Install(uint64_t start_du, uint64_t n_du);

  /// Single-page forms, thin wrappers over the range calls.
  bool Touch(uint64_t du) { return Access(du, 1); }
  void Insert(uint64_t du) { Install(du, 1); }

  /// True when the page holding `du` is resident, without referencing it
  /// or counting a hit/miss.
  bool Contains(uint64_t du) const { return FindSlot(PageOf(du)) != kNil; }

  /// Range form of Contains: residency probe with no accounting and no
  /// reordering (the readahead path uses it to skip already-resident
  /// runs without perturbing request counts).
  bool IsResident(uint64_t start_du, uint64_t n_du) const;

  /// --- Readahead support. Prefetched pages are installed without
  /// counting a request; the first demand reference of such a page is
  /// attributed as a prefetch hit (page granularity, unlike the
  /// per-request hit/miss counters).

  /// Installs the range, marking newly inserted pages as prefetched.
  /// Already-resident pages are left untouched — a speculative read is
  /// not a reference.
  void InstallPrefetch(uint64_t start_du, uint64_t n_du);

  /// --- Write-back support. Dirty pages are tracked in a FIFO (first
  /// dirtied, first flushed); the file system bounds the population by
  /// draining with PopOldestDirty, and the engine flushes through
  /// `flush_fn` when replacement evicts a dirty page. Invalidation drops
  /// dirty pages without flushing — their disk space was freed.

  /// Installs the range and marks every covered page dirty.
  void InstallDirty(uint64_t start_du, uint64_t n_du);

  /// Pops the oldest dirty run: the first-dirtied page plus any
  /// physically consecutive pages that follow it in dirty order, cleaned
  /// but left resident. Returns false when no page is dirty.
  bool PopOldestDirty(uint64_t* start_du, uint64_t* n_du);

  void set_flush_fn(FlushFn fn) { flush_fn_ = std::move(fn); }

  /// Drops any resident pages overlapping [start_du, start_du+n_du) —
  /// called when disk space is freed so a later owner never false-hits.
  /// Clears the policy's per-access state for each dropped slot (CLOCK
  /// reference bits, 2Q/ARC queue membership) so a recycled slot never
  /// inherits stale recency.
  void InvalidateRange(uint64_t start_du, uint64_t n_du);

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Lookup requests (Access calls). Each request counts exactly one hit
  /// or one miss, so hits() + misses() == requests().
  uint64_t requests() const { return requests_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  /// Pages installed by InstallPrefetch (speculative fills).
  uint64_t prefetch_issued() const { return prefetch_issued_; }
  /// Prefetched pages that later served a demand reference.
  uint64_t prefetch_hits() const { return prefetch_hits_; }
  /// Currently dirty pages.
  uint64_t dirty_pages() const { return dirty_pages_; }
  /// Pages cleaned by PopOldestDirty or evict-time flushes.
  uint64_t flushed_pages() const { return flushed_pages_; }

  const CachePolicy& policy() const { return *policy_; }
  CachePolicyKind policy_kind() const { return policy_->kind(); }
  /// Queue introspection, forwarded from the policy (tests/debugging).
  std::string DescribeQueues() const { return policy_->DescribeQueues(); }

  /// Attaches an observability tracer (null detaches).
  void set_tracer(obs::SimTracer* tracer) { tracer_ = tracer; }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;
  static constexpr uint8_t kFlagPrefetched = 1;
  static constexpr uint8_t kFlagDirty = 2;

  struct Slot {
    uint64_t page;
    uint32_t next;        // Free-list link when the slot is unused.
    uint32_t dirty_prev;  // Dirty-FIFO links; meaningful only when dirty.
    uint32_t dirty_next;
    uint8_t flags;
  };

  uint64_t PageOf(uint64_t du) const { return du / page_du_; }

  static uint64_t Hash(uint64_t page);

  /// Probe position of `page` in table_, or the empty position where it
  /// would be inserted.
  size_t ProbeFor(uint64_t page) const;
  /// Slot index of `page`, or kNil.
  uint32_t FindSlot(uint64_t page) const;

  /// Removes `page`'s table entry, backward-shifting the probe chain.
  void EraseKey(uint64_t page);
  /// Invalidation removal: clears policy state and dirty/prefetch flags
  /// (dropping dirty data unflushed), erases the key, frees the slot.
  void ReleaseSlot(uint32_t slot);
  /// Asks the policy for a victim and evicts it, flushing first when
  /// dirty. `incoming_page` is the page about to take the slot.
  void EvictOne(uint64_t incoming_page);

  void InsertPage(uint64_t page, bool prefetch);
  bool TouchPage(uint64_t page);

  /// First demand use of a prefetched page: attribute the prefetch hit.
  void NotePrefetchUse(uint32_t slot) {
    if (slots_[slot].flags & kFlagPrefetched) {
      slots_[slot].flags &= static_cast<uint8_t>(~kFlagPrefetched);
      ++prefetch_hits_;
    }
  }

  void MarkDirty(uint32_t slot);
  /// Unlinks from the dirty FIFO and clears the dirty flag.
  void CleanSlot(uint32_t slot);

  uint64_t capacity_pages_;
  uint64_t page_du_;

  std::unique_ptr<CachePolicy> policy_;
  std::vector<Slot> slots_;     // capacity_pages_ entries, fixed.
  std::vector<uint32_t> table_; // Open-addressed page->slot; kNil = empty.
  std::vector<uint32_t> sweep_scratch_;  // InvalidateRange's huge path.
  uint64_t table_mask_;
  uint32_t free_head_ = kNil;   // Unused slots, chained via Slot::next.
  uint64_t size_ = 0;

  uint32_t dirty_head_ = kNil;  // Oldest dirty page.
  uint32_t dirty_tail_ = kNil;  // Most recently dirtied.

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t requests_ = 0;
  uint64_t prefetch_issued_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t dirty_pages_ = 0;
  uint64_t flushed_pages_ = 0;

  FlushFn flush_fn_;
  obs::SimTracer* tracer_ = nullptr;
};

}  // namespace rofs::fs

#endif  // ROFS_FS_BUFFER_CACHE_H_
