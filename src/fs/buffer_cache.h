#ifndef ROFS_FS_BUFFER_CACHE_H_
#define ROFS_FS_BUFFER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rofs::obs {
class SimTracer;
}

namespace rofs::fs {

/// An LRU buffer cache over the disk-unit address space, used by the file
/// system to absorb repeated small reads (and file-descriptor reads when
/// metadata I/O is modeled). The paper's experiments run cache-less — the
/// cache is an extension, off by default — but the simulator supports it
/// because "high bandwidth between disks and main memory" (paper §1) in a
/// real deployment is always mediated by one.
///
/// Granularity is a fixed page of `page_du` disk units; lookups and
/// inserts address pages by their page index (address / page_du).
///
/// Layout: instead of std::list nodes plus an std::unordered_map, the
/// cache is a flat slot vector with intrusive prev/next indices (the LRU
/// chain) and an open-addressed page->slot index (linear probing with
/// backward-shift deletion). Every byte is allocated in the constructor;
/// Touch/Insert/Invalidate never allocate and never chase list nodes
/// scattered across the heap (see DESIGN.md "Hot-path architecture").
class BufferCache {
 public:
  /// `capacity_pages` > 0; `page_du` > 0.
  BufferCache(uint64_t capacity_pages, uint64_t page_du);

  uint64_t page_du() const { return page_du_; }
  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t size_pages() const { return size_; }

  /// True when the page holding disk unit range [du, du+1) is resident;
  /// touches it (moves to the MRU position).
  bool Touch(uint64_t du);

  /// True when the page holding `du` is resident, without touching it or
  /// counting a hit/miss.
  bool Contains(uint64_t du) const { return FindSlot(PageOf(du)) != kNil; }

  /// Inserts the page holding `du`, evicting the LRU page if full.
  void Insert(uint64_t du);

  /// True when every page covering [start_du, start_du+n_du) is resident.
  /// n_du > 0. Hit/miss accounting is per request, not per page: the call
  /// counts exactly one hit (all pages resident) or one miss. On a hit
  /// every covered page is touched in ascending page order (so the last
  /// page ends up MRU, matching InsertRange); on a miss the LRU order is
  /// left completely untouched — the caller inserts the whole range right
  /// afterwards, which establishes the range's recency.
  bool CoversRange(uint64_t start_du, uint64_t n_du);

  /// Inserts every page covering the range.
  void InsertRange(uint64_t start_du, uint64_t n_du);

  /// Drops any resident pages overlapping [start_du, start_du+n_du) —
  /// called when disk space is freed so a later owner never false-hits.
  void InvalidateRange(uint64_t start_du, uint64_t n_du);

  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  /// Lookup requests (Touch / CoversRange calls). Each request counts
  /// exactly one hit or one miss, so hits() + misses() == requests().
  uint64_t requests() const { return requests_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  /// Attaches an observability tracer (null detaches).
  void set_tracer(obs::SimTracer* tracer) { tracer_ = tracer; }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Slot {
    uint64_t page;
    uint32_t prev;  // Toward MRU; kNil at the head.
    uint32_t next;  // Toward LRU; kNil at the tail. Free-list link when
                    // the slot is unused.
  };

  uint64_t PageOf(uint64_t du) const { return du / page_du_; }

  static uint64_t Hash(uint64_t page);

  /// Probe position of `page` in table_, or the empty position where it
  /// would be inserted.
  size_t ProbeFor(uint64_t page) const;
  /// Slot index of `page`, or kNil.
  uint32_t FindSlot(uint64_t page) const;

  void LinkFront(uint32_t slot);
  void Unlink(uint32_t slot);
  void MoveToFront(uint32_t slot);

  /// Removes `page`'s table entry, backward-shifting the probe chain.
  void EraseKey(uint64_t page);
  /// Removes the slot entirely: unlinks it from the LRU chain, erases its
  /// key, and returns it to the free list.
  void ReleaseSlot(uint32_t slot);

  void InsertPage(uint64_t page);
  bool TouchPage(uint64_t page);

  uint64_t capacity_pages_;
  uint64_t page_du_;

  std::vector<Slot> slots_;     // capacity_pages_ entries, fixed.
  std::vector<uint32_t> table_; // Open-addressed page->slot; kNil = empty.
  uint64_t table_mask_;
  uint32_t head_ = kNil;        // MRU.
  uint32_t tail_ = kNil;        // LRU.
  uint32_t free_head_ = kNil;   // Unused slots, chained via Slot::next.
  uint64_t size_ = 0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t requests_ = 0;

  obs::SimTracer* tracer_ = nullptr;
};

}  // namespace rofs::fs

#endif  // ROFS_FS_BUFFER_CACHE_H_
