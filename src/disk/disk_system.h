#ifndef ROFS_DISK_DISK_SYSTEM_H_
#define ROFS_DISK_DISK_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk_geometry.h"
#include "disk/disk_model.h"
#include "disk/layout.h"
#include "obs/latency.h"
#include "sched/scheduler.h"
#include "sim/event_queue.h"
#include "util/inline_function.h"
#include "util/units.h"

namespace rofs::sim {
class ShardedEngine;
}

namespace rofs::disk {

/// Configuration of the disk subsystem (paper section 2.1 and Table 1).
struct DiskSystemConfig {
  /// Geometries of the drives. Heterogeneous drives are allowed; striped
  /// layouts level the array to the smallest drive.
  std::vector<DiskGeometry> disks;
  LayoutKind layout = LayoutKind::kStriped;
  /// The number of bytes allocated on a single disk before allocation moves
  /// to the next disk. Must be >= the sector size of every disk. Default:
  /// one track, per the XPRS design the paper's extent policy follows.
  uint64_t stripe_unit_bytes = 24 * kKiB;
  /// Minimum unit of transfer between disk and memory: the smaller of the
  /// smallest file-system block size and the stripe unit.
  uint64_t disk_unit_bytes = 1 * kKiB;
  /// Rotational delay model (see RotationModel). The paper's experiments
  /// use mean latency.
  RotationModel rotation_model = RotationModel::kMeanLatency;
  /// Per-disk request scheduling policy. The paper's model is FCFS (the
  /// default); see sched::Policy for the alternatives.
  sched::SchedulerSpec scheduler;

  /// Convenience: `n` identical drives.
  static DiskSystemConfig Array(uint32_t n,
                                const DiskGeometry& g = CdcWrenIV()) {
    DiskSystemConfig cfg;
    cfg.disks.assign(n, g);
    return cfg;
  }
};

/// The simulated disk subsystem: a set of drives behind a layout, addressed
/// as a linear space of disk units.
///
/// Two operating modes (see Disk):
///  * Passive (no BindQueue): Read()/Write() compute the completion time
///    of a request arriving at `arrival` given per-disk FCFS queueing, and
///    advance the drives' head and queue state. The caller (the
///    file-system layer) schedules its next event at the returned time.
///  * Dispatch-driven (after BindQueue): per-disk accesses flow through
///    each drive's request scheduler. Under the FCFS policy the sync
///    Read()/Write() API still returns exact completion times (service
///    order is submit order); other policies decide order when each head
///    frees, so callers must use the asynchronous group API and receive
///    the completion through a callback.
class DiskSystem {
 public:
  /// Group-completion callback; receives the time the last access of the
  /// group finished. Sized to carry the FS layer's continuation state.
  using DoneFn = util::InlineFunction<void(sim::TimeMs), 48>;

  explicit DiskSystem(const DiskSystemConfig& config);

  DiskSystem(const DiskSystem&) = delete;
  DiskSystem& operator=(const DiskSystem&) = delete;

  const DiskSystemConfig& config() const { return config_; }
  const Layout& layout() const { return *layout_; }
  uint32_t num_disks() const { return static_cast<uint32_t>(disks_.size()); }

  /// Switches every drive to dispatch-driven mode with the configured
  /// scheduling policy. Call once, before any traffic.
  void BindQueue(sim::EventQueue* queue);

  /// Dispatch-driven mode over a sharded engine: drive `i` runs on shard
  /// queue `i % num_shards`, so shards advance disk-internal events in
  /// parallel; group completions cross back into the central domain as
  /// buffered effects the engine commits in deterministic (time, shard,
  /// emission) order. Mutually exclusive with BindQueue; call once.
  void BindSharded(sim::ShardedEngine* engine);

  bool dispatch_mode() const { return queue_ != nullptr; }
  /// True when completion times are computable at submit (passive mode or
  /// the FCFS policy).
  bool predictable() const {
    return queue_ == nullptr || config_.scheduler.predictable();
  }

  /// Logical capacity in disk units / bytes.
  uint64_t capacity_du() const { return layout_->logical_capacity_du(); }
  uint64_t capacity_bytes() const {
    return capacity_du() * config_.disk_unit_bytes;
  }
  uint64_t disk_unit_bytes() const { return config_.disk_unit_bytes; }

  /// Completion time of a logical read/write of `n_du` units at `start_du`
  /// arriving at time `arrival`. The request completes when every per-disk
  /// access completes (full-stripe transfers exploit all drives in
  /// parallel). Requires predictable(); under a reordering scheduler use
  /// the group API below.
  sim::TimeMs Read(sim::TimeMs arrival, uint64_t start_du, uint64_t n_du);
  sim::TimeMs Write(sim::TimeMs arrival, uint64_t start_du, uint64_t n_du);

  /// Asynchronous request group (dispatch mode): accesses added between
  /// OpenGroup and CloseGroup complete as one unit; `on_done` fires with
  /// the completion time of the last access (or `arrival` for an empty
  /// group). Usable under any policy.
  uint32_t OpenGroup(sim::TimeMs arrival, DoneFn on_done);
  void GroupRead(uint32_t group, sim::TimeMs arrival, uint64_t start_du,
                 uint64_t n_du);
  void GroupWrite(uint32_t group, sim::TimeMs arrival, uint64_t start_du,
                  uint64_t n_du);
  /// Seals the group; `on_done` may fire inside this call when every
  /// access already completed (or none were added).
  void CloseGroup(uint32_t group);

  /// Maximum sustained sequential bandwidth of the configuration in
  /// bytes/ms — the denominator for all throughput percentages (paper
  /// section 3: "expressed as a percent of the sustained sequential
  /// performance the disk system is capable of providing").
  double MaxSequentialBandwidthBytesPerMs() const;

  /// Logical bytes moved by Read()/Write() since the last ResetStats().
  uint64_t logical_bytes_read() const { return logical_bytes_read_; }
  uint64_t logical_bytes_written() const { return logical_bytes_written_; }

  /// Physical bytes moved, including mirror/parity traffic.
  uint64_t physical_bytes() const;

  /// Total seeks performed across all drives.
  uint64_t total_seeks() const;

  const Disk& disk(uint32_t i) const { return disks_[i]; }

  /// Attaches an observability tracer (null detaches) to every drive;
  /// drive `i` records onto trace track `i`.
  void set_tracer(obs::SimTracer* tracer) {
    for (uint32_t i = 0; i < num_disks(); ++i) {
      disks_[i].set_tracer(tracer, i);
    }
  }

  /// Per-drive tracer override (sharded runs give each shard its own
  /// lane so drives record without cross-thread contention).
  void set_disk_tracer(uint32_t i, obs::SimTracer* tracer) {
    disks_[i].set_tracer(tracer, i);
  }

  /// Attaches per-op latency attribution (null detaches). Synchronous
  /// submissions charge each access to the attribution's current target;
  /// groups capture the target at OpenGroup and charge deferred
  /// completions to it on the central thread.
  void set_attribution(obs::OpAttribution* attr) { attr_ = attr; }

  void ResetStats();

  std::string DescribeConfig() const;

 private:
  struct Group {
    DoneFn on_done;
    sim::TimeMs max_done = 0.0;
    uint32_t outstanding = 0;
    bool open = false;
    uint32_t next_free = 0;
    /// Latency-attribution target captured at OpenGroup.
    obs::OpAttribution::Target target;
  };

  sim::TimeMs Submit(sim::TimeMs arrival,
                     const std::vector<DiskAccess>& accesses);
  /// Routes the group's per-disk accesses through the drive schedulers.
  void SubmitGroup(uint32_t group, sim::TimeMs arrival,
                   const std::vector<DiskAccess>& accesses);
  void OnGroupAccessDone(uint32_t group, sim::TimeMs done,
                         const obs::AccessPhases& phases);
  void FinishGroup(uint32_t group);
  /// The drive that should serve a mirrored read: less busy replica by
  /// predicted busy time (predictable modes) or pending load (reordering
  /// schedulers, where busy_until does not reflect the queue).
  uint32_t PickMirrorTarget(const DiskAccess& a) const;

  static constexpr uint32_t kNoGroup = 0xffffffffu;

  DiskSystemConfig config_;
  std::unique_ptr<Layout> layout_;
  std::vector<Disk> disks_;
  sim::EventQueue* queue_ = nullptr;
  sim::ShardedEngine* engine_ = nullptr;
  std::vector<Group> groups_;
  uint32_t free_group_ = kNoGroup;
  uint64_t logical_bytes_read_ = 0;
  uint64_t logical_bytes_written_ = 0;
  obs::OpAttribution* attr_ = nullptr;
  // Reused scratch buffer to avoid per-request allocation.
  mutable std::vector<DiskAccess> scratch_;
};

}  // namespace rofs::disk

#endif  // ROFS_DISK_DISK_SYSTEM_H_
