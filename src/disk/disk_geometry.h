#ifndef ROFS_DISK_DISK_GEOMETRY_H_
#define ROFS_DISK_DISK_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace rofs::disk {

/// Physical layout and performance characteristics of one disk drive
/// (paper Table 1). Seek time for an N-track seek is
/// `single_track_seek_ms + N * seek_incremental_ms` (paper section 2.1).
struct DiskGeometry {
  /// Number of platters == tracks per cylinder (one head per surface).
  uint32_t platters = 9;
  uint32_t cylinders = 1600;
  uint64_t track_bytes = 24 * kKiB;
  double single_track_seek_ms = 5.5;
  double seek_incremental_ms = 0.0320;
  double rotation_ms = 16.67;

  /// Bytes in one cylinder (all tracks under the heads).
  uint64_t cylinder_bytes() const { return track_bytes * platters; }

  /// Total drive capacity in bytes.
  uint64_t capacity_bytes() const {
    return cylinder_bytes() * cylinders;
  }

  /// Time to seek across `distance` cylinders (0 => no seek).
  /// Paper: "an N track seek takes ST + N*SI ms".
  double SeekTime(uint64_t distance) const {
    if (distance == 0) return 0.0;
    return single_track_seek_ms +
           static_cast<double>(distance) * seek_incremental_ms;
  }

  /// Mean rotational latency (half a rotation).
  double AvgRotationalLatency() const { return rotation_ms / 2.0; }

  /// Media transfer time for `bytes` at full rotation speed.
  double TransferTime(uint64_t bytes) const {
    return static_cast<double>(bytes) /
           static_cast<double>(track_bytes) * rotation_ms;
  }

  /// Sustained sequential bandwidth of one drive in bytes/ms: reading whole
  /// cylinders back to back, paying one single-track seek per cylinder
  /// switch.
  double SequentialBandwidth() const {
    const double cyl_time =
        static_cast<double>(platters) * rotation_ms + single_track_seek_ms;
    return static_cast<double>(cylinder_bytes()) / cyl_time;
  }

  std::string ToString() const;
};

/// The CDC 5 1/4" Wren IV (94171-344) drive the paper simulates, with the
/// simulator's rounding of cylinder count (1549 actual -> 1600 simulated).
inline DiskGeometry CdcWrenIV() { return DiskGeometry{}; }

}  // namespace rofs::disk

#endif  // ROFS_DISK_DISK_GEOMETRY_H_
