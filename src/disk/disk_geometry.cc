#include "disk/disk_geometry.h"

#include "util/table.h"

namespace rofs::disk {

std::string DiskGeometry::ToString() const {
  return FormatString(
      "DiskGeometry{platters=%u cylinders=%u track=%s capacity=%s "
      "seek=%.2f+N*%.4fms rotation=%.2fms seq_bw=%.1fKB/ms}",
      platters, cylinders, FormatBytes(track_bytes).c_str(),
      FormatBytes(capacity_bytes()).c_str(), single_track_seek_ms,
      seek_incremental_ms, rotation_ms, SequentialBandwidth() / 1024.0);
}

}  // namespace rofs::disk
