#ifndef ROFS_DISK_LAYOUT_H_
#define ROFS_DISK_LAYOUT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rofs::disk {

/// Disk system configurations supported by the simulator (paper section
/// 2.1). All paper results use kStriped ("merely stripe the data across an
/// array of disks"); the other configurations are provided as described and
/// exercised by tests and ablation benches.
enum class LayoutKind {
  /// RAID0: data striped across all disks, no redundancy.
  kStriped,
  /// Mirrored pairs: all data stored on two identical disks.
  kMirrored,
  /// RAID5: rotating parity; one chunk of parity per N-1 data chunks.
  kRaid5,
  /// Gray'90 parity striping: files live on single disks, parity regions
  /// are distributed across the other disks.
  kParityStriped,
};

std::string LayoutKindToString(LayoutKind kind);

/// One physical access produced by mapping a logical run.
struct DiskAccess {
  uint32_t disk;
  uint64_t offset_du;  ///< Offset within the disk, in disk units.
  uint64_t length_du;
  bool is_write;
  /// When >= 0, the access may be served by this replica instead
  /// (mirrored reads); the disk system picks the less busy drive.
  int32_t alt_disk = -1;
};

/// Maps the linear logical disk-unit address space onto physical disks.
/// Subclasses implement the configurations above.
class Layout {
 public:
  virtual ~Layout() = default;

  virtual LayoutKind kind() const = 0;

  /// Number of addressable logical (data) disk units.
  virtual uint64_t logical_capacity_du() const = 0;

  /// Decomposes a logical read into per-disk accesses.
  virtual void MapRead(uint64_t start_du, uint64_t n_du,
                       std::vector<DiskAccess>* out) const = 0;

  /// Decomposes a logical write into per-disk accesses, including any
  /// replica or parity traffic (reads for read-modify-write included).
  virtual void MapWrite(uint64_t start_du, uint64_t n_du,
                        std::vector<DiskAccess>* out) const = 0;

  /// Number of disks that contribute data bandwidth (used to compute the
  /// maximum sequential throughput of the configuration).
  virtual uint32_t data_disks() const = 0;
};

/// Creates a layout.
///
/// `num_disks`: physical drives; `per_disk_du`: capacity of each drive in
/// disk units (heterogeneous arrays are leveled to the smallest drive by
/// the caller); `stripe_du`: stripe unit in disk units (ignored by
/// kParityStriped).
std::unique_ptr<Layout> MakeLayout(LayoutKind kind, uint32_t num_disks,
                                   uint64_t per_disk_du, uint64_t stripe_du);

}  // namespace rofs::disk

#endif  // ROFS_DISK_LAYOUT_H_
