#ifndef ROFS_DISK_DISK_MODEL_H_
#define ROFS_DISK_DISK_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/disk_geometry.h"
#include "obs/latency.h"
#include "sched/scheduler.h"
#include "sim/event_queue.h"
#include "util/histogram.h"
#include "util/inline_function.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::disk {

/// How rotational delay is charged.
enum class RotationModel {
  /// Mean latency: half a rotation per non-sequential access, zero when
  /// an access exactly continues the previous one. This is the paper's
  /// model (its policies do no rotational optimization).
  kMeanLatency,
  /// Tracked angular position: the platter rotates continuously with
  /// simulated time; each access waits until its first sector passes
  /// under the head. Sequential continuation costs zero naturally, and
  /// latency after a seek depends on when the seek lands.
  kTracked,
};

/// One disk drive: a timing model plus head-position state, serviced
/// through a pluggable request scheduler (sched::DiskScheduler).
///
/// Service time for an access at byte `offset` of `length` bytes:
///  * a seek of ST + d*SI when the head travels d != 0 cylinders (d is the
///    point-to-point distance under FCFS/SSTF/LOOK, and includes sweep
///    turnaround travel under SCAN/C-SCAN),
///  * mean rotational latency (half a rotation) unless the access exactly
///    continues the previous one (offset == previous end, same cylinder),
///  * media transfer at full rotation speed, plus one single-track seek per
///    cylinder boundary crossed inside the transfer (head switches within a
///    cylinder are free, rotational position is assumed preserved).
///
/// Rotational position is not tracked sector-by-sector by default; the
/// paper's policies do no rotational optimization, so mean latency is the
/// right model (see DESIGN.md).
///
/// The drive runs in one of two modes:
///  * Passive (no BindQueue): Access() computes each request's completion
///    time at arrival under FCFS queueing (start = max(arrival,
///    busy_until)). This is the seed's original model.
///  * Dispatch-driven (after BindQueue): requests enter the scheduler's
///    pending queue via Submit() and the next request is chosen when the
///    head frees; completion is delivered through a sim::EventQueue
///    callback. Under the FCFS policy service order is fully determined at
///    submit time, so completion times are still computed eagerly with the
///    passive algorithm — dispatch-driven FCFS reproduces the passive
///    model exactly (see DESIGN.md §9).
class Disk {
 public:
  /// Completion callback for dispatch-driven requests; receives the
  /// completion time and the access's service-phase breakdown (queue
  /// wait, seek, rotation, transfer) for latency attribution. Sized for
  /// a pointer-plus-handle capture.
  using CompletionFn =
      util::InlineFunction<void(sim::TimeMs, const obs::AccessPhases&), 24>;

  explicit Disk(const DiskGeometry& geometry,
                RotationModel rotation = RotationModel::kMeanLatency);
  ~Disk();
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;
  Disk(Disk&&) = default;
  Disk& operator=(Disk&&) = default;

  const DiskGeometry& geometry() const { return geometry_; }

  /// Switches the drive to dispatch-driven mode: requests submitted from
  /// now on flow through a scheduler of the given policy and complete via
  /// `queue` callbacks. Call once, before any traffic.
  void BindQueue(sim::EventQueue* queue, const sched::SchedulerSpec& spec);

  bool dispatch_mode() const { return queue_ != nullptr; }
  /// True when service order is fully determined by arrival order (FCFS,
  /// or passive mode), making completion times computable at submit.
  bool predictable() const {
    return scheduler_ == nullptr || scheduler_->predictable();
  }

  /// Queues an access arriving at `arrival`; returns its completion time
  /// under FCFS queueing. Passive mode only — in dispatch mode use
  /// Submit() (predictable policies route through Access internally).
  /// The caller addresses the disk by byte offset within this drive.
  sim::TimeMs Access(sim::TimeMs arrival, uint64_t offset_bytes,
                     uint64_t length_bytes);

  /// Dispatch mode: submits an access to the scheduler. `on_done` (may be
  /// empty) fires at the completion time. Returns the predicted
  /// completion time under a predictable policy, otherwise `arrival`
  /// (the completion is only known when the scheduler gets there).
  sim::TimeMs Submit(sim::TimeMs arrival, uint64_t offset_bytes,
                     uint64_t length_bytes, CompletionFn on_done);

  /// Earliest time a new request could begin service.
  sim::TimeMs busy_until() const { return busy_until_; }

  /// Requests pending in the scheduler (excluding the one in service).
  size_t queue_depth() const {
    return scheduler_ == nullptr ? 0 : scheduler_->queue_depth();
  }
  /// Pending plus in-service requests; the dispatch-mode analogue of
  /// comparing busy_until() for load balancing.
  size_t pending_load() const {
    return queue_depth() + (in_service_ ? 1 : 0);
  }

  /// Statistics.
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t seeks() const { return seeks_; }
  double busy_time_ms() const { return busy_time_ms_; }

  /// Service-time breakdown by phase. The three phases partition each
  /// access's service time (cylinder-boundary costs inside a transfer are
  /// charged to their seek/rotation components), so their sum tracks
  /// busy_time_ms() to floating-point rounding.
  double seek_time_ms() const { return seek_time_ms_; }
  double rotation_time_ms() const { return rotation_time_ms_; }
  double transfer_time_ms() const { return transfer_time_ms_; }
  /// Total time requests spent queued behind the busy server (passive
  /// mode) or in the scheduler's pending queue (dispatch mode).
  double queue_wait_ms() const { return queue_wait_ms_; }

  /// Phase breakdown of the most recently committed access, exactly as
  /// charged to the cumulative counters. Valid immediately after a
  /// synchronous Access()/predictable Submit() returns; deferred
  /// completions receive their own copy through CompletionFn instead.
  const obs::AccessPhases& last_phases() const { return last_phases_; }

  /// Scheduler statistics (dispatch mode; zero otherwise).
  uint64_t dispatches() const { return dispatches_; }
  /// Dispatches that did not pick the oldest pending request.
  uint64_t reorders() const { return reorders_; }
  /// Mean pending-queue depth observed at dispatch.
  double mean_dispatch_queue_depth() const {
    return dispatches_ == 0
               ? 0.0
               : static_cast<double>(queue_depth_sum_) /
                     static_cast<double>(dispatches_);
  }
  /// Distribution of head travel (cylinders, incl. sweep turnaround) per
  /// dispatch.
  const Histogram& dispatch_seek_cylinders() const {
    return dispatch_seek_cylinders_;
  }

  /// Attaches an observability tracer (null detaches). `index` names this
  /// drive's trace track.
  void set_tracer(obs::SimTracer* tracer, uint32_t index) {
    tracer_ = tracer;
    tracer_index_ = index;
  }

  /// Fraction of [0, now] this disk spent servicing requests.
  double Utilization(sim::TimeMs now) const {
    return now > 0 ? busy_time_ms_ / now : 0.0;
  }

  /// Resets statistics (not head/queue state); used when a measurement
  /// phase starts after a warm-up phase.
  void ResetStats();

 private:
  /// A submitted-but-incomplete request: scheduler queues hold only PODs
  /// (sched::Request), so the callback and per-request timing live here,
  /// addressed by the request handle.
  struct PendingIo {
    sched::Request request;              // Kept for deferred admission.
    sim::TimeMs predicted_done = 0.0;    // Predictable policies only.
    uint64_t seek_cylinders = 0;         // Head travel, fixed at submit
                                         // (predictable) or dispatch.
    obs::AccessPhases phases;            // Service breakdown, fixed when
                                         // the access commits.
    CompletionFn on_done;
    uint32_t next_free = 0;
  };

  /// Per-access service-time breakdown computed by the shared cost model.
  struct ServiceTimes {
    double service = 0.0;
    double seek_ms = 0.0;
    double rotate_ms = 0.0;
    double transfer_ms = 0.0;
    uint64_t last_cylinder = 0;
    bool seeked = false;
  };

  uint64_t CylinderOf(uint64_t offset_bytes) const {
    return offset_bytes / geometry_.cylinder_bytes();
  }

  /// Angular wait (ms) until the sector at in-track byte `offset` passes
  /// under the head, given the current time (kTracked only).
  double TrackedLatency(sim::TimeMs now, uint64_t offset_bytes) const;

  /// The timing model shared by the passive and dispatch paths: service
  /// time for an access starting at `start` whose head travel is
  /// `seek_cylinders`. `idled` reports whether the drive sat idle before
  /// `start` (tracked rotation must re-align after idling).
  ServiceTimes ComputeService(sim::TimeMs start, uint64_t offset_bytes,
                              uint64_t length_bytes, bool sequential,
                              bool idled, uint64_t seek_cylinders) const;

  /// Commits an access: head/busy state, statistics, tracer record.
  void CommitAccess(sim::TimeMs arrival, sim::TimeMs start,
                    uint64_t offset_bytes, uint64_t length_bytes,
                    const ServiceTimes& t);

  /// Head travel the passive FCFS model would charge for an access issued
  /// against the current head state.
  uint64_t SeekDistanceNow(uint64_t offset_bytes) const;

  uint32_t AcquirePendingSlot();
  void ReleasePendingSlot(uint32_t handle);

  /// Starts service on the scheduler's next pick if the head is free.
  void TryDispatch();
  void OnServiceComplete(uint32_t handle, sim::TimeMs completion);
  /// Fires a predictable-mode completion callback at its predicted time.
  void DeliverPredicted(uint32_t handle);
  /// Admits the request in pending slot `handle` into the scheduler and
  /// kicks dispatch (non-predictable policies defer admission of future
  /// arrivals so the scheduler only ever reorders arrived requests).
  void Admit(uint32_t handle);

  DiskGeometry geometry_;
  RotationModel rotation_model_;
  sim::TimeMs busy_until_ = 0.0;
  uint64_t head_cylinder_ = 0;
  // One past the last byte accessed, for sequential-continuation detection.
  uint64_t last_end_offset_ = 0;
  bool has_last_access_ = false;

  // Dispatch-driven mode.
  sim::EventQueue* queue_ = nullptr;
  std::unique_ptr<sched::DiskScheduler> scheduler_;
  std::vector<PendingIo> pending_;
  uint32_t free_pending_ = kNoSlot;
  uint64_t next_request_seq_ = 0;
  bool in_service_ = false;

  static constexpr uint32_t kNoSlot = 0xffffffffu;

  uint64_t bytes_transferred_ = 0;
  uint64_t accesses_ = 0;
  uint64_t seeks_ = 0;
  double busy_time_ms_ = 0.0;
  double seek_time_ms_ = 0.0;
  double rotation_time_ms_ = 0.0;
  double transfer_time_ms_ = 0.0;
  double queue_wait_ms_ = 0.0;
  obs::AccessPhases last_phases_;

  uint64_t dispatches_ = 0;
  uint64_t reorders_ = 0;
  uint64_t queue_depth_sum_ = 0;
  Histogram dispatch_seek_cylinders_;

  obs::SimTracer* tracer_ = nullptr;
  uint32_t tracer_index_ = 0;
};

}  // namespace rofs::disk

#endif  // ROFS_DISK_DISK_MODEL_H_
