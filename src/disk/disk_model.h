#ifndef ROFS_DISK_DISK_MODEL_H_
#define ROFS_DISK_DISK_MODEL_H_

#include <cstdint>

#include "disk/disk_geometry.h"
#include "sim/event_queue.h"

namespace rofs::obs {
class SimTracer;
}

namespace rofs::disk {

/// How rotational delay is charged.
enum class RotationModel {
  /// Mean latency: half a rotation per non-sequential access, zero when
  /// an access exactly continues the previous one. This is the paper's
  /// model (its policies do no rotational optimization).
  kMeanLatency,
  /// Tracked angular position: the platter rotates continuously with
  /// simulated time; each access waits until its first sector passes
  /// under the head. Sequential continuation costs zero naturally, and
  /// latency after a seek depends on when the seek lands.
  kTracked,
};

/// One disk drive modeled as a FCFS server with head-position state.
///
/// Service time for an access at byte `offset` of `length` bytes:
///  * a seek of ST + d*SI when the target cylinder is d != 0 cylinders away,
///  * mean rotational latency (half a rotation) unless the access exactly
///    continues the previous one (offset == previous end, same cylinder),
///  * media transfer at full rotation speed, plus one single-track seek per
///    cylinder boundary crossed inside the transfer (head switches within a
///    cylinder are free, rotational position is assumed preserved).
///
/// Rotational position is not tracked sector-by-sector; the policies under
/// study do no rotational optimization, so mean latency is the right model
/// (see DESIGN.md).
class Disk {
 public:
  explicit Disk(const DiskGeometry& geometry,
                RotationModel rotation = RotationModel::kMeanLatency);

  const DiskGeometry& geometry() const { return geometry_; }

  /// Queues an access arriving at `arrival`; returns its completion time.
  /// The caller addresses the disk by byte offset within this drive.
  sim::TimeMs Access(sim::TimeMs arrival, uint64_t offset_bytes,
                     uint64_t length_bytes);

  /// Earliest time a new request could begin service.
  sim::TimeMs busy_until() const { return busy_until_; }

  /// Statistics.
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t accesses() const { return accesses_; }
  uint64_t seeks() const { return seeks_; }
  double busy_time_ms() const { return busy_time_ms_; }

  /// Service-time breakdown by phase. The three phases partition each
  /// access's service time (cylinder-boundary costs inside a transfer are
  /// charged to their seek/rotation components), so their sum tracks
  /// busy_time_ms() to floating-point rounding.
  double seek_time_ms() const { return seek_time_ms_; }
  double rotation_time_ms() const { return rotation_time_ms_; }
  double transfer_time_ms() const { return transfer_time_ms_; }
  /// Total time requests spent queued behind the busy server.
  double queue_wait_ms() const { return queue_wait_ms_; }

  /// Attaches an observability tracer (null detaches). `index` names this
  /// drive's trace track.
  void set_tracer(obs::SimTracer* tracer, uint32_t index) {
    tracer_ = tracer;
    tracer_index_ = index;
  }

  /// Fraction of [0, now] this disk spent servicing requests.
  double Utilization(sim::TimeMs now) const {
    return now > 0 ? busy_time_ms_ / now : 0.0;
  }

  /// Resets statistics (not head/queue state); used when a measurement
  /// phase starts after a warm-up phase.
  void ResetStats();

 private:
  uint64_t CylinderOf(uint64_t offset_bytes) const {
    return offset_bytes / geometry_.cylinder_bytes();
  }

  /// Angular wait (ms) until the sector at in-track byte `offset` passes
  /// under the head, given the current time (kTracked only).
  double TrackedLatency(sim::TimeMs now, uint64_t offset_bytes) const;

  DiskGeometry geometry_;
  RotationModel rotation_model_;
  sim::TimeMs busy_until_ = 0.0;
  uint64_t head_cylinder_ = 0;
  // One past the last byte accessed, for sequential-continuation detection.
  uint64_t last_end_offset_ = 0;
  bool has_last_access_ = false;

  uint64_t bytes_transferred_ = 0;
  uint64_t accesses_ = 0;
  uint64_t seeks_ = 0;
  double busy_time_ms_ = 0.0;
  double seek_time_ms_ = 0.0;
  double rotation_time_ms_ = 0.0;
  double transfer_time_ms_ = 0.0;
  double queue_wait_ms_ = 0.0;

  obs::SimTracer* tracer_ = nullptr;
  uint32_t tracer_index_ = 0;
};

}  // namespace rofs::disk

#endif  // ROFS_DISK_DISK_MODEL_H_
