#include "disk/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/tracer.h"

namespace rofs::disk {

Disk::Disk(const DiskGeometry& geometry, RotationModel rotation)
    : geometry_(geometry), rotation_model_(rotation) {}

double Disk::TrackedLatency(sim::TimeMs now, uint64_t offset_bytes) const {
  // The platter rotates continuously: at time t the head is over the
  // in-track byte (t mod R) / R * track_bytes (all surfaces aligned,
  // index mark at t = 0).
  const double rotation = geometry_.rotation_ms;
  const double target =
      static_cast<double>(offset_bytes % geometry_.track_bytes) /
      static_cast<double>(geometry_.track_bytes);
  const double current = std::fmod(now, rotation) / rotation;
  double wait = target - current;
  if (wait < 0) wait += 1.0;
  return wait * rotation;
}

sim::TimeMs Disk::Access(sim::TimeMs arrival, uint64_t offset_bytes,
                         uint64_t length_bytes) {
  assert(length_bytes > 0);
  assert(offset_bytes + length_bytes <= geometry_.capacity_bytes());

  const uint64_t first_cyl = CylinderOf(offset_bytes);
  const uint64_t last_cyl = CylinderOf(offset_bytes + length_bytes - 1);

  const sim::TimeMs start = std::max(arrival, busy_until_);
  double service = 0.0;
  // Phase breakdown of this access. Mirrors the `service` additions
  // below without reordering them, so the simulated completion time is
  // bit-identical with or without the breakdown consumers attached.
  double seek_ms = 0.0;
  double rotate_ms = 0.0;
  const bool sequential = has_last_access_ &&
                          offset_bytes == last_end_offset_;
  if (sequential) {
    // Continuing the previous transfer: no positioning cost beyond a
    // track-to-track seek if the previous access ended at a cylinder edge.
    if (first_cyl != head_cylinder_) {
      service += geometry_.SeekTime(1);
      seek_ms += geometry_.SeekTime(1);
      ++seeks_;
    }
    if (rotation_model_ == RotationModel::kTracked && start > busy_until_) {
      // The disk idled since the previous access: the platter kept
      // spinning and we must wait for the sector to come around again.
      const double latency = TrackedLatency(start + service, offset_bytes);
      service += latency;
      rotate_ms += latency;
    }
  } else {
    const uint64_t distance = first_cyl > head_cylinder_
                                  ? first_cyl - head_cylinder_
                                  : head_cylinder_ - first_cyl;
    if (distance != 0) {
      service += geometry_.SeekTime(distance);
      seek_ms += geometry_.SeekTime(distance);
      ++seeks_;
    }
    if (rotation_model_ == RotationModel::kMeanLatency) {
      service += geometry_.AvgRotationalLatency();
      rotate_ms += geometry_.AvgRotationalLatency();
    } else {
      const double latency = TrackedLatency(start + service, offset_bytes);
      service += latency;
      rotate_ms += latency;
    }
  }

  const double transfer_ms = geometry_.TransferTime(length_bytes);
  service += transfer_ms;
  // Track-to-track repositioning at each cylinder boundary inside the run;
  // with tracked rotation the platter also has to realign after each
  // boundary seek.
  if (last_cyl > first_cyl) {
    const double boundary_cost =
        rotation_model_ == RotationModel::kMeanLatency
            ? geometry_.SeekTime(1)
            : geometry_.SeekTime(1) +
                  (geometry_.rotation_ms -
                   std::fmod(geometry_.SeekTime(1), geometry_.rotation_ms));
    service += static_cast<double>(last_cyl - first_cyl) * boundary_cost;
    const double crossings = static_cast<double>(last_cyl - first_cyl);
    seek_ms += crossings * geometry_.SeekTime(1);
    rotate_ms += crossings * (boundary_cost - geometry_.SeekTime(1));
  }

  const sim::TimeMs completion = start + service;

  busy_until_ = completion;
  head_cylinder_ = last_cyl;
  last_end_offset_ = offset_bytes + length_bytes;
  has_last_access_ = true;

  bytes_transferred_ += length_bytes;
  ++accesses_;
  busy_time_ms_ += service;
  seek_time_ms_ += seek_ms;
  rotation_time_ms_ += rotate_ms;
  transfer_time_ms_ += transfer_ms;
  queue_wait_ms_ += start - arrival;

  if (tracer_ != nullptr) {
    tracer_->DiskAccess(tracer_index_, arrival, start, seek_ms, rotate_ms,
                        transfer_ms, length_bytes);
  }
  return completion;
}

void Disk::ResetStats() {
  bytes_transferred_ = 0;
  accesses_ = 0;
  seeks_ = 0;
  busy_time_ms_ = 0.0;
  seek_time_ms_ = 0.0;
  rotation_time_ms_ = 0.0;
  transfer_time_ms_ = 0.0;
  queue_wait_ms_ = 0.0;
}

}  // namespace rofs::disk
