#include "disk/disk_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "obs/tracer.h"

namespace rofs::disk {

Disk::Disk(const DiskGeometry& geometry, RotationModel rotation)
    : geometry_(geometry), rotation_model_(rotation) {}

Disk::~Disk() = default;

void Disk::BindQueue(sim::EventQueue* queue,
                     const sched::SchedulerSpec& spec) {
  assert(queue != nullptr);
  assert(queue_ == nullptr && "BindQueue must be called once");
  assert(accesses_ == 0 && !has_last_access_ &&
         "BindQueue must precede traffic");
  queue_ = queue;
  scheduler_ = sched::MakeScheduler(spec, geometry_.cylinders - 1);
}

double Disk::TrackedLatency(sim::TimeMs now, uint64_t offset_bytes) const {
  // The platter rotates continuously: at time t the head is over the
  // in-track byte (t mod R) / R * track_bytes (all surfaces aligned,
  // index mark at t = 0).
  const double rotation = geometry_.rotation_ms;
  const double target =
      static_cast<double>(offset_bytes % geometry_.track_bytes) /
      static_cast<double>(geometry_.track_bytes);
  const double current = std::fmod(now, rotation) / rotation;
  double wait = target - current;
  if (wait < 0) wait += 1.0;
  return wait * rotation;
}

uint64_t Disk::SeekDistanceNow(uint64_t offset_bytes) const {
  const uint64_t first_cyl = CylinderOf(offset_bytes);
  if (has_last_access_ && offset_bytes == last_end_offset_) {
    // Sequential continuation: at most a track-to-track reposition.
    return first_cyl != head_cylinder_ ? 1 : 0;
  }
  return first_cyl > head_cylinder_ ? first_cyl - head_cylinder_
                                    : head_cylinder_ - first_cyl;
}

Disk::ServiceTimes Disk::ComputeService(sim::TimeMs start,
                                        uint64_t offset_bytes,
                                        uint64_t length_bytes, bool sequential,
                                        bool idled,
                                        uint64_t seek_cylinders) const {
  assert(length_bytes > 0);
  assert(offset_bytes + length_bytes <= geometry_.capacity_bytes());

  const uint64_t first_cyl = CylinderOf(offset_bytes);
  const uint64_t last_cyl = CylinderOf(offset_bytes + length_bytes - 1);

  ServiceTimes t;
  t.last_cylinder = last_cyl;
  // The additions below must keep their exact order: the simulated
  // completion time is bit-identical to the seed model only because the
  // floating-point accumulation sequence is unchanged.
  if (sequential) {
    // Continuing the previous transfer: no positioning cost beyond a
    // track-to-track seek if the previous access ended at a cylinder edge.
    if (seek_cylinders != 0) {
      t.service += geometry_.SeekTime(1);
      t.seek_ms += geometry_.SeekTime(1);
      t.seeked = true;
    }
    if (rotation_model_ == RotationModel::kTracked && idled) {
      // The disk idled since the previous access: the platter kept
      // spinning and we must wait for the sector to come around again.
      const double latency = TrackedLatency(start + t.service, offset_bytes);
      t.service += latency;
      t.rotate_ms += latency;
    }
  } else {
    if (seek_cylinders != 0) {
      t.service += geometry_.SeekTime(seek_cylinders);
      t.seek_ms += geometry_.SeekTime(seek_cylinders);
      t.seeked = true;
    }
    if (rotation_model_ == RotationModel::kMeanLatency) {
      t.service += geometry_.AvgRotationalLatency();
      t.rotate_ms += geometry_.AvgRotationalLatency();
    } else {
      const double latency = TrackedLatency(start + t.service, offset_bytes);
      t.service += latency;
      t.rotate_ms += latency;
    }
  }

  t.transfer_ms = geometry_.TransferTime(length_bytes);
  t.service += t.transfer_ms;
  // Track-to-track repositioning at each cylinder boundary inside the run;
  // with tracked rotation the platter also has to realign after each
  // boundary seek.
  if (last_cyl > first_cyl) {
    const double boundary_cost =
        rotation_model_ == RotationModel::kMeanLatency
            ? geometry_.SeekTime(1)
            : geometry_.SeekTime(1) +
                  (geometry_.rotation_ms -
                   std::fmod(geometry_.SeekTime(1), geometry_.rotation_ms));
    t.service += static_cast<double>(last_cyl - first_cyl) * boundary_cost;
    const double crossings = static_cast<double>(last_cyl - first_cyl);
    t.seek_ms += crossings * geometry_.SeekTime(1);
    t.rotate_ms += crossings * (boundary_cost - geometry_.SeekTime(1));
  }
  return t;
}

void Disk::CommitAccess(sim::TimeMs arrival, sim::TimeMs start,
                        uint64_t offset_bytes, uint64_t length_bytes,
                        const ServiceTimes& t) {
  busy_until_ = start + t.service;
  head_cylinder_ = t.last_cylinder;
  last_end_offset_ = offset_bytes + length_bytes;
  has_last_access_ = true;

  bytes_transferred_ += length_bytes;
  ++accesses_;
  if (t.seeked) ++seeks_;
  busy_time_ms_ += t.service;
  seek_time_ms_ += t.seek_ms;
  rotation_time_ms_ += t.rotate_ms;
  transfer_time_ms_ += t.transfer_ms;
  queue_wait_ms_ += start - arrival;
  last_phases_ =
      obs::AccessPhases{start - arrival, t.seek_ms, t.rotate_ms,
                        t.transfer_ms};

  if (tracer_ != nullptr) {
    tracer_->DiskAccess(tracer_index_, arrival, start, t.seek_ms, t.rotate_ms,
                        t.transfer_ms, length_bytes);
  }
}

sim::TimeMs Disk::Access(sim::TimeMs arrival, uint64_t offset_bytes,
                         uint64_t length_bytes) {
  // In dispatch mode Access is only reachable through Submit under a
  // predictable policy; other policies decide service order at the head.
  assert(!dispatch_mode() || predictable());
  const sim::TimeMs start = std::max(arrival, busy_until_);
  const bool sequential = has_last_access_ && offset_bytes == last_end_offset_;
  const ServiceTimes t =
      ComputeService(start, offset_bytes, length_bytes, sequential,
                     /*idled=*/start > busy_until_,
                     SeekDistanceNow(offset_bytes));
  CommitAccess(arrival, start, offset_bytes, length_bytes, t);
  return start + t.service;
}

uint32_t Disk::AcquirePendingSlot() {
  if (free_pending_ != kNoSlot) {
    const uint32_t handle = free_pending_;
    free_pending_ = pending_[handle].next_free;
    return handle;
  }
  pending_.emplace_back();
  return static_cast<uint32_t>(pending_.size() - 1);
}

void Disk::ReleasePendingSlot(uint32_t handle) {
  pending_[handle].on_done = nullptr;
  pending_[handle].next_free = free_pending_;
  free_pending_ = handle;
}

sim::TimeMs Disk::Submit(sim::TimeMs arrival, uint64_t offset_bytes,
                         uint64_t length_bytes, CompletionFn on_done) {
  assert(dispatch_mode() && "Submit requires BindQueue");
  const uint32_t handle = AcquirePendingSlot();
  PendingIo& io = pending_[handle];
  io.on_done = std::move(on_done);

  io.request.offset_bytes = offset_bytes;
  io.request.length_bytes = length_bytes;
  io.request.arrival = arrival;
  io.request.seq = next_request_seq_++;
  io.request.cylinder = CylinderOf(offset_bytes);
  io.request.handle = handle;

  if (predictable()) {
    // FCFS service order is submit order regardless of later arrivals, so
    // the completion time is computable now with the passive algorithm
    // (advancing head/busy state eagerly keeps it exact). The request
    // still flows through the scheduler — Enqueue, then PickNext drains
    // it synchronously, since under a predictable policy every earlier
    // request already drained the same way. No service event is needed:
    // busy_until_ serializes the queueing, and an idle event would shift
    // RunUntil() clock boundaries away from the seed's. A completion
    // event is scheduled only when a callback must fire at that instant.
    io.seek_cylinders = SeekDistanceNow(offset_bytes);
    io.predicted_done = Access(arrival, offset_bytes, length_bytes);
    io.phases = last_phases_;
    scheduler_->Enqueue(io.request);
    const size_t depth = scheduler_->queue_depth();
    sched::Request request;
    uint64_t effective_seek = 0;
    bool was_oldest = true;
    const bool picked = scheduler_->PickNext(head_cylinder_, &request,
                                             &effective_seek, &was_oldest);
    assert(picked && request.handle == handle);
    (void)picked;
    ++dispatches_;
    queue_depth_sum_ += depth;
    if (!was_oldest) ++reorders_;
    dispatch_seek_cylinders_.Add(static_cast<double>(io.seek_cylinders));
    if (tracer_ != nullptr) {
      tracer_->DiskDispatch(tracer_index_, depth, io.seek_cylinders);
    }
    const sim::TimeMs done_at = io.predicted_done;
    if (io.on_done) {
      queue_->Schedule(done_at, [this, handle] { DeliverPredicted(handle); });
    } else {
      ReleasePendingSlot(handle);
    }
    return done_at;
  }
  // Reordering policies only ever choose among *arrived* requests: a
  // future arrival (metadata chains submit ahead of time) is admitted by
  // an event at its arrival instant.
  if (arrival > queue_->now()) {
    queue_->Schedule(arrival, [this, handle] { Admit(handle); });
  } else {
    Admit(handle);
  }
  return arrival;
}

void Disk::Admit(uint32_t handle) {
  scheduler_->Enqueue(pending_[handle].request);
  TryDispatch();
}

void Disk::TryDispatch() {
  if (in_service_) return;
  const size_t depth = scheduler_->queue_depth();
  sched::Request request;
  uint64_t effective_seek = 0;
  bool was_oldest = true;
  if (!scheduler_->PickNext(head_cylinder_, &request, &effective_seek,
                            &was_oldest)) {
    return;
  }
  in_service_ = true;
  ++dispatches_;
  queue_depth_sum_ += depth;
  if (!was_oldest) ++reorders_;

  PendingIo& io = pending_[request.handle];
  const sim::TimeMs now = queue_->now();
  const sim::TimeMs start = std::max(request.arrival, now);
  const bool sequential =
      has_last_access_ && request.offset_bytes == last_end_offset_;
  // The scheduler's effective distance folds in sweep turnaround; a
  // sequential continuation stays a track-to-track reposition at most.
  const uint64_t seek_cylinders =
      sequential
          ? (CylinderOf(request.offset_bytes) != head_cylinder_ ? 1 : 0)
          : effective_seek;
  io.seek_cylinders = seek_cylinders;
  const ServiceTimes t =
      ComputeService(start, request.offset_bytes, request.length_bytes,
                     sequential, /*idled=*/start > busy_until_,
                     seek_cylinders);
  CommitAccess(request.arrival, start, request.offset_bytes,
               request.length_bytes, t);
  io.phases = last_phases_;
  const sim::TimeMs completion = start + t.service;
  dispatch_seek_cylinders_.Add(static_cast<double>(seek_cylinders));
  if (tracer_ != nullptr) {
    tracer_->DiskDispatch(tracer_index_, depth, io.seek_cylinders);
  }
  const uint32_t handle = request.handle;
  queue_->Schedule(completion, [this, handle, completion] {
    OnServiceComplete(handle, completion);
  });
}

void Disk::DeliverPredicted(uint32_t handle) {
  CompletionFn done = std::move(pending_[handle].on_done);
  const sim::TimeMs completion = pending_[handle].predicted_done;
  const obs::AccessPhases phases = pending_[handle].phases;
  ReleasePendingSlot(handle);
  if (done) done(completion, phases);
}

void Disk::OnServiceComplete(uint32_t handle, sim::TimeMs completion) {
  in_service_ = false;
  CompletionFn done = std::move(pending_[handle].on_done);
  const obs::AccessPhases phases = pending_[handle].phases;
  ReleasePendingSlot(handle);
  // Start the next service before delivering the completion: the head is
  // free from `completion` even while upper layers react to it.
  TryDispatch();
  if (done) done(completion, phases);
}

void Disk::ResetStats() {
  bytes_transferred_ = 0;
  accesses_ = 0;
  seeks_ = 0;
  busy_time_ms_ = 0.0;
  seek_time_ms_ = 0.0;
  rotation_time_ms_ = 0.0;
  transfer_time_ms_ = 0.0;
  queue_wait_ms_ = 0.0;
  dispatches_ = 0;
  reorders_ = 0;
  queue_depth_sum_ = 0;
  dispatch_seek_cylinders_.Reset();
}

}  // namespace rofs::disk
