#include "disk/layout.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace rofs::disk {

std::string LayoutKindToString(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kStriped:
      return "striped";
    case LayoutKind::kMirrored:
      return "mirrored";
    case LayoutKind::kRaid5:
      return "raid5";
    case LayoutKind::kParityStriped:
      return "parity-striped";
  }
  return "unknown";
}

namespace {

/// RAID0. Logical chunk k (of `stripe_du` units) maps to disk k % N at
/// per-disk offset (k / N) * stripe_du. A contiguous logical run maps to at
/// most one contiguous run per disk, which is what lets large blocks use
/// the full parallelism of the array (paper section 1).
class StripedLayout : public Layout {
 public:
  StripedLayout(uint32_t num_disks, uint64_t per_disk_du, uint64_t stripe_du)
      : n_(num_disks), stripe_du_(stripe_du),
        rows_(per_disk_du / stripe_du) {
    assert(num_disks > 0 && stripe_du > 0);
  }

  LayoutKind kind() const override { return LayoutKind::kStriped; }
  uint64_t logical_capacity_du() const override {
    return rows_ * stripe_du_ * n_;
  }
  uint32_t data_disks() const override { return n_; }

  void MapRead(uint64_t start_du, uint64_t n_du,
               std::vector<DiskAccess>* out) const override {
    Map(start_du, n_du, /*is_write=*/false, out);
  }
  void MapWrite(uint64_t start_du, uint64_t n_du,
                std::vector<DiskAccess>* out) const override {
    Map(start_du, n_du, /*is_write=*/true, out);
  }

 private:
  void Map(uint64_t start_du, uint64_t n_du, bool is_write,
           std::vector<DiskAccess>* out) const {
    assert(n_du > 0);
    assert(start_du + n_du <= logical_capacity_du());
    const uint64_t s = stripe_du_;
    const uint64_t k0 = start_du / s;
    const uint64_t k1 = (start_du + n_du - 1) / s;
    for (uint32_t d = 0; d < n_; ++d) {
      // First and last stripe chunks in [k0, k1] living on disk d.
      const uint64_t k_first = k0 + (d + n_ - k0 % n_) % n_;
      if (k_first > k1) continue;
      const uint64_t k_last = k1 - (k1 % n_ + n_ - d) % n_;
      if (k_last < k_first) continue;
      const uint64_t chunk_count = (k_last - k_first) / n_ + 1;
      uint64_t len = chunk_count * s;
      uint64_t head_trunc = 0;
      if (k_first == k0) head_trunc = start_du - k0 * s;
      uint64_t tail_trunc = 0;
      if (k_last == k1) tail_trunc = (k1 + 1) * s - (start_du + n_du);
      len -= head_trunc + tail_trunc;
      if (len == 0) continue;
      const uint64_t offset = (k_first / n_) * s + head_trunc;
      out->push_back(DiskAccess{d, offset, len, is_write});
    }
  }

  uint32_t n_;
  uint64_t stripe_du_;
  uint64_t rows_;
};

/// Mirrored pairs: data is striped across N/2 pairs; each write goes to
/// both members, each read may be served by either member.
class MirroredLayout : public Layout {
 public:
  MirroredLayout(uint32_t num_disks, uint64_t per_disk_du, uint64_t stripe_du)
      : inner_(num_disks / 2, per_disk_du, stripe_du) {
    assert(num_disks % 2 == 0 && num_disks >= 2);
  }

  LayoutKind kind() const override { return LayoutKind::kMirrored; }
  uint64_t logical_capacity_du() const override {
    return inner_.logical_capacity_du();
  }
  // Reads may be served by either replica, so a sequential read stream
  // can keep every spindle busy; normalize throughput to all drives.
  uint32_t data_disks() const override { return inner_.data_disks() * 2; }

  void MapRead(uint64_t start_du, uint64_t n_du,
               std::vector<DiskAccess>* out) const override {
    std::vector<DiskAccess> inner;
    inner_.MapRead(start_du, n_du, &inner);
    for (DiskAccess& a : inner) {
      const uint32_t primary = a.disk * 2;
      a.alt_disk = static_cast<int32_t>(primary + 1);
      a.disk = primary;
      out->push_back(a);
    }
  }

  void MapWrite(uint64_t start_du, uint64_t n_du,
                std::vector<DiskAccess>* out) const override {
    std::vector<DiskAccess> inner;
    inner_.MapWrite(start_du, n_du, &inner);
    for (const DiskAccess& a : inner) {
      out->push_back(DiskAccess{a.disk * 2, a.offset_du, a.length_du, true});
      out->push_back(
          DiskAccess{a.disk * 2 + 1, a.offset_du, a.length_du, true});
    }
  }

 private:
  StripedLayout inner_;
};

/// RAID5 with left-symmetric rotating parity. Row r keeps its parity chunk
/// on disk (N-1) - (r % N); the N-1 data chunks of the row fill the other
/// disks in order. Partial-row writes pay the small-write penalty: read old
/// data + old parity, write new data + new parity. Full-row writes compute
/// parity in memory and just write N chunks.
class Raid5Layout : public Layout {
 public:
  Raid5Layout(uint32_t num_disks, uint64_t per_disk_du, uint64_t stripe_du)
      : n_(num_disks), stripe_du_(stripe_du),
        rows_(per_disk_du / stripe_du) {
    assert(num_disks >= 3);
  }

  LayoutKind kind() const override { return LayoutKind::kRaid5; }
  uint64_t logical_capacity_du() const override {
    return rows_ * stripe_du_ * (n_ - 1);
  }
  // Parity rotates, so a long sequential read keeps every spindle busy
  // with data; normalize read bandwidth to all drives.
  uint32_t data_disks() const override { return n_; }

  void MapRead(uint64_t start_du, uint64_t n_du,
               std::vector<DiskAccess>* out) const override {
    ForEachChunk(start_du, n_du,
                 [&](uint64_t row, uint32_t disk, uint64_t off, uint64_t len) {
                   (void)row;
                   MergeOrPush(out, DiskAccess{disk, off, len, false});
                 });
  }

  void MapWrite(uint64_t start_du, uint64_t n_du,
                std::vector<DiskAccess>* out) const override {
    // Group touched chunks by stripe row to decide full-row vs RMW.
    struct RowInfo {
      uint64_t touched_du = 0;
      uint64_t max_chunk_len = 0;
      std::vector<DiskAccess> data;  // Data writes for this row.
    };
    std::map<uint64_t, RowInfo> rows;
    ForEachChunk(start_du, n_du,
                 [&](uint64_t row, uint32_t disk, uint64_t off, uint64_t len) {
                   RowInfo& info = rows[row];
                   info.touched_du += len;
                   info.max_chunk_len = std::max(info.max_chunk_len, len);
                   info.data.push_back(DiskAccess{disk, off, len, true});
                 });
    for (auto& [row, info] : rows) {
      const uint32_t parity_disk = ParityDisk(row);
      const uint64_t parity_off = row * stripe_du_;
      const bool full_row = info.touched_du == stripe_du_ * (n_ - 1);
      if (full_row) {
        for (const DiskAccess& a : info.data) out->push_back(a);
        out->push_back(
            DiskAccess{parity_disk, parity_off, stripe_du_, true});
      } else {
        // Read-modify-write: old data + old parity first (FCFS per disk
        // serializes read before write automatically).
        for (const DiskAccess& a : info.data) {
          out->push_back(DiskAccess{a.disk, a.offset_du, a.length_du, false});
        }
        out->push_back(DiskAccess{parity_disk, parity_off,
                                  info.max_chunk_len, false});
        for (const DiskAccess& a : info.data) out->push_back(a);
        out->push_back(
            DiskAccess{parity_disk, parity_off, info.max_chunk_len, true});
      }
    }
  }

 private:
  uint32_t ParityDisk(uint64_t row) const {
    return (n_ - 1) - static_cast<uint32_t>(row % n_);
  }

  /// Calls fn(row, disk, per_disk_offset, len) for each touched data chunk.
  template <typename Fn>
  void ForEachChunk(uint64_t start_du, uint64_t n_du, Fn fn) const {
    assert(n_du > 0);
    assert(start_du + n_du <= logical_capacity_du());
    uint64_t pos = start_du;
    const uint64_t end = start_du + n_du;
    while (pos < end) {
      const uint64_t k = pos / stripe_du_;       // Logical data chunk.
      const uint64_t intra = pos % stripe_du_;
      const uint64_t len =
          std::min(stripe_du_ - intra, end - pos);
      const uint64_t row = k / (n_ - 1);
      const uint32_t j = static_cast<uint32_t>(k % (n_ - 1));
      const uint32_t parity = ParityDisk(row);
      const uint32_t disk = j < parity ? j : j + 1;
      fn(row, disk, row * stripe_du_ + intra, len);
      pos += len;
    }
  }

  /// Extends the previous access when physically contiguous on same disk.
  static void MergeOrPush(std::vector<DiskAccess>* out, DiskAccess a) {
    if (!out->empty()) {
      DiskAccess& b = out->back();
      if (b.disk == a.disk && b.is_write == a.is_write &&
          b.offset_du + b.length_du == a.offset_du) {
        b.length_du += a.length_du;
        return;
      }
    }
    out->push_back(a);
  }

  uint32_t n_;
  uint64_t stripe_du_;
  uint64_t rows_;
};

/// Gray'90 parity striping: the logical space is the concatenation of
/// per-disk data regions (no data striping); each disk dedicates 1/N of its
/// capacity to parity for regions of the other disks. A write pays a
/// read-modify-write of data plus a parity region update on the partner
/// disk (d + 1 + region) % N.
class ParityStripedLayout : public Layout {
 public:
  ParityStripedLayout(uint32_t num_disks, uint64_t per_disk_du)
      : n_(num_disks), per_disk_du_(per_disk_du),
        data_du_(per_disk_du - per_disk_du / num_disks),
        parity_base_(data_du_) {
    assert(num_disks >= 2);
  }

  LayoutKind kind() const override { return LayoutKind::kParityStriped; }
  uint64_t logical_capacity_du() const override { return data_du_ * n_; }
  uint32_t data_disks() const override { return n_; }

  void MapRead(uint64_t start_du, uint64_t n_du,
               std::vector<DiskAccess>* out) const override {
    ForEachRun(start_du, n_du, [&](uint32_t disk, uint64_t off, uint64_t len) {
      out->push_back(DiskAccess{disk, off, len, false});
    });
  }

  void MapWrite(uint64_t start_du, uint64_t n_du,
                std::vector<DiskAccess>* out) const override {
    ForEachRun(start_du, n_du, [&](uint32_t disk, uint64_t off, uint64_t len) {
      // RMW of the data, then RMW of the parity region on the partner.
      // Parity traffic is capped at the parity region size: a write larger
      // than the region rewrites the region once.
      const uint32_t partner =
          (disk + 1 + static_cast<uint32_t>(off / (data_du_ / n_ + 1)) %
                          (n_ - 1)) % n_;
      const uint64_t parity_space = per_disk_du_ - parity_base_;
      const uint64_t parity_len = std::min(len, parity_space);
      const uint64_t parity_off =
          parity_base_ +
          (parity_len < parity_space ? off % (parity_space - parity_len + 1)
                                     : 0);
      out->push_back(DiskAccess{disk, off, len, false});
      out->push_back(DiskAccess{partner, parity_off, parity_len, false});
      out->push_back(DiskAccess{disk, off, len, true});
      out->push_back(DiskAccess{partner, parity_off, parity_len, true});
    });
  }

 private:
  template <typename Fn>
  void ForEachRun(uint64_t start_du, uint64_t n_du, Fn fn) const {
    assert(n_du > 0);
    assert(start_du + n_du <= logical_capacity_du());
    uint64_t pos = start_du;
    const uint64_t end = start_du + n_du;
    while (pos < end) {
      const uint32_t disk = static_cast<uint32_t>(pos / data_du_);
      const uint64_t off = pos % data_du_;
      const uint64_t len = std::min(data_du_ - off, end - pos);
      fn(disk, off, len);
      pos += len;
    }
  }

  uint32_t n_;
  uint64_t per_disk_du_;
  uint64_t data_du_;
  uint64_t parity_base_;
};

}  // namespace

std::unique_ptr<Layout> MakeLayout(LayoutKind kind, uint32_t num_disks,
                                   uint64_t per_disk_du, uint64_t stripe_du) {
  switch (kind) {
    case LayoutKind::kStriped:
      return std::make_unique<StripedLayout>(num_disks, per_disk_du,
                                             stripe_du);
    case LayoutKind::kMirrored:
      return std::make_unique<MirroredLayout>(num_disks, per_disk_du,
                                              stripe_du);
    case LayoutKind::kRaid5:
      return std::make_unique<Raid5Layout>(num_disks, per_disk_du, stripe_du);
    case LayoutKind::kParityStriped:
      return std::make_unique<ParityStripedLayout>(num_disks, per_disk_du);
  }
  return nullptr;
}

}  // namespace rofs::disk
