#include "disk/disk_system.h"

#include <algorithm>
#include <cassert>

#include "util/table.h"

namespace rofs::disk {

namespace {

uint64_t MinCapacityDu(const std::vector<DiskGeometry>& disks,
                       uint64_t du_bytes) {
  assert(!disks.empty());
  uint64_t min_cap = UINT64_MAX;
  for (const DiskGeometry& g : disks) {
    min_cap = std::min(min_cap, g.capacity_bytes() / du_bytes);
  }
  return min_cap;
}

}  // namespace

DiskSystem::DiskSystem(const DiskSystemConfig& config) : config_(config) {
  assert(!config_.disks.empty());
  assert(config_.disk_unit_bytes > 0);
  assert(config_.stripe_unit_bytes >= config_.disk_unit_bytes);
  assert(config_.stripe_unit_bytes % config_.disk_unit_bytes == 0);
  const uint64_t per_disk_du =
      MinCapacityDu(config_.disks, config_.disk_unit_bytes);
  layout_ = MakeLayout(config_.layout,
                       static_cast<uint32_t>(config_.disks.size()),
                       per_disk_du,
                       config_.stripe_unit_bytes / config_.disk_unit_bytes);
  disks_.reserve(config_.disks.size());
  for (const DiskGeometry& g : config_.disks) {
    disks_.emplace_back(g, config_.rotation_model);
  }
}

sim::TimeMs DiskSystem::Read(sim::TimeMs arrival, uint64_t start_du,
                             uint64_t n_du) {
  scratch_.clear();
  layout_->MapRead(start_du, n_du, &scratch_);
  logical_bytes_read_ += n_du * config_.disk_unit_bytes;
  return Submit(arrival, scratch_);
}

sim::TimeMs DiskSystem::Write(sim::TimeMs arrival, uint64_t start_du,
                              uint64_t n_du) {
  scratch_.clear();
  layout_->MapWrite(start_du, n_du, &scratch_);
  logical_bytes_written_ += n_du * config_.disk_unit_bytes;
  return Submit(arrival, scratch_);
}

sim::TimeMs DiskSystem::Submit(sim::TimeMs arrival,
                               const std::vector<DiskAccess>& accesses) {
  sim::TimeMs completion = arrival;
  const uint64_t du = config_.disk_unit_bytes;
  for (const DiskAccess& a : accesses) {
    uint32_t target = a.disk;
    if (a.alt_disk >= 0 && !a.is_write) {
      // Mirrored read: serve from the less busy replica.
      const uint32_t alt = static_cast<uint32_t>(a.alt_disk);
      if (disks_[alt].busy_until() < disks_[target].busy_until()) {
        target = alt;
      }
    }
    const sim::TimeMs done =
        disks_[target].Access(arrival, a.offset_du * du, a.length_du * du);
    completion = std::max(completion, done);
  }
  return completion;
}

double DiskSystem::MaxSequentialBandwidthBytesPerMs() const {
  // All data disks streaming whole cylinders in parallel.
  double bw = 0.0;
  const uint32_t nd = layout_->data_disks();
  for (uint32_t i = 0; i < nd && i < disks_.size(); ++i) {
    bw += disks_[i].geometry().SequentialBandwidth();
  }
  return bw;
}

uint64_t DiskSystem::physical_bytes() const {
  uint64_t total = 0;
  for (const Disk& d : disks_) total += d.bytes_transferred();
  return total;
}

uint64_t DiskSystem::total_seeks() const {
  uint64_t total = 0;
  for (const Disk& d : disks_) total += d.seeks();
  return total;
}

void DiskSystem::ResetStats() {
  logical_bytes_read_ = 0;
  logical_bytes_written_ = 0;
  for (Disk& d : disks_) d.ResetStats();
}

std::string DiskSystem::DescribeConfig() const {
  return FormatString(
      "%zu disks, %s layout, capacity=%s, stripe=%s, du=%s, max_bw=%.2fMB/s",
      disks_.size(), LayoutKindToString(config_.layout).c_str(),
      FormatBytes(capacity_bytes()).c_str(),
      FormatBytes(config_.stripe_unit_bytes).c_str(),
      FormatBytes(config_.disk_unit_bytes).c_str(),
      MaxSequentialBandwidthBytesPerMs() * 1000.0 / (1024.0 * 1024.0));
}

}  // namespace rofs::disk
