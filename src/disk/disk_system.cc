#include "disk/disk_system.h"

#include <algorithm>
#include <cassert>

#include "sim/sharded_engine.h"
#include "util/table.h"

namespace rofs::disk {

namespace {

uint64_t MinCapacityDu(const std::vector<DiskGeometry>& disks,
                       uint64_t du_bytes) {
  assert(!disks.empty());
  uint64_t min_cap = UINT64_MAX;
  for (const DiskGeometry& g : disks) {
    min_cap = std::min(min_cap, g.capacity_bytes() / du_bytes);
  }
  return min_cap;
}

}  // namespace

DiskSystem::DiskSystem(const DiskSystemConfig& config) : config_(config) {
  assert(!config_.disks.empty());
  assert(config_.disk_unit_bytes > 0);
  assert(config_.stripe_unit_bytes >= config_.disk_unit_bytes);
  assert(config_.stripe_unit_bytes % config_.disk_unit_bytes == 0);
  const uint64_t per_disk_du =
      MinCapacityDu(config_.disks, config_.disk_unit_bytes);
  layout_ = MakeLayout(config_.layout,
                       static_cast<uint32_t>(config_.disks.size()),
                       per_disk_du,
                       config_.stripe_unit_bytes / config_.disk_unit_bytes);
  disks_.reserve(config_.disks.size());
  for (const DiskGeometry& g : config_.disks) {
    disks_.emplace_back(g, config_.rotation_model);
  }
}

void DiskSystem::BindQueue(sim::EventQueue* queue) {
  assert(queue != nullptr);
  assert(queue_ == nullptr && "BindQueue must be called once");
  queue_ = queue;
  for (Disk& d : disks_) d.BindQueue(queue, config_.scheduler);
}

void DiskSystem::BindSharded(sim::ShardedEngine* engine) {
  assert(engine != nullptr);
  assert(queue_ == nullptr && "bind once, BindQueue xor BindSharded");
  engine_ = engine;
  queue_ = engine->central();
  for (uint32_t i = 0; i < disks_.size(); ++i) {
    disks_[i].BindQueue(engine->shard_queue(i % engine->num_shards()),
                        config_.scheduler);
  }
}

uint32_t DiskSystem::PickMirrorTarget(const DiskAccess& a) const {
  uint32_t target = a.disk;
  const uint32_t alt = static_cast<uint32_t>(a.alt_disk);
  if (predictable()) {
    // Serve from the replica that frees up first.
    if (disks_[alt].busy_until() < disks_[target].busy_until()) {
      target = alt;
    }
  } else {
    // busy_until only advances at dispatch here; compare queued work.
    if (disks_[alt].pending_load() < disks_[target].pending_load()) {
      target = alt;
    }
  }
  return target;
}

sim::TimeMs DiskSystem::Read(sim::TimeMs arrival, uint64_t start_du,
                             uint64_t n_du) {
  scratch_.clear();
  layout_->MapRead(start_du, n_du, &scratch_);
  logical_bytes_read_ += n_du * config_.disk_unit_bytes;
  return Submit(arrival, scratch_);
}

sim::TimeMs DiskSystem::Write(sim::TimeMs arrival, uint64_t start_du,
                              uint64_t n_du) {
  scratch_.clear();
  layout_->MapWrite(start_du, n_du, &scratch_);
  logical_bytes_written_ += n_du * config_.disk_unit_bytes;
  return Submit(arrival, scratch_);
}

sim::TimeMs DiskSystem::Submit(sim::TimeMs arrival,
                               const std::vector<DiskAccess>& accesses) {
  // Sync completion times require a predictable service order; reordering
  // schedulers must go through the group API.
  assert(predictable());
  sim::TimeMs completion = arrival;
  const uint64_t du = config_.disk_unit_bytes;
  for (const DiskAccess& a : accesses) {
    uint32_t target = a.disk;
    if (a.alt_disk >= 0 && !a.is_write) {
      // Mirrored read: serve from the less busy replica.
      target = PickMirrorTarget(a);
    }
    const sim::TimeMs done =
        dispatch_mode()
            ? disks_[target].Submit(arrival, a.offset_du * du,
                                    a.length_du * du, nullptr)
            : disks_[target].Access(arrival, a.offset_du * du,
                                    a.length_du * du);
    // The synchronous path commits each access inline, so the drive's
    // last_phases() breakdown belongs to exactly this access.
    if (attr_ != nullptr) {
      attr_->OnAccess(attr_->target(), disks_[target].last_phases());
    }
    completion = std::max(completion, done);
  }
  return completion;
}

uint32_t DiskSystem::OpenGroup(sim::TimeMs arrival, DoneFn on_done) {
  assert(dispatch_mode() && "the group API requires BindQueue");
  uint32_t group;
  if (free_group_ != kNoGroup) {
    group = free_group_;
    free_group_ = groups_[group].next_free;
  } else {
    groups_.emplace_back();
    group = static_cast<uint32_t>(groups_.size() - 1);
  }
  Group& g = groups_[group];
  g.on_done = std::move(on_done);
  g.max_done = arrival;
  g.outstanding = 0;
  g.open = true;
  g.target = attr_ != nullptr ? attr_->target() : obs::OpAttribution::Target{};
  return group;
}

void DiskSystem::GroupRead(uint32_t group, sim::TimeMs arrival,
                           uint64_t start_du, uint64_t n_du) {
  scratch_.clear();
  layout_->MapRead(start_du, n_du, &scratch_);
  logical_bytes_read_ += n_du * config_.disk_unit_bytes;
  SubmitGroup(group, arrival, scratch_);
}

void DiskSystem::GroupWrite(uint32_t group, sim::TimeMs arrival,
                            uint64_t start_du, uint64_t n_du) {
  scratch_.clear();
  layout_->MapWrite(start_du, n_du, &scratch_);
  logical_bytes_written_ += n_du * config_.disk_unit_bytes;
  SubmitGroup(group, arrival, scratch_);
}

void DiskSystem::SubmitGroup(uint32_t group, sim::TimeMs arrival,
                             const std::vector<DiskAccess>& accesses) {
  assert(groups_[group].open);
  const uint64_t du = config_.disk_unit_bytes;
  groups_[group].outstanding += static_cast<uint32_t>(accesses.size());
  for (const DiskAccess& a : accesses) {
    uint32_t target = a.disk;
    if (a.alt_disk >= 0 && !a.is_write) {
      target = PickMirrorTarget(a);
    }
    if (engine_ != nullptr) {
      // The completion fires in the drive's shard; the group bookkeeping
      // (and the FS continuation it may trigger) touches shared state, so
      // it crosses back to the central domain as a buffered effect. The
      // effect capture is exactly the event callback's inline budget
      // (this + group + the 4-double phase breakdown = 48 bytes), so
      // `done` is recovered from the central clock: effects commit at
      // their emission time, never clamped (DESIGN.md §11).
      disks_[target].Submit(
          arrival, a.offset_du * du, a.length_du * du,
          [this, group](sim::TimeMs done, const obs::AccessPhases& p) {
            engine_->EmitEffect(done, [this, group, p] {
              OnGroupAccessDone(group, queue_->now(), p);
            });
          });
    } else {
      disks_[target].Submit(
          arrival, a.offset_du * du, a.length_du * du,
          [this, group](sim::TimeMs done, const obs::AccessPhases& p) {
            OnGroupAccessDone(group, done, p);
          });
    }
  }
}

void DiskSystem::CloseGroup(uint32_t group) {
  Group& g = groups_[group];
  assert(g.open);
  g.open = false;
  if (g.outstanding == 0) FinishGroup(group);
}

void DiskSystem::OnGroupAccessDone(uint32_t group, sim::TimeMs done,
                                   const obs::AccessPhases& phases) {
  Group& g = groups_[group];
  if (attr_ != nullptr) attr_->OnAccess(g.target, phases);
  g.max_done = std::max(g.max_done, done);
  assert(g.outstanding > 0);
  if (--g.outstanding == 0 && !g.open) FinishGroup(group);
}

void DiskSystem::FinishGroup(uint32_t group) {
  DoneFn done = std::move(groups_[group].on_done);
  const sim::TimeMs max_done = groups_[group].max_done;
  const obs::OpAttribution::Target target = groups_[group].target;
  groups_[group].on_done = nullptr;
  groups_[group].next_free = free_group_;
  free_group_ = group;
  // The continuation may open new groups (reusing this slot) — invoke
  // after the slot is back on the free list. The op's completion callback
  // has no room to carry a ledger index, so the finishing target is
  // published for it to recover (OpAttribution::TakeActive).
  if (attr_ != nullptr) attr_->SetFinishing(target);
  if (done) done(max_done);
}

double DiskSystem::MaxSequentialBandwidthBytesPerMs() const {
  // All data disks streaming whole cylinders in parallel.
  double bw = 0.0;
  const uint32_t nd = layout_->data_disks();
  for (uint32_t i = 0; i < nd && i < disks_.size(); ++i) {
    bw += disks_[i].geometry().SequentialBandwidth();
  }
  return bw;
}

uint64_t DiskSystem::physical_bytes() const {
  uint64_t total = 0;
  for (const Disk& d : disks_) total += d.bytes_transferred();
  return total;
}

uint64_t DiskSystem::total_seeks() const {
  uint64_t total = 0;
  for (const Disk& d : disks_) total += d.seeks();
  return total;
}

void DiskSystem::ResetStats() {
  logical_bytes_read_ = 0;
  logical_bytes_written_ = 0;
  for (Disk& d : disks_) d.ResetStats();
}

std::string DiskSystem::DescribeConfig() const {
  std::string text = FormatString(
      "%zu disks, %s layout, capacity=%s, stripe=%s, du=%s, max_bw=%.2fMB/s",
      disks_.size(), LayoutKindToString(config_.layout).c_str(),
      FormatBytes(capacity_bytes()).c_str(),
      FormatBytes(config_.stripe_unit_bytes).c_str(),
      FormatBytes(config_.disk_unit_bytes).c_str(),
      MaxSequentialBandwidthBytesPerMs() * 1000.0 / (1024.0 * 1024.0));
  // The paper's implicit FCFS stays unannotated so banners match its
  // tables verbatim; only a departure from the paper is called out.
  if (config_.scheduler.policy != sched::Policy::kFcfs) {
    text += FormatString(", sched=%s", config_.scheduler.Label().c_str());
  }
  return text;
}

}  // namespace rofs::disk
