#ifndef ROFS_CONFIG_CONFIG_PARSER_H_
#define ROFS_CONFIG_CONFIG_PARSER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace rofs::config {

/// One `[section]` or `[section argument]` block of a simulator config
/// file, with its key = value pairs.
struct Section {
  std::string name;        ///< e.g. "disk", "policy", "filetype".
  std::string argument;    ///< e.g. the file-type name; may be empty.
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) != 0; }

  /// Typed getters; every parse failure carries the section/key context.
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  StatusOr<bool> GetBool(const std::string& key) const;
  /// Size with optional binary suffix: "8K", "1M", "2G", "512"; or
  /// decimal suffix: "8KB", "210MB".
  StatusOr<uint64_t> GetSize(const std::string& key) const;
  /// Duration in milliseconds: "250ms", "10s", "5m", or a bare number
  /// (milliseconds).
  StatusOr<double> GetDurationMs(const std::string& key) const;
  /// Comma-separated sizes: "1K,8K,64K".
  StatusOr<std::vector<uint64_t>> GetSizeList(const std::string& key) const;

  /// Getters with defaults (missing key -> fallback; malformed -> error).
  StatusOr<int64_t> GetIntOr(const std::string& key, int64_t fallback) const;
  StatusOr<double> GetDoubleOr(const std::string& key,
                               double fallback) const;
  StatusOr<bool> GetBoolOr(const std::string& key, bool fallback) const;
  StatusOr<uint64_t> GetSizeOr(const std::string& key,
                               uint64_t fallback) const;
  StatusOr<double> GetDurationMsOr(const std::string& key,
                                   double fallback) const;
  StatusOr<std::string> GetStringOr(const std::string& key,
                                    const std::string& fallback) const;
};

/// A parsed config file: ordered sections.
struct ConfigFile {
  std::vector<Section> sections;

  /// First section with the given name, or nullptr.
  const Section* Find(const std::string& name) const;
  /// All sections with the given name (e.g. every [filetype ...]).
  std::vector<const Section*> FindAll(const std::string& name) const;
};

/// Parses INI-style text:
///   # comment
///   [section optional-argument]
///   key = value
/// Keys before any section header are an error; unknown content reports
/// line numbers.
StatusOr<ConfigFile> ParseConfig(const std::string& text);

/// Reads and parses a file from disk.
StatusOr<ConfigFile> ParseConfigFile(const std::string& path);

/// Size literal parser exposed for reuse: "8K" -> 8192, "8KB" -> 8000,
/// "512" -> 512. Suffixes K/M/G are binary; KB/MB/GB decimal.
StatusOr<uint64_t> ParseSize(const std::string& text);

/// Duration parser: "250ms" / "10s" / "2m" / bare ms.
StatusOr<double> ParseDurationMs(const std::string& text);

}  // namespace rofs::config

#endif  // ROFS_CONFIG_CONFIG_PARSER_H_
