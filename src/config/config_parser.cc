#include "config/config_parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/table.h"
#include "util/units.h"

namespace rofs::config {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

/// Non-throwing numeric parsing; returns false unless the whole string
/// (after trimming) up to `*end_pos` is consumed by the number.
bool ParseDoublePrefix(const std::string& text, double* value,
                       size_t* end_pos) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE) return false;
  *value = v;
  *end_pos = static_cast<size_t>(end - begin);
  return true;
}

Status MissingKey(const Section& section, const std::string& key) {
  return Status::NotFound(FormatString("section [%s%s%s] has no key '%s'",
                                       section.name.c_str(),
                                       section.argument.empty() ? "" : " ",
                                       section.argument.c_str(),
                                       key.c_str()));
}

}  // namespace

StatusOr<uint64_t> ParseSize(const std::string& text) {
  const std::string t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty size");
  double value = 0;
  size_t pos = 0;
  if (!ParseDoublePrefix(t, &value, &pos) || value < 0) {
    return Status::InvalidArgument("malformed size '" + t + "'");
  }
  const std::string suffix = Lower(Trim(t.substr(pos)));
  double multiplier = 1;
  if (suffix.empty() || suffix == "b") {
    multiplier = 1;
  } else if (suffix == "k") {
    multiplier = 1024;
  } else if (suffix == "m") {
    multiplier = 1024.0 * 1024;
  } else if (suffix == "g") {
    multiplier = 1024.0 * 1024 * 1024;
  } else if (suffix == "kb") {
    multiplier = 1e3;
  } else if (suffix == "mb") {
    multiplier = 1e6;
  } else if (suffix == "gb") {
    multiplier = 1e9;
  } else {
    return Status::InvalidArgument("unknown size suffix '" + suffix + "'");
  }
  return static_cast<uint64_t>(value * multiplier + 0.5);
}

StatusOr<double> ParseDurationMs(const std::string& text) {
  const std::string t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty duration");
  double value = 0;
  size_t pos = 0;
  if (!ParseDoublePrefix(t, &value, &pos)) {
    return Status::InvalidArgument("malformed duration '" + t + "'");
  }
  const std::string suffix = Lower(Trim(t.substr(pos)));
  if (suffix.empty() || suffix == "ms") return value;
  if (suffix == "s") return value * 1000.0;
  if (suffix == "m" || suffix == "min") return value * 60'000.0;
  return Status::InvalidArgument("unknown duration suffix '" + suffix + "'");
}

StatusOr<std::string> Section::GetString(const std::string& key) const {
  auto it = values.find(key);
  if (it == values.end()) return MissingKey(*this, key);
  return it->second;
}

StatusOr<int64_t> Section::GetInt(const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string text, GetString(key));
  int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("key '" + key + "': malformed integer '" +
                                   text + "'");
  }
  return v;
}

StatusOr<double> Section::GetDouble(const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string text, GetString(key));
  double v = 0;
  size_t pos = 0;
  if (!ParseDoublePrefix(text, &v, &pos) || pos != text.size()) {
    return Status::InvalidArgument("key '" + key + "': malformed number '" +
                                   text + "'");
  }
  return v;
}

StatusOr<bool> Section::GetBool(const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string raw, GetString(key));
  const std::string text = Lower(raw);
  if (text == "true" || text == "yes" || text == "1" || text == "on") {
    return true;
  }
  if (text == "false" || text == "no" || text == "0" || text == "off") {
    return false;
  }
  return Status::InvalidArgument("key '" + key + "': malformed bool '" +
                                 raw + "'");
}

StatusOr<uint64_t> Section::GetSize(const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string text, GetString(key));
  auto size = ParseSize(text);
  if (!size.ok()) {
    return Status::InvalidArgument("key '" + key +
                                   "': " + size.status().message());
  }
  return *size;
}

StatusOr<double> Section::GetDurationMs(const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string text, GetString(key));
  auto ms = ParseDurationMs(text);
  if (!ms.ok()) {
    return Status::InvalidArgument("key '" + key +
                                   "': " + ms.status().message());
  }
  return *ms;
}

StatusOr<std::vector<uint64_t>> Section::GetSizeList(
    const std::string& key) const {
  ROFS_ASSIGN_OR_RETURN(const std::string text, GetString(key));
  std::vector<uint64_t> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    auto size = ParseSize(item);
    if (!size.ok()) {
      return Status::InvalidArgument("key '" + key +
                                     "': " + size.status().message());
    }
    out.push_back(*size);
  }
  if (out.empty()) {
    return Status::InvalidArgument("key '" + key + "': empty list");
  }
  return out;
}

StatusOr<int64_t> Section::GetIntOr(const std::string& key,
                                    int64_t fallback) const {
  return Has(key) ? GetInt(key) : StatusOr<int64_t>(fallback);
}
StatusOr<double> Section::GetDoubleOr(const std::string& key,
                                      double fallback) const {
  return Has(key) ? GetDouble(key) : StatusOr<double>(fallback);
}
StatusOr<bool> Section::GetBoolOr(const std::string& key,
                                  bool fallback) const {
  return Has(key) ? GetBool(key) : StatusOr<bool>(fallback);
}
StatusOr<uint64_t> Section::GetSizeOr(const std::string& key,
                                      uint64_t fallback) const {
  return Has(key) ? GetSize(key) : StatusOr<uint64_t>(fallback);
}
StatusOr<double> Section::GetDurationMsOr(const std::string& key,
                                          double fallback) const {
  return Has(key) ? GetDurationMs(key) : StatusOr<double>(fallback);
}
StatusOr<std::string> Section::GetStringOr(const std::string& key,
                                           const std::string& fallback) const {
  return Has(key) ? GetString(key) : StatusOr<std::string>(fallback);
}

const Section* ConfigFile::Find(const std::string& name) const {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Section*> ConfigFile::FindAll(
    const std::string& name) const {
  std::vector<const Section*> out;
  for (const Section& s : sections) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

StatusOr<ConfigFile> ParseConfig(const std::string& text) {
  ConfigFile file;
  std::stringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments (# and ;) and whitespace.
    const size_t hash = raw.find_first_of("#;");
    std::string line = Trim(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::InvalidArgument(
            FormatString("line %d: unterminated section header", line_no));
      }
      const std::string inner = Trim(line.substr(1, line.size() - 2));
      if (inner.empty()) {
        return Status::InvalidArgument(
            FormatString("line %d: empty section name", line_no));
      }
      Section section;
      const size_t space = inner.find_first_of(" \t");
      if (space == std::string::npos) {
        section.name = Lower(inner);
      } else {
        section.name = Lower(inner.substr(0, space));
        section.argument = Trim(inner.substr(space + 1));
      }
      file.sections.push_back(std::move(section));
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          FormatString("line %d: expected 'key = value'", line_no));
    }
    if (file.sections.empty()) {
      return Status::InvalidArgument(
          FormatString("line %d: key outside any [section]", line_no));
    }
    const std::string key = Lower(Trim(line.substr(0, eq)));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          FormatString("line %d: empty key", line_no));
    }
    file.sections.back().values[key] = value;
  }
  return file;
}

StatusOr<ConfigFile> ParseConfigFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open config file '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseConfig(buffer.str());
}

}  // namespace rofs::config
