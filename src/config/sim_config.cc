#include "config/sim_config.h"

#include <algorithm>
#include <memory>

#include "alloc/buddy_allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/log_structured_allocator.h"
#include "alloc/restricted_buddy.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/workloads.h"

namespace rofs::config {

namespace {

StatusOr<disk::DiskSystemConfig> BuildDisk(const Section* section) {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(8);
  if (section == nullptr) return cfg;
  ROFS_ASSIGN_OR_RETURN(const int64_t disks, section->GetIntOr("disks", 8));
  if (disks < 1 || disks > 1024) {
    return Status::InvalidArgument("[disk] disks out of range");
  }
  disk::DiskGeometry g = disk::CdcWrenIV();
  ROFS_ASSIGN_OR_RETURN(const int64_t cylinders,
                        section->GetIntOr("cylinders", g.cylinders));
  ROFS_ASSIGN_OR_RETURN(const int64_t platters,
                        section->GetIntOr("platters", g.platters));
  ROFS_ASSIGN_OR_RETURN(const uint64_t track,
                        section->GetSizeOr("track_bytes", g.track_bytes));
  ROFS_ASSIGN_OR_RETURN(const double rotation,
                        section->GetDoubleOr("rotation_ms", g.rotation_ms));
  ROFS_ASSIGN_OR_RETURN(
      const double seek,
      section->GetDoubleOr("seek_ms", g.single_track_seek_ms));
  ROFS_ASSIGN_OR_RETURN(
      const double seek_inc,
      section->GetDoubleOr("seek_incremental_ms", g.seek_incremental_ms));
  g.cylinders = static_cast<uint32_t>(cylinders);
  g.platters = static_cast<uint32_t>(platters);
  g.track_bytes = track;
  g.rotation_ms = rotation;
  g.single_track_seek_ms = seek;
  g.seek_incremental_ms = seek_inc;
  cfg.disks.assign(static_cast<size_t>(disks), g);

  ROFS_ASSIGN_OR_RETURN(const std::string layout,
                        section->GetStringOr("layout", "striped"));
  if (layout == "striped") {
    cfg.layout = disk::LayoutKind::kStriped;
  } else if (layout == "mirrored") {
    cfg.layout = disk::LayoutKind::kMirrored;
  } else if (layout == "raid5") {
    cfg.layout = disk::LayoutKind::kRaid5;
  } else if (layout == "parity-striped") {
    cfg.layout = disk::LayoutKind::kParityStriped;
  } else {
    return Status::InvalidArgument("[disk] unknown layout '" + layout + "'");
  }
  ROFS_ASSIGN_OR_RETURN(
      cfg.stripe_unit_bytes,
      section->GetSizeOr("stripe_unit", cfg.stripe_unit_bytes));
  ROFS_ASSIGN_OR_RETURN(cfg.disk_unit_bytes,
                        section->GetSizeOr("disk_unit", cfg.disk_unit_bytes));
  ROFS_ASSIGN_OR_RETURN(const std::string rotation_model,
                        section->GetStringOr("rotation", "mean"));
  if (rotation_model == "mean") {
    cfg.rotation_model = disk::RotationModel::kMeanLatency;
  } else if (rotation_model == "tracked") {
    cfg.rotation_model = disk::RotationModel::kTracked;
  } else {
    return Status::InvalidArgument("[disk] unknown rotation model '" +
                                   rotation_model + "'");
  }
  if (cfg.disk_unit_bytes == 0 ||
      cfg.stripe_unit_bytes % cfg.disk_unit_bytes != 0) {
    return Status::InvalidArgument(
        "[disk] stripe_unit must be a multiple of disk_unit");
  }
  ROFS_ASSIGN_OR_RETURN(const std::string scheduler,
                        section->GetStringOr("scheduler", "fcfs"));
  StatusOr<sched::SchedulerSpec> spec = sched::ParseSchedulerSpec(scheduler);
  if (!spec.ok()) {
    return Status::InvalidArgument("[disk] " + spec.status().message());
  }
  cfg.scheduler = *spec;
  return cfg;
}

StatusOr<exp::Experiment::AllocatorFactory> BuildPolicy(
    const Section* section, uint64_t du_bytes, std::string* label) {
  std::string kind = "restricted-buddy";
  if (section != nullptr) {
    ROFS_ASSIGN_OR_RETURN(kind, section->GetStringOr("kind", kind));
  }
  *label = kind;
  if (kind == "buddy") {
    uint64_t max_extent = 64 * kMiB;
    if (section != nullptr) {
      ROFS_ASSIGN_OR_RETURN(max_extent,
                            section->GetSizeOr("max_extent", max_extent));
    }
    const uint64_t max_extent_du =
        NextPowerOfTwo(std::max<uint64_t>(1, max_extent / du_bytes));
    return exp::Experiment::AllocatorFactory(
        [max_extent_du](uint64_t total_du)
            -> std::unique_ptr<alloc::Allocator> {
          return std::make_unique<alloc::BuddyAllocator>(total_du,
                                                         max_extent_du);
        });
  }
  if (kind == "restricted-buddy") {
    alloc::RestrictedBuddyConfig cfg;
    if (section != nullptr && section->Has("block_sizes")) {
      ROFS_ASSIGN_OR_RETURN(const std::vector<uint64_t> sizes,
                            section->GetSizeList("block_sizes"));
      cfg.block_sizes_du.clear();
      for (uint64_t s : sizes) {
        if (s % du_bytes != 0) {
          return Status::InvalidArgument(
              "[policy] block size not a multiple of the disk unit");
        }
        cfg.block_sizes_du.push_back(s / du_bytes);
      }
    }
    if (section != nullptr) {
      ROFS_ASSIGN_OR_RETURN(const int64_t grow,
                            section->GetIntOr("grow_factor", 1));
      ROFS_ASSIGN_OR_RETURN(const bool clustered,
                            section->GetBoolOr("clustered", true));
      cfg.grow_factor = static_cast<uint32_t>(grow);
      cfg.clustered = clustered;
    }
    *label = FormatString("restricted-buddy(%s)", cfg.Label().c_str());
    return exp::Experiment::AllocatorFactory(
        [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
          return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du,
                                                                   cfg);
        });
  }
  if (kind == "extent") {
    alloc::ExtentAllocatorConfig cfg;
    if (section != nullptr && section->Has("ranges")) {
      ROFS_ASSIGN_OR_RETURN(const std::vector<uint64_t> ranges,
                            section->GetSizeList("ranges"));
      cfg.range_means_du.clear();
      for (uint64_t r : ranges) {
        cfg.range_means_du.push_back(std::max<uint64_t>(1, r / du_bytes));
      }
      std::sort(cfg.range_means_du.begin(), cfg.range_means_du.end());
    }
    if (section != nullptr) {
      ROFS_ASSIGN_OR_RETURN(const std::string fit,
                            section->GetStringOr("fit", "first-fit"));
      if (fit == "first-fit") {
        cfg.fit = alloc::FitPolicy::kFirstFit;
      } else if (fit == "best-fit") {
        cfg.fit = alloc::FitPolicy::kBestFit;
      } else {
        return Status::InvalidArgument("[policy] unknown fit '" + fit + "'");
      }
    }
    *label = "extent(" + cfg.Label() + ")";
    return exp::Experiment::AllocatorFactory(
        [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
          return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
        });
  }
  if (kind == "fixed") {
    uint64_t block = 4 * kKiB;
    if (section != nullptr) {
      ROFS_ASSIGN_OR_RETURN(block, section->GetSizeOr("block", block));
    }
    if (block % du_bytes != 0) {
      return Status::InvalidArgument(
          "[policy] block not a multiple of the disk unit");
    }
    const uint64_t block_du = block / du_bytes;
    *label = FormatString("fixed(%s)", FormatBytes(block).c_str());
    return exp::Experiment::AllocatorFactory(
        [block_du](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
          return std::make_unique<alloc::FixedBlockAllocator>(total_du,
                                                              block_du);
        });
  }
  if (kind == "log" || kind == "log-structured") {
    alloc::LogStructuredConfig cfg;
    if (section != nullptr) {
      ROFS_ASSIGN_OR_RETURN(const uint64_t segment,
                            section->GetSizeOr("segment", 1 * kMiB));
      cfg.segment_du = std::max<uint64_t>(1, segment / du_bytes);
    }
    *label = "log-structured";
    return exp::Experiment::AllocatorFactory(
        [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
          return std::make_unique<alloc::LogStructuredAllocator>(total_du,
                                                                 cfg);
        });
  }
  return Status::InvalidArgument("[policy] unknown kind '" + kind + "'");
}

StatusOr<workload::FileTypeSpec> BuildFileType(const Section& s) {
  workload::FileTypeSpec t;
  t.name = s.argument.empty() ? "filetype" : s.argument;
  ROFS_ASSIGN_OR_RETURN(const int64_t files, s.GetIntOr("files", 1));
  ROFS_ASSIGN_OR_RETURN(const int64_t users, s.GetIntOr("users", 1));
  t.num_files = static_cast<uint32_t>(files);
  t.num_users = static_cast<uint32_t>(users);
  ROFS_ASSIGN_OR_RETURN(t.process_time_ms,
                        s.GetDurationMsOr("process_time", 100.0));
  ROFS_ASSIGN_OR_RETURN(t.hit_frequency_ms,
                        s.GetDurationMsOr("hit_frequency", t.process_time_ms));
  ROFS_ASSIGN_OR_RETURN(t.rw_bytes_mean, s.GetSizeOr("rw_bytes", 8 * kKiB));
  ROFS_ASSIGN_OR_RETURN(t.rw_bytes_dev, s.GetSizeOr("rw_dev", 0));
  ROFS_ASSIGN_OR_RETURN(t.alloc_size_bytes,
                        s.GetSizeOr("alloc_size", t.rw_bytes_mean));
  ROFS_ASSIGN_OR_RETURN(t.extend_bytes_mean, s.GetSizeOr("extend_bytes", 0));
  ROFS_ASSIGN_OR_RETURN(t.extend_bytes_dev, s.GetSizeOr("extend_dev", 0));
  ROFS_ASSIGN_OR_RETURN(t.truncate_bytes,
                        s.GetSizeOr("truncate_bytes", t.rw_bytes_mean));
  ROFS_ASSIGN_OR_RETURN(t.initial_bytes_mean, s.GetSizeOr("initial", 8 * kKiB));
  ROFS_ASSIGN_OR_RETURN(t.initial_bytes_dev, s.GetSizeOr("initial_dev", 0));
  ROFS_ASSIGN_OR_RETURN(t.read_ratio, s.GetDoubleOr("read", 0.6));
  ROFS_ASSIGN_OR_RETURN(t.write_ratio, s.GetDoubleOr("write", 0.2));
  ROFS_ASSIGN_OR_RETURN(t.extend_ratio, s.GetDoubleOr("extend", 0.1));
  ROFS_ASSIGN_OR_RETURN(t.delete_ratio, s.GetDoubleOr("delete_ratio", 0.0));
  ROFS_ASSIGN_OR_RETURN(const std::string access,
                        s.GetStringOr("access", "seq"));
  if (access == "seq" || access == "sequential") {
    t.access = workload::AccessPattern::kSequentialBurst;
  } else if (access == "random") {
    t.access = workload::AccessPattern::kRandom;
  } else {
    return Status::InvalidArgument("[filetype " + t.name +
                                   "] unknown access '" + access + "'");
  }
  ROFS_RETURN_IF_ERROR(t.Validate());
  return t;
}

StatusOr<workload::WorkloadSpec> BuildWorkload(const ConfigFile& file) {
  const Section* w = file.Find("workload");
  workload::WorkloadSpec spec;
  if (w != nullptr && w->Has("builtin")) {
    ROFS_ASSIGN_OR_RETURN(const std::string name, w->GetString("builtin"));
    if (name == "TS" || name == "ts") {
      spec = workload::MakeTimeSharing();
    } else if (name == "TP" || name == "tp") {
      spec = workload::MakeTransactionProcessing();
    } else if (name == "SC" || name == "sc") {
      spec = workload::MakeSuperComputer();
    } else {
      return Status::InvalidArgument("[workload] unknown builtin '" + name +
                                     "'");
    }
  } else {
    spec.name = "custom";
    for (const Section* s : file.FindAll("filetype")) {
      ROFS_ASSIGN_OR_RETURN(workload::FileTypeSpec t, BuildFileType(*s));
      spec.types.push_back(std::move(t));
    }
    if (spec.types.empty()) {
      return Status::InvalidArgument(
          "config defines no [filetype ...] sections and no [workload] "
          "builtin");
    }
  }
  if (w != nullptr) {
    // Arrival model and file-pick skew apply on top of either source;
    // the defaults reproduce the closed-loop uniform-pick behavior.
    ROFS_ASSIGN_OR_RETURN(const std::string arrivals,
                          w->GetStringOr("arrivals", "closed"));
    StatusOr<workload::ArrivalSpec> arrival_spec =
        workload::ParseArrivalSpec(arrivals);
    if (!arrival_spec.ok()) {
      return Status::InvalidArgument("[workload] " +
                                     arrival_spec.status().message());
    }
    spec.arrivals = *arrival_spec;
    ROFS_ASSIGN_OR_RETURN(spec.zipf_theta,
                          w->GetDoubleOr("zipf_theta", spec.zipf_theta));
    if (spec.zipf_theta < 0.0) {
      return Status::InvalidArgument("[workload] zipf_theta must be >= 0");
    }
  }
  return spec;
}

Status BuildFs(const Section* section, fs::FsOptions* options) {
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(options->cache_bytes,
                        section->GetSizeOr("cache", options->cache_bytes));
  ROFS_ASSIGN_OR_RETURN(
      options->cache_page_bytes,
      section->GetSizeOr("cache_page", options->cache_page_bytes));
  ROFS_ASSIGN_OR_RETURN(
      options->cache_bypass_bytes,
      section->GetSizeOr("cache_bypass", options->cache_bypass_bytes));
  ROFS_ASSIGN_OR_RETURN(
      options->model_metadata_io,
      section->GetBoolOr("metadata", options->model_metadata_io));
  return Status::OK();
}

Status BuildCache(const Section* section, fs::FsOptions* options) {
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(
      const std::string policy,
      section->GetStringOr("policy", options->cache_policy.Label()));
  StatusOr<fs::CachePolicySpec> spec = fs::ParseCachePolicySpec(policy);
  if (!spec.ok()) {
    return Status::InvalidArgument("[cache] " + spec.status().message());
  }
  options->cache_policy = *spec;
  ROFS_ASSIGN_OR_RETURN(
      const int64_t readahead,
      section->GetIntOr("readahead_pages",
                        static_cast<int64_t>(options->readahead_pages)));
  if (readahead < 0) {
    return Status::InvalidArgument("[cache] readahead_pages must be >= 0");
  }
  options->readahead_pages = static_cast<uint64_t>(readahead);
  ROFS_ASSIGN_OR_RETURN(
      const int64_t dirty_max,
      section->GetIntOr("writeback_dirty_max",
                        static_cast<int64_t>(options->writeback_dirty_max)));
  if (dirty_max < 0) {
    return Status::InvalidArgument(
        "[cache] writeback_dirty_max must be >= 0");
  }
  options->writeback_dirty_max = static_cast<uint64_t>(dirty_max);
  return Status::OK();
}

Status BuildTest(const Section* section, exp::ExperimentConfig* cfg,
                 TestSelection* tests) {
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(const int64_t seed, section->GetIntOr("seed", 1));
  cfg->seed = static_cast<uint64_t>(seed);
  ROFS_ASSIGN_OR_RETURN(
      cfg->sample_interval_ms,
      section->GetDurationMsOr("sample_interval", cfg->sample_interval_ms));
  ROFS_ASSIGN_OR_RETURN(
      cfg->stable_tolerance_pp,
      section->GetDoubleOr("tolerance_pp", cfg->stable_tolerance_pp));
  ROFS_ASSIGN_OR_RETURN(cfg->warmup_ms,
                        section->GetDurationMsOr("warmup", cfg->warmup_ms));
  ROFS_ASSIGN_OR_RETURN(
      cfg->min_measure_ms,
      section->GetDurationMsOr("min_measure", cfg->min_measure_ms));
  ROFS_ASSIGN_OR_RETURN(
      cfg->max_measure_ms,
      section->GetDurationMsOr("max_measure", cfg->max_measure_ms));
  ROFS_ASSIGN_OR_RETURN(
      cfg->seq_max_measure_ms,
      section->GetDurationMsOr("seq_max_measure", cfg->seq_max_measure_ms));
  ROFS_ASSIGN_OR_RETURN(cfg->fill_lower,
                        section->GetDoubleOr("fill_lower", cfg->fill_lower));
  ROFS_ASSIGN_OR_RETURN(cfg->fill_upper,
                        section->GetDoubleOr("fill_upper", cfg->fill_upper));
  ROFS_ASSIGN_OR_RETURN(const std::string run,
                        section->GetStringOr("run", "all"));
  if (run != "all") {
    tests->allocation = run.find("alloc") != std::string::npos;
    tests->application = run.find("app") != std::string::npos;
    tests->sequential = run.find("seq") != std::string::npos;
    tests->aging = run.find("aging") != std::string::npos;
    if (!tests->allocation && !tests->application && !tests->sequential &&
        !tests->aging) {
      return Status::InvalidArgument("[test] run selects no tests: '" + run +
                                     "'");
    }
  }
  return Status::OK();
}

Status BuildAging(const Section* section, uint64_t test_seed,
                  workload::AgingOptions* aging) {
  aging->seed = test_seed;
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(
      const int64_t seed,
      section->GetIntOr("seed", static_cast<int64_t>(aging->seed)));
  aging->seed = static_cast<uint64_t>(seed);
  ROFS_ASSIGN_OR_RETURN(
      aging->target_util,
      section->GetDoubleOr("target_util", aging->target_util));
  ROFS_ASSIGN_OR_RETURN(
      const int64_t ops,
      section->GetIntOr("ops_per_round",
                        static_cast<int64_t>(aging->ops_per_round)));
  aging->ops_per_round = static_cast<uint64_t>(ops);
  ROFS_ASSIGN_OR_RETURN(
      const int64_t rounds,
      section->GetIntOr("rounds", static_cast<int64_t>(aging->rounds)));
  aging->rounds = static_cast<int>(rounds);
  ROFS_ASSIGN_OR_RETURN(
      const int64_t probe,
      section->GetIntOr("probe_files",
                        static_cast<int64_t>(aging->probe_files)));
  aging->probe_files = static_cast<uint32_t>(probe);
  return aging->Validate();
}

Status BuildSimEngine(const Section* section, exp::SimEngineOptions* eng) {
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(
      const int64_t threads,
      section->GetIntOr("threads", static_cast<int64_t>(eng->threads)));
  if (threads < 0 || threads > 1024) {
    return Status::InvalidArgument("[sim] threads out of range");
  }
  eng->threads = static_cast<int>(threads);
  ROFS_ASSIGN_OR_RETURN(
      const std::string timer,
      section->GetStringOr("user_timer", eng->timer_wheel ? "wheel" : "heap"));
  if (timer == "heap") {
    eng->timer_wheel = false;
  } else if (timer == "wheel") {
    eng->timer_wheel = true;
  } else {
    return Status::InvalidArgument("[sim] unknown user_timer '" + timer +
                                   "' (heap|wheel)");
  }
  ROFS_ASSIGN_OR_RETURN(
      eng->wheel_tick_ms,
      section->GetDurationMsOr("wheel_tick", eng->wheel_tick_ms));
  if (!(eng->wheel_tick_ms > 0.0)) {
    return Status::InvalidArgument("[sim] wheel_tick must be positive");
  }
  return Status::OK();
}

Status BuildObs(const Section* section, obs::Options* obs) {
  if (section == nullptr) return Status::OK();
  ROFS_ASSIGN_OR_RETURN(obs->window_ms,
                        section->GetDurationMsOr("window_ms", obs->window_ms));
  if (obs->window_ms < 0.0) {
    return Status::InvalidArgument("[obs] window_ms must be non-negative");
  }
  return Status::OK();
}

}  // namespace

StatusOr<SimConfig> BuildSimConfig(const ConfigFile& file) {
  SimConfig sim;
  ROFS_ASSIGN_OR_RETURN(sim.disk, BuildDisk(file.Find("disk")));
  ROFS_ASSIGN_OR_RETURN(
      sim.allocator_factory,
      BuildPolicy(file.Find("policy"), sim.disk.disk_unit_bytes,
                  &sim.policy_label));
  ROFS_ASSIGN_OR_RETURN(sim.workload, BuildWorkload(file));
  ROFS_RETURN_IF_ERROR(
      BuildTest(file.Find("test"), &sim.experiment, &sim.tests));
  ROFS_RETURN_IF_ERROR(
      BuildAging(file.Find("aging"), sim.experiment.seed, &sim.aging));
  ROFS_RETURN_IF_ERROR(BuildFs(file.Find("fs"), &sim.experiment.fs_options));
  ROFS_RETURN_IF_ERROR(
      BuildCache(file.Find("cache"), &sim.experiment.fs_options));
  ROFS_RETURN_IF_ERROR(
      BuildSimEngine(file.Find("sim"), &sim.experiment.engine));
  ROFS_RETURN_IF_ERROR(BuildObs(file.Find("obs"), &sim.experiment.obs));
  return sim;
}

StatusOr<SimConfig> LoadSimConfig(const std::string& path) {
  ROFS_ASSIGN_OR_RETURN(const ConfigFile file, ParseConfigFile(path));
  return BuildSimConfig(file);
}

}  // namespace rofs::config
