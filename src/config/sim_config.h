#ifndef ROFS_CONFIG_SIM_CONFIG_H_
#define ROFS_CONFIG_SIM_CONFIG_H_

#include <string>

#include "config/config_parser.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "workload/aging.h"
#include "workload/file_type.h"

namespace rofs::config {

/// Which tests a config asks for.
struct TestSelection {
  bool allocation = true;
  bool application = true;
  bool sequential = true;
  /// The long-horizon aging study (`run = aging`); off by default — it is
  /// a separate, much longer experiment than the paper's three tests.
  bool aging = false;
};

/// A fully materialized simulation described by a config file: the disk
/// system, the allocation policy, the workload, and the experiment
/// parameters — the same knobs the paper's own simulator exposed.
struct SimConfig {
  disk::DiskSystemConfig disk;
  exp::Experiment::AllocatorFactory allocator_factory;
  std::string policy_label;
  workload::WorkloadSpec workload;
  exp::ExperimentConfig experiment;
  TestSelection tests;
  /// Parameters of the aging study (`[aging]`); used when tests.aging.
  workload::AgingOptions aging;
};

/// Builds a SimConfig from a parsed config file.
///
/// Sections:
///   [disk]      disks, cylinders, platters, track_bytes, rotation_ms,
///               seek_ms, seek_incremental_ms, layout, stripe_unit,
///               disk_unit, scheduler = fcfs|sstf|scan|cscan|look|batch(N)
///   [policy]    kind = buddy | restricted-buddy | extent | fixed | log
///               (plus kind-specific keys: block_sizes/grow_factor/
///               clustered; ranges/fit; block; segment; max_extent)
///   [test]      run = alloc,app,seq,aging | all ("all" means the
///               paper's three tests; aging must be asked for by name);
///               seed, sample_interval,
///               tolerance_pp, warmup, min_measure, max_measure,
///               fill_lower, fill_upper
///   [sim]       threads = 0..N (0 = classic serial engine; >= 1 shards
///               disk events per drive, byte-identical output for every
///               value >= 1); user_timer = heap|wheel; wheel_tick
///   [workload]  builtin = TS | TP | SC   (optional shortcut);
///               arrivals = closed | poisson(RATE) |
///               mmpp(RATE[,BURST,ON,OFF]) | pareto(RATE[,ALPHA])
///               (RATE in ops/s); zipf_theta = 0..  (0 = uniform picks)
///   [aging]     seed (defaults to the test seed), target_util,
///               ops_per_round, rounds, probe_files
///   [filetype NAME]  every Table 2 parameter (files, users,
///               process_time, hit_frequency, rw_bytes, rw_dev,
///               alloc_size, extend_bytes, extend_dev, truncate_bytes,
///               initial, initial_dev, read, write, extend, delete_ratio,
///               access = seq|random)
StatusOr<SimConfig> BuildSimConfig(const ConfigFile& file);

/// Convenience: parse + build from a file path.
StatusOr<SimConfig> LoadSimConfig(const std::string& path);

}  // namespace rofs::config

#endif  // ROFS_CONFIG_SIM_CONFIG_H_
