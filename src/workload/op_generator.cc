#include "workload/op_generator.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/table.h"
#include "util/units.h"

namespace rofs::workload {

OpGenerator::OpGenerator(const WorkloadSpec* workload,
                         fs::ReadOptimizedFs* fs, sim::EventQueue* queue,
                         OpGeneratorOptions options)
    : workload_(workload), fs_(fs), queue_(queue), options_(options),
      rng_(options.seed),
      pump_time_(std::numeric_limits<sim::TimeMs>::infinity()) {
  assert(workload_ != nullptr && fs_ != nullptr && queue_ != nullptr);
  files_by_type_.resize(workload_->types.size());
  op_stats_.resize(workload_->types.size());
  if (options_.timer_wheel) {
    wheel_ = std::make_unique<sim::TimerWheel>(options_.wheel_tick_ms);
  }
  if (workload_->zipf_theta > 0.0) {
    zipf_.reserve(workload_->types.size());
    for (const FileTypeSpec& t : workload_->types) {
      zipf_.emplace_back(t.num_files, workload_->zipf_theta);
    }
  }
}

void OpGenerator::ResetStats() {
  ops_executed_ = 0;
  op_latency_ms_.Reset();
  for (auto& per_type : op_stats_) {
    for (OpStats& stats : per_type) stats = OpStats{};
  }
}

std::string OpGenerator::StatsReport() const {
  Table table({"Type", "Op", "Count", "Bytes", "Lat mean", "Lat p99"});
  for (size_t t = 0; t < op_stats_.size(); ++t) {
    for (size_t k = 0; k < op_stats_[t].size(); ++k) {
      const OpStats& stats = op_stats_[t][k];
      if (stats.count == 0) continue;
      table.AddRow({workload_->types[t].name,
                    OpKindToString(static_cast<OpKind>(k)),
                    FormatString("%llu",
                                 static_cast<unsigned long long>(stats.count)),
                    FormatBytes(stats.bytes),
                    FormatString("%.1fms", stats.latency_ms.Mean()),
                    FormatString("%.1fms", stats.latency_ms.Percentile(99))});
    }
  }
  return table.ToString();
}

Status OpGenerator::CreateInitialFiles() {
  // Register every file first (so descriptor placement round-robins the
  // way a real population would), then allocate them in an interleaved
  // random order so small and large files mingle on disk rather than
  // forming one segregated band per type.
  struct Pending {
    size_t type;
    fs::FileId id;
  };
  std::vector<Pending> pending;
  for (size_t t = 0; t < workload_->types.size(); ++t) {
    const FileTypeSpec& type = workload_->types[t];
    files_by_type_[t].reserve(type.num_files);
    for (uint32_t i = 0; i < type.num_files; ++i) {
      const fs::FileId id = fs_->Create(type.alloc_size_bytes);
      files_by_type_[t].push_back(id);
      pending.push_back(Pending{t, id});
    }
  }
  // Fisher-Yates shuffle with the generator's deterministic RNG.
  for (size_t i = pending.size(); i > 1; --i) {
    std::swap(pending[i - 1], pending[rng_.UniformInt(0, i - 1)]);
  }
  for (const Pending& p : pending) {
    const FileTypeSpec& type = workload_->types[p.type];
    const uint64_t size = type.DrawInitialBytes(rng_);
    sim::TimeMs done = 0;
    const Status status = fs_->Extend(p.id, size, /*arrival=*/0.0, &done);
    if (!status.ok()) {
      if (status.IsResourceExhausted()) {
        ++disk_full_count_;
        if (on_disk_full) on_disk_full();
      }
      return status;
    }
  }
  return Status::OK();
}

void OpGenerator::ScheduleUserStreams() {
  if (wheel_ != nullptr) {
    users_.Build(*workload_);
    wheel_->Reserve(users_.num_users());
    due_.reserve(64);
  }
  // Both modes draw the start times in the identical (type, user) order.
  for (size_t t = 0; t < workload_->types.size(); ++t) {
    const FileTypeSpec& type = workload_->types[t];
    const double spread =
        static_cast<double>(type.num_users) * type.hit_frequency_ms;
    for (uint32_t u = 0; u < type.num_users; ++u) {
      const sim::TimeMs start = queue_->now() + rng_.Uniform(0.0, spread);
      if (wheel_ != nullptr) {
        wheel_->Schedule(start, users_.first_uid(t) + u);
      } else {
        queue_->Schedule(start, [this, t] { RunUserEvent(t, kNoUser); });
      }
    }
  }
  if (wheel_ != nullptr) ArmPump();
}

void OpGenerator::ArmPump() {
  const sim::TimeMs deadline = wheel_->next_deadline();
  if (deadline < pump_time_) {
    pump_time_ = deadline;
    queue_->Schedule(deadline, [this] { PumpWheel(); });
  }
}

void OpGenerator::PumpWheel() {
  // This pump was the earliest outstanding one. Later (superseded) pumps
  // may still be in flight; forgetting them only means ArmPump may arm a
  // duplicate, which pops nothing — never a missed deadline.
  pump_time_ = std::numeric_limits<sim::TimeMs>::infinity();
  due_.clear();
  wheel_->PopDue(queue_->now(), &due_);
  for (const sim::TimerEntry& e : due_) {
    const uint32_t uid = static_cast<uint32_t>(e.payload);
    users_.RecordOp(uid);
    RunUserEvent(users_.type_of(uid), uid);
  }
  if (!wheel_->empty()) ArmPump();
}

void OpGenerator::ScheduleNext(size_t type_index, uint32_t uid,
                               sim::TimeMs next) {
  if (wheel_ != nullptr) {
    wheel_->Schedule(next, uid);
    ArmPump();
  } else {
    queue_->Schedule(next, [this, type_index] {
      RunUserEvent(type_index, kNoUser);
    });
  }
}

OpKind OpGenerator::DrawOpForMode(const FileTypeSpec& type) {
  switch (options_.mode) {
    case OpMode::kApplication:
      return type.DrawOp(rng_);
    case OpMode::kAllocation:
      return type.DrawAllocOp(rng_);
    case OpMode::kFill: {
      // Aging churn biased toward growth so utilization climbs into the
      // measurement band.
      const OpKind op = type.DrawAllocOp(rng_);
      if (op != OpKind::kExtend && rng_.Bernoulli(0.5)) {
        return OpKind::kExtend;
      }
      return op;
    }
    case OpMode::kSequential:
      return type.DrawSequentialOp(rng_);
  }
  return OpKind::kRead;
}

void OpGenerator::RunUserEvent(size_t type_index, uint32_t uid) {
  // Once open-loop injection starts, think-time events still in flight
  // from the closed streams fire here and die without executing.
  if (arrivals_ != nullptr && uid != kOpenLoop) return;
  const FileTypeSpec& type = workload_->types[type_index];
  const auto& ids = files_by_type_[type_index];
  const fs::FileId id = zipf_.empty()
                            ? ids[rng_.UniformInt(0, ids.size() - 1)]
                            : ids[zipf_[type_index].Next(rng_)];
  const sim::TimeMs now = queue_->now();
  const OpKind op = DrawOpForMode(type);

  if (options_.async) {
    RunUserEventAsync(type_index, uid, id, op, now);
    return;
  }

  uint64_t bytes_moved = 0;
  const uint32_t ledger =
      attr_ != nullptr ? attr_->BeginOp() : obs::OpAttribution::kNoLedger;
  const sim::TimeMs done = ExecuteOp(type_index, id, op, now, &bytes_moved);
  if (attr_ != nullptr) {
    attr_->ClearTarget();
    attr_->FoldOp(ledger, done - now);
  }
  ++ops_executed_;
  op_latency_ms_.Add(done - now);
  OpStats& stats = op_stats_[type_index][static_cast<size_t>(op)];
  ++stats.count;
  stats.bytes += bytes_moved;
  stats.latency_ms.Add(done - now);
  if (on_op) {
    on_op(OpRecord{now, done, type_index, op, id, bytes_moved});
  }
  if (bytes_moved > 0 && on_bytes_moved) {
    // Throughput is credited at completion time. The callback is captured
    // by value so an operation still in flight when a measurement phase
    // ends reports to the tracker that was active when it was issued.
    if (done > now) {
      auto callback = on_bytes_moved;
      queue_->Schedule(done, [callback, bytes_moved, done] {
        callback(bytes_moved, done);
      });
    } else {
      on_bytes_moved(bytes_moved, done);
    }
  }

  if (uid == kOpenLoop) {
    // No rescheduling: the arrival chain drives injection. Completion is
    // accounted when the op's simulated completion time is reached.
    if (done > now) {
      queue_->Schedule(done, [this] { OnOpenOpComplete(); });
    } else {
      OnOpenOpComplete();
    }
    return;
  }

  // "The operation completion time is added to an exponentially
  // distributed value with mean equal to process time and an event is
  // scheduled at that newly calculated time."
  const sim::TimeMs next = done + rng_.Exponential(type.process_time_ms);
  if (attr_ != nullptr) attr_->RecordThink(next - done);
  ScheduleNext(type_index, uid, next);
}

void OpGenerator::StartOpenLoop(const ArrivalSpec& spec) {
  if (arrivals_ != nullptr) return;
  assert(spec.open());
  arrivals_ = std::make_unique<ArrivalProcess>(spec);
  type_user_cum_.clear();
  type_user_cum_.reserve(workload_->types.size());
  total_users_ = 0;
  for (const FileTypeSpec& t : workload_->types) {
    total_users_ += t.num_users;
    type_user_cum_.push_back(total_users_);
  }
  ScheduleNextArrival();
}

void OpGenerator::ScheduleNextArrival() {
  const sim::TimeMs t = queue_->now() + arrivals_->NextGapMs(rng_);
  queue_->Schedule(t, [this] { RunArrival(); });
}

void OpGenerator::RunArrival() {
  ++open_offered_;
  ++open_pending_;
  open_pending_peak_ = std::max(open_pending_peak_, open_pending_);
  // Pick the type with probability proportional to its user population,
  // so a multi-type workload keeps the closed mix's per-type share.
  size_t t = 0;
  if (workload_->types.size() > 1) {
    const uint64_t u = rng_.UniformInt(0, total_users_ - 1);
    while (type_user_cum_[t] <= u) ++t;
  }
  RunUserEvent(t, kOpenLoop);
  ScheduleNextArrival();
}

void OpGenerator::OnOpenOpComplete() {
  ++open_completed_;
  --open_pending_;
}

void OpGenerator::RunUserEventAsync(size_t type_index, uint32_t uid,
                                    fs::FileId id, OpKind op,
                                    sim::TimeMs now) {
  const FileTypeSpec& type = workload_->types[type_index];
  const fs::File& f = fs_->file(id);
  // The completion callback has no room to carry the ledger index; it is
  // recovered at completion via the attribution's finishing handshake
  // (OpAttribution::TakeActive in OnAsyncOpDone).
  if (attr_ != nullptr) attr_->BeginOp();

  // Issue-time half: every RNG draw and synchronous side effect happens
  // here, in exactly ExecuteOp's order, so sync and async runs issue an
  // identical operation stream.
  uint64_t bytes_moved = 0;
  bool has_io = false;
  bool is_write = false;
  uint64_t offset = 0;
  uint64_t size = 0;

  switch (op) {
    case OpKind::kRead:
    case OpKind::kWrite: {
      if (options_.mode == OpMode::kSequential) {
        // "Each read or write is to an entire file."
        size = f.logical_bytes;
      } else if (f.logical_bytes == 0) {
        break;  // Nothing to transfer.
      } else if (type.access == AccessPattern::kRandom) {
        size = type.DrawRwBytes(rng_);
        const uint64_t slots = std::max<uint64_t>(1, f.logical_bytes / size);
        offset = size * rng_.UniformInt(0, slots - 1);
        offset = std::min(offset, f.logical_bytes - 1);
      } else {
        size = type.DrawRwBytes(rng_);
        offset = f.cursor_bytes >= f.logical_bytes ? 0 : f.cursor_bytes;
        fs_->mutable_file(id).cursor_bytes = offset + size;
      }
      if (size == 0) break;
      bytes_moved += std::min(size, f.logical_bytes - offset);
      has_io = true;
      is_write = op == OpKind::kWrite;
      break;
    }
    case OpKind::kExtend: {
      if (fs_->SpaceUtilization() > options_.upper_bound_util) {
        fs_->Truncate(id, type.truncate_bytes);
        break;
      }
      has_io = PrepareExtendAsync(id, type.DrawExtendBytes(rng_), &offset,
                                  &size, &bytes_moved);
      is_write = true;
      break;
    }
    case OpKind::kTruncate: {
      fs_->Truncate(id, type.truncate_bytes);
      break;
    }
    case OpKind::kDelete: {
      fs_->Delete(id);
      fs_->Recreate(id);
      has_io = PrepareExtendAsync(id, type.DrawInitialBytes(rng_), &offset,
                                  &size, &bytes_moved);
      is_write = true;
      break;
    }
  }
  // The think time is drawn at issue (keeping the RNG stream in the sync
  // path's order) and applied from the eventual completion time. Open-loop
  // arrivals have no think time — the sync path skips the draw too.
  const double think_ms =
      uid == kOpenLoop ? 0.0 : rng_.Exponential(type.process_time_ms);

  if (!has_io) {
    OnAsyncOpDone(type_index, uid, op, id, now, bytes_moved, think_ms, now);
    return;
  }
  // The op kind (3 bits) shares a word with the type index so the capture
  // fits the DoneFn inline buffer exactly (48 bytes, no allocation).
  const uint32_t op_t = (static_cast<uint32_t>(type_index) << 3) |
                        static_cast<uint32_t>(op);
  auto finish = [this, op_t, uid, id, now, bytes_moved,
                 think_ms](sim::TimeMs done) {
    OnAsyncOpDone(op_t >> 3, uid, static_cast<OpKind>(op_t & 7u), id, now,
                  bytes_moved, think_ms, done);
  };
  if (is_write) {
    fs_->WriteAsync(id, offset, size, now, std::move(finish));
  } else {
    fs_->ReadAsync(id, offset, size, now, std::move(finish));
  }
  // The op's issue stack has unwound; a still-deferred completion finds
  // its ledger through the finishing handshake, not the current target.
  if (attr_ != nullptr) attr_->ClearTarget();
}

bool OpGenerator::PrepareExtendAsync(fs::FileId id, uint64_t bytes,
                                     uint64_t* offset, uint64_t* size,
                                     uint64_t* bytes_moved) {
  const Status status = fs_->ExtendAlloc(id, bytes, offset, size);
  *bytes_moved += *size;  // ExtendAlloc reports the logical growth.
  if (status.IsResourceExhausted()) {
    ++disk_full_count_;
    if (on_disk_full) on_disk_full();
  }
  return *size > 0;
}

void OpGenerator::OnAsyncOpDone(size_t type_index, uint32_t uid, OpKind op,
                                fs::FileId id, sim::TimeMs issued,
                                uint64_t bytes_moved, double think_ms,
                                sim::TimeMs done) {
  if (attr_ != nullptr) {
    const obs::OpAttribution::Target t = attr_->TakeActive();
    attr_->FoldOp(t.ledger, done - issued);
    if (uid != kOpenLoop) attr_->RecordThink(think_ms);
  }
  ++ops_executed_;
  op_latency_ms_.Add(done - issued);
  OpStats& stats = op_stats_[type_index][static_cast<size_t>(op)];
  ++stats.count;
  stats.bytes += bytes_moved;
  stats.latency_ms.Add(done - issued);
  if (on_op) {
    on_op(OpRecord{issued, done, type_index, op, id, bytes_moved});
  }
  if (bytes_moved > 0 && on_bytes_moved) {
    // We are already at the completion instant; credit directly.
    on_bytes_moved(bytes_moved, done);
  }
  if (uid == kOpenLoop) {
    OnOpenOpComplete();
    return;
  }
  const sim::TimeMs next = done + think_ms;
  ScheduleNext(type_index, uid, next);
}

sim::TimeMs OpGenerator::DoExtend(const FileTypeSpec& type, fs::FileId id,
                                  uint64_t bytes, sim::TimeMs now,
                                  uint64_t* bytes_moved) {
  (void)type;
  const uint64_t before = fs_->file(id).logical_bytes;
  sim::TimeMs done = now;
  const Status status = fs_->Extend(id, bytes, now, &done);
  *bytes_moved += fs_->file(id).logical_bytes - before;
  if (status.IsResourceExhausted()) {
    ++disk_full_count_;
    if (on_disk_full) on_disk_full();
  }
  return done;
}

sim::TimeMs OpGenerator::ExecuteOp(size_t type_index, fs::FileId id,
                                   OpKind op, sim::TimeMs now,
                                   uint64_t* bytes_moved) {
  const FileTypeSpec& type = workload_->types[type_index];
  const fs::File& f = fs_->file(id);

  switch (op) {
    case OpKind::kRead:
    case OpKind::kWrite: {
      uint64_t offset = 0;
      uint64_t size = 0;
      if (options_.mode == OpMode::kSequential) {
        // "Each read or write is to an entire file."
        size = f.logical_bytes;
      } else if (f.logical_bytes == 0) {
        return now;  // Nothing to transfer.
      } else if (type.access == AccessPattern::kRandom) {
        size = type.DrawRwBytes(rng_);
        const uint64_t slots = std::max<uint64_t>(1, f.logical_bytes / size);
        offset = size * rng_.UniformInt(0, slots - 1);
        offset = std::min(offset, f.logical_bytes - 1);
      } else {
        size = type.DrawRwBytes(rng_);
        offset = f.cursor_bytes >= f.logical_bytes ? 0 : f.cursor_bytes;
        fs_->mutable_file(id).cursor_bytes = offset + size;
      }
      if (size == 0) return now;
      *bytes_moved += std::min(size, f.logical_bytes - offset);
      return op == OpKind::kRead ? fs_->Read(id, offset, size, now)
                                 : fs_->Write(id, offset, size, now);
    }
    case OpKind::kExtend: {
      if (fs_->SpaceUtilization() > options_.upper_bound_util) {
        // "Any extend operation occurring when the disk utilization is
        // greater than M is converted into a truncate operation."
        fs_->Truncate(id, type.truncate_bytes);
        return now;
      }
      return DoExtend(type, id, type.DrawExtendBytes(rng_), now, bytes_moved);
    }
    case OpKind::kTruncate: {
      fs_->Truncate(id, type.truncate_bytes);
      return now;
    }
    case OpKind::kDelete: {
      // Delete and recreate: the paper's small files are "periodically
      // deleted and recreated"; the new instance is written in full.
      fs_->Delete(id);
      fs_->Recreate(id);
      return DoExtend(type, id, type.DrawInitialBytes(rng_), now,
                      bytes_moved);
    }
  }
  return now;
}

}  // namespace rofs::workload
