#include "workload/user_table.h"

#include <cassert>

namespace rofs::workload {

void UserTable::Build(const WorkloadSpec& spec) {
  assert(spec.types.size() <= 255 && "type index must fit a uint8 column");
  type_.clear();
  ops_.clear();
  first_uid_.clear();
  uint64_t total = 0;
  for (const FileTypeSpec& type : spec.types) total += type.num_users;
  assert(total <= UINT32_MAX);
  type_.reserve(total);
  first_uid_.reserve(spec.types.size());
  for (size_t t = 0; t < spec.types.size(); ++t) {
    first_uid_.push_back(static_cast<uint32_t>(type_.size()));
    type_.insert(type_.end(), spec.types[t].num_users,
                 static_cast<uint8_t>(t));
  }
  ops_.assign(type_.size(), 0);
}

}  // namespace rofs::workload
