#ifndef ROFS_WORKLOAD_WORKLOADS_H_
#define ROFS_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "workload/file_type.h"

namespace rofs::workload {

/// The three canonical workloads of paper section 2.2. Parameters the
/// paper states are used verbatim; unstated constants (user counts, think
/// times, transfer sizes for some types) are the documented choices of
/// DESIGN.md section 4, scaled to the default 2.8 GB eight-disk array.
enum class WorkloadKind { kTimeSharing, kTransactionProcessing, kSuperComputer };

std::string WorkloadKindToString(WorkloadKind kind);

/// Time sharing / software development (TS): an abundance of small files
/// (mean 8K) receiving two thirds of all requests, plus larger files (mean
/// 96K); files are created, read, and deleted.
WorkloadSpec MakeTimeSharing();

/// Transaction processing (TP): 10 large relations (210M) with random 8K
/// reads/writes, 5 application logs (5M) and one transaction log (10M)
/// receiving mostly extends.
WorkloadSpec MakeTransactionProcessing();

/// Supercomputer / complex query processing (SC): one 500M file, fifteen
/// 100M files and ten 10M files, read and written in large contiguous
/// bursts (512K / 32K).
WorkloadSpec MakeSuperComputer();

WorkloadSpec MakeWorkload(WorkloadKind kind);
std::vector<WorkloadKind> AllWorkloadKinds();

/// The extent-size range means (bytes) the paper lists for each workload
/// and range count (1..5), section 4.3. TS uses the small-file ladder
/// (4K ... 1M); TP and SC share the large ladder (512K ... 16M).
std::vector<uint64_t> ExtentRangeMeansBytes(WorkloadKind kind,
                                            int num_ranges);

/// The fixed-block baseline block size the paper compares against each
/// workload: 4K for TS, 16K for TP and SC (section 5).
uint64_t FixedBlockBytesFor(WorkloadKind kind);

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_WORKLOADS_H_
