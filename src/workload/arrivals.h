#ifndef ROFS_WORKLOAD_ARRIVALS_H_
#define ROFS_WORKLOAD_ARRIVALS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/statusor.h"

namespace rofs::workload {

/// How operations arrive at the file system.
enum class ArrivalKind {
  /// The paper's model: each user issues its next request one think time
  /// after the previous completion, so load self-throttles and measured
  /// throughput can never exceed what the system delivers.
  kClosed,
  /// Open-loop Poisson arrivals at a fixed offered rate: memoryless gaps,
  /// index of dispersion 1. The M/G/1-ish baseline for overload studies.
  kPoisson,
  /// Bursty on/off arrivals (a 2-state Markov-modulated Poisson process):
  /// exponentially distributed ON bursts at `burst_ratio` times the OFF
  /// rate, with the two rates normalized so the long-run offered rate
  /// matches `rate_per_s`.
  kMmpp,
  /// Heavy-tailed arrivals: Pareto-distributed gaps with tail exponent
  /// `alpha` scaled to the target mean rate. For 1 < alpha < 2 the gap
  /// variance is infinite and aggregated counts are self-similar.
  kPareto,
};

/// Parsed `[workload] arrivals =` value: the process kind plus its
/// parameters. The default (`closed`) reproduces the paper's closed-loop
/// behavior byte for byte — no open-loop machinery is constructed at all.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kClosed;
  /// Long-run offered rate for the open kinds, in operations per second.
  double rate_per_s = 0.0;
  /// MMPP: ON-state rate divided by OFF-state rate (> 1).
  double burst_ratio = 10.0;
  /// MMPP: mean ON burst / OFF gap durations (exponential).
  double on_ms = 500.0;
  double off_ms = 4500.0;
  /// Pareto: tail exponent; must exceed 1 so the mean gap exists.
  double alpha = 1.5;

  bool open() const { return kind != ArrivalKind::kClosed; }
  /// Canonical spelling: "closed", "poisson(200)", ...
  std::string Label() const;
  Status Validate() const;
};

/// Parses an arrivals spec string:
///   closed
///   poisson(RATE)
///   mmpp(RATE, BURST_RATIO, ON_MS, OFF_MS)
///   pareto(RATE, ALPHA)
/// RATE is ops/second; durations are milliseconds.
StatusOr<ArrivalSpec> ParseArrivalSpec(const std::string& text);

/// Samples successive interarrival gaps (ms) for an open ArrivalSpec.
/// Deterministic given the Rng stream; performs no allocation after
/// construction (the perf_noalloc gate covers the sampling loop).
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalSpec& spec);

  /// The gap from the previous arrival to the next one, in ms.
  double NextGapMs(Rng& rng);

  const ArrivalSpec& spec() const { return spec_; }

 private:
  ArrivalSpec spec_;
  /// Poisson: the mean gap. MMPP/Pareto: derived parameters below.
  double mean_gap_ms_ = 0.0;
  // MMPP state: per-ms rates of the two states and the remaining time in
  // the current one. Starts OFF with a fresh exponential residue, which is
  // exact for the stationary chain (exponential residuals are memoryless).
  double rate_on_per_ms_ = 0.0;
  double rate_off_per_ms_ = 0.0;
  bool on_ = false;
  double state_left_ms_ = 0.0;
  bool state_primed_ = false;
  // Pareto scale x_m with E[gap] = x_m * alpha / (alpha - 1).
  double pareto_scale_ms_ = 0.0;
};

/// Zipf(theta) rank picker over n items: item k (0-based rank) is drawn
/// with probability proportional to 1 / (k + 1)^theta. theta = 0 is
/// uniform; theta ~ 1 is the classic web/file-popularity skew. Draws cost
/// one uniform deviate plus a binary search of the precomputed CDF, with
/// no allocation per draw.
class ZipfPicker {
 public:
  ZipfPicker() = default;
  ZipfPicker(size_t n, double theta);

  /// A rank in [0, n).
  size_t Next(Rng& rng) const;

  size_t size() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_ = 0.0;
  std::vector<double> cdf_;
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_ARRIVALS_H_
