#ifndef ROFS_WORKLOAD_USER_TABLE_H_
#define ROFS_WORKLOAD_USER_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/file_type.h"

namespace rofs::workload {

/// Struct-of-arrays per-user state, built type-major from a WorkloadSpec:
/// user ids are assigned 0..N-1 in (type, user) order, so a type's users
/// occupy one contiguous id range and a column scan touches memory
/// sequentially. At 10^6 users the table costs ~5 bytes/user — the
/// closed-loop generator's only other per-user cost is one 32-byte timer
/// wheel node while the user thinks (heap mode instead pays a 16-byte
/// heap entry plus a 48-byte callback slot each).
class UserTable {
 public:
  UserTable() = default;

  /// Rebuilds the table from the spec's (type, num_users) counts.
  void Build(const WorkloadSpec& spec);

  uint32_t num_users() const { return static_cast<uint32_t>(type_.size()); }
  bool empty() const { return type_.empty(); }

  size_t type_of(uint32_t uid) const { return type_[uid]; }
  /// First user id of `type` (ids are contiguous per type).
  uint32_t first_uid(size_t type) const { return first_uid_[type]; }

  void RecordOp(uint32_t uid) { ++ops_[uid]; }
  uint32_t ops_of(uint32_t uid) const { return ops_[uid]; }

  /// Resident footprint of the table's columns, for capacity reporting.
  size_t approx_bytes() const {
    return type_.capacity() * sizeof(uint8_t) +
           ops_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint8_t> type_;      // uid -> workload type index.
  std::vector<uint32_t> ops_;      // uid -> operations completed.
  std::vector<uint32_t> first_uid_;  // type -> first uid.
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_USER_TABLE_H_
