#include "workload/trace_replay.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>

#include "util/table.h"

namespace rofs::workload {

namespace {

std::string Trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool KnownOp(const std::string& op) {
  return op == "read" || op == "write" || op == "extend" ||
         op == "truncate" || op == "delete" || op == "create";
}

}  // namespace

StatusOr<std::vector<TraceOp>> TraceReplayer::Parse(const std::string& text) {
  std::vector<TraceOp> ops;
  std::stringstream stream(text);
  std::string raw;
  int line_no = 0;
  // Set when the first line is the header rofs_sim --trace emits
  // (exp::OpTrace::ToCsv); the emitted columns then map onto TraceOps,
  // closing the trace loop: a recorded run replays through the same
  // parser as hand-written traces.
  bool optrace_mode = false;
  bool saw_line = false;
  while (std::getline(stream, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    const std::string line =
        Trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (!saw_line) {
      saw_line = true;
      if (line == "issued_ms,completed_ms,latency_ms,type,op,file,bytes") {
        optrace_mode = true;
        continue;
      }
      if (line == "time_ms,op,file,bytes" ||
          line == "time_ms,op,file,bytes,offset") {
        continue;  // Optional header on the native format.
      }
    }
    std::vector<std::string> fields;
    std::stringstream fs_stream(line);
    std::string field;
    while (std::getline(fs_stream, field, ',')) {
      fields.push_back(Trim(field));
    }
    if (optrace_mode ? fields.size() != 7
                     : (fields.size() < 4 || fields.size() > 5)) {
      return Status::InvalidArgument(FormatString(
          optrace_mode
              ? "trace line %d: expected the 7 OpTrace columns"
              : "trace line %d: expected time,op,file,bytes[,offset]",
          line_no));
    }
    // OpTrace columns: issued,completed,latency,type,op,file,bytes —
    // issue time, op, file and bytes land on the native fields; the
    // completion/latency/type columns describe the recorded run, not the
    // replayed one, and are dropped.
    const std::string& op_field = optrace_mode ? fields[4] : fields[1];
    const std::string& file_field = optrace_mode ? fields[5] : fields[2];
    const std::string& bytes_field = optrace_mode ? fields[6] : fields[3];
    TraceOp op;
    if (!ParseDouble(fields[0], &op.time_ms) || op.time_ms < 0) {
      return Status::InvalidArgument(
          FormatString("trace line %d: bad time '%s'", line_no,
                       fields[0].c_str()));
    }
    op.op = op_field;
    if (!KnownOp(op.op)) {
      return Status::InvalidArgument(FormatString(
          "trace line %d: unknown op '%s'", line_no, op.op.c_str()));
    }
    op.file_key = file_field;
    if (op.file_key.empty()) {
      return Status::InvalidArgument(
          FormatString("trace line %d: empty file key", line_no));
    }
    if (!ParseU64(bytes_field, &op.bytes)) {
      return Status::InvalidArgument(
          FormatString("trace line %d: bad byte count '%s'", line_no,
                       bytes_field.c_str()));
    }
    if (!optrace_mode && fields.size() == 5 &&
        !ParseU64(fields[4], &op.offset)) {
      return Status::InvalidArgument(
          FormatString("trace line %d: bad offset '%s'", line_no,
                       fields[4].c_str()));
    }
    if (optrace_mode && op.op == "delete" && op.bytes > 0) {
      // The generator's delete is delete + recreate + write-in-full (the
      // paper's churn), and its OpTrace row carries the recreate size.
      // Split it so replay reproduces the recorded byte volume.
      TraceOp del = op;
      del.bytes = 0;
      ops.push_back(std::move(del));
      op.op = "create";
    }
    ops.push_back(std::move(op));
  }
  // Replay requires non-decreasing issue times.
  if (!std::is_sorted(ops.begin(), ops.end(),
                      [](const TraceOp& a, const TraceOp& b) {
                        return a.time_ms < b.time_ms;
                      })) {
    return Status::InvalidArgument("trace times must be non-decreasing");
  }
  return ops;
}

StatusOr<std::vector<TraceOp>> TraceReplayer::ParseFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open trace '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

TraceReplayer::TraceReplayer(std::vector<TraceOp> trace,
                             fs::ReadOptimizedFs* fs)
    : trace_(std::move(trace)), fs_(fs) {
  assert(fs_ != nullptr);
}

fs::FileId TraceReplayer::FileFor(const std::string& key,
                                  uint64_t size_hint) {
  auto it = files_.find(key);
  if (it != files_.end()) {
    // Recreate dropped slots on re-touch.
    if (!fs_->file(it->second).exists) fs_->Recreate(it->second);
    return it->second;
  }
  const fs::FileId id = fs_->Create(std::max<uint64_t>(size_hint, 1));
  files_[key] = id;
  return id;
}

sim::TimeMs TraceReplayer::Execute(const TraceOp& op, sim::TimeMs now,
                                   TraceReplayStats* stats) {
  const fs::FileId id = FileFor(op.file_key, op.bytes);
  sim::TimeMs done = now;
  if (op.op == "create" || op.op == "extend") {
    const uint64_t before = fs_->file(id).logical_bytes;
    const Status status = fs_->Extend(id, op.bytes, now, &done);
    stats->bytes_written += fs_->file(id).logical_bytes - before;
    if (status.IsResourceExhausted()) ++stats->failed_allocations;
  } else if (op.op == "read" || op.op == "write") {
    const uint64_t logical = fs_->file(id).logical_bytes;
    uint64_t offset = op.offset;
    if (offset == UINT64_MAX) {
      uint64_t& cursor = cursors_[id];
      if (cursor >= logical) cursor = 0;
      offset = cursor;
      cursor += op.bytes;
    }
    if (logical > offset) {
      const uint64_t moved = std::min(op.bytes, logical - offset);
      if (op.op == "read") {
        done = fs_->Read(id, offset, op.bytes, now);
        stats->bytes_read += moved;
      } else {
        done = fs_->Write(id, offset, op.bytes, now);
        stats->bytes_written += moved;
      }
    }
  } else if (op.op == "truncate") {
    fs_->Truncate(id, op.bytes);
  } else if (op.op == "delete") {
    fs_->Delete(id);
  }
  ++stats->ops;
  stats->total_latency_ms += done - now;
  stats->makespan_ms = std::max(stats->makespan_ms, done);
  return done;
}

TraceReplayStats TraceReplayer::ReplayOpenLoop(sim::EventQueue* queue) {
  TraceReplayStats stats;
  for (const TraceOp& op : trace_) {
    queue->Schedule(op.time_ms, [this, &op, &stats, queue] {
      Execute(op, queue->now(), &stats);
    });
  }
  queue->Run();
  return stats;
}

TraceReplayStats TraceReplayer::ReplayClosedLoop(sim::EventQueue* queue) {
  TraceReplayStats stats;
  sim::TimeMs prev_completion = 0;
  sim::TimeMs prev_recorded = trace_.empty() ? 0 : trace_.front().time_ms;
  for (const TraceOp& op : trace_) {
    const double think = op.time_ms - prev_recorded;
    prev_recorded = op.time_ms;
    const sim::TimeMs issue = std::max(prev_completion + think, 0.0);
    // Drive the clock forward so completion-time accounting is coherent.
    queue->Schedule(issue, [] {});
    queue->Run();
    prev_completion = Execute(op, issue, &stats);
  }
  return stats;
}

}  // namespace rofs::workload
