#ifndef ROFS_WORKLOAD_FILE_TYPE_H_
#define ROFS_WORKLOAD_FILE_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "workload/arrivals.h"

namespace rofs::workload {

/// How a file type addresses its files.
enum class AccessPattern {
  /// Reads/writes advance a per-file cursor in rw-sized bursts, wrapping at
  /// the end of the file (the SC "large contiguous bursts", TS activity).
  kSequentialBurst,
  /// Each read/write picks a uniformly random rw-aligned offset (the TP
  /// relations' random page traffic).
  kRandom,
};

/// Operations a user event may perform. Deallocation splits into truncate
/// and delete by the file type's delete ratio (Table 2).
enum class OpKind { kRead, kWrite, kExtend, kTruncate, kDelete };

std::string OpKindToString(OpKind op);

/// One file type of a simulated workload: every parameter of the paper's
/// Table 2, plus the access pattern. Ratios are fractions in [0,1];
/// read + write + extend <= 1 and the remainder is the deallocate ratio.
struct FileTypeSpec {
  std::string name;

  /// How many files of this type should be created.
  uint32_t num_files = 1;
  /// How many parallel events (user streams) access this file type.
  uint32_t num_users = 1;
  /// Mean milliseconds between successive requests from a single user
  /// (exponentially distributed think time added after completion).
  double process_time_ms = 100.0;
  /// Milliseconds between requests from different users; initial start
  /// times are uniform in [0, num_users * hit_frequency_ms].
  double hit_frequency_ms = 100.0;

  /// Mean / standard deviation of bytes per read or write operation.
  uint64_t rw_bytes_mean = 8 * 1024;
  uint64_t rw_bytes_dev = 0;
  /// For extent based systems, the preferred (mean) extent size.
  uint64_t alloc_size_bytes = 8 * 1024;
  /// Mean / deviation of bytes added by an extend operation. A mean of 0
  /// means "use the read/write size" (an extend is a write past EOF).
  uint64_t extend_bytes_mean = 0;
  uint64_t extend_bytes_dev = 0;
  /// Bytes deallocated by a truncate request.
  uint64_t truncate_bytes = 8 * 1024;
  /// Mean / deviation of the file size at initialization time (uniform in
  /// [mean - dev, mean + dev]).
  uint64_t initial_bytes_mean = 8 * 1024;
  uint64_t initial_bytes_dev = 0;

  double read_ratio = 0.6;
  double write_ratio = 0.2;
  double extend_ratio = 0.1;
  /// Of the deallocate operations, the fraction that delete the whole file
  /// (the rest truncate by truncate_bytes).
  double delete_ratio = 0.0;

  AccessPattern access = AccessPattern::kSequentialBurst;

  double deallocate_ratio() const {
    return 1.0 - read_ratio - write_ratio - extend_ratio;
  }

  Status Validate() const;

  /// Initial file size: uniform in [mean - dev, mean + dev].
  uint64_t DrawInitialBytes(Rng& rng) const;

  /// Transfer size: normal(mean, dev) clamped to at least one byte.
  uint64_t DrawRwBytes(Rng& rng) const;

  /// Extend size: normal(extend mean, dev), falling back to the rw size
  /// when no extend size is configured.
  uint64_t DrawExtendBytes(Rng& rng) const;

  /// Draws an operation from the full mix.
  OpKind DrawOp(Rng& rng) const;

  /// Draws from the allocation-test mix: only extend / truncate / delete
  /// (create happens implicitly when a deleted file is re-created), with
  /// the ratios renormalized (paper section 3).
  OpKind DrawAllocOp(Rng& rng) const;

  /// Draws from the sequential-test mix: whole-file reads and writes only,
  /// renormalized (paper section 3).
  OpKind DrawSequentialOp(Rng& rng) const;

  /// Splits a deallocate into delete vs truncate.
  OpKind DrawDeallocate(Rng& rng) const;
};

/// A named set of file types (the TS / TP / SC workloads of section 2.2).
struct WorkloadSpec {
  std::string name;
  std::vector<FileTypeSpec> types;

  /// Arrival model for the performance tests (`[workload] arrivals =`).
  /// The default, closed, is the paper's think-time loop and leaves every
  /// RNG draw exactly where the seed simulator put it.
  ArrivalSpec arrivals;
  /// Zipf file-popularity skew for file picks (`[workload] zipf_theta =`);
  /// 0 keeps the uniform pick (and its RNG stream) untouched.
  double zipf_theta = 0.0;

  Status Validate() const;

  /// Expected bytes of all files at initialization.
  uint64_t TotalInitialBytes() const;
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_FILE_TYPE_H_
