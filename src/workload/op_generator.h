#ifndef ROFS_WORKLOAD_OP_GENERATOR_H_
#define ROFS_WORKLOAD_OP_GENERATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fs/read_optimized_fs.h"
#include "obs/latency.h"
#include "sim/event_queue.h"
#include "sim/timer_wheel.h"
#include "util/histogram.h"
#include "util/random.h"
#include "workload/file_type.h"
#include "workload/user_table.h"

namespace rofs::workload {

/// Which operation mix the generator draws from (paper section 3).
enum class OpMode {
  /// The full Table 2 mix: the application performance test.
  kApplication,
  /// Only extend / truncate / delete / create, renormalized: the
  /// allocation test.
  kAllocation,
  /// Allocation mix with deallocations partly converted to extends, used
  /// to drive utilization up to the measurement band while still aging the
  /// layout with churn.
  kFill,
  /// Whole-file reads and writes only: the sequential performance test.
  kSequential,
};

/// One executed operation, reported through OpGenerator::on_op for
/// tracing and per-type statistics.
struct OpRecord {
  sim::TimeMs issued;
  sim::TimeMs completed;
  size_t type_index;
  OpKind op;
  fs::FileId file;
  uint64_t bytes;
};

/// Per-(file type, op kind) accumulators.
struct OpStats {
  uint64_t count = 0;
  uint64_t bytes = 0;
  Histogram latency_ms;
};

struct OpGeneratorOptions {
  OpMode mode = OpMode::kApplication;
  /// Extends issued above this space utilization are converted into
  /// truncates (paper section 2.2, the upper bound M).
  double upper_bound_util = 1.0;
  uint64_t seed = 1;
  /// Issue operations through the fs async API and account for them in
  /// completion callbacks. Required when the disk runs a reordering
  /// scheduler (completion times are unknowable at issue); the default
  /// sync path is kept for FCFS, where it reproduces the seed simulator
  /// byte for byte. The async path draws from the RNG in exactly the
  /// sync path's order at issue time, so the operation streams match.
  bool async = false;
  /// Keep idle users in a hierarchical timer wheel (one 32-byte pooled
  /// node each) instead of the event heap (a 16-byte heap entry plus a
  /// 48-byte callback slot each): the memory-lean path for 10^5-10^6
  /// user configs. Think-time expiries fire at their exact deadlines in
  /// (deadline, FIFO) order through a pump event, so the operation
  /// stream matches heap mode (see DESIGN.md §11).
  bool timer_wheel = false;
  /// Wheel tick granularity; buckets storage only, never firing times.
  double wheel_tick_ms = 1.0;
};

/// Drives a workload against a file system inside an event queue: creates
/// the initial files, schedules one event stream per user, and executes
/// operations drawn from the active mix, rescheduling each stream at
/// completion + Exp(process_time).
class OpGenerator {
 public:
  OpGenerator(const WorkloadSpec* workload, fs::ReadOptimizedFs* fs,
              sim::EventQueue* queue, OpGeneratorOptions options);

  /// Phase 2 of initialization: creates every file with a size drawn from
  /// its type's initial distribution. Returns the first allocation
  /// failure, if any (the disk filled during initialization).
  Status CreateInitialFiles();

  /// Phase 1: schedules the user event streams with start times uniform in
  /// [0, num_users * hit_frequency].
  void ScheduleUserStreams();

  void set_mode(OpMode mode) { options_.mode = mode; }
  OpMode mode() const { return options_.mode; }
  void set_upper_bound_util(double u) { options_.upper_bound_util = u; }

  uint64_t ops_executed() const { return ops_executed_; }
  uint64_t disk_full_count() const { return disk_full_count_; }
  bool hit_disk_full() const { return disk_full_count_ > 0; }
  const Histogram& op_latency_ms() const { return op_latency_ms_; }

  /// Accumulated per-(type, op) statistics since the last ResetStats().
  const OpStats& stats_for(size_t type_index, OpKind op) const {
    return op_stats_[type_index][static_cast<size_t>(op)];
  }

  /// Attaches per-op latency attribution (null detaches): the generator
  /// opens a ledger per op at issue and folds it against the measured
  /// latency at completion. Attach to the fs and disk system as well so
  /// their I/O charges the right phases.
  void set_attribution(obs::OpAttribution* attr) { attr_ = attr; }

  /// Flushes the file system's buffered write-back pages at `now` — the
  /// driver calls this when its measured run ends so deferred writes land
  /// inside the window rather than silently vanishing with the run. A
  /// no-op unless write-back buffering is enabled.
  void FlushWriteBack(sim::TimeMs now) { fs_->FlushAll(now); }

  /// Formatted per-type, per-op table (count, bytes, latency mean/p99).
  std::string StatsReport() const;

  void ResetStats();

  const std::vector<fs::FileId>& files_of_type(size_t t) const {
    return files_by_type_[t];
  }

  /// The think-time wheel (null in heap mode) and the per-user table
  /// (empty in heap mode), for capacity metrics and tests.
  const sim::TimerWheel* wheel() const { return wheel_.get(); }
  const UserTable& users() const { return users_; }

  /// Switches the generator to open-loop injection: operations arrive at
  /// times drawn from `spec` regardless of earlier completions, so load
  /// past saturation queues up instead of self-throttling. The closed
  /// user streams stop (their in-flight think-time events become no-ops);
  /// each arrival picks a type weighted by its user population and then
  /// draws the op exactly like a closed-loop event. Idempotent: a second
  /// call (e.g. the sequential half of a performance pair) keeps the
  /// already-running arrival chain.
  void StartOpenLoop(const ArrivalSpec& spec);
  bool open_loop() const { return arrivals_ != nullptr; }

  /// Open-loop accounting: arrivals injected, operations whose completion
  /// has been reached, and the peak number in flight (the pending-op
  /// queue depth). All zero in closed-loop mode.
  uint64_t open_offered() const { return open_offered_; }
  uint64_t open_completed() const { return open_completed_; }
  uint64_t open_pending_peak() const { return open_pending_peak_; }

  /// Invoked on the first allocation failure of each operation (allocation
  /// tests use this to stop the simulation).
  std::function<void()> on_disk_full;

  /// Invoked with the logical bytes a completed operation moved and its
  /// completion time (throughput accounting).
  std::function<void(uint64_t bytes, sim::TimeMs completion)> on_bytes_moved;

  /// Invoked once per executed operation (tracing): at issue time in sync
  /// mode, at completion in async mode. The record carries both times.
  std::function<void(const OpRecord&)> on_op;

 private:
  /// Sentinel uid for heap mode, where users carry no identity.
  static constexpr uint32_t kNoUser = 0xffffffffu;
  /// Sentinel uid for open-loop arrivals: the event executes one op but
  /// never reschedules a user stream.
  static constexpr uint32_t kOpenLoop = 0xfffffffeu;

  void RunUserEvent(size_t type_index, uint32_t uid);
  /// Injects one open-loop arrival and schedules the next.
  void RunArrival();
  void ScheduleNextArrival();
  /// Completion-side accounting for an open-loop op.
  void OnOpenOpComplete();

  /// Schedules the user's next event at `next`: a heap event in heap
  /// mode, a wheel entry (plus pump re-arm) in wheel mode.
  void ScheduleNext(size_t type_index, uint32_t uid, sim::TimeMs next);
  /// Ensures a pump event is outstanding at or before the wheel's
  /// earliest deadline.
  void ArmPump();
  /// Pump: fires every wheel entry due at now, in (deadline, FIFO) order.
  void PumpWheel();

  /// Async-mode tail of RunUserEvent: performs the op's issue-time draws
  /// and side effects in exactly ExecuteOp's order, then hands completion
  /// accounting to OnAsyncOpDone via the fs async API.
  void RunUserEventAsync(size_t type_index, uint32_t uid, fs::FileId id,
                         OpKind op, sim::TimeMs now);
  /// Allocation half of an async extend; reports the range to write.
  /// Returns true when there are bytes to write.
  bool PrepareExtendAsync(fs::FileId id, uint64_t bytes, uint64_t* offset,
                          uint64_t* size, uint64_t* bytes_moved);
  void OnAsyncOpDone(size_t type_index, uint32_t uid, OpKind op,
                     fs::FileId id, sim::TimeMs issued, uint64_t bytes_moved,
                     double think_ms, sim::TimeMs done);

  /// Executes one operation; returns its completion time and reports moved
  /// bytes through *bytes_moved.
  sim::TimeMs ExecuteOp(size_t type_index, fs::FileId id, OpKind op,
                        sim::TimeMs now, uint64_t* bytes_moved);

  sim::TimeMs DoExtend(const FileTypeSpec& type, fs::FileId id,
                       uint64_t bytes, sim::TimeMs now,
                       uint64_t* bytes_moved);

  OpKind DrawOpForMode(const FileTypeSpec& type);

  const WorkloadSpec* workload_;
  fs::ReadOptimizedFs* fs_;
  sim::EventQueue* queue_;
  OpGeneratorOptions options_;
  obs::OpAttribution* attr_ = nullptr;
  Rng rng_;
  std::vector<std::vector<fs::FileId>> files_by_type_;
  uint64_t ops_executed_ = 0;
  uint64_t disk_full_count_ = 0;
  Histogram op_latency_ms_;
  // op_stats_[type][op kind].
  std::vector<std::array<OpStats, 5>> op_stats_;

  // Open-loop mode (StartOpenLoop) only.
  std::unique_ptr<ArrivalProcess> arrivals_;
  /// Cumulative user counts per type: arrivals pick a type with
  /// probability proportional to its user population.
  std::vector<uint64_t> type_user_cum_;
  uint64_t total_users_ = 0;
  uint64_t open_offered_ = 0;
  uint64_t open_completed_ = 0;
  uint64_t open_pending_ = 0;
  uint64_t open_pending_peak_ = 0;

  // Zipf file picks (workload zipf_theta > 0) only; one picker per type.
  std::vector<ZipfPicker> zipf_;

  // Wheel mode (options_.timer_wheel) only.
  std::unique_ptr<sim::TimerWheel> wheel_;
  UserTable users_;
  sim::TimeMs pump_time_ = 0.0;  // Earliest outstanding pump; +inf if none.
  std::vector<sim::TimerEntry> due_;  // PumpWheel scratch.
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_OP_GENERATOR_H_
