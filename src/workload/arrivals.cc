#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/table.h"

namespace rofs::workload {

namespace {

std::string TrimWs(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Splits "name(a, b, ...)" into the name and numeric arguments.
Status SplitCall(const std::string& text, std::string* name,
                 std::vector<double>* args) {
  const size_t open = text.find('(');
  if (open == std::string::npos) {
    *name = TrimWs(text);
    return Status::OK();
  }
  if (text.back() != ')') {
    return Status::InvalidArgument("expected ')' in '" + text + "'");
  }
  *name = TrimWs(text.substr(0, open));
  std::string body = text.substr(open + 1, text.size() - open - 2);
  size_t start = 0;
  while (start <= body.size()) {
    size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string field = TrimWs(body.substr(start, comma - start));
    if (field.empty()) {
      return Status::InvalidArgument("empty argument in '" + text + "'");
    }
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size()) {
      return Status::InvalidArgument("bad number '" + field + "' in '" +
                                     text + "'");
    }
    args->push_back(v);
    start = comma + 1;
  }
  return Status::OK();
}

}  // namespace

std::string ArrivalSpec::Label() const {
  switch (kind) {
    case ArrivalKind::kClosed:
      return "closed";
    case ArrivalKind::kPoisson:
      return FormatString("poisson(%g)", rate_per_s);
    case ArrivalKind::kMmpp:
      return FormatString("mmpp(%g,%g,%g,%g)", rate_per_s, burst_ratio,
                          on_ms, off_ms);
    case ArrivalKind::kPareto:
      return FormatString("pareto(%g,%g)", rate_per_s, alpha);
  }
  return "closed";
}

Status ArrivalSpec::Validate() const {
  if (kind == ArrivalKind::kClosed) return Status::OK();
  if (!(rate_per_s > 0.0)) {
    return Status::InvalidArgument(
        "arrivals: open processes need a positive rate (ops/s)");
  }
  if (kind == ArrivalKind::kMmpp) {
    if (!(burst_ratio > 1.0)) {
      return Status::InvalidArgument(
          "arrivals: mmpp burst ratio must be > 1");
    }
    if (!(on_ms > 0.0) || !(off_ms > 0.0)) {
      return Status::InvalidArgument(
          "arrivals: mmpp on/off durations must be positive");
    }
  }
  if (kind == ArrivalKind::kPareto && !(alpha > 1.0)) {
    return Status::InvalidArgument(
        "arrivals: pareto alpha must be > 1 (finite mean gap)");
  }
  return Status::OK();
}

StatusOr<ArrivalSpec> ParseArrivalSpec(const std::string& text) {
  std::string name;
  std::vector<double> args;
  ROFS_RETURN_IF_ERROR(SplitCall(TrimWs(text), &name, &args));
  ArrivalSpec spec;
  if (name == "closed") {
    if (!args.empty()) {
      return Status::InvalidArgument("arrivals: closed takes no arguments");
    }
    return spec;
  }
  if (name == "poisson") {
    spec.kind = ArrivalKind::kPoisson;
    if (args.size() != 1) {
      return Status::InvalidArgument("arrivals: expected poisson(RATE)");
    }
    spec.rate_per_s = args[0];
  } else if (name == "mmpp") {
    spec.kind = ArrivalKind::kMmpp;
    if (args.size() != 1 && args.size() != 4) {
      return Status::InvalidArgument(
          "arrivals: expected mmpp(RATE) or "
          "mmpp(RATE, BURST_RATIO, ON_MS, OFF_MS)");
    }
    spec.rate_per_s = args[0];
    if (args.size() == 4) {
      spec.burst_ratio = args[1];
      spec.on_ms = args[2];
      spec.off_ms = args[3];
    }
  } else if (name == "pareto") {
    spec.kind = ArrivalKind::kPareto;
    if (args.size() != 1 && args.size() != 2) {
      return Status::InvalidArgument(
          "arrivals: expected pareto(RATE) or pareto(RATE, ALPHA)");
    }
    spec.rate_per_s = args[0];
    if (args.size() == 2) spec.alpha = args[1];
  } else {
    return Status::InvalidArgument(
        "arrivals: unknown process '" + name +
        "' (closed|poisson|mmpp|pareto)");
  }
  ROFS_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec) : spec_(spec) {
  mean_gap_ms_ = spec_.rate_per_s > 0.0 ? 1000.0 / spec_.rate_per_s : 0.0;
  if (spec_.kind == ArrivalKind::kMmpp) {
    // Split the long-run rate across the two states: with duty cycle
    // d = on / (on + off) and rate_on = burst_ratio * rate_off,
    //   rate = d * rate_on + (1 - d) * rate_off.
    const double duty = spec_.on_ms / (spec_.on_ms + spec_.off_ms);
    const double rate_per_ms = spec_.rate_per_s / 1000.0;
    rate_off_per_ms_ =
        rate_per_ms / (duty * spec_.burst_ratio + (1.0 - duty));
    rate_on_per_ms_ = spec_.burst_ratio * rate_off_per_ms_;
  } else if (spec_.kind == ArrivalKind::kPareto) {
    pareto_scale_ms_ = mean_gap_ms_ * (spec_.alpha - 1.0) / spec_.alpha;
  }
}

double ArrivalProcess::NextGapMs(Rng& rng) {
  switch (spec_.kind) {
    case ArrivalKind::kClosed:
      return 0.0;  // Closed specs never construct a process.
    case ArrivalKind::kPoisson:
      return rng.Exponential(mean_gap_ms_);
    case ArrivalKind::kMmpp: {
      // Exponential thinning across state boundaries: draw an arrival in
      // the current state; if it lands past the state's remaining life,
      // consume that life, flip states, and redraw (memoryless).
      if (!state_primed_) {
        state_primed_ = true;
        state_left_ms_ = rng.Exponential(spec_.off_ms);
      }
      double gap = 0.0;
      while (true) {
        const double rate = on_ ? rate_on_per_ms_ : rate_off_per_ms_;
        const double candidate = rng.Exponential(1.0 / rate);
        if (candidate <= state_left_ms_) {
          state_left_ms_ -= candidate;
          return gap + candidate;
        }
        gap += state_left_ms_;
        on_ = !on_;
        state_left_ms_ = rng.Exponential(on_ ? spec_.on_ms : spec_.off_ms);
      }
    }
    case ArrivalKind::kPareto: {
      // Inverse CDF with u in (0, 1]; x_m * u^(-1/alpha).
      const double u = 1.0 - rng.NextDouble();
      return pareto_scale_ms_ * std::pow(u, -1.0 / spec_.alpha);
    }
  }
  return 0.0;
}

ZipfPicker::ZipfPicker(size_t n, double theta) : theta_(theta) {
  cdf_.reserve(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_.push_back(sum);
  }
  for (double& c : cdf_) c /= sum;
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

size_t ZipfPicker::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

}  // namespace rofs::workload
