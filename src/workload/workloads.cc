#include "workload/workloads.h"

#include <cassert>

#include "util/units.h"

namespace rofs::workload {

std::string WorkloadKindToString(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTimeSharing:
      return "TS";
    case WorkloadKind::kTransactionProcessing:
      return "TP";
    case WorkloadKind::kSuperComputer:
      return "SC";
  }
  return "unknown";
}

WorkloadSpec MakeTimeSharing() {
  WorkloadSpec w;
  w.name = "TS";

  FileTypeSpec small;
  small.name = "ts-small";
  // "An abundance of small files": they dominate both the request stream
  // and the occupied space.
  small.num_files = 190'000;  // ~1.5 GB of 8K files at initialization.
  small.num_users = 20;
  small.process_time_ms = 50;
  small.hit_frequency_ms = 50;
  small.rw_bytes_mean = KiB(8);
  small.rw_bytes_dev = KiB(2);
  small.alloc_size_bytes = KiB(1);
  small.extend_bytes_mean = KiB(4);
  small.extend_bytes_dev = KiB(1);
  small.truncate_bytes = KiB(4);
  small.initial_bytes_mean = KB(8);
  small.initial_bytes_dev = 0;
  // Created, read, and deleted: most deallocations remove the whole file.
  small.read_ratio = 0.60;
  small.write_ratio = 0.10;
  small.extend_ratio = 0.15;
  small.delete_ratio = 0.90;
  small.access = AccessPattern::kSequentialBurst;
  w.types.push_back(small);

  FileTypeSpec large;
  large.name = "ts-large";
  large.num_files = 4'500;  // ~0.43 GB of 96K files at initialization
                          // (sized so the buddy policy's power-of-two
                          // overshoot still fits the array).
  // Small files get two thirds of all requests: 20 users at 50 ms vs
  // 20 users at 100 ms gives a 2:1 request rate.
  large.num_users = 20;
  large.process_time_ms = 100;
  large.hit_frequency_ms = 100;
  large.rw_bytes_mean = KiB(8);
  large.rw_bytes_dev = KiB(2);
  large.alloc_size_bytes = KiB(8);
  large.extend_bytes_mean = KiB(8);
  large.extend_bytes_dev = KiB(2);
  large.truncate_bytes = KiB(16);
  large.initial_bytes_mean = KB(96);
  large.initial_bytes_dev = KB(32);
  // 60% reads, 15% writes, 15% extends, 5% deletes, 5% truncates.
  large.read_ratio = 0.60;
  large.write_ratio = 0.15;
  large.extend_ratio = 0.15;
  large.delete_ratio = 0.50;
  large.access = AccessPattern::kSequentialBurst;
  w.types.push_back(large);
  return w;
}

WorkloadSpec MakeTransactionProcessing() {
  WorkloadSpec w;
  w.name = "TP";

  FileTypeSpec rel;
  rel.name = "tp-relation";
  rel.num_files = 10;
  rel.num_users = 50;
  rel.process_time_ms = 20;
  rel.hit_frequency_ms = 20;
  rel.rw_bytes_mean = KiB(8);
  rel.rw_bytes_dev = 0;
  rel.alloc_size_bytes = MiB(16);
  rel.extend_bytes_mean = MiB(1);
  rel.extend_bytes_dev = KiB(100);
  rel.truncate_bytes = KiB(256);
  rel.initial_bytes_mean = MB(210);
  rel.initial_bytes_dev = 0;
  // Randomly read 60%, written 30%, extended 7%, truncated 3%.
  rel.read_ratio = 0.60;
  rel.write_ratio = 0.30;
  rel.extend_ratio = 0.07;
  rel.delete_ratio = 0.0;
  rel.access = AccessPattern::kRandom;
  w.types.push_back(rel);

  FileTypeSpec applog;
  applog.name = "tp-applog";
  applog.num_files = 5;
  applog.num_users = 5;
  applog.process_time_ms = 50;
  applog.hit_frequency_ms = 50;
  applog.rw_bytes_mean = KiB(4);
  applog.rw_bytes_dev = KiB(1);
  applog.alloc_size_bytes = KiB(512);
  applog.extend_bytes_mean = KiB(4);
  applog.extend_bytes_dev = KiB(1);
  applog.truncate_bytes = KiB(512);
  applog.initial_bytes_mean = MB(5);
  applog.initial_bytes_dev = MB(1);
  // Mostly extends (93%) with periodic reads (2%) and rare truncates (5%).
  applog.read_ratio = 0.02;
  applog.write_ratio = 0.0;
  applog.extend_ratio = 0.93;
  applog.delete_ratio = 0.0;
  applog.access = AccessPattern::kSequentialBurst;
  w.types.push_back(applog);

  FileTypeSpec syslog;
  syslog.name = "tp-syslog";
  syslog.num_files = 1;
  syslog.num_users = 4;
  syslog.process_time_ms = 10;
  syslog.hit_frequency_ms = 10;
  syslog.rw_bytes_mean = KiB(4);
  syslog.rw_bytes_dev = KiB(1);
  syslog.alloc_size_bytes = KiB(512);
  syslog.extend_bytes_mean = KiB(4);
  syslog.extend_bytes_dev = KiB(1);
  syslog.truncate_bytes = MiB(1);
  syslog.initial_bytes_mean = MB(10);
  syslog.initial_bytes_dev = 0;
  // 94% extends, 5% reads (periodic aborts), 1% truncates.
  syslog.read_ratio = 0.05;
  syslog.write_ratio = 0.0;
  syslog.extend_ratio = 0.94;
  syslog.delete_ratio = 0.0;
  syslog.access = AccessPattern::kSequentialBurst;
  w.types.push_back(syslog);
  return w;
}

WorkloadSpec MakeSuperComputer() {
  WorkloadSpec w;
  w.name = "SC";

  FileTypeSpec large;
  large.name = "sc-large";
  large.num_files = 1;
  large.num_users = 4;
  large.process_time_ms = 100;
  large.hit_frequency_ms = 100;
  large.rw_bytes_mean = KiB(512);
  large.rw_bytes_dev = KiB(64);
  large.alloc_size_bytes = MiB(16);
  large.extend_bytes_mean = MiB(8);
  large.extend_bytes_dev = MiB(1);
  large.truncate_bytes = MiB(2);
  large.initial_bytes_mean = MB(500);
  large.initial_bytes_dev = 0;
  // 60% reads, 30% writes, 8% extends, 2% truncates.
  large.read_ratio = 0.60;
  large.write_ratio = 0.30;
  large.extend_ratio = 0.08;
  large.delete_ratio = 0.0;
  large.access = AccessPattern::kSequentialBurst;
  w.types.push_back(large);

  FileTypeSpec medium;
  medium.name = "sc-medium";
  medium.num_files = 15;
  medium.num_users = 8;
  medium.process_time_ms = 100;
  medium.hit_frequency_ms = 100;
  medium.rw_bytes_mean = KiB(512);
  medium.rw_bytes_dev = KiB(64);
  medium.alloc_size_bytes = MiB(1);
  medium.extend_bytes_mean = MiB(4);
  medium.extend_bytes_dev = KiB(512);
  medium.truncate_bytes = MiB(1);
  medium.initial_bytes_mean = MB(100);
  medium.initial_bytes_dev = MB(10);
  medium.read_ratio = 0.60;
  medium.write_ratio = 0.30;
  medium.extend_ratio = 0.08;
  medium.delete_ratio = 0.0;
  medium.access = AccessPattern::kSequentialBurst;
  w.types.push_back(medium);

  FileTypeSpec small;
  small.name = "sc-small";
  small.num_files = 10;
  small.num_users = 4;
  small.process_time_ms = 50;
  small.hit_frequency_ms = 50;
  small.rw_bytes_mean = KiB(32);
  small.rw_bytes_dev = KiB(8);
  small.alloc_size_bytes = KiB(512);
  small.extend_bytes_mean = KiB(512);
  small.extend_bytes_dev = KiB(64);
  small.truncate_bytes = KiB(512);
  small.initial_bytes_mean = MB(10);
  small.initial_bytes_dev = MB(2);
  // Periodically deleted and recreated as well as read and written.
  small.read_ratio = 0.60;
  small.write_ratio = 0.30;
  small.extend_ratio = 0.05;
  small.delete_ratio = 1.0;
  small.access = AccessPattern::kSequentialBurst;
  w.types.push_back(small);
  return w;
}

WorkloadSpec MakeWorkload(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTimeSharing:
      return MakeTimeSharing();
    case WorkloadKind::kTransactionProcessing:
      return MakeTransactionProcessing();
    case WorkloadKind::kSuperComputer:
      return MakeSuperComputer();
  }
  assert(false);
  return {};
}

std::vector<WorkloadKind> AllWorkloadKinds() {
  return {WorkloadKind::kSuperComputer,
          WorkloadKind::kTransactionProcessing,
          WorkloadKind::kTimeSharing};
}

std::vector<uint64_t> ExtentRangeMeansBytes(WorkloadKind kind,
                                            int num_ranges) {
  assert(num_ranges >= 1 && num_ranges <= 5);
  if (kind == WorkloadKind::kTimeSharing) {
    switch (num_ranges) {
      case 1:
        return {KiB(4)};
      case 2:
        return {KiB(1), KiB(8)};
      case 3:
        return {KiB(1), KiB(8), MiB(1)};
      case 4:
        return {KiB(1), KiB(4), KiB(8), MiB(1)};
      default:
        return {KiB(1), KiB(4), KiB(8), KiB(16), MiB(1)};
    }
  }
  switch (num_ranges) {
    case 1:
      return {KiB(512)};
    case 2:
      return {KiB(512), MiB(16)};
    case 3:
      return {KiB(512), MiB(1), MiB(16)};
    case 4:
      return {KiB(512), MiB(1), MiB(10), MiB(16)};
    default:
      return {KiB(10), KiB(512), MiB(1), MiB(10), MiB(16)};
  }
}

uint64_t FixedBlockBytesFor(WorkloadKind kind) {
  return kind == WorkloadKind::kTimeSharing ? KiB(4) : KiB(16);
}

}  // namespace rofs::workload
