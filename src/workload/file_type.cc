#include "workload/file_type.h"

#include <algorithm>
#include <cmath>

namespace rofs::workload {

std::string OpKindToString(OpKind op) {
  switch (op) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kExtend:
      return "extend";
    case OpKind::kTruncate:
      return "truncate";
    case OpKind::kDelete:
      return "delete";
  }
  return "unknown";
}

Status FileTypeSpec::Validate() const {
  if (num_files == 0) {
    return Status::InvalidArgument(name + ": num_files must be > 0");
  }
  if (num_users == 0) {
    return Status::InvalidArgument(name + ": num_users must be > 0");
  }
  if (process_time_ms <= 0 || hit_frequency_ms <= 0) {
    return Status::InvalidArgument(name + ": times must be positive");
  }
  if (read_ratio < 0 || write_ratio < 0 || extend_ratio < 0 ||
      read_ratio + write_ratio + extend_ratio > 1.0 + 1e-9) {
    return Status::InvalidArgument(name + ": op ratios must be fractions "
                                          "summing to at most 1");
  }
  if (delete_ratio < 0 || delete_ratio > 1.0) {
    return Status::InvalidArgument(name + ": delete_ratio must be in [0,1]");
  }
  if (rw_bytes_mean == 0) {
    return Status::InvalidArgument(name + ": rw_bytes_mean must be > 0");
  }
  if (initial_bytes_dev > initial_bytes_mean) {
    return Status::InvalidArgument(
        name + ": initial deviation exceeds the mean");
  }
  return Status::OK();
}

uint64_t FileTypeSpec::DrawInitialBytes(Rng& rng) const {
  const uint64_t lo = initial_bytes_mean - initial_bytes_dev;
  const uint64_t hi = initial_bytes_mean + initial_bytes_dev;
  return std::max<uint64_t>(1, rng.UniformInt(lo, hi));
}

uint64_t FileTypeSpec::DrawRwBytes(Rng& rng) const {
  if (rw_bytes_dev == 0) return rw_bytes_mean;
  const double v = rng.Normal(static_cast<double>(rw_bytes_mean),
                              static_cast<double>(rw_bytes_dev));
  const long long rounded = std::llround(v);
  return rounded < 1 ? 1 : static_cast<uint64_t>(rounded);
}

uint64_t FileTypeSpec::DrawExtendBytes(Rng& rng) const {
  if (extend_bytes_mean == 0) return DrawRwBytes(rng);
  if (extend_bytes_dev == 0) return extend_bytes_mean;
  const double v = rng.Normal(static_cast<double>(extend_bytes_mean),
                              static_cast<double>(extend_bytes_dev));
  const long long rounded = std::llround(v);
  return rounded < 1 ? 1 : static_cast<uint64_t>(rounded);
}

OpKind FileTypeSpec::DrawDeallocate(Rng& rng) const {
  return rng.Bernoulli(delete_ratio) ? OpKind::kDelete : OpKind::kTruncate;
}

OpKind FileTypeSpec::DrawOp(Rng& rng) const {
  const double u = rng.NextDouble();
  if (u < read_ratio) return OpKind::kRead;
  if (u < read_ratio + write_ratio) return OpKind::kWrite;
  if (u < read_ratio + write_ratio + extend_ratio) return OpKind::kExtend;
  return DrawDeallocate(rng);
}

OpKind FileTypeSpec::DrawAllocOp(Rng& rng) const {
  const double dealloc = deallocate_ratio();
  const double total = extend_ratio + dealloc;
  if (total <= 0.0) return OpKind::kExtend;  // Degenerate type: only grow.
  const double u = rng.NextDouble() * total;
  if (u < extend_ratio) return OpKind::kExtend;
  return DrawDeallocate(rng);
}

OpKind FileTypeSpec::DrawSequentialOp(Rng& rng) const {
  const double total = read_ratio + write_ratio;
  if (total <= 0.0) return OpKind::kRead;
  return rng.NextDouble() * total < read_ratio ? OpKind::kRead
                                               : OpKind::kWrite;
}

Status WorkloadSpec::Validate() const {
  if (types.empty()) {
    return Status::InvalidArgument(name + ": workload has no file types");
  }
  for (const FileTypeSpec& t : types) {
    ROFS_RETURN_IF_ERROR(t.Validate());
  }
  ROFS_RETURN_IF_ERROR(arrivals.Validate());
  if (zipf_theta < 0.0) {
    return Status::InvalidArgument(name + ": zipf_theta must be >= 0");
  }
  return Status::OK();
}

uint64_t WorkloadSpec::TotalInitialBytes() const {
  uint64_t total = 0;
  for (const FileTypeSpec& t : types) {
    total += static_cast<uint64_t>(t.num_files) * t.initial_bytes_mean;
  }
  return total;
}

}  // namespace rofs::workload
