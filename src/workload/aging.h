#ifndef ROFS_WORKLOAD_AGING_H_
#define ROFS_WORKLOAD_AGING_H_

#include <cstdint>
#include <vector>

#include "fs/read_optimized_fs.h"
#include "util/random.h"
#include "util/statusor.h"
#include "workload/file_type.h"

namespace rofs::workload {

/// Parameters of a long-horizon aging study (`[aging]` config section).
struct AgingOptions {
  uint64_t seed = 1;
  /// The churn holds space utilization near this fraction: below it the
  /// mix biases toward growth, above it toward shrinking, so the
  /// free-space map ages under delete/recreate pressure at a steady
  /// occupancy instead of marching to disk-full.
  double target_util = 0.50;
  /// Churn operations between successive read-bandwidth probes.
  uint64_t ops_per_round = 2000;
  /// Probe rounds; one point of the decay curve per round.
  int rounds = 40;
  /// Files probed per round (whole-file sequential reads, deterministic
  /// stride across the population).
  uint32_t probe_files = 32;

  Status Validate() const;
};

/// One point of the decay curve.
struct AgingRound {
  int round = 0;
  double utilization = 0;
  /// Probe read throughput as a fraction of the disk system's maximum
  /// sequential bandwidth — the figure-10 y-axis.
  double read_bw_frac = 0;
  double extents_per_file = 0;
  double internal_frag = 0;
  /// Cumulative allocator failures since the driver was constructed.
  uint64_t failed_allocs = 0;
};

/// Ages an allocator's free-space map to steady-state fragmentation with
/// create/delete churn, probing read bandwidth between rounds — the
/// Sears & van Ingen experiment on this simulator's policies. Runs
/// against a passive (queue-free) file system: churn executes with I/O
/// disabled, probes with I/O enabled at a monotonically advancing clock,
/// so the study needs no event queue and is trivially byte-identical for
/// any `--jobs` or `[sim] threads` setting.
class AgingDriver {
 public:
  /// The decision half of one churn step, drawn before execution. A
  /// recreate deletes the file and rewrites it at a freshly drawn size
  /// (the delete/recreate churn that fragments free space); extend and
  /// truncate push utilization toward the target from below and above.
  struct ChurnOp {
    enum class Kind { kRecreate, kExtend, kTruncate };
    Kind kind = Kind::kRecreate;
    size_t type_index = 0;
    uint32_t file_index = 0;
    uint64_t bytes = 0;
  };

  AgingDriver(const WorkloadSpec* workload, fs::ReadOptimizedFs* fs,
              AgingOptions options);

  /// Creates the workload's file population (interleaved random order,
  /// like OpGenerator) with I/O disabled. Returns the first allocation
  /// failure, if any.
  Status CreateInitialFiles();

  /// Draws the next churn decision without touching the file system —
  /// pure RNG + spec arithmetic, no allocation (the perf_noalloc gate
  /// loops this path).
  ChurnOp DrawChurnOp();

  /// Executes one drawn churn op.
  void Execute(const ChurnOp& op);

  /// ops_per_round churn steps followed by a read-bandwidth probe;
  /// appends and returns the new curve point.
  AgingRound RunRound();

  const std::vector<AgingRound>& rounds() const { return rounds_; }
  /// The read_bw_frac series, one value per completed round.
  const std::vector<double>& read_bw_series() const { return read_bw_; }

  /// First round of the steady window per stats::DetectSteadyWindow over
  /// the read-bandwidth series; -1 when the curve never settles.
  int DetectSteadyRound() const;

  uint64_t churn_ops() const { return churn_ops_; }

 private:
  const WorkloadSpec* workload_;
  fs::ReadOptimizedFs* fs_;
  AgingOptions options_;
  Rng rng_;
  std::vector<std::vector<fs::FileId>> files_by_type_;
  /// Cumulative file counts per type, for weighted type picks.
  std::vector<uint64_t> type_file_cum_;
  uint64_t total_files_ = 0;
  uint64_t churn_ops_ = 0;
  /// Adaptive multiplier on recreate sizes (integral controller toward
  /// target_util); see DrawChurnOp.
  double recreate_gain_ = 1.0;
  /// Monotonic probe clock (simulated ms); each probe read issues at the
  /// previous probe's completion so probes never queue behind each other.
  double probe_clock_ms_ = 0.0;
  std::vector<AgingRound> rounds_;
  std::vector<double> read_bw_;
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_AGING_H_
