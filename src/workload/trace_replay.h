#ifndef ROFS_WORKLOAD_TRACE_REPLAY_H_
#define ROFS_WORKLOAD_TRACE_REPLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fs/read_optimized_fs.h"
#include "sim/event_queue.h"
#include "util/statusor.h"

namespace rofs::workload {

/// One operation of a replayable trace.
struct TraceOp {
  sim::TimeMs time_ms = 0;
  /// read | write | extend | truncate | delete | create.
  std::string op;
  /// Caller-chosen file key; files are created on first touch.
  std::string file_key;
  uint64_t bytes = 0;
  /// Byte offset for read/write; UINT64_MAX means "sequential cursor".
  uint64_t offset = UINT64_MAX;
};

/// Replay statistics.
struct TraceReplayStats {
  uint64_t ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t failed_allocations = 0;
  /// Completion time of the last operation (simulated ms).
  sim::TimeMs makespan_ms = 0;
  /// Sum of per-op latencies (completion - issue).
  double total_latency_ms = 0;

  double MeanLatencyMs() const {
    return ops == 0 ? 0.0 : total_latency_ms / static_cast<double>(ops);
  }
};

/// Replays a recorded operation trace against a file system — the paper's
/// closing remark made runnable: "applying the allocation policies to
/// genuine workloads will yield a much more convincing argument"
/// (section 6). Traces come from real systems, from generators, or from
/// this simulator's own OpTrace CSV output.
///
/// Trace format (CSV, `#` comments allowed):
///   time_ms,op,file,bytes[,offset]
/// e.g.
///   0,create,dbfile,1048576
///   5.5,read,dbfile,8192,0
///   9,extend,dbfile,65536
///
/// Operations on an unknown file key implicitly create the file first.
class TraceReplayer {
 public:
  /// Parses trace text. Errors carry line numbers.
  static StatusOr<std::vector<TraceOp>> Parse(const std::string& text);

  /// Reads and parses a trace file.
  static StatusOr<std::vector<TraceOp>> ParseFile(const std::string& path);

  TraceReplayer(std::vector<TraceOp> trace, fs::ReadOptimizedFs* fs);

  /// Open-loop replay: each operation is issued at its recorded time
  /// (clamped to be non-decreasing) regardless of earlier completions —
  /// the disk queues absorb bursts exactly as recorded.
  TraceReplayStats ReplayOpenLoop(sim::EventQueue* queue);

  /// Closed-loop replay: each operation is issued when the previous one
  /// completes (inter-arrival gaps from the trace are preserved as think
  /// time). Measures the policy's end-to-end makespan for the work.
  TraceReplayStats ReplayClosedLoop(sim::EventQueue* queue);

  /// The file id bound to a trace key, if any (testing).
  const std::map<std::string, fs::FileId>& file_bindings() const {
    return files_;
  }

 private:
  fs::FileId FileFor(const std::string& key, uint64_t size_hint);
  /// Executes one op at `now`; returns its completion time.
  sim::TimeMs Execute(const TraceOp& op, sim::TimeMs now,
                      TraceReplayStats* stats);

  std::vector<TraceOp> trace_;
  fs::ReadOptimizedFs* fs_;
  std::map<std::string, fs::FileId> files_;
  std::map<fs::FileId, uint64_t> cursors_;
};

}  // namespace rofs::workload

#endif  // ROFS_WORKLOAD_TRACE_REPLAY_H_
