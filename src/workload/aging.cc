#include "workload/aging.h"

#include <algorithm>
#include <cassert>

#include "stats/steady.h"

namespace rofs::workload {

Status AgingOptions::Validate() const {
  if (seed == 0) {
    return Status::InvalidArgument("[aging] seed must be non-zero");
  }
  if (!(target_util > 0.0 && target_util < 1.0)) {
    return Status::InvalidArgument("[aging] target_util must be in (0, 1)");
  }
  if (ops_per_round == 0) {
    return Status::InvalidArgument("[aging] ops_per_round must be positive");
  }
  if (rounds < 1) {
    return Status::InvalidArgument("[aging] rounds must be >= 1");
  }
  if (probe_files == 0) {
    return Status::InvalidArgument("[aging] probe_files must be positive");
  }
  return Status::OK();
}

AgingDriver::AgingDriver(const WorkloadSpec* workload,
                         fs::ReadOptimizedFs* fs, AgingOptions options)
    : workload_(workload), fs_(fs), options_(options), rng_(options.seed) {
  assert(workload_ != nullptr && fs_ != nullptr);
  assert(fs_->disk() != nullptr);
  files_by_type_.resize(workload_->types.size());
  type_file_cum_.reserve(workload_->types.size());
  for (const FileTypeSpec& t : workload_->types) {
    total_files_ += t.num_files;
    type_file_cum_.push_back(total_files_);
  }
  rounds_.reserve(static_cast<size_t>(options_.rounds));
  read_bw_.reserve(static_cast<size_t>(options_.rounds));
}

Status AgingDriver::CreateInitialFiles() {
  fs_->set_io_enabled(false);
  // Same interleaving as OpGenerator::CreateInitialFiles: register every
  // file, then allocate in a shuffled order so types mingle on disk.
  struct Pending {
    size_t type;
    fs::FileId id;
  };
  std::vector<Pending> pending;
  pending.reserve(total_files_);
  for (size_t t = 0; t < workload_->types.size(); ++t) {
    const FileTypeSpec& type = workload_->types[t];
    files_by_type_[t].reserve(type.num_files);
    for (uint32_t i = 0; i < type.num_files; ++i) {
      const fs::FileId id = fs_->Create(type.alloc_size_bytes);
      files_by_type_[t].push_back(id);
      pending.push_back(Pending{t, id});
    }
  }
  for (size_t i = pending.size(); i > 1; --i) {
    std::swap(pending[i - 1], pending[rng_.UniformInt(0, i - 1)]);
  }
  for (const Pending& p : pending) {
    const FileTypeSpec& type = workload_->types[p.type];
    const uint64_t size = type.DrawInitialBytes(rng_);
    sim::TimeMs done = 0;
    const Status status = fs_->Extend(p.id, size, /*arrival=*/0.0, &done);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

AgingDriver::ChurnOp AgingDriver::DrawChurnOp() {
  ChurnOp op;
  // Type weighted by file population, file uniform within the type.
  op.type_index = 0;
  if (workload_->types.size() > 1) {
    const uint64_t f = rng_.UniformInt(0, total_files_ - 1);
    while (type_file_cum_[op.type_index] <= f) ++op.type_index;
  }
  const FileTypeSpec& type = workload_->types[op.type_index];
  op.file_index =
      static_cast<uint32_t>(rng_.UniformInt(0, type.num_files - 1));
  // Half the churn is delete/recreate (the fragmenting half); the other
  // half steers utilization toward the target. Recreate sizes carry an
  // adaptive gain nudged 10% toward the target per recreate (an integral
  // controller): without it, recreates keep resetting files to their
  // initial size and utilization never leaves its starting point no
  // matter how many extend/truncate nudges run between them, and a
  // memoryless target/util scale only reaches the geometric mean of the
  // two.
  const double util = fs_->SpaceUtilization();
  const bool grow = util < options_.target_util;
  if (rng_.Bernoulli(0.5)) {
    op.kind = ChurnOp::Kind::kRecreate;
    recreate_gain_ = std::clamp(
        recreate_gain_ * (grow ? 1.1 : 1.0 / 1.1), 1.0 / 16.0, 16.0);
    op.bytes = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(type.DrawInitialBytes(rng_)) *
               recreate_gain_));
  } else if (grow) {
    op.kind = ChurnOp::Kind::kExtend;
    op.bytes = type.DrawExtendBytes(rng_);
  } else {
    op.kind = ChurnOp::Kind::kTruncate;
    op.bytes = type.truncate_bytes;
  }
  return op;
}

void AgingDriver::Execute(const ChurnOp& op) {
  const fs::FileId id = files_by_type_[op.type_index][op.file_index];
  sim::TimeMs done = 0;
  switch (op.kind) {
    case ChurnOp::Kind::kRecreate:
      fs_->Delete(id);
      fs_->Recreate(id);
      (void)fs_->Extend(id, op.bytes, /*arrival=*/0.0, &done);
      break;
    case ChurnOp::Kind::kExtend:
      (void)fs_->Extend(id, op.bytes, /*arrival=*/0.0, &done);
      break;
    case ChurnOp::Kind::kTruncate:
      fs_->Truncate(id, op.bytes);
      break;
  }
  ++churn_ops_;
}

AgingRound AgingDriver::RunRound() {
  fs_->set_io_enabled(false);
  for (uint64_t i = 0; i < options_.ops_per_round; ++i) {
    Execute(DrawChurnOp());
  }

  // Probe: whole-file sequential reads over a deterministic stride of the
  // population, I/O enabled, each issued at the previous completion.
  fs_->set_io_enabled(true);
  const uint64_t stride =
      std::max<uint64_t>(1, total_files_ / options_.probe_files);
  uint64_t probe_bytes = 0;
  double probe_ms = 0.0;
  for (uint64_t n = 0; n < total_files_; n += stride) {
    // Map the flat index onto (type, file).
    size_t t = 0;
    while (type_file_cum_[t] <= n) ++t;
    const uint64_t base = t == 0 ? 0 : type_file_cum_[t - 1];
    const fs::FileId id = files_by_type_[t][n - base];
    const uint64_t logical = fs_->file(id).logical_bytes;
    if (!fs_->file(id).exists || logical == 0) continue;
    const sim::TimeMs done =
        fs_->Read(id, /*offset=*/0, logical, probe_clock_ms_);
    probe_ms += done - probe_clock_ms_;
    probe_bytes += logical;
    probe_clock_ms_ = done;
  }
  fs_->set_io_enabled(false);

  AgingRound round;
  round.round = static_cast<int>(rounds_.size());
  round.utilization = fs_->SpaceUtilization();
  const double max_bw = fs_->disk()->MaxSequentialBandwidthBytesPerMs();
  round.read_bw_frac =
      probe_ms > 0.0 && max_bw > 0.0
          ? (static_cast<double>(probe_bytes) / probe_ms) / max_bw
          : 0.0;
  round.extents_per_file = fs_->AverageExtentsPerFile();
  round.internal_frag = fs_->InternalFragmentation();
  round.failed_allocs = fs_->allocator().stats().failed_allocs;
  rounds_.push_back(round);
  read_bw_.push_back(round.read_bw_frac);
  return round;
}

int AgingDriver::DetectSteadyRound() const {
  return stats::DetectSteadyWindow(
      read_bw_, stats::SteadyBlockLength(read_bw_.size()));
}

}  // namespace rofs::workload
