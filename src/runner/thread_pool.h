#ifndef ROFS_RUNNER_THREAD_POOL_H_
#define ROFS_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rofs::runner {

/// Process-wide count of concurrent sweep-runner jobs, published by
/// SweepRunner when it resolves its pool size and read by the sharded
/// simulation engine to cap per-run worker threads at
/// hardware_concurrency / jobs (the oversubscription guard: `--jobs 8`
/// times `[sim] threads = 8` must not gang 64 runnable threads onto 8
/// cores). 1 until any sweep starts.
void SetActiveJobs(int jobs);
int ActiveJobs();

/// A fixed-size pool of worker threads draining a FIFO work queue.
///
/// Tasks are opaque `void()` callables; anything a task can throw must be
/// caught inside the task itself (SweepRunner wraps simulation runs so
/// exceptions become `Status` values rather than pool teardown).
///
/// Shutdown is graceful: already-queued tasks are drained, then every
/// worker is joined. Submitting after Shutdown() is a programming error.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least one).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Drains the queue and joins all workers. Idempotent; invoked by the
  /// destructor.
  void Shutdown();

  int num_threads() const { return num_threads_; }

  /// Tasks currently waiting in the queue (excludes running tasks).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  int num_threads_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rofs::runner

#endif  // ROFS_RUNNER_THREAD_POOL_H_
