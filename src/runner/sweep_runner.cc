#include "runner/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "runner/thread_pool.h"
#include "util/random.h"

namespace rofs::runner {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Shared between the pool task and the collector so a timed-out run can
/// be abandoned by the collector while the task finishes and fulfills the
/// promise into the void.
struct Slot {
  std::promise<RunResult> promise;
  std::atomic<bool> started{false};
  Clock::time_point started_at;  // Valid once `started` is true.
};

RunResult ExecuteSpec(const RunSpec& spec, size_t index, int max_attempts) {
  RunResult result;
  result.index = index;
  result.label = spec.label;
  RunContext ctx;
  ctx.seed = SplitSeed(spec.base_seed, spec.stream);
  ctx.index = index;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ctx.attempt = attempt;
    result.attempts = attempt;
    const Clock::time_point t0 = Clock::now();
    result.wall_start_ms =
        std::chrono::duration<double, std::milli>(t0.time_since_epoch())
            .count();
    Status status;
    std::vector<std::string> cells;
    try {
      StatusOr<std::vector<std::string>> out = spec.run(ctx);
      if (out.ok()) {
        cells = std::move(out).value();
      } else {
        status = out.status();
      }
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("run threw: ") + e.what());
    } catch (...) {
      status = Status::Internal("run threw a non-std::exception object");
    }
    result.wall_ms = MsSince(t0);
    result.status = status;
    if (status.ok()) {
      result.cells = std::move(cells);
      break;
    }
  }
  return result;
}

}  // namespace

std::vector<RunSpec> SweepRunner::ExpandReplicates(
    std::vector<RunSpec> specs, int replicates) {
  if (replicates <= 1) return specs;
  std::vector<RunSpec> expanded;
  expanded.reserve(specs.size() * static_cast<size_t>(replicates));
  for (RunSpec& spec : specs) {
    for (int r = 0; r < replicates; ++r) {
      RunSpec copy = spec;
      copy.stream = static_cast<uint64_t>(r);
      if (r > 0) copy.label += " [r" + std::to_string(r) + "]";
      expanded.push_back(std::move(copy));
    }
  }
  return expanded;
}

int SweepRunner::ResolveReplicates(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ROFS_REPLICATES");
      env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1;
}

int SweepRunner::ResolveJobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ROFS_JOBS");
      env != nullptr && env[0] != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {
  options_.jobs = ResolveJobs(options_.jobs);
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  // Publish the job count so per-run engines can cap their own worker
  // gangs (the jobs x sim-threads oversubscription guard).
  SetActiveJobs(options_.jobs);
}

std::vector<RunResult> SweepRunner::Run(const std::vector<RunSpec>& specs) {
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<std::future<RunResult>> futures;
  slots.reserve(specs.size());
  futures.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    slots.push_back(std::make_shared<Slot>());
    futures.push_back(slots.back()->promise.get_future());
  }

  std::vector<RunResult> results;
  results.reserve(specs.size());
  {
    ThreadPool pool(options_.jobs);
    const int max_attempts = options_.max_attempts;
    for (size_t i = 0; i < specs.size(); ++i) {
      const RunSpec* spec = &specs[i];
      std::shared_ptr<Slot> slot = slots[i];
      pool.Submit([spec, slot, i, max_attempts] {
        slot->started_at = Clock::now();
        slot->started.store(true, std::memory_order_release);
        slot->promise.set_value(ExecuteSpec(*spec, i, max_attempts));
      });
    }

    // Collect strictly in submission order so aggregation (and the
    // progress stream) never depend on scheduling.
    for (size_t i = 0; i < specs.size(); ++i) {
      RunResult result;
      if (options_.timeout_ms <= 0) {
        result = futures[i].get();
      } else {
        for (;;) {
          if (futures[i].wait_for(std::chrono::milliseconds(5)) ==
              std::future_status::ready) {
            result = futures[i].get();
            break;
          }
          // The budget covers execution, not time queued behind other
          // runs, so the clock starts when the task does.
          if (slots[i]->started.load(std::memory_order_acquire) &&
              MsSince(slots[i]->started_at) > options_.timeout_ms) {
            result.index = i;
            result.label = specs[i].label;
            result.attempts = 1;
            result.wall_ms = MsSince(slots[i]->started_at);
            result.status = Status::DeadlineExceeded(
                "run exceeded the per-run timeout; still executing, "
                "result discarded");
            break;
          }
        }
      }
      results.push_back(std::move(result));
      if (options_.progress) {
        options_.progress(results.back(), i + 1, specs.size());
      }
    }
  }  // ThreadPool joins here; abandoned (timed-out) runs finish first.
  return results;
}

}  // namespace rofs::runner
