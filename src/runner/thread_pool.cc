#include "runner/thread_pool.h"

#include <atomic>
#include <cassert>

namespace rofs::runner {

namespace {
std::atomic<int> g_active_jobs{1};
}

void SetActiveJobs(int jobs) {
  g_active_jobs.store(jobs < 1 ? 1 : jobs, std::memory_order_relaxed);
}

int ActiveJobs() { return g_active_jobs.load(std::memory_order_relaxed); }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!shutting_down_ && "Submit() after Shutdown()");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Keep draining after Shutdown(): graceful shutdown runs every
      // queued task before the workers exit.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rofs::runner
