#ifndef ROFS_RUNNER_RUN_SPEC_H_
#define ROFS_RUNNER_RUN_SPEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace rofs::runner {

/// Per-run inputs handed to the run function by the SweepRunner: the
/// derived seed for this run's private RNG stream, the run's position in
/// the grid, and the (1-based) attempt number when retries are enabled.
struct RunContext {
  uint64_t seed = 0;
  size_t index = 0;
  int attempt = 1;
};

/// One cell of a sweep grid.
///
/// The run function must be self-contained — build its own simulation
/// (disk system, allocator, experiment) from its captures and the context
/// seed — because it executes on an arbitrary pool thread, concurrently
/// with every other cell. Its return value is an opaque row payload
/// (benches use formatted table cells), or the Status explaining the
/// failure.
struct RunSpec {
  /// Progress/diagnostic label ("fig1 TS 5-sizes g=2 clustered").
  std::string label;

  /// The run's RNG seed is derived as SplitSeed(base_seed, stream):
  /// stream 0 yields base_seed itself (grid cells share common random
  /// numbers for controlled comparisons), while replicates take distinct
  /// streams for independent draws.
  uint64_t base_seed = 1;
  uint64_t stream = 0;

  std::function<StatusOr<std::vector<std::string>>(const RunContext&)> run;
};

/// Outcome of one run. SweepRunner returns these indexed exactly like the
/// submitted specs, so aggregated output is byte-identical regardless of
/// the number of worker threads.
struct RunResult {
  Status status;
  /// The run function's payload; empty unless status.ok().
  std::vector<std::string> cells;
  /// Host wall-clock of the final attempt, milliseconds.
  double wall_ms = 0;
  /// Start of the final attempt on the steady clock's arbitrary epoch,
  /// milliseconds. Meaningful only relative to other results of the same
  /// sweep (callers subtract the minimum to get a sweep-relative
  /// timeline, e.g. for trace exports); 0 for timed-out runs.
  double wall_start_ms = 0;
  /// Attempts consumed (1 unless retries were configured and needed).
  int attempts = 0;
  size_t index = 0;
  std::string label;
};

}  // namespace rofs::runner

#endif  // ROFS_RUNNER_RUN_SPEC_H_
