#ifndef ROFS_RUNNER_SWEEP_RUNNER_H_
#define ROFS_RUNNER_SWEEP_RUNNER_H_

#include <functional>
#include <vector>

#include "runner/run_spec.h"

namespace rofs::runner {

struct SweepOptions {
  /// Worker threads. Values <= 0 resolve through ResolveJobs(): the
  /// ROFS_JOBS environment variable if set, else the hardware thread
  /// count.
  int jobs = 0;

  /// Per-run wall-clock budget in host milliseconds; 0 disables. A run
  /// whose attempt exceeds the budget is reported as DeadlineExceeded and
  /// the sweep moves on; the attempt itself cannot be interrupted (no
  /// thread killing), so pool shutdown still waits for it to finish and
  /// its late result is discarded. Timed-out results depend on host
  /// timing, so sweeps that must be byte-identical across job counts
  /// should leave this at 0.
  double timeout_ms = 0;

  /// Total attempts per run (>= 1). Failed attempts (non-OK Status or a
  /// thrown exception) are retried with the same derived seed.
  int max_attempts = 1;

  /// Invoked in submission order as results are collected; `done` counts
  /// collected runs. Called from the collecting thread only.
  std::function<void(const RunResult&, size_t done, size_t total)> progress;
};

/// Executes a grid of independent simulation runs on a fixed-size thread
/// pool, deterministically.
///
/// Guarantees:
///  - each run's RNG stream depends only on its spec (base_seed, stream),
///    never on scheduling;
///  - results are returned (and the progress callback fired) in
///    submission order;
///  - a run that fails or throws becomes a Status in its RunResult; the
///    sweep always completes.
/// Together these make the aggregate output byte-identical for any job
/// count (absent timeouts, which are inherently timing-dependent).
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  std::vector<RunResult> Run(const std::vector<RunSpec>& specs);

  /// Expands each spec into `replicates` copies running on RNG streams
  /// 0 .. replicates-1 (replicate r of cell c uses stream r), cell-major:
  /// cell c's replicate r lands at index c * replicates + r in both the
  /// expanded specs and the results of Run(). Stream 0 reproduces the
  /// unexpanded run exactly (SplitSeed(s, 0) == s), so replicates == 1
  /// returns the specs unchanged. Labels of replicates r > 0 are suffixed
  /// " [r<r>]" for progress output; determinism across job counts is
  /// unaffected because seeds still depend only on (base_seed, stream).
  static std::vector<RunSpec> ExpandReplicates(std::vector<RunSpec> specs,
                                               int replicates);

  /// jobs > 0 as given; else ROFS_JOBS if set to a positive integer; else
  /// std::thread::hardware_concurrency(); always >= 1.
  static int ResolveJobs(int requested);

  /// replicates > 0 as given; else ROFS_REPLICATES if set to a positive
  /// integer; else 1.
  static int ResolveReplicates(int requested);

  int jobs() const { return options_.jobs; }

 private:
  SweepOptions options_;
};

}  // namespace rofs::runner

#endif  // ROFS_RUNNER_SWEEP_RUNNER_H_
