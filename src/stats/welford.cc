#include "stats/welford.h"

#include <cmath>

namespace rofs::stats {

void Welford::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::Merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Welford::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace rofs::stats
