#include "stats/steady.h"

#include <cmath>

#include "stats/student_t.h"
#include "stats/welford.h"

namespace rofs::stats {
namespace {

struct Block {
  double mean = 0.0;
  double half_width = 0.0;
};

Block Summarize(const double* v, size_t k, double critical) {
  Welford w;
  for (size_t i = 0; i < k; ++i) w.Add(v[i]);
  Block b;
  b.mean = w.mean();
  b.half_width = critical * w.stddev() / std::sqrt(static_cast<double>(k));
  return b;
}

}  // namespace

int DetectSteadyWindow(const double* values, size_t n, size_t k,
                       double confidence) {
  if (k < 2 || n < 2 * k) return -1;
  const double critical =
      StudentTCriticalValue(static_cast<int>(k) - 1, confidence);
  for (size_t i = 0; i + 2 * k <= n; ++i) {
    const Block a = Summarize(values + i, k, critical);
    const Block b = Summarize(values + i + k, k, critical);
    if (std::fabs(a.mean - b.mean) <= a.half_width + b.half_width) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int DetectSteadyWindow(const std::vector<double>& values, size_t k,
                       double confidence) {
  return DetectSteadyWindow(values.data(), values.size(), k, confidence);
}

size_t SteadyBlockLength(size_t rows) {
  const size_t k = rows / 4;
  if (k < 2) return 2;
  if (k > 8) return 8;
  return k;
}

}  // namespace rofs::stats
