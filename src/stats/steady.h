#ifndef ROFS_STATS_STEADY_H_
#define ROFS_STATS_STEADY_H_

#include <cstddef>
#include <vector>

namespace rofs::stats {

/// Steady-state onset detection over a per-window metric series (e.g.
/// operations completed per window): the series is considered steady from
/// index `i` on when the means of the two adjacent blocks [i, i + k) and
/// [i + k, i + 2k) have overlapping two-sided Student-t confidence
/// intervals — the sliding-window CI-overlap rule. Returns the first such
/// `i`, or -1 when the series never settles or is shorter than 2k.
/// Requires k >= 2 (a variance estimate needs two samples). The result is
/// a pure function of the input, so it is deterministic across thread and
/// job counts whenever the series itself is.
int DetectSteadyWindow(const double* values, size_t n, size_t k,
                       double confidence);

int DetectSteadyWindow(const std::vector<double>& values, size_t k,
                       double confidence = 0.95);

/// The block length DetectSteadyWindow is given when the caller does not
/// choose one: a quarter of the series, clamped to [2, 8]. Small enough
/// that short CI smokes still produce a verdict, large enough that the
/// CI halves have some power.
size_t SteadyBlockLength(size_t rows);

}  // namespace rofs::stats

#endif  // ROFS_STATS_STEADY_H_
