#ifndef ROFS_STATS_SUMMARY_H_
#define ROFS_STATS_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/welford.h"

namespace rofs::stats {

/// Replication summary of one metric: moments plus the Student-t
/// confidence interval on the mean. `ci_half_width` is
/// t*(n-1, confidence) . s / sqrt(n); the interval is
/// [mean - ci_half_width, mean + ci_half_width]. With fewer than two
/// samples the half-width is 0 (no variance estimate exists).
struct Summary {
  uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double confidence = 0.95;
  double ci_half_width = 0.0;
};

/// Summarizes an accumulator at the given two-sided confidence level.
Summary Summarize(const Welford& w, double confidence = 0.95);

/// Summarizes raw samples.
Summary Summarize(const std::vector<double>& samples,
                  double confidence = 0.95);

/// Linear-interpolation percentile (p in [0, 1]) over a copy of the
/// samples; p = 0.5 is the median. Returns 0 for an empty vector.
double Percentile(std::vector<double> samples, double p);

/// Named metric samples collected across the replicates of one grid cell
/// (or any group of runs). Insertion order of samples per metric is
/// preserved; metric names iterate in sorted order.
class MetricSet {
 public:
  void Add(const std::string& name, double value);
  /// Adds every entry of a flat metric map (one run's RunRecord metrics).
  void AddAll(const std::map<std::string, double>& metrics);

  bool empty() const { return samples_.empty(); }
  size_t num_metrics() const { return samples_.size(); }
  /// Samples of one metric, or nullptr if the metric was never added.
  const std::vector<double>* Samples(const std::string& name) const;

  /// Per-metric replication summaries at the given confidence level.
  std::map<std::string, Summary> Summarize(double confidence = 0.95) const;

 private:
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace rofs::stats

#endif  // ROFS_STATS_SUMMARY_H_
