#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "stats/student_t.h"

namespace rofs::stats {

Summary Summarize(const Welford& w, double confidence) {
  Summary s;
  s.count = w.count();
  s.mean = w.mean();
  s.variance = w.variance();
  s.stddev = w.stddev();
  s.min = w.min();
  s.max = w.max();
  s.confidence = confidence;
  if (w.count() >= 2) {
    const double t = StudentTCriticalValue(
        static_cast<int>(w.count()) - 1, confidence);
    s.ci_half_width =
        t * s.stddev / std::sqrt(static_cast<double>(w.count()));
  }
  return s;
}

Summary Summarize(const std::vector<double>& samples, double confidence) {
  Welford w;
  for (double x : samples) w.Add(x);
  return Summarize(w, confidence);
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 1.0) return samples.back();
  const double rank = p * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

void MetricSet::Add(const std::string& name, double value) {
  samples_[name].push_back(value);
}

void MetricSet::AddAll(const std::map<std::string, double>& metrics) {
  for (const auto& [name, value] : metrics) Add(name, value);
}

const std::vector<double>* MetricSet::Samples(
    const std::string& name) const {
  const auto it = samples_.find(name);
  return it == samples_.end() ? nullptr : &it->second;
}

std::map<std::string, Summary> MetricSet::Summarize(
    double confidence) const {
  std::map<std::string, Summary> out;
  for (const auto& [name, values] : samples_) {
    out.emplace(name, stats::Summarize(values, confidence));
  }
  return out;
}

}  // namespace rofs::stats
