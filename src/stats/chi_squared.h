#ifndef ROFS_STATS_CHI_SQUARED_H_
#define ROFS_STATS_CHI_SQUARED_H_

namespace rofs::stats {

/// P(X <= x) for a chi-squared distribution with `dof` degrees of freedom
/// (dof >= 1, x >= 0), evaluated through the regularized lower incomplete
/// gamma function P(dof / 2, x / 2). The goodness-of-fit gate of the
/// arrival-process tests: a fixed-seed sample passes when the chi-squared
/// statistic's upper tail probability 1 - ChiSquaredCdf(stat, dof) stays
/// above the rejection level.
double ChiSquaredCdf(double x, int dof);

/// Regularized lower incomplete gamma function P(a, x) for a > 0, x >= 0
/// (series expansion for x < a + 1, continued fraction otherwise — the
/// same split student_t.cc uses for the incomplete beta). Exposed for
/// tests.
double RegularizedLowerGamma(double a, double x);

}  // namespace rofs::stats

#endif  // ROFS_STATS_CHI_SQUARED_H_
