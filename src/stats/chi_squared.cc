#include "stats/chi_squared.h"

#include <cassert>
#include <cmath>

namespace rofs::stats {

namespace {

constexpr int kMaxIterations = 300;
constexpr double kEpsilon = 1e-14;

/// Series expansion of P(a, x): gamma*(a, x) = x^-a e^x sum x^n / (a)_n.
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for the upper tail Q(a, x) (modified Lentz).
double UpperGammaContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedLowerGamma(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x <= 0.0) return 0.0;
  // The series converges fast below the mean, the continued fraction
  // above it; the split at a + 1 keeps both well-conditioned.
  if (x < a + 1.0) return LowerGammaSeries(a, x);
  return 1.0 - UpperGammaContinuedFraction(a, x);
}

double ChiSquaredCdf(double x, int dof) {
  assert(dof >= 1);
  if (x <= 0.0) return 0.0;
  return RegularizedLowerGamma(0.5 * static_cast<double>(dof), 0.5 * x);
}

}  // namespace rofs::stats
