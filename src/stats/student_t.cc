#include "stats/student_t.h"

#include <cassert>
#include <cmath>

namespace rofs::stats {

namespace {

/// Continued-fraction expansion of the incomplete beta function (modified
/// Lentz), convergent for x < (a + 1) / (a + b + 2).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the expansion on whichever side converges fast and reflect.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, int dof) {
  assert(dof >= 1);
  const double v = static_cast<double>(dof);
  const double x = v / (v + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(v / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double StudentTCriticalValue(int dof, double confidence) {
  assert(dof >= 1);
  assert(confidence > 0.0 && confidence < 1.0);
  const double p = 1.0 - (1.0 - confidence) / 2.0;
  // The CDF is strictly increasing; bisect. The bracket covers even
  // dof = 1 (Cauchy) at 99.99% confidence.
  double lo = 0.0;
  double hi = 1.0;
  while (StudentTCdf(hi, dof) < p && hi < 1e12) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, dof) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace rofs::stats
