#ifndef ROFS_STATS_WELFORD_H_
#define ROFS_STATS_WELFORD_H_

#include <cstdint>

namespace rofs::stats {

/// Numerically stable streaming moments (Welford's online algorithm) plus
/// running min/max. Replication aggregation feeds every replicate's metric
/// value through one of these; variance is the sample variance (n - 1
/// denominator), the estimator the Student-t confidence interval needs.
class Welford {
 public:
  void Add(double x);

  /// Combines another accumulator into this one (Chan et al. pairwise
  /// update), as if every sample of `other` had been Add()ed here.
  void Merge(const Welford& other);

  uint64_t count() const { return n_; }
  /// 0 when empty.
  double mean() const { return mean_; }
  /// Sample variance (n - 1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Min/max of the samples seen; 0 when empty.
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  /// Sum of squared deviations from the running mean.
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rofs::stats

#endif  // ROFS_STATS_WELFORD_H_
