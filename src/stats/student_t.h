#ifndef ROFS_STATS_STUDENT_T_H_
#define ROFS_STATS_STUDENT_T_H_

namespace rofs::stats {

/// P(T <= t) for Student's t distribution with `dof` degrees of freedom
/// (dof >= 1), evaluated through the regularized incomplete beta function.
double StudentTCdf(double t, int dof);

/// The two-sided critical value t* with P(|T| <= t*) = confidence, i.e.
/// the quantile at 1 - (1 - confidence) / 2. Used for the half-width of a
/// mean's confidence interval: t* . s / sqrt(n) with dof = n - 1.
/// Requires dof >= 1 and 0 < confidence < 1.
double StudentTCriticalValue(int dof, double confidence);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1],
/// a, b > 0 (continued-fraction evaluation). Exposed for tests.
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace rofs::stats

#endif  // ROFS_STATS_STUDENT_T_H_
