#ifndef ROFS_SCHED_SCHEDULER_H_
#define ROFS_SCHED_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/event_queue.h"
#include "util/statusor.h"

namespace rofs::sched {

/// Per-disk request scheduling policies. The paper's model is strictly
/// FCFS; the remaining policies are the classic seek-optimizing
/// schedulers the paper's contiguity argument implicitly assumes away
/// (ROADMAP item 2: at high queue depth a scheduler absorbs seeks that
/// contiguous allocation would otherwise have avoided).
enum class Policy : uint8_t {
  /// Service in arrival order. The only policy whose service order is
  /// fully determined at submit time (see DiskScheduler::predictable()).
  kFcfs,
  /// Shortest seek time first: nearest cylinder, ties by arrival.
  /// Minimizes seeks but can starve far requests under sustained load.
  kSstf,
  /// Elevator sweep: service in cylinder order in the current direction,
  /// travel to the disk edge before reversing.
  kScan,
  /// Circular SCAN: one service direction; on exhausting it, a full-
  /// stroke return seek and the sweep restarts from the lowest request.
  /// Evens out the response-time bias SCAN gives middle cylinders.
  kCscan,
  /// SCAN that reverses at the last pending request instead of the edge.
  kLook,
  /// Queue-depth-bounded batching: requests are grouped into FIFO
  /// batches of at most `batch_limit`, served SSTF within a batch. New
  /// arrivals never join the current batch, so a request waits at most
  /// one full batch — SSTF's seek savings with bounded starvation.
  kBatch,
};

std::string PolicyToString(Policy policy);

/// Scheduler selection plus its parameters, carried by DiskSystemConfig
/// and parsed from the `scheduler =` config key.
struct SchedulerSpec {
  Policy policy = Policy::kFcfs;
  /// kBatch only: maximum requests per batch.
  uint32_t batch_limit = 8;

  /// "fcfs", "sstf", ..., "batch(8)" — the config-file syntax.
  std::string Label() const;
  /// Rejects parameter nonsense (a zero batch bound).
  Status Validate() const;
  /// True when arrival order fully determines service order, which makes
  /// completion times computable at submit time (FCFS only).
  bool predictable() const { return policy == Policy::kFcfs; }
};

/// Parses the config-file syntax: fcfs | sstf | scan | cscan | look |
/// batch(N). Unknown policies and malformed parameters are rejected.
StatusOr<SchedulerSpec> ParseSchedulerSpec(const std::string& text);

/// One pending disk request as the scheduler sees it. A POD: the owning
/// disk keeps the completion callback and any predicted timing in its own
/// request pool, addressed by `handle`.
struct Request {
  uint64_t offset_bytes = 0;
  uint64_t length_bytes = 0;
  sim::TimeMs arrival = 0;
  /// Admission order; the FIFO tie-breaker every policy falls back to.
  uint64_t seq = 0;
  /// First cylinder of the access (computed once by the disk at submit).
  uint64_t cylinder = 0;
  /// The owning disk's request-pool slot.
  uint32_t handle = 0;
};

/// The pending-queue half of a dispatch-driven disk: the disk Enqueue()s
/// requests as they arrive and asks PickNext() for the request to service
/// each time the head frees. Implementations keep their queues in
/// grow-to-peak storage, so steady-state Enqueue/PickNext churn performs
/// no heap allocation (verified by perf_noalloc_test).
class DiskScheduler {
 public:
  virtual ~DiskScheduler() = default;

  virtual Policy policy() const = 0;

  /// Admits a request into the pending queue.
  virtual void Enqueue(const Request& request) = 0;

  /// Removes and returns the next request to service given the current
  /// head position. Returns false when the queue is empty.
  ///
  /// `*effective_seek_cylinders` receives the cylinder distance the head
  /// travels to reach the request, including sweep turnaround: SCAN
  /// charges the travel to the disk edge and back on a reversal, C-SCAN
  /// charges edge travel plus the full-stroke return on a wrap, and the
  /// point-to-point policies (FCFS/SSTF/LOOK/batch) charge
  /// |head - target|. `*was_oldest` reports whether the pick had the
  /// smallest pending sequence number (false counts as a reorder).
  virtual bool PickNext(uint64_t head_cylinder, Request* out,
                        uint64_t* effective_seek_cylinders,
                        bool* was_oldest) = 0;

  /// Pending requests (excluding any in service at the disk).
  virtual size_t queue_depth() const = 0;

  /// Pre-sizes queue storage so Enqueue never allocates while the
  /// pending population stays within `requests`.
  virtual void Reserve(size_t requests) = 0;

  bool predictable() const { return policy() == Policy::kFcfs; }
};

/// Creates a scheduler. `max_cylinder` (the highest cylinder index of the
/// owning drive) bounds the SCAN/C-SCAN sweep turnaround distances.
std::unique_ptr<DiskScheduler> MakeScheduler(const SchedulerSpec& spec,
                                             uint64_t max_cylinder);

}  // namespace rofs::sched

#endif  // ROFS_SCHED_SCHEDULER_H_
