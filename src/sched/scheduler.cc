#include "sched/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <vector>

namespace rofs::sched {
namespace {

/// Grow-to-peak FIFO ring. Capacity is a power of two; Push doubles the
/// storage only when the live population exceeds every previous peak, so
/// steady-state Enqueue/Pop churn never allocates.
class RequestRing {
 public:
  RequestRing() { Grow(16); }

  void Reserve(size_t requests) {
    size_t want = 16;
    while (want < requests + 1) want <<= 1;
    if (want > slots_.size()) Grow(want);
  }

  void Push(const Request& request) {
    if (size() + 1 >= slots_.size()) Grow(slots_.size() * 2);
    slots_[tail_] = request;
    tail_ = (tail_ + 1) & mask_;
  }

  Request Pop() {
    assert(!empty());
    const Request request = slots_[head_];
    head_ = (head_ + 1) & mask_;
    return request;
  }

  const Request& Front() const {
    assert(!empty());
    return slots_[head_];
  }

  bool empty() const { return head_ == tail_; }
  size_t size() const { return (tail_ - head_ + slots_.size()) & mask_; }

 private:
  void Grow(size_t capacity) {
    std::vector<Request> next(capacity);
    size_t n = 0;
    for (size_t i = head_; i != tail_; i = (i + 1) & mask_) {
      next[n++] = slots_[i];
    }
    slots_ = std::move(next);
    mask_ = slots_.size() - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<Request> slots_;
  size_t mask_ = 0;
  size_t head_ = 0;
  size_t tail_ = 0;
};

uint64_t CylinderDistance(uint64_t a, uint64_t b) {
  return a > b ? a - b : b - a;
}

/// Removes and returns the SSTF pick (nearest cylinder, ties by arrival
/// sequence) from `pending` via swap-with-back. Shared by the SSTF and
/// batch policies.
Request TakeNearest(std::vector<Request>* pending, uint64_t head_cylinder) {
  assert(!pending->empty());
  size_t best = 0;
  uint64_t best_distance =
      CylinderDistance((*pending)[0].cylinder, head_cylinder);
  for (size_t i = 1; i < pending->size(); ++i) {
    const uint64_t distance =
        CylinderDistance((*pending)[i].cylinder, head_cylinder);
    if (distance < best_distance ||
        (distance == best_distance &&
         (*pending)[i].seq < (*pending)[best].seq)) {
      best = i;
      best_distance = distance;
    }
  }
  const Request pick = (*pending)[best];
  (*pending)[best] = pending->back();
  pending->pop_back();
  return pick;
}

bool IsOldest(const std::vector<Request>& pending, uint64_t seq) {
  for (const Request& r : pending) {
    if (r.seq < seq) return false;
  }
  return true;
}

class FcfsScheduler final : public DiskScheduler {
 public:
  Policy policy() const override { return Policy::kFcfs; }

  void Enqueue(const Request& request) override { queue_.Push(request); }

  bool PickNext(uint64_t head_cylinder, Request* out,
                uint64_t* effective_seek_cylinders,
                bool* was_oldest) override {
    if (queue_.empty()) return false;
    *out = queue_.Pop();
    *effective_seek_cylinders = CylinderDistance(out->cylinder, head_cylinder);
    *was_oldest = true;
    return true;
  }

  size_t queue_depth() const override { return queue_.size(); }
  void Reserve(size_t requests) override { queue_.Reserve(requests); }

 private:
  RequestRing queue_;
};

class SstfScheduler final : public DiskScheduler {
 public:
  Policy policy() const override { return Policy::kSstf; }

  void Enqueue(const Request& request) override {
    pending_.push_back(request);
  }

  bool PickNext(uint64_t head_cylinder, Request* out,
                uint64_t* effective_seek_cylinders,
                bool* was_oldest) override {
    if (pending_.empty()) return false;
    *out = TakeNearest(&pending_, head_cylinder);
    *effective_seek_cylinders = CylinderDistance(out->cylinder, head_cylinder);
    *was_oldest = IsOldest(pending_, out->seq);
    return true;
  }

  size_t queue_depth() const override { return pending_.size(); }
  void Reserve(size_t requests) override { pending_.reserve(requests); }

 private:
  std::vector<Request> pending_;
};

/// SCAN and LOOK share the elevator sweep; they differ only in whether a
/// reversal travels to the disk edge first (`to_edge_`), which changes the
/// effective seek distance charged on the turn.
class SweepScheduler final : public DiskScheduler {
 public:
  SweepScheduler(Policy policy, uint64_t max_cylinder)
      : policy_(policy),
        to_edge_(policy == Policy::kScan),
        max_cylinder_(max_cylinder) {}

  Policy policy() const override { return policy_; }

  void Enqueue(const Request& request) override {
    pending_.push_back(request);
  }

  bool PickNext(uint64_t head_cylinder, Request* out,
                uint64_t* effective_seek_cylinders,
                bool* was_oldest) override {
    if (pending_.empty()) return false;
    size_t pick = pending_.size();
    // Nearest request in the sweep direction (at or past the head), ties
    // by arrival sequence.
    for (size_t i = 0; i < pending_.size(); ++i) {
      const Request& r = pending_[i];
      const bool in_direction =
          up_ ? r.cylinder >= head_cylinder : r.cylinder <= head_cylinder;
      if (!in_direction) continue;
      if (pick == pending_.size() || Closer(r, pending_[pick], head_cylinder)) {
        pick = i;
      }
    }
    bool reversed = false;
    if (pick == pending_.size()) {
      // Sweep exhausted: reverse and pick the nearest request on the way
      // back (which is the farthest-along request in the old direction).
      up_ = !up_;
      reversed = true;
      for (size_t i = 0; i < pending_.size(); ++i) {
        if (pick == pending_.size() ||
            Closer(pending_[i], pending_[pick], head_cylinder)) {
          pick = i;
        }
      }
    }
    *out = pending_[pick];
    pending_[pick] = pending_.back();
    pending_.pop_back();
    const uint64_t direct = CylinderDistance(out->cylinder, head_cylinder);
    if (reversed && to_edge_) {
      // SCAN runs to the edge before turning: head -> edge -> target.
      const uint64_t to_edge = up_
                                   ? head_cylinder  // Was sweeping down.
                                   : max_cylinder_ - head_cylinder;
      *effective_seek_cylinders = to_edge + (up_ ? out->cylinder
                                                 : max_cylinder_ -
                                                       out->cylinder);
    } else {
      *effective_seek_cylinders = direct;
    }
    *was_oldest = IsOldest(pending_, out->seq);
    return true;
  }

  size_t queue_depth() const override { return pending_.size(); }
  void Reserve(size_t requests) override { pending_.reserve(requests); }

 private:
  bool Closer(const Request& a, const Request& b,
              uint64_t head_cylinder) const {
    const uint64_t da = CylinderDistance(a.cylinder, head_cylinder);
    const uint64_t db = CylinderDistance(b.cylinder, head_cylinder);
    if (da != db) return da < db;
    return a.seq < b.seq;
  }

  const Policy policy_;
  const bool to_edge_;
  const uint64_t max_cylinder_;
  bool up_ = true;
  std::vector<Request> pending_;
};

class CscanScheduler final : public DiskScheduler {
 public:
  explicit CscanScheduler(uint64_t max_cylinder)
      : max_cylinder_(max_cylinder) {}

  Policy policy() const override { return Policy::kCscan; }

  void Enqueue(const Request& request) override {
    pending_.push_back(request);
  }

  bool PickNext(uint64_t head_cylinder, Request* out,
                uint64_t* effective_seek_cylinders,
                bool* was_oldest) override {
    if (pending_.empty()) return false;
    // Nearest request at or past the head in the single service
    // direction; when none remain, wrap to the lowest-cylinder request.
    size_t pick = pending_.size();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].cylinder < head_cylinder) continue;
      if (pick == pending_.size() || Before(pending_[i], pending_[pick])) {
        pick = i;
      }
    }
    bool wrapped = false;
    if (pick == pending_.size()) {
      wrapped = true;
      for (size_t i = 0; i < pending_.size(); ++i) {
        if (pick == pending_.size() || Before(pending_[i], pending_[pick])) {
          pick = i;
        }
      }
    }
    *out = pending_[pick];
    pending_[pick] = pending_.back();
    pending_.pop_back();
    if (wrapped) {
      // Finish the sweep to the edge, full-stroke return, then seek out
      // to the target: (max - head) + max + target.
      *effective_seek_cylinders =
          (max_cylinder_ - head_cylinder) + max_cylinder_ + out->cylinder;
    } else {
      *effective_seek_cylinders = out->cylinder - head_cylinder;
    }
    *was_oldest = IsOldest(pending_, out->seq);
    return true;
  }

  size_t queue_depth() const override { return pending_.size(); }
  void Reserve(size_t requests) override { pending_.reserve(requests); }

 private:
  static bool Before(const Request& a, const Request& b) {
    if (a.cylinder != b.cylinder) return a.cylinder < b.cylinder;
    return a.seq < b.seq;
  }

  const uint64_t max_cylinder_;
  std::vector<Request> pending_;
};

class BatchScheduler final : public DiskScheduler {
 public:
  explicit BatchScheduler(uint32_t batch_limit) : batch_limit_(batch_limit) {
    batch_.reserve(batch_limit_);
  }

  Policy policy() const override { return Policy::kBatch; }

  void Enqueue(const Request& request) override { waiting_.Push(request); }

  bool PickNext(uint64_t head_cylinder, Request* out,
                uint64_t* effective_seek_cylinders,
                bool* was_oldest) override {
    if (batch_.empty()) {
      // Seal a new batch from the oldest waiters. Later arrivals cannot
      // join it, so no request waits behind more than one full batch.
      while (batch_.size() < batch_limit_ && !waiting_.empty()) {
        batch_.push_back(waiting_.Pop());
      }
    }
    if (batch_.empty()) return false;
    *out = TakeNearest(&batch_, head_cylinder);
    *effective_seek_cylinders = CylinderDistance(out->cylinder, head_cylinder);
    *was_oldest = IsOldest(batch_, out->seq) &&
                  (waiting_.empty() || out->seq < waiting_.Front().seq);
    return true;
  }

  size_t queue_depth() const override {
    return batch_.size() + waiting_.size();
  }

  void Reserve(size_t requests) override { waiting_.Reserve(requests); }

 private:
  const uint32_t batch_limit_;
  std::vector<Request> batch_;
  RequestRing waiting_;
};

}  // namespace

std::string PolicyToString(Policy policy) {
  switch (policy) {
    case Policy::kFcfs:
      return "fcfs";
    case Policy::kSstf:
      return "sstf";
    case Policy::kScan:
      return "scan";
    case Policy::kCscan:
      return "cscan";
    case Policy::kLook:
      return "look";
    case Policy::kBatch:
      return "batch";
  }
  return "unknown";
}

std::string SchedulerSpec::Label() const {
  if (policy == Policy::kBatch) {
    return "batch(" + std::to_string(batch_limit) + ")";
  }
  return PolicyToString(policy);
}

Status SchedulerSpec::Validate() const {
  if (policy == Policy::kBatch && batch_limit == 0) {
    return Status::InvalidArgument(
        "scheduler batch(N) requires a positive batch bound");
  }
  return Status::OK();
}

StatusOr<SchedulerSpec> ParseSchedulerSpec(const std::string& text) {
  SchedulerSpec spec;
  if (text == "fcfs") {
    spec.policy = Policy::kFcfs;
  } else if (text == "sstf") {
    spec.policy = Policy::kSstf;
  } else if (text == "scan") {
    spec.policy = Policy::kScan;
  } else if (text == "cscan") {
    spec.policy = Policy::kCscan;
  } else if (text == "look") {
    spec.policy = Policy::kLook;
  } else if (text.rfind("batch(", 0) == 0 && text.back() == ')') {
    const std::string digits = text.substr(6, text.size() - 7);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      return Status::InvalidArgument("bad scheduler batch bound in '" + text +
                                     "' (want batch(N) with N >= 1)");
    }
    spec.policy = Policy::kBatch;
    spec.batch_limit = static_cast<uint32_t>(std::strtoul(
        digits.c_str(), nullptr, 10));
  } else {
    return Status::InvalidArgument(
        "unknown scheduler policy '" + text +
        "' (want fcfs|sstf|scan|cscan|look|batch(N))");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  return spec;
}

std::unique_ptr<DiskScheduler> MakeScheduler(const SchedulerSpec& spec,
                                             uint64_t max_cylinder) {
  switch (spec.policy) {
    case Policy::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case Policy::kSstf:
      return std::make_unique<SstfScheduler>();
    case Policy::kScan:
    case Policy::kLook:
      return std::make_unique<SweepScheduler>(spec.policy, max_cylinder);
    case Policy::kCscan:
      return std::make_unique<CscanScheduler>(max_cylinder);
    case Policy::kBatch:
      return std::make_unique<BatchScheduler>(spec.batch_limit);
  }
  return nullptr;
}

}  // namespace rofs::sched
