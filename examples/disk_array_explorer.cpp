// Example: using the disk subsystem directly — no file system — to
// explore how striping, transfer size, and redundancy shape throughput on
// the paper's 8-drive array. Useful for understanding the timing model
// underneath every experiment.
//
// Run:  ./build/examples/disk_array_explorer

#include <cstdio>

#include "disk/disk_system.h"
#include "util/random.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

namespace {

/// Issues `count` random reads of `bytes` each and returns achieved MB/s.
double RandomReadRate(disk::DiskSystem& sys, uint64_t bytes, int count,
                      uint64_t seed) {
  Rng rng(seed);
  const uint64_t n_du = bytes / sys.disk_unit_bytes();
  sim::TimeMs done = 0;
  for (int i = 0; i < count; ++i) {
    const uint64_t start = rng.UniformInt(0, sys.capacity_du() - n_du - 1);
    done = sys.Read(done, start, n_du);  // Closed loop: one at a time.
  }
  return static_cast<double>(bytes) * count / done * 1000.0 / (1e6);
}

/// One long sequential scan.
double SequentialRate(disk::DiskSystem& sys, uint64_t bytes) {
  const sim::TimeMs done = sys.Read(0, 0, bytes / sys.disk_unit_bytes());
  return static_cast<double>(bytes) / done * 1000.0 / 1e6;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  std::printf("1) Transfer size vs random-read throughput (striped)\n");
  Table t1({"Transfer", "MB/s", "% of max"});
  {
    disk::DiskSystem probe(disk::DiskSystemConfig::Array(8));
    const double max_mb =
        probe.MaxSequentialBandwidthBytesPerMs() * 1000.0 / 1e6;
    for (uint64_t kb : {1, 8, 64, 512, 4096, 16384}) {
      disk::DiskSystem sys(disk::DiskSystemConfig::Array(8));
      const double rate = RandomReadRate(sys, KiB(kb), 500, kb);
      t1.AddRow({FormatBytes(KiB(kb)), FormatString("%.2f", rate),
                 FormatString("%.1f%%", rate / max_mb * 100)});
    }
  }
  std::printf("%s\n", t1.ToString().c_str());

  std::printf("2) Stripe unit vs a 1MB random read\n");
  Table t2({"Stripe unit", "MB/s"});
  for (uint64_t kb : {4, 24, 96, 384, 1024}) {
    disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(8);
    cfg.stripe_unit_bytes = KiB(kb);
    disk::DiskSystem sys(cfg);
    t2.AddRow({FormatBytes(KiB(kb)),
               FormatString("%.2f", RandomReadRate(sys, MiB(1), 300, kb))});
  }
  std::printf("%s\n", t2.ToString().c_str());

  std::printf("3) Redundancy vs sequential scan and small random writes\n");
  Table t3({"Layout", "Seq MB/s", "8K-write ops/s"});
  for (disk::LayoutKind layout :
       {disk::LayoutKind::kStriped, disk::LayoutKind::kMirrored,
        disk::LayoutKind::kRaid5, disk::LayoutKind::kParityStriped}) {
    disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(8);
    cfg.layout = layout;
    disk::DiskSystem seq_sys(cfg);
    const double seq = SequentialRate(seq_sys, MiB(512));
    disk::DiskSystem wr_sys(cfg);
    Rng rng(9);
    sim::TimeMs done = 0;
    const int kWrites = 500;
    for (int i = 0; i < kWrites; ++i) {
      const uint64_t start = rng.UniformInt(0, wr_sys.capacity_du() - 9);
      done = wr_sys.Write(done, start, 8);
    }
    t3.AddRow({disk::LayoutKindToString(layout), FormatString("%.2f", seq),
               FormatString("%.0f", kWrites / done * 1000.0)});
  }
  std::printf("%s\n", t3.ToString().c_str());
  std::printf(
      "Note the RAID5 small-write penalty vs striped — the paper's\n"
      "section 6 prediction, quantified.\n");
  return 0;
}
