// Example: defining a custom workload from scratch and running the full
// experiment battery against two allocation policies.
//
// The scenario is a mail/news server: a huge population of tiny messages
// (created, read once or twice, deleted), a handful of ever-growing spool
// files, and a medium tier of mailbox files that are read in bursts.
//
// Run:  ./build/examples/custom_workload

#include <cstdio>
#include <memory>

#include "alloc/extent_allocator.h"
#include "alloc/restricted_buddy.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "util/units.h"
#include "workload/file_type.h"

using namespace rofs;

namespace {

workload::WorkloadSpec MailServerWorkload() {
  workload::WorkloadSpec w;
  w.name = "mail-server";

  workload::FileTypeSpec message;
  message.name = "message";
  message.num_files = 120'000;
  message.num_users = 24;
  message.process_time_ms = 40;
  message.hit_frequency_ms = 40;
  message.rw_bytes_mean = KiB(4);
  message.rw_bytes_dev = KiB(1);
  message.alloc_size_bytes = KiB(1);
  message.extend_bytes_mean = KiB(2);
  message.truncate_bytes = KiB(2);
  message.initial_bytes_mean = KB(4);
  message.initial_bytes_dev = KB(3);
  message.read_ratio = 0.55;
  message.write_ratio = 0.05;
  message.extend_ratio = 0.15;
  message.delete_ratio = 0.95;  // Deallocations delete the message.
  w.types.push_back(message);

  workload::FileTypeSpec mailbox;
  mailbox.name = "mailbox";
  mailbox.num_files = 4'000;
  mailbox.num_users = 12;
  mailbox.process_time_ms = 80;
  mailbox.hit_frequency_ms = 80;
  mailbox.rw_bytes_mean = KiB(32);
  mailbox.rw_bytes_dev = KiB(8);
  mailbox.alloc_size_bytes = KiB(64);
  mailbox.extend_bytes_mean = KiB(8);
  mailbox.truncate_bytes = KiB(32);
  mailbox.initial_bytes_mean = KB(400);
  mailbox.initial_bytes_dev = KB(150);
  mailbox.read_ratio = 0.60;
  mailbox.write_ratio = 0.15;
  mailbox.extend_ratio = 0.20;
  mailbox.delete_ratio = 0.20;
  w.types.push_back(mailbox);

  workload::FileTypeSpec spool;
  spool.name = "spool";
  spool.num_files = 8;
  spool.num_users = 4;
  spool.process_time_ms = 25;
  spool.hit_frequency_ms = 25;
  spool.rw_bytes_mean = KiB(16);
  spool.rw_bytes_dev = KiB(4);
  spool.alloc_size_bytes = MiB(1);
  spool.extend_bytes_mean = KiB(64);
  spool.truncate_bytes = MiB(4);
  spool.initial_bytes_mean = MB(40);
  spool.initial_bytes_dev = MB(10);
  spool.read_ratio = 0.10;
  spool.write_ratio = 0.02;
  spool.extend_ratio = 0.85;
  spool.delete_ratio = 0.0;
  w.types.push_back(spool);
  return w;
}

void RunPolicy(const std::string& name,
               exp::Experiment::AllocatorFactory factory) {
  exp::Experiment experiment(MailServerWorkload(), factory,
                             disk::DiskSystemConfig::Array(8),
                             exp::ExperimentConfig{});
  auto alloc_result = experiment.RunAllocationTest();
  if (!alloc_result.ok()) {
    std::printf("%-18s allocation test failed: %s\n", name.c_str(),
                alloc_result.status().ToString().c_str());
    return;
  }
  auto perf = experiment.RunPerformancePair();
  if (!perf.ok()) {
    std::printf("%-18s performance test failed: %s\n", name.c_str(),
                perf.status().ToString().c_str());
    return;
  }
  std::printf("%-18s frag int=%s ext=%s | app=%s seq=%s extents/file=%.1f\n",
              name.c_str(), exp::Pct(alloc_result->internal_fragmentation).c_str(),
              exp::Pct(alloc_result->external_fragmentation).c_str(),
              exp::Pct(perf->application.utilization_of_max).c_str(),
              exp::Pct(perf->sequential.utilization_of_max).c_str(),
              perf->sequential.avg_extents_per_file);
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("Custom workload: mail server on the 8-disk array\n\n");

  RunPolicy("restricted-buddy", [](uint64_t total_du) {
    alloc::RestrictedBuddyConfig cfg;  // 5 sizes, clustered, g=1.
    return std::make_unique<alloc::RestrictedBuddyAllocator>(
        total_du, cfg);
  });
  RunPolicy("extent-first-fit", [](uint64_t total_du) {
    alloc::ExtentAllocatorConfig cfg;
    cfg.range_means_du = {2, 64, 1024};  // 2K / 64K / 1M ranges.
    return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
  });
  return 0;
}
