// Quickstart: build the paper's default 8-disk striped array, put the
// restricted buddy policy on it, create some files, do a little I/O, and
// run one full experiment (allocation + performance tests) for the
// supercomputer workload.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "fs/read_optimized_fs.h"
#include "util/units.h"
#include "workload/workloads.h"

using namespace rofs;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  // --- 1. The disk system: 8 CDC Wren IV drives, striped (Table 1). ---
  disk::DiskSystemConfig disk_config = disk::DiskSystemConfig::Array(8);
  disk::DiskSystem disk(disk_config);
  std::printf("Disk system: %s\n\n", disk.DescribeConfig().c_str());

  // --- 2. An allocation policy: restricted buddy, 5 block sizes. ---
  alloc::RestrictedBuddyConfig rb_config;
  rb_config.block_sizes_du = {1, 8, 64, 1024, 16384};  // 1K..16M (1K DU)
  rb_config.grow_factor = 1;
  rb_config.clustered = true;
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(), rb_config);

  // --- 3. The file system facade. ---
  fs::ReadOptimizedFs rofs(&allocator, &disk);

  const fs::FileId file = rofs.Create(/*pref_extent_bytes=*/MiB(1));
  sim::TimeMs done = 0;
  Status status = rofs.Extend(file, MiB(4), /*arrival=*/0.0, &done);
  if (!status.ok()) {
    std::printf("extend failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Created a 4 MB file: %zu extents, %s allocated, "
              "initial write finished at t=%.1f ms\n",
              rofs.file(file).alloc.extents.size(),
              FormatBytes(rofs.total_allocated_bytes()).c_str(), done);

  const sim::TimeMs read_done = rofs.Read(file, 0, MiB(4), done);
  std::printf("Whole-file read: %.1f ms -> %.1f MB/s (max %.1f MB/s)\n\n",
              read_done - done,
              static_cast<double>(MiB(4)) / (read_done - done) * 1000.0 /
                  (1024 * 1024),
              disk.MaxSequentialBandwidthBytesPerMs() * 1000.0 /
                  (1024 * 1024));

  // --- 4. A full experiment: SC workload on this policy. ---
  exp::ExperimentConfig config;
  config.max_measure_ms = 120'000;  // Quick demo settings.
  exp::Experiment experiment(
      workload::MakeSuperComputer(),
      [&](uint64_t total_du) {
        return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du,
                                                                 rb_config);
      },
      disk_config, config);

  auto alloc_result = experiment.RunAllocationTest();
  if (!alloc_result.ok()) {
    std::printf("allocation test: %s\n", alloc_result.status().ToString().c_str());
    return 1;
  }
  std::printf("SC allocation test:  %s\n",
              exp::Summarize(*alloc_result).c_str());

  auto perf = experiment.RunPerformancePair();
  if (!perf.ok()) {
    std::printf("performance test: %s\n", perf.status().ToString().c_str());
    return 1;
  }
  std::printf("SC application test: %s\n",
              exp::Summarize(perf->application).c_str());
  std::printf("SC sequential test:  %s\n",
              exp::Summarize(perf->sequential).c_str());
  return 0;
}
