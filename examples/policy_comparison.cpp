// Example: head-to-head comparison of all four allocation policies on one
// of the paper's canonical workloads, selectable from the command line.
//
// Run:  ./build/examples/policy_comparison [TS|TP|SC]
//
// This is the programmatic version of the paper's Figure 6 for a single
// workload: it prints fragmentation, application and sequential
// throughput, and the extent statistics for each policy.

#include <cstdio>
#include <cstring>
#include <memory>

#include "alloc/buddy_allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "fs/read_optimized_fs.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/op_generator.h"
#include "workload/workloads.h"

using namespace rofs;

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  workload::WorkloadKind kind = workload::WorkloadKind::kSuperComputer;
  if (argc > 1) {
    if (std::strcmp(argv[1], "TS") == 0) {
      kind = workload::WorkloadKind::kTimeSharing;
    } else if (std::strcmp(argv[1], "TP") == 0) {
      kind = workload::WorkloadKind::kTransactionProcessing;
    } else if (std::strcmp(argv[1], "SC") == 0) {
      kind = workload::WorkloadKind::kSuperComputer;
    } else {
      std::fprintf(stderr, "usage: %s [TS|TP|SC]\n", argv[0]);
      return 2;
    }
  }
  std::printf("Comparing allocation policies on the %s workload\n\n",
              workload::WorkloadKindToString(kind).c_str());

  using Factory = exp::Experiment::AllocatorFactory;
  const uint64_t fixed_du = workload::FixedBlockBytesFor(kind) / kKiB;
  std::vector<std::pair<std::string, Factory>> policies;
  policies.emplace_back("buddy (Koch)", [](uint64_t total_du) {
    return std::make_unique<alloc::BuddyAllocator>(total_du);
  });
  policies.emplace_back("restricted-buddy", [](uint64_t total_du) {
    return std::make_unique<alloc::RestrictedBuddyAllocator>(
        total_du, alloc::RestrictedBuddyConfig{});
  });
  policies.emplace_back("extent first-fit", [kind](uint64_t total_du) {
    alloc::ExtentAllocatorConfig cfg;
    cfg.range_means_du.clear();
    for (uint64_t bytes : workload::ExtentRangeMeansBytes(kind, 3)) {
      cfg.range_means_du.push_back(bytes / kKiB);
    }
    return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
  });
  policies.emplace_back("fixed-block", [fixed_du](uint64_t total_du) {
    return std::make_unique<alloc::FixedBlockAllocator>(total_du, fixed_du);
  });

  Table table({"Policy", "IntFrag", "ExtFrag", "Application", "Sequential",
               "Extents/file"});
  for (auto& [name, factory] : policies) {
    exp::Experiment experiment(workload::MakeWorkload(kind), factory,
                               disk::DiskSystemConfig::Array(8),
                               exp::ExperimentConfig{});
    auto frag = experiment.RunAllocationTest();
    auto perf = experiment.RunPerformancePair();
    if (!frag.ok() || !perf.ok()) {
      std::printf("%s failed: %s %s\n", name.c_str(),
                  frag.status().ToString().c_str(),
                  perf.status().ToString().c_str());
      continue;
    }
    table.AddRow({name, exp::Pct(frag->internal_fragmentation),
                  exp::Pct(frag->external_fragmentation),
                  exp::Pct(perf->application.utilization_of_max),
                  exp::Pct(perf->sequential.utilization_of_max),
                  FormatString("%.1f", perf->sequential.avg_extents_per_file)});
  }
  std::printf("%s", table.ToString().c_str());

  // Visual: how each policy lays out a fresh population of the workload's
  // file types (an 80-column occupancy map of the whole array).
  std::printf("\nLayout maps after initial allocation "
              "(' ' empty ... '#' full):\n");
  const workload::WorkloadSpec spec = workload::MakeWorkload(kind);
  for (auto& [name, factory] : policies) {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(8));
    auto allocator = factory(disk.capacity_du());
    fs::ReadOptimizedFs viz_fs(allocator.get(), &disk);
    viz_fs.set_io_enabled(false);
    sim::EventQueue queue;
    workload::OpGeneratorOptions opts;
    workload::OpGenerator gen(&spec, &viz_fs, &queue, opts);
    (void)gen.CreateInitialFiles();
    std::printf("%-18s %s\n", name.c_str(),
                exp::LayoutAsciiMap(viz_fs, 78).c_str());
  }
  return 0;
}
