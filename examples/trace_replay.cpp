// Example: the paper's closing remark — "applying the allocation policies
// to genuine workloads will yield a much more convincing argument" — made
// runnable. This program:
//
//   1. runs a short TS-like simulation and records its operation stream
//      with exp::OpTrace,
//   2. converts the recording into a replayable trace,
//   3. replays the *same* trace against every allocation policy and
//      compares end-to-end makespans and mean latencies.
//
// In a real deployment step 1 would be a trace captured from a production
// file server; the formats are line-oriented CSV either way.
//
// Run:  ./build/examples/trace_replay

#include <cstdio>
#include <memory>

#include "alloc/buddy_allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/log_structured_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/trace.h"
#include "fs/read_optimized_fs.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/op_generator.h"
#include "workload/trace_replay.h"

using namespace rofs;

namespace {

// Step 1+2: run a small simulated office workload and serialize its ops
// into the replay format.
std::string RecordTrace() {
  disk::DiskSystem disk(disk::DiskSystemConfig::Array(4));
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(),
                                            alloc::RestrictedBuddyConfig{});
  fs::ReadOptimizedFs fs(&allocator, &disk);
  sim::EventQueue queue;

  workload::WorkloadSpec spec;
  spec.name = "office";
  workload::FileTypeSpec docs;
  docs.name = "docs";
  docs.num_files = 2'000;
  docs.num_users = 8;
  docs.process_time_ms = 25;
  docs.rw_bytes_mean = KiB(8);
  docs.extend_bytes_mean = KiB(4);
  docs.truncate_bytes = KiB(4);
  docs.initial_bytes_mean = KB(12);
  docs.initial_bytes_dev = KB(8);
  docs.read_ratio = 0.55;
  docs.write_ratio = 0.15;
  docs.extend_ratio = 0.2;
  docs.delete_ratio = 0.7;
  spec.types.push_back(docs);

  workload::OpGeneratorOptions options;
  options.seed = 17;
  workload::OpGenerator gen(&spec, &fs, &queue, options);
  fs.set_io_enabled(false);  // Instantaneous setup, as in the experiments.
  if (!gen.CreateInitialFiles().ok()) return "";
  fs.set_io_enabled(true);
  gen.ScheduleUserStreams();

  std::string trace;
  gen.on_op = [&trace](const workload::OpRecord& r) {
    const std::string op = workload::OpKindToString(r.op);
    trace += FormatString("%.3f,%s,f%llu,%llu\n", r.issued, op.c_str(),
                          static_cast<unsigned long long>(r.file),
                          static_cast<unsigned long long>(r.bytes));
  };
  queue.RunUntil(20'000);  // 20 simulated seconds.
  return trace;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("Recording a 20-second office workload...\n");
  const std::string trace_text = RecordTrace();
  auto ops = workload::TraceReplayer::Parse(trace_text);
  if (!ops.ok()) {
    std::printf("trace parse failed: %s\n", ops.status().ToString().c_str());
    return 1;
  }
  std::printf("Recorded %zu operations. Replaying against each policy:\n\n",
              ops->size());

  using Factory =
      std::function<std::unique_ptr<alloc::Allocator>(uint64_t)>;
  // A fixed array (not a vector) of policies; the growth machinery of
  // std::vector trips a GCC 12 -Warray-bounds false positive here.
  const std::pair<const char*, Factory> policies[] = {
      {"restricted-buddy",
       [](uint64_t du) -> std::unique_ptr<alloc::Allocator> {
         return std::make_unique<alloc::RestrictedBuddyAllocator>(
             du, alloc::RestrictedBuddyConfig{});
       }},
      {"buddy",
       [](uint64_t du) -> std::unique_ptr<alloc::Allocator> {
         return std::make_unique<alloc::BuddyAllocator>(du);
       }},
      {"extent-first-fit",
       [](uint64_t du) -> std::unique_ptr<alloc::Allocator> {
         alloc::ExtentAllocatorConfig cfg;
         cfg.range_means_du = {4, 16};
         return std::make_unique<alloc::ExtentAllocator>(du, cfg);
       }},
      {"log-structured",
       [](uint64_t du) -> std::unique_ptr<alloc::Allocator> {
         return std::make_unique<alloc::LogStructuredAllocator>(du);
       }},
      {"fixed-4K",
       [](uint64_t du) -> std::unique_ptr<alloc::Allocator> {
         return std::make_unique<alloc::FixedBlockAllocator>(du, 4);
       }},
  };

  Table table({"Policy", "Makespan", "Mean op latency", "Read MB",
               "Write MB"});
  for (const auto& [name, factory] : policies) {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(4));
    auto allocator = factory(disk.capacity_du());
    fs::ReadOptimizedFs fs(allocator.get(), &disk);
    workload::TraceReplayer replayer(*ops, &fs);
    sim::EventQueue queue;
    const workload::TraceReplayStats stats =
        replayer.ReplayClosedLoop(&queue);
    table.AddRow({name, FormatMillis(stats.makespan_ms),
                  FormatMillis(stats.MeanLatencyMs()),
                  FormatString("%.1f", stats.bytes_read / 1e6),
                  FormatString("%.1f", stats.bytes_written / 1e6)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
