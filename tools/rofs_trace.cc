// rofs_trace — offline analyzer for the Chrome trace-event JSON the
// simulator's --trace-out export writes (obs/trace_writer.cc).
//
// Reads one trace file and prints, in a fixed, diff-friendly format:
//   - the process/thread layout declared by the metadata events,
//   - per-phase breakdown tables: spans grouped by (process, category,
//     name) with count / total / mean / max duration,
//   - per-thread utilization: busy time as a fraction of the thread's
//     active interval,
//   - counter time series (e.g. queue depth) bucketed over the trace's
//     time range,
//   - the top-K slowest spans.
//
// Usage:
//   rofs_trace trace.json
//   rofs_trace --top N trace.json       # slowest-span list length (10)
//   rofs_trace --buckets N trace.json   # counter series buckets (8)
//
// The output depends only on the trace bytes — rows are sorted by
// process id, category, and name, and all numbers use fixed precision —
// so it is directly comparable across runs and usable as a golden.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

/// One parsed trace event; only the fields the exporter emits.
struct Event {
  std::string name;
  std::string cat;
  char ph = 0;       // M, X, i, C
  int pid = 0;
  int tid = 0;
  double ts = 0;     // microseconds (trace convention)
  double dur = 0;    // microseconds; X spans only
  double value = 0;  // C counters: args.value
  std::string arg_name;  // M metadata: args.name
};

/// Extracts the raw JSON value following "key": within `line`, or an
/// empty string when absent. Values are terminated by ',' '}' at the top
/// nesting level; string values keep their quotes.
std::string RawField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  if (pos >= line.size()) return "";
  if (line[pos] == '"') {
    size_t end = pos + 1;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    return line.substr(pos, end + 1 - pos);
  }
  size_t end = pos;
  int depth = 0;
  while (end < line.size()) {
    const char c = line[end];
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (depth == 0) break;
      --depth;
    }
    if (c == ',' && depth == 0) break;
    ++end;
  }
  return line.substr(pos, end - pos);
}

std::string Unquote(const std::string& raw) {
  if (raw.size() < 2 || raw.front() != '"') return raw;
  std::string out;
  out.reserve(raw.size() - 2);
  for (size_t i = 1; i + 1 < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 2 < raw.size()) ++i;
    out.push_back(raw[i]);
  }
  return out;
}

double NumField(const std::string& line, const std::string& key) {
  const std::string raw = RawField(line, key);
  return raw.empty() ? 0.0 : std::atof(raw.c_str());
}

/// Parses the exporter's one-event-per-line trace body. Unknown lines
/// (the header/footer brackets) are skipped.
bool ParseTrace(const std::string& path, std::vector<Event>* events) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    const std::string ph = Unquote(RawField(line, "ph"));
    if (ph.size() != 1) continue;
    Event e;
    e.ph = ph[0];
    e.name = Unquote(RawField(line, "name"));
    e.cat = Unquote(RawField(line, "cat"));
    e.pid = static_cast<int>(NumField(line, "pid"));
    e.tid = static_cast<int>(NumField(line, "tid"));
    e.ts = NumField(line, "ts");
    e.dur = NumField(line, "dur");
    const std::string args = RawField(line, "args");
    if (!args.empty()) {
      e.value = NumField(args, "value");
      e.arg_name = Unquote(RawField(args, "name"));
    }
    events->push_back(std::move(e));
  }
  return true;
}

std::string Label(const std::map<int, std::string>& names, int id,
                  const char* kind) {
  const auto it = names.find(id);
  char buf[64];
  if (it != names.end()) return it->second;
  std::snprintf(buf, sizeof(buf), "%s %d", kind, id);
  return buf;
}

struct SpanStats {
  uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top_k = 10;
  int buckets = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
      top_k = std::atoi(argv[i] + 6);
    } else if (std::strcmp(argv[i], "--buckets") == 0 && i + 1 < argc) {
      buckets = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--buckets=", 10) == 0) {
      buckets = std::atoi(argv[i] + 10);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty() || top_k < 0 || buckets < 1) {
    std::fprintf(stderr, "usage: %s [--top N] [--buckets N] trace.json\n",
                 argv[0]);
    return 2;
  }

  std::vector<Event> events;
  if (!ParseTrace(path, &events)) {
    std::fprintf(stderr, "rofs_trace: cannot read %s\n", path.c_str());
    return 1;
  }

  // Metadata: process and thread display names.
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
  uint64_t spans = 0, instants = 0, counters = 0;
  for (const Event& e : events) {
    if (e.ph == 'M' && e.name == "process_name") {
      process_names[e.pid] = e.arg_name;
    } else if (e.ph == 'M' && e.name == "thread_name") {
      thread_names[{e.pid, e.tid}] = e.arg_name;
    } else if (e.ph == 'X') {
      ++spans;
    } else if (e.ph == 'i') {
      ++instants;
    } else if (e.ph == 'C') {
      ++counters;
    }
  }
  std::printf("trace: %s\n", path.c_str());
  std::printf(
      "events: %zu (%llu spans, %llu instants, %llu counter samples, "
      "%zu processes)\n\n",
      events.size(), static_cast<unsigned long long>(spans),
      static_cast<unsigned long long>(instants),
      static_cast<unsigned long long>(counters), process_names.size());

  // Per-phase breakdown: spans grouped by (pid, cat, name).
  std::map<std::pair<int, std::pair<std::string, std::string>>, SpanStats>
      phases;
  for (const Event& e : events) {
    if (e.ph != 'X') continue;
    SpanStats& s = phases[{e.pid, {e.cat, e.name}}];
    ++s.count;
    s.total_us += e.dur;
    s.max_us = std::max(s.max_us, e.dur);
  }
  std::printf("== span breakdown by phase ==\n");
  std::printf("%-24s %-10s %-14s %8s %12s %10s %10s\n", "process", "cat",
              "name", "count", "total_ms", "mean_ms", "max_ms");
  for (const auto& [key, s] : phases) {
    std::printf("%-24s %-10s %-14s %8llu %12.3f %10.3f %10.3f\n",
                Label(process_names, key.first, "pid").c_str(),
                key.second.first.c_str(), key.second.second.c_str(),
                static_cast<unsigned long long>(s.count), s.total_us / 1000.0,
                s.total_us / 1000.0 / static_cast<double>(s.count),
                s.max_us / 1000.0);
  }

  // Per-thread utilization: busy span time over the thread's active
  // interval (first span start to last span end).
  struct ThreadLoad {
    double busy_us = 0;
    double first_us = 0;
    double last_us = 0;
    bool any = false;
  };
  std::map<std::pair<int, int>, ThreadLoad> loads;
  for (const Event& e : events) {
    if (e.ph != 'X') continue;
    ThreadLoad& t = loads[{e.pid, e.tid}];
    t.busy_us += e.dur;
    if (!t.any || e.ts < t.first_us) t.first_us = e.ts;
    if (!t.any || e.ts + e.dur > t.last_us) t.last_us = e.ts + e.dur;
    t.any = true;
  }
  std::printf("\n== thread utilization ==\n");
  std::printf("%-24s %-14s %12s %12s %8s\n", "process", "thread", "busy_ms",
              "span_ms", "util");
  for (const auto& [key, t] : loads) {
    const double span_us = t.last_us - t.first_us;
    const auto tn = thread_names.find(key);
    char tid_buf[32];
    std::snprintf(tid_buf, sizeof(tid_buf), "tid %d", key.second);
    std::printf("%-24s %-14s %12.3f %12.3f %7.1f%%\n",
                Label(process_names, key.first, "pid").c_str(),
                tn != thread_names.end() ? tn->second.c_str() : tid_buf,
                t.busy_us / 1000.0, span_us / 1000.0,
                span_us > 0 ? 100.0 * t.busy_us / span_us : 0.0);
  }

  // Counter time series (queue depth and friends), bucketed over each
  // counter's own time range; empty buckets repeat the last seen value
  // the way a step function would render.
  std::map<std::pair<int, std::string>, std::vector<const Event*>> series;
  for (const Event& e : events) {
    if (e.ph == 'C') series[{e.pid, e.name}].push_back(&e);
  }
  std::printf("\n== counter series (%d buckets, bucket means) ==\n", buckets);
  for (auto& [key, samples] : series) {
    std::stable_sort(samples.begin(), samples.end(),
                     [](const Event* a, const Event* b) {
                       return a->ts < b->ts;
                     });
    const double t0 = samples.front()->ts;
    const double t1 = samples.back()->ts;
    const double width = (t1 - t0) / buckets;
    std::printf("%s / %s: %zu samples, t=[%.3f, %.3f] ms\n",
                Label(process_names, key.first, "pid").c_str(),
                key.second.c_str(), samples.size(), t0 / 1000.0, t1 / 1000.0);
    std::printf("  ");
    double last = samples.front()->value;
    size_t next = 0;
    for (int b = 0; b < buckets; ++b) {
      const double end = b + 1 == buckets ? t1 + 1 : t0 + width * (b + 1);
      double sum = 0;
      uint64_t n = 0;
      while (next < samples.size() && samples[next]->ts < end) {
        sum += samples[next]->value;
        last = samples[next]->value;
        ++n;
        ++next;
      }
      std::printf("%s%.2f", b > 0 ? " " : "",
                  n > 0 ? sum / static_cast<double>(n) : last);
    }
    std::printf("\n");
  }

  // Top-K slowest spans; ties broken by (ts, pid, tid, name) so the
  // order is a pure function of the trace.
  std::vector<const Event*> slow;
  for (const Event& e : events) {
    if (e.ph == 'X') slow.push_back(&e);
  }
  std::stable_sort(slow.begin(), slow.end(),
                   [](const Event* a, const Event* b) {
                     if (a->dur != b->dur) return a->dur > b->dur;
                     if (a->ts != b->ts) return a->ts < b->ts;
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->name < b->name;
                   });
  if (slow.size() > static_cast<size_t>(top_k)) slow.resize(top_k);
  std::printf("\n== top %d slowest spans ==\n", top_k);
  std::printf("%-24s %-10s %-14s %12s %12s\n", "process", "cat", "name",
              "ts_ms", "dur_ms");
  for (const Event* e : slow) {
    std::printf("%-24s %-10s %-14s %12.3f %12.3f\n",
                Label(process_names, e->pid, "pid").c_str(), e->cat.c_str(),
                e->name.c_str(), e->ts / 1000.0, e->dur / 1000.0);
  }
  return 0;
}
