// bench_diff — the CI perf-regression gate.
//
// Compares two Google Benchmark JSON files (the BENCH_*.json artifacts
// the bench-smoke CI job uploads) and exits non-zero when any benchmark
// regressed significantly:
//
//   bench_diff base.json new.json
//   bench_diff --metric real_time ...    # cpu_time (default) | real_time
//   bench_diff --confidence 0.99 ...     # Welch t-test confidence (0.95)
//   bench_diff --min-ratio 1.05 ...      # ignore smaller slowdowns
//   bench_diff --threshold 1.25 ...      # single-sample fallback ratio
//
// With repetition samples on both sides (run_type "iteration"; aggregate
// rows are skipped) a benchmark regresses when new/base exceeds
// --min-ratio AND a one-sided Welch t-test rejects "no slowdown" at the
// configured confidence — the same Student-t machinery (src/stats/) the
// simulator uses for replicate confidence intervals. With a single
// sample on either side there is no variance estimate, so the gate falls
// back to the plain --threshold ratio.
//
// Output is sorted by benchmark name and prints one verdict per name, so
// CI logs diff cleanly across runs.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "stats/student_t.h"

namespace {

/// Raw JSON value following "key": inside `text` starting at `from`
/// (first occurrence); empty when absent. String values keep quotes.
std::string RawField(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n')) {
    ++pos;
  }
  if (pos >= text.size()) return "";
  if (text[pos] == '"') {
    size_t end = pos + 1;
    while (end < text.size() && text[end] != '"') {
      if (text[end] == '\\') ++end;
      ++end;
    }
    return text.substr(pos + 1, end - pos - 1);
  }
  size_t end = pos;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n') {
    ++end;
  }
  return text.substr(pos, end - pos);
}

/// Per-benchmark samples of the compared metric, keyed by name.
using Samples = std::map<std::string, std::vector<double>>;

/// Parses the "benchmarks" array of a Google Benchmark JSON file:
/// brace-matched objects (string-aware), aggregate rows skipped.
bool ParseBenchJson(const std::string& path, const std::string& metric,
                    Samples* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  size_t pos = text.find("\"benchmarks\"");
  if (pos == std::string::npos) return false;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return false;
  while (true) {
    size_t open = text.find_first_of("{]", pos);
    if (open == std::string::npos || text[open] == ']') break;
    // Match the object's closing brace, skipping string contents.
    size_t end = open;
    int depth = 0;
    bool in_string = false;
    for (; end < text.size(); ++end) {
      const char c = text[end];
      if (in_string) {
        if (c == '\\') ++end;
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) break;
    }
    if (end >= text.size()) break;
    const std::string obj = text.substr(open, end + 1 - open);
    pos = end + 1;

    const std::string run_type = RawField(obj, "run_type");
    if (run_type == "aggregate") continue;
    const std::string name = RawField(obj, "name");
    const std::string value = RawField(obj, metric);
    if (name.empty() || value.empty()) continue;
    (*out)[name].push_back(std::atof(value.c_str()));
  }
  return true;
}

struct Moments {
  double mean = 0;
  double var = 0;  // Sample variance (n - 1).
  size_t n = 0;
};

Moments MomentsOf(const std::vector<double>& v) {
  Moments m;
  m.n = v.size();
  for (double x : v) m.mean += x;
  m.mean /= static_cast<double>(m.n);
  if (m.n >= 2) {
    for (double x : v) m.var += (x - m.mean) * (x - m.mean);
    m.var /= static_cast<double>(m.n - 1);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, new_path;
  std::string metric = "cpu_time";
  double confidence = 0.95;
  double min_ratio = 1.05;
  double threshold = 1.25;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
      metric = argv[++i];
    } else if (std::strncmp(argv[i], "--metric=", 9) == 0) {
      metric = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--confidence") == 0 && i + 1 < argc) {
      confidence = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--confidence=", 13) == 0) {
      confidence = std::atof(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--min-ratio") == 0 && i + 1 < argc) {
      min_ratio = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--min-ratio=", 12) == 0) {
      min_ratio = std::atof(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::atof(argv[i] + 12);
    } else if (argv[i][0] != '-' && base_path.empty()) {
      base_path = argv[i];
    } else if (argv[i][0] != '-' && new_path.empty()) {
      new_path = argv[i];
    } else {
      bad = true;
    }
  }
  if (bad || new_path.empty() || confidence <= 0 || confidence >= 1) {
    std::fprintf(stderr,
                 "usage: %s [--metric cpu_time|real_time] "
                 "[--confidence C] [--min-ratio R] [--threshold R] "
                 "base.json new.json\n",
                 argv[0]);
    return 2;
  }

  Samples base, fresh;
  if (!ParseBenchJson(base_path, metric, &base)) {
    std::fprintf(stderr, "bench_diff: cannot parse %s\n", base_path.c_str());
    return 2;
  }
  if (!ParseBenchJson(new_path, metric, &fresh)) {
    std::fprintf(stderr, "bench_diff: cannot parse %s\n", new_path.c_str());
    return 2;
  }

  std::printf("bench_diff: %s vs %s (%s, confidence %.2f, min-ratio %.2f, "
              "single-sample threshold %.2f)\n",
              base_path.c_str(), new_path.c_str(), metric.c_str(), confidence,
              min_ratio, threshold);
  int regressions = 0;
  int compared = 0;
  for (const auto& [name, new_samples] : fresh) {
    const auto it = base.find(name);
    if (it == base.end()) {
      std::printf("  NEW        %-40s (no baseline)\n", name.c_str());
      continue;
    }
    ++compared;
    const Moments b = MomentsOf(it->second);
    const Moments m = MomentsOf(new_samples);
    const double ratio = b.mean > 0 ? m.mean / b.mean : 1.0;
    bool regressed;
    std::string detail;
    char buf[160];
    if (b.n >= 2 && m.n >= 2) {
      // One-sided Welch t-test for "new is slower than base".
      const double se2 = b.var / static_cast<double>(b.n) +
                         m.var / static_cast<double>(m.n);
      double p_slower = m.mean > b.mean ? 1.0 : 0.0;  // se == 0 degenerate
      if (se2 > 0) {
        const double t = (m.mean - b.mean) / std::sqrt(se2);
        const double vb = b.var / static_cast<double>(b.n);
        const double vm = m.var / static_cast<double>(m.n);
        const double dof_num = (vb + vm) * (vb + vm);
        const double dof_den =
            vb * vb / static_cast<double>(b.n - 1) +
            vm * vm / static_cast<double>(m.n - 1);
        const int dof =
            dof_den > 0 ? std::max(1, static_cast<int>(dof_num / dof_den))
                        : static_cast<int>(b.n + m.n - 2);
        p_slower = rofs::stats::StudentTCdf(t, dof);
      }
      regressed = ratio > min_ratio && p_slower > confidence;
      std::snprintf(buf, sizeof(buf),
                    "%.3fx (%.1f -> %.1f, n=%zu/%zu, P[slower]=%.3f)", ratio,
                    b.mean, m.mean, b.n, m.n, p_slower);
      detail = buf;
    } else {
      regressed = ratio > threshold;
      std::snprintf(buf, sizeof(buf),
                    "%.3fx (%.1f -> %.1f, n=%zu/%zu, ratio gate)", ratio,
                    b.mean, m.mean, b.n, m.n);
      detail = buf;
    }
    const char* verdict = regressed          ? "REGRESSION"
                          : ratio < 1.0 / min_ratio ? "improved"
                                                    : "ok";
    std::printf("  %-10s %-40s %s\n", verdict, name.c_str(), detail.c_str());
    if (regressed) ++regressions;
  }
  for (const auto& [name, samples] : base) {
    if (fresh.find(name) == fresh.end()) {
      std::printf("  MISSING    %-40s (present in baseline only)\n",
                  name.c_str());
    }
  }
  std::printf("bench_diff: %d compared, %d regression%s\n", compared,
              regressions, regressions == 1 ? "" : "s");
  return regressions > 0 ? 1 : 0;
}
