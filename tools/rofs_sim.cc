// rofs_sim — the configurable simulator command-line tool.
//
// Reads an INI-style config describing the disk system, the allocation
// policy, the workload, and the tests to run (the same knobs the paper's
// simulator exposed), runs them, and prints the results.
//
// Usage:
//   rofs_sim <config.ini>
//   rofs_sim --dump <config.ini>           # echo the materialized config
//   rofs_sim --stats <config.ini>          # add per-type/per-op stats
//   rofs_sim --trace out.csv <config.ini>  # dump the application-test
//                                          # operation trace as CSV
//
// See configs/ for ready-made files reproducing the paper's setups.

#include <cstdio>
#include <cstring>
#include <string>

#include "config/sim_config.h"
#include "exp/reporting.h"
#include "exp/trace.h"
#include "util/table.h"

using namespace rofs;

namespace {

struct Options {
  std::string path;
  bool dump_only = false;
  bool stats = false;
  std::string trace_path;
};

int Run(const Options& opts) {
  const std::string& path = opts.path;
  const bool dump_only = opts.dump_only;
  auto sim = config::LoadSimConfig(path);
  if (!sim.ok()) {
    std::fprintf(stderr, "rofs_sim: %s\n", sim.status().ToString().c_str());
    return 1;
  }

  disk::DiskSystem probe(sim->disk);
  std::printf("config:    %s\n", path.c_str());
  std::printf("disk:      %s\n", probe.DescribeConfig().c_str());
  std::printf("policy:    %s\n", sim->policy_label.c_str());
  std::printf("workload:  %s (%zu file types, %s initial)\n",
              sim->workload.name.c_str(), sim->workload.types.size(),
              FormatBytes(sim->workload.TotalInitialBytes()).c_str());
  for (const auto& t : sim->workload.types) {
    std::printf(
        "  - %-12s files=%u users=%u initial=%s rw=%s "
        "r/w/e=%.2f/%.2f/%.2f\n",
        t.name.c_str(), t.num_files, t.num_users,
        FormatBytes(t.initial_bytes_mean).c_str(),
        FormatBytes(t.rw_bytes_mean).c_str(), t.read_ratio, t.write_ratio,
        t.extend_ratio);
  }
  std::printf("\n");
  if (dump_only) return 0;

  exp::Experiment experiment(sim->workload, sim->allocator_factory,
                             sim->disk, sim->experiment);
  exp::OpTrace trace;
  if (!opts.trace_path.empty()) {
    experiment.set_instrument(
        [&trace](workload::OpGenerator* gen) { trace.Attach(gen); });
  }
  std::string stats_report;
  if (opts.stats) experiment.set_stats_sink(&stats_report);
  if (sim->tests.allocation) {
    auto result = experiment.RunAllocationTest();
    if (!result.ok()) {
      std::fprintf(stderr, "allocation test: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("allocation test:   %s\n", exp::Summarize(*result).c_str());
    std::fflush(stdout);
  }
  if (sim->tests.application && sim->tests.sequential) {
    auto pair = experiment.RunPerformancePair();
    if (!pair.ok()) {
      std::fprintf(stderr, "performance tests: %s\n",
                   pair.status().ToString().c_str());
      return 1;
    }
    std::printf("application test:  %s\n",
                exp::Summarize(pair->application).c_str());
    std::printf("sequential test:   %s\n",
                exp::Summarize(pair->sequential).c_str());
  } else if (sim->tests.application) {
    auto result = experiment.RunApplicationTest();
    if (!result.ok()) {
      std::fprintf(stderr, "application test: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("application test:  %s\n", exp::Summarize(*result).c_str());
  } else if (sim->tests.sequential) {
    auto result = experiment.RunSequentialTest();
    if (!result.ok()) {
      std::fprintf(stderr, "sequential test: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("sequential test:   %s\n", exp::Summarize(*result).c_str());
  }
  if (opts.stats && !stats_report.empty()) {
    std::printf("\nper-type operation statistics (application phase):\n%s",
                stats_report.c_str());
  }
  if (!opts.trace_path.empty()) {
    const Status ws = trace.WriteCsv(opts.trace_path, sim->workload);
    if (!ws.ok()) {
      std::fprintf(stderr, "trace: %s\n", ws.ToString().c_str());
    } else {
      std::printf("trace:             %zu ops -> %s\n", trace.size(),
                  opts.trace_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  Options opts;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      opts.dump_only = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opts.trace_path = argv[++i];
    } else if (opts.path.empty() && argv[i][0] != '-') {
      opts.path = argv[i];
    } else {
      bad = true;
      break;
    }
  }
  if (bad || opts.path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--dump] [--stats] [--trace out.csv] "
                 "<config.ini>\n",
                 argv[0]);
    return 2;
  }
  return Run(opts);
}
