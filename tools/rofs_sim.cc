// rofs_sim — the configurable simulator command-line tool.
//
// Reads an INI-style config describing the disk system, the allocation
// policy, the workload, and the tests to run (the same knobs the paper's
// simulator exposed), runs them, and prints the results.
//
// Usage:
//   rofs_sim <config.ini>
//   rofs_sim --dump <config.ini>           # echo the materialized config
//   rofs_sim --stats <config.ini>          # add per-type/per-op stats
//   rofs_sim --trace out.csv <config.ini>  # dump the application-test
//                                          # operation trace as CSV
//   rofs_sim --jobs N <config.ini>         # run independent tests on N
//                                          # threads (also: ROFS_JOBS)
//   rofs_sim --sim-threads N <config.ini>  # override the config's [sim]
//                                          # threads: intra-run sharded
//                                          # engine (0 = classic serial;
//                                          # output byte-identical for
//                                          # any N >= 1)
//   rofs_sim --replicates N <config.ini>   # run every test N times on
//                                          # independent seed streams and
//                                          # report mean +- 95% CI (also:
//                                          # ROFS_REPLICATES)
//   rofs_sim --jsonl out.jsonl             # write one RunRecord per
//   rofs_sim --csv out.csv                 # replicate (also: ROFS_JSONL
//                                          # / ROFS_CSV)
//   rofs_sim --metrics <config.ini>        # add obs.* metric columns to
//                                          # the artifacts (also:
//                                          # ROFS_METRICS)
//   rofs_sim --trace-out t.json            # write a Chrome trace-event
//                                          # JSON (Perfetto) of the
//                                          # measured phases (also:
//                                          # ROFS_TRACE; buffer size:
//                                          # --trace-events N /
//                                          # ROFS_TRACE_EVENTS)
//   rofs_sim --trace-jsonl t.jsonl         # dump the operation trace as
//                                          # JSONL with a trailing
//                                          # dropped-records summary line
//   rofs_sim --window-ms N                 # sample windowed time-series
//                                          # into the JSONL records and a
//                                          # <csv>.series.csv companion
//                                          # (also: ROFS_WINDOW_MS;
//                                          # overrides [obs] window_ms)
//
// The enabled tests (allocation; application+sequential; the aging study
// when [test] run includes "aging") are independent
// simulations, so --jobs N > 1 runs them concurrently; the printed output
// is byte-identical for any job count. --trace forces serial execution
// (the trace spans every test's operation stream, in order). With
// replicates, the trace and --stats report cover replicate 0 only (the
// stream that reproduces the single-run results).
//
// See configs/ for ready-made files reproducing the paper's setups.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "config/sim_config.h"
#include "fs/read_optimized_fs.h"
#include "workload/aging.h"
#include "obs/options.h"
#include "obs/trace_writer.h"
#include "sim/event_queue.h"
#include "exp/reporting.h"
#include "exp/run_record.h"
#include "exp/trace.h"
#include "runner/sweep_runner.h"
#include "stats/summary.h"
#include "util/table.h"

using namespace rofs;

namespace {

struct Options {
  std::string path;
  bool dump_only = false;
  bool stats = false;
  std::string trace_path;
  int jobs = 0;        // 0: ROFS_JOBS, else hardware threads.
  int replicates = 0;  // 0: ROFS_REPLICATES, else 1.
  int sim_threads = -1;  // -1: keep the config's [sim] threads.
  std::string jsonl_path;
  std::string csv_path;
  /// Observability (see bench/common.h for the same knobs): obs.metrics
  /// from --metrics / ROFS_METRICS, obs.trace set when trace_out (from
  /// --trace-out / ROFS_TRACE) is non-empty.
  obs::Options obs;
  std::string trace_out;
  /// Operation-trace JSONL destination (--trace-jsonl); like --trace, it
  /// records replicate 0's operation stream and forces --jobs 1.
  std::string trace_jsonl_path;
};

int Run(const Options& opts) {
  const std::string& path = opts.path;
  const bool dump_only = opts.dump_only;
  auto sim = config::LoadSimConfig(path);
  if (!sim.ok()) {
    std::fprintf(stderr, "rofs_sim: %s\n", sim.status().ToString().c_str());
    return 1;
  }
  if (opts.sim_threads >= 0) {
    sim->experiment.engine.threads = opts.sim_threads;
  }
  // CLI observability knobs override the config file's [obs] section; a
  // window_ms only present in the config still takes effect.
  obs::Options obs_opts = opts.obs;
  if (obs_opts.window_ms <= 0) {
    obs_opts.window_ms = sim->experiment.obs.window_ms;
  }

  disk::DiskSystem probe(sim->disk);
  std::printf("config:    %s\n", path.c_str());
  std::printf("disk:      %s\n", probe.DescribeConfig().c_str());
  std::printf("policy:    %s\n", sim->policy_label.c_str());
  std::printf("workload:  %s (%zu file types, %s initial)\n",
              sim->workload.name.c_str(), sim->workload.types.size(),
              FormatBytes(sim->workload.TotalInitialBytes()).c_str());
  for (const auto& t : sim->workload.types) {
    std::printf(
        "  - %-12s files=%u users=%u initial=%s rw=%s "
        "r/w/e=%.2f/%.2f/%.2f\n",
        t.name.c_str(), t.num_files, t.num_users,
        FormatBytes(t.initial_bytes_mean).c_str(),
        FormatBytes(t.rw_bytes_mean).c_str(), t.read_ratio, t.write_ratio,
        t.extend_ratio);
  }
  std::printf("\n");
  if (dump_only) return 0;

  runner::SweepOptions sweep_options;
  sweep_options.jobs = runner::SweepRunner::ResolveJobs(opts.jobs);
  const int replicates =
      runner::SweepRunner::ResolveReplicates(opts.replicates);
  const bool tracing =
      !opts.trace_path.empty() || !opts.trace_jsonl_path.empty();
  if (tracing && sweep_options.jobs > 1) {
    std::fprintf(stderr,
                 "rofs_sim: --trace/--trace-jsonl record every test's "
                 "operation stream in order; forcing --jobs 1\n");
    sweep_options.jobs = 1;
  }

  exp::OpTrace trace;
  std::string stats_report;
  const config::SimConfig* cfg = &*sim;

  // Each enabled test group is an independent simulation (every Run*
  // call builds a fresh one), so they parallelize as a tiny sweep.
  // Replicate r of a group runs on seed stream r (stream 0 is the config
  // seed itself) and writes its RunRecord into a private slot; the trace
  // and --stats report attach to replicate 0 only.
  std::vector<exp::RunRecord> records;
  std::vector<std::string> group_labels;
  std::vector<runner::RunSpec> specs;
  if (cfg->tests.allocation) {
    runner::RunSpec spec;
    spec.label = "allocation test";
    spec.base_seed = cfg->experiment.seed;
    spec.run = [cfg, tracing, &trace, replicates, &records,
                obs = obs_opts, label = spec.label](
                   const runner::RunContext& ctx)
        -> StatusOr<std::vector<std::string>> {
      obs::ScopedRunLabel run_label(
          label + " r" +
          std::to_string(ctx.index % static_cast<size_t>(replicates)));
      exp::ExperimentConfig ec = cfg->experiment;
      ec.seed = ctx.seed;
      ec.obs = obs;
      exp::Experiment experiment(cfg->workload, cfg->allocator_factory,
                                 cfg->disk, ec);
      if (tracing && ctx.index % replicates == 0) {
        experiment.set_instrument(
            [&trace](workload::OpGenerator* gen) { trace.Attach(gen); });
      }
      auto result = experiment.RunAllocationTest();
      if (!result.ok()) return result.status();
      exp::RunRecord& record = records[ctx.index];
      record.experiment = "rofs_sim";
      record.cell = label;
      record.replicate = static_cast<int>(ctx.index % replicates);
      record.seed = ctx.seed;
      record.MergeMetrics(result->ToRecord(), "alloc.");
      return std::vector<std::string>{"allocation test:   " +
                                      exp::Summarize(*result)};
    };
    group_labels.push_back(spec.label);
    specs.push_back(std::move(spec));
  }
  if (cfg->tests.application || cfg->tests.sequential) {
    runner::RunSpec spec;
    spec.label = cfg->tests.application && cfg->tests.sequential
                     ? "performance tests"
                     : (cfg->tests.application ? "application test"
                                               : "sequential test");
    spec.base_seed = cfg->experiment.seed;
    const bool want_stats = opts.stats;
    spec.run = [cfg, tracing, &trace, want_stats, &stats_report,
                replicates, &records, obs = obs_opts, label = spec.label](
                   const runner::RunContext& ctx)
        -> StatusOr<std::vector<std::string>> {
      const bool primary = ctx.index % replicates == 0;
      obs::ScopedRunLabel run_label(
          label + " r" +
          std::to_string(ctx.index % static_cast<size_t>(replicates)));
      exp::ExperimentConfig ec = cfg->experiment;
      ec.seed = ctx.seed;
      ec.obs = obs;
      exp::Experiment experiment(cfg->workload, cfg->allocator_factory,
                                 cfg->disk, ec);
      if (tracing && primary) {
        experiment.set_instrument(
            [&trace](workload::OpGenerator* gen) { trace.Attach(gen); });
      }
      if (want_stats && primary) experiment.set_stats_sink(&stats_report);
      exp::RunRecord& record = records[ctx.index];
      record.experiment = "rofs_sim";
      record.cell = label;
      record.replicate = static_cast<int>(ctx.index % replicates);
      record.seed = ctx.seed;
      if (cfg->tests.application && cfg->tests.sequential) {
        auto pair = experiment.RunPerformancePair();
        if (!pair.ok()) return pair.status();
        record.MergeMetrics(pair->application.ToRecord(), "app.");
        record.MergeMetrics(pair->sequential.ToRecord(), "seq.");
        return std::vector<std::string>{
            "application test:  " + exp::Summarize(pair->application),
            "sequential test:   " + exp::Summarize(pair->sequential)};
      }
      if (cfg->tests.application) {
        auto result = experiment.RunApplicationTest();
        if (!result.ok()) return result.status();
        record.MergeMetrics(result->ToRecord(), "app.");
        return std::vector<std::string>{"application test:  " +
                                        exp::Summarize(*result)};
      }
      auto result = experiment.RunSequentialTest();
      if (!result.ok()) return result.status();
      record.MergeMetrics(result->ToRecord(), "seq.");
      return std::vector<std::string>{"sequential test:   " +
                                      exp::Summarize(*result)};
    };
    group_labels.push_back(spec.label);
    specs.push_back(std::move(spec));
  }
  if (cfg->tests.aging) {
    runner::RunSpec spec;
    spec.label = "aging study";
    spec.base_seed = cfg->aging.seed;
    spec.run = [cfg, replicates, &records, label = spec.label](
                   const runner::RunContext& ctx)
        -> StatusOr<std::vector<std::string>> {
      obs::ScopedRunLabel run_label(
          label + " r" +
          std::to_string(ctx.index % static_cast<size_t>(replicates)));
      // The aging study runs against a passive (queue-free) file system:
      // churn with I/O disabled, probes at a monotonic clock. No event
      // queue, so its output is byte-identical for any --jobs or
      // --sim-threads setting by construction.
      disk::DiskSystem disk(cfg->disk);
      std::unique_ptr<alloc::Allocator> allocator =
          cfg->allocator_factory(disk.capacity_du());
      fs::ReadOptimizedFs fs(allocator.get(), &disk,
                             cfg->experiment.fs_options);
      workload::AgingOptions options = cfg->aging;
      options.seed = ctx.seed;
      workload::AgingDriver driver(&cfg->workload, &fs, options);
      ROFS_RETURN_IF_ERROR(driver.CreateInitialFiles());
      std::vector<std::string> lines;
      lines.push_back(FormatString(
          "aging study:       %d rounds x %llu ops, probing %u files",
          options.rounds,
          static_cast<unsigned long long>(options.ops_per_round),
          options.probe_files));
      for (int r = 0; r < options.rounds; ++r) {
        const workload::AgingRound round = driver.RunRound();
        lines.push_back(FormatString(
            "  round %3d: util=%.3f read_bw=%.4f extents/file=%.2f "
            "int_frag=%.3f failed=%llu",
            round.round, round.utilization, round.read_bw_frac,
            round.extents_per_file, round.internal_frag,
            static_cast<unsigned long long>(round.failed_allocs)));
      }
      const std::vector<workload::AgingRound>& rounds = driver.rounds();
      const workload::AgingRound& first = rounds.front();
      const workload::AgingRound& last = rounds.back();
      const int steady = driver.DetectSteadyRound();
      const double retained = first.read_bw_frac > 0.0
                                  ? last.read_bw_frac / first.read_bw_frac
                                  : 0.0;
      lines.push_back(FormatString(
          "aging steady:      %s, read_bw %.4f -> %.4f (%.1f%% retained)",
          steady >= 0 ? FormatString("round %d", steady).c_str()
                      : "not reached",
          first.read_bw_frac, last.read_bw_frac, retained * 100.0));
      exp::RunRecord& record = records[ctx.index];
      record.experiment = "rofs_sim";
      record.cell = label;
      record.replicate = static_cast<int>(ctx.index % replicates);
      record.seed = ctx.seed;
      exp::RunRecord m;
      m.Set("rounds", static_cast<double>(rounds.size()));
      m.Set("churn_ops", static_cast<double>(driver.churn_ops()));
      m.Set("steady_round", static_cast<double>(steady));
      m.Set("read_bw_initial", first.read_bw_frac);
      m.Set("read_bw_final", last.read_bw_frac);
      m.Set("read_bw_retained", retained);
      m.Set("util_final", last.utilization);
      m.Set("extents_per_file_final", last.extents_per_file);
      m.Set("internal_frag_final", last.internal_frag);
      m.Set("failed_allocs", static_cast<double>(last.failed_allocs));
      record.MergeMetrics(m, "aging.");
      return lines;
    };
    group_labels.push_back(spec.label);
    specs.push_back(std::move(spec));
  }

  records.assign(specs.size() * static_cast<size_t>(replicates),
                 exp::RunRecord{});
  const uint64_t events0 = sim::RetiredDispatchedEvents();
  const auto t0 = std::chrono::steady_clock::now();
  runner::SweepRunner sweep_runner(sweep_options);
  std::vector<runner::RunResult> results = sweep_runner.Run(
      runner::SweepRunner::ExpandReplicates(std::move(specs), replicates));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t events = sim::RetiredDispatchedEvents() - events0;
  std::fprintf(stderr, "rofs_sim: %llu events dispatched, %.2fM events/s\n",
               static_cast<unsigned long long>(events),
               wall_s > 0 ? events / wall_s / 1e6 : 0.0);
  for (const runner::RunResult& result : results) {
    if (!result.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", result.label.c_str(),
                   result.status.ToString().c_str());
      return 1;
    }
    // One replicate prints exactly like the pre-replication tool; with
    // more, the per-replicate lines are replaced by summary tables below.
    if (replicates == 1) {
      for (const std::string& line : result.cells) {
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
      }
    }
  }

  if (replicates > 1) {
    for (size_t g = 0; g < group_labels.size(); ++g) {
      stats::MetricSet metrics;
      for (int r = 0; r < replicates; ++r) {
        metrics.AddAll(records[g * static_cast<size_t>(replicates) + r]
                           .metrics);
      }
      std::printf("%s (%d replicates, mean +- 95%% CI):\n%s\n",
                  group_labels[g].c_str(), replicates,
                  exp::SummaryTable(metrics.Summarize(0.95)).c_str());
      std::fflush(stdout);
    }
  }

  std::string jsonl = opts.jsonl_path;
  if (jsonl.empty() && replicates > 1) jsonl = "rofs_sim.jsonl";
  if (!jsonl.empty()) {
    const Status ws = exp::WriteJsonl(jsonl, records);
    if (!ws.ok()) {
      std::fprintf(stderr, "jsonl: %s\n", ws.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "rofs_sim: wrote %zu records -> %s\n",
                 records.size(), jsonl.c_str());
  }
  if (!opts.csv_path.empty()) {
    const Status ws = exp::WriteCsv(opts.csv_path, records);
    if (!ws.ok()) {
      std::fprintf(stderr, "csv: %s\n", ws.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "rofs_sim: wrote %zu records -> %s\n",
                 records.size(), opts.csv_path.c_str());
    // Windowed-series companion; written only when a record carries one.
    const std::string series_path = opts.csv_path + ".series.csv";
    const Status ss = exp::WriteSeriesCsv(series_path, records);
    if (!ss.ok()) {
      std::fprintf(stderr, "csv: %s\n", ss.ToString().c_str());
      return 1;
    }
  }

  if (opts.obs.trace && !opts.trace_out.empty()) {
    double first_start = 0;
    bool have_start = false;
    for (const runner::RunResult& r : results) {
      if (!have_start || r.wall_start_ms < first_start) {
        first_start = r.wall_start_ms;
        have_start = true;
      }
    }
    for (const runner::RunResult& r : results) {
      obs::TraceCollector::Global().AddWallSpan(
          r.label, r.wall_start_ms - first_start, r.wall_ms);
    }
    obs::WriteChromeTrace(opts.trace_out);
  }

  if (opts.stats && !stats_report.empty()) {
    std::printf("\nper-type operation statistics (application phase):\n%s",
                stats_report.c_str());
  }
  if (!opts.trace_path.empty()) {
    const Status ws = trace.WriteCsv(opts.trace_path, sim->workload);
    if (!ws.ok()) {
      std::fprintf(stderr, "trace: %s\n", ws.ToString().c_str());
    } else {
      std::printf("trace:             %zu ops -> %s\n", trace.size(),
                  opts.trace_path.c_str());
    }
  }
  if (!opts.trace_jsonl_path.empty()) {
    const Status ws = trace.WriteJsonl(opts.trace_jsonl_path, sim->workload);
    if (!ws.ok()) {
      std::fprintf(stderr, "trace: %s\n", ws.ToString().c_str());
    } else {
      std::printf("trace:             %zu ops -> %s\n", trace.size(),
                  opts.trace_jsonl_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  Options opts;
  bool bad = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      opts.dump_only = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.stats = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opts.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-jsonl") == 0 && i + 1 < argc) {
      opts.trace_jsonl_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-jsonl=", 14) == 0) {
      opts.trace_jsonl_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--window-ms") == 0 && i + 1 < argc) {
      opts.obs.window_ms = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--window-ms=", 12) == 0) {
      opts.obs.window_ms = std::atof(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opts.obs.metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opts.trace_out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      opts.trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-events") == 0 && i + 1 < argc) {
      opts.obs.trace_events = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
      opts.obs.trace_events = static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      opts.sim_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--sim-threads=", 14) == 0) {
      opts.sim_threads = std::atoi(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--replicates") == 0 && i + 1 < argc) {
      opts.replicates = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--replicates=", 13) == 0) {
      opts.replicates = std::atoi(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
      opts.jsonl_path = argv[++i];
    } else if (std::strncmp(argv[i], "--jsonl=", 8) == 0) {
      opts.jsonl_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      opts.csv_path = argv[++i];
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      opts.csv_path = argv[i] + 6;
    } else if (opts.path.empty() && argv[i][0] != '-') {
      opts.path = argv[i];
    } else {
      bad = true;
      break;
    }
  }
  if (opts.jsonl_path.empty()) {
    if (const char* env = std::getenv("ROFS_JSONL");
        env != nullptr && env[0] != '\0') {
      opts.jsonl_path = env;
    }
  }
  if (opts.csv_path.empty()) {
    if (const char* env = std::getenv("ROFS_CSV");
        env != nullptr && env[0] != '\0') {
      opts.csv_path = env;
    }
  }
  if (!opts.obs.metrics) {
    if (const char* env = std::getenv("ROFS_METRICS");
        env != nullptr && env[0] != '\0') {
      opts.obs.metrics = true;
    }
  }
  if (opts.trace_out.empty()) {
    if (const char* env = std::getenv("ROFS_TRACE");
        env != nullptr && env[0] != '\0') {
      opts.trace_out = env;
    }
  }
  if (const char* env = std::getenv("ROFS_TRACE_EVENTS");
      env != nullptr && env[0] != '\0' &&
      opts.obs.trace_events == obs::Options{}.trace_events) {
    opts.obs.trace_events = static_cast<size_t>(std::atoll(env));
  }
  if (opts.obs.window_ms <= 0) {
    if (const char* env = std::getenv("ROFS_WINDOW_MS");
        env != nullptr && env[0] != '\0') {
      opts.obs.window_ms = std::atof(env);
    }
  }
  opts.obs.trace = !opts.trace_out.empty();
  if (bad || opts.path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--dump] [--stats] [--trace out.csv] "
                 "[--trace-jsonl out.jsonl] [--metrics] "
                 "[--trace-out out.json] [--trace-events N] "
                 "[--window-ms N] [--jobs N] [--sim-threads N] "
                 "[--replicates N] [--jsonl out.jsonl] [--csv out.csv] "
                 "<config.ini>\n",
                 argv[0]);
    return 2;
  }
  return Run(opts);
}
