// Figure 9 (extension, ROADMAP item 1): intra-run event-loop scaling
// and million-user state capacity. The paper's simulator is strictly
// serial; DESIGN.md §11 shards disk-internal events per drive behind a
// conservative time-window engine whose output is byte-identical for
// every worker count. This driver measures what that buys:
//
//   * Scaling grid: the sequential test (whole-file transfers striped
//     across every drive — the workload with the most concurrent
//     per-disk work) over disks x sim-threads, with C-SCAN scheduling
//     so the drives run in dispatch mode. Deterministic simulation
//     results go to stdout and are REQUIRED to be byte-identical
//     across all thread counts >= 1 (the driver exits non-zero on
//     divergence); wall-clock seconds and speedups go to stderr, where
//     they can never perturb a golden. threads=0 (the classic
//     single-queue engine) is timed for reference but excluded from
//     the identity check: under a reordering scheduler the classic
//     engine's mirror-target staleness differs (DESIGN.md §11.4).
//
//   * Capacity cell: a 10^6-user closed-loop workload with the SoA
//     user table and the hierarchical timer wheel (ISSUE 8). The cell
//     demonstrates that a million mostly-idle users fit in RAM; peak
//     RSS (VmHWM) is reported on stderr.
//
// ROFS_FIG9_SMOKE=1 shrinks the grid (4 disks, threads {1,2}, 10^4
// users) for CI: the smoke stdout is pinned with a golden.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "exp/reporting.h"
#include "sched/scheduler.h"
#include "workload/workloads.h"

using namespace rofs;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size of this process in KiB (VmHWM from
/// /proc/self/status), or -1 when unavailable (non-Linux).
long PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::atol(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// Sequential-heavy workload scaled to `disks` drives: 3 x 64M files
/// per drive (~56% initial utilization, inside the fill band below, so
/// no aging churn is needed) and 2 whole-file streams per drive to keep
/// every queue deep.
workload::WorkloadSpec ScalingWorkload(uint32_t disks) {
  workload::FileTypeSpec type;
  type.name = "seqheavy";
  type.num_files = 3 * disks;
  type.num_users = 2 * disks;
  type.process_time_ms = 10.0;
  type.hit_frequency_ms = 100.0;
  type.rw_bytes_mean = 512 * kKiB;
  type.alloc_size_bytes = 1 * kMiB;
  type.initial_bytes_mean = 64 * kMiB;
  type.truncate_bytes = 1 * kMiB;
  type.read_ratio = 0.5;
  type.write_ratio = 0.5;
  type.extend_ratio = 0.0;
  type.access = workload::AccessPattern::kSequentialBurst;

  workload::WorkloadSpec spec;
  spec.name = "seqheavy";
  spec.types.push_back(type);
  return spec;
}

/// The million-user cell: `users` closed-loop streams over 1024 2M
/// files on 16 drives. Think times are huge (1000 s) and start times
/// spread over users * 0.4 ms, so almost the whole population is idle
/// at any instant — exactly the state the timer wheel keeps compact.
workload::WorkloadSpec CapacityWorkload(uint32_t users) {
  workload::FileTypeSpec type;
  type.name = "capacity";
  type.num_files = 1024;
  type.num_users = users;
  type.process_time_ms = 1'000'000.0;
  type.hit_frequency_ms = 0.4;
  type.rw_bytes_mean = 8 * kKiB;
  type.alloc_size_bytes = 8 * kKiB;
  type.initial_bytes_mean = 2 * kMiB;
  type.truncate_bytes = 8 * kKiB;
  type.read_ratio = 0.7;
  type.write_ratio = 0.3;
  type.extend_ratio = 0.0;
  type.access = workload::AccessPattern::kRandom;

  workload::WorkloadSpec spec;
  spec.name = "capacity";
  spec.types.push_back(type);
  return spec;
}

/// Experiment settings shared by the grid: the workloads above start
/// inside the fill band, so measurement begins immediately; windows are
/// sized for measurable wall clock per cell, not paper fidelity (the
/// full grid simulates 10 minutes per cell; smoke keeps CI fast).
exp::ExperimentConfig Fig9Config(int threads, bool smoke) {
  exp::ExperimentConfig cfg;
  cfg.fill_lower = 0.25;
  cfg.fill_upper = 0.95;
  cfg.warmup_ms = 10'000;
  cfg.sample_interval_ms = 10'000;
  cfg.stable_tolerance_pp = 1.0;
  cfg.seq_min_measure_ms = smoke ? 60'000 : 600'000;
  cfg.seq_max_measure_ms = smoke ? 120'000 : 600'000;
  cfg.min_measure_ms = 20'000;
  cfg.max_measure_ms = 40'000;
  cfg.engine.threads = threads;
  return cfg;
}

struct CellResult {
  std::string json;  // Deterministic record — the identity-check key.
  exp::PerfResult perf;
  double wall_s = 0;
};

CellResult RunScalingCell(uint32_t disks, int threads, bool smoke) {
  disk::DiskSystemConfig disk_config = disk::DiskSystemConfig::Array(disks);
  auto spec = sched::ParseSchedulerSpec("cscan");
  bench::DieOnError(spec.status(), "fig9 scheduler");
  disk_config.scheduler = *spec;

  exp::Experiment experiment(
      ScalingWorkload(disks),
      bench::ExtentFactory(workload::WorkloadKind::kSuperComputer, 3,
                           alloc::FitPolicy::kFirstFit),
      disk_config, Fig9Config(threads, smoke));

  const double t0 = NowSeconds();
  auto perf = experiment.RunSequentialTest();
  const double t1 = NowSeconds();
  bench::DieOnError(perf.status(), "fig9 sequential test");

  CellResult out;
  out.perf = *perf;
  out.wall_s = t1 - t0;
  exp::RunRecord record = perf->ToRecord();
  record.experiment = "fig9_scaling";
  out.json = record.ToJson();
  return out;
}

CellResult RunCapacityCell(uint32_t users, int threads, bool smoke) {
  disk::DiskSystemConfig disk_config = disk::DiskSystemConfig::Array(16);
  auto spec = sched::ParseSchedulerSpec("cscan");
  bench::DieOnError(spec.status(), "fig9 scheduler");
  disk_config.scheduler = *spec;

  exp::ExperimentConfig cfg = Fig9Config(threads, smoke);
  cfg.fill_lower = 0.3;
  cfg.engine.timer_wheel = true;

  exp::Experiment experiment(
      CapacityWorkload(users),
      bench::FixedBlockFactory(workload::WorkloadKind::kTransactionProcessing),
      disk_config, cfg);

  const double t0 = NowSeconds();
  auto perf = experiment.RunApplicationTest();
  const double t1 = NowSeconds();
  bench::DieOnError(perf.status(), "fig9 capacity test");

  CellResult out;
  out.perf = *perf;
  out.wall_s = t1 - t0;
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("ROFS_FIG9_SMOKE") != nullptr;
  const std::vector<uint32_t> kDisks =
      smoke ? std::vector<uint32_t>{4} : std::vector<uint32_t>{4, 16, 64};
  // threads=0 is the classic engine reference lap (stderr only).
  const std::vector<int> kThreads =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{0, 1, 2, 4, 8};
  const uint32_t kUsers = smoke ? 10'000 : 1'000'000;

  std::printf(
      "Figure 9: Intra-Run Event-Loop Scaling (extension)\n"
      "  sequential test, C-SCAN scheduling, striped array; simulation\n"
      "  results below are byte-identical for every sim-thread count\n"
      "  (wall-clock timings go to stderr).\n\n");

  bool diverged = false;
  for (const uint32_t disks : kDisks) {
    std::string baseline_json;
    double baseline_wall = 0;
    exp::PerfResult perf;
    for (const int threads : kThreads) {
      const CellResult cell = RunScalingCell(disks, threads, smoke);
      if (threads >= 1) {
        if (baseline_json.empty()) {
          baseline_json = cell.json;
          baseline_wall = cell.wall_s;
          perf = cell.perf;
        } else if (cell.json != baseline_json) {
          std::printf("disks=%u threads=%d DIVERGED from threads=1\n", disks,
                      threads);
          diverged = true;
        }
      }
      if (threads == 0) {
        std::fprintf(stderr, "[fig9] disks=%-2u classic      wall=%6.2fs\n",
                     disks, cell.wall_s);
      } else {
        std::fprintf(stderr,
                     "[fig9] disks=%-2u threads=%d   wall=%6.2fs  "
                     "speedup=%.2fx\n",
                     disks, threads, cell.wall_s,
                     baseline_wall / (cell.wall_s > 0 ? cell.wall_s : 1e-9));
      }
    }
    std::printf(
        "disks=%-2u  throughput=%5.1f%%  ops=%llu  bytes_moved=%llu\n"
        "          users_peak=%llu  events_peak=%llu\n",
        disks, 100.0 * perf.utilization_of_max,
        static_cast<unsigned long long>(perf.ops_executed),
        static_cast<unsigned long long>(perf.bytes_moved),
        static_cast<unsigned long long>(perf.users_peak),
        static_cast<unsigned long long>(perf.events_peak));
  }
  std::printf("byte-identical across sim threads: %s\n\n",
              diverged ? "NO (see above)" : "yes");

  const int cap_threads = smoke ? 2 : 8;
  const double t0 = NowSeconds();
  const CellResult cap = RunCapacityCell(kUsers, cap_threads, smoke);
  const double t1 = NowSeconds();
  std::printf(
      "capacity: users=%u timer=wheel disks=16\n"
      "          users_peak=%llu  wheel_peak=%llu  events_peak=%llu  "
      "ops=%llu\n",
      kUsers, static_cast<unsigned long long>(cap.perf.users_peak),
      static_cast<unsigned long long>(cap.perf.wheel_peak),
      static_cast<unsigned long long>(cap.perf.events_peak),
      static_cast<unsigned long long>(cap.perf.ops_executed));
  const long rss_kb = PeakRssKb();
  std::fprintf(stderr,
               "[fig9] capacity users=%u wall=%.2fs (%.2fs in test) "
               "VmHWM=%ld MiB\n",
               kUsers, t1 - t0, cap.wall_s, rss_kb > 0 ? rss_kb / 1024 : -1);

  return diverged ? 1 : 0;
}
