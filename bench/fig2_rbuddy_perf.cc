// Reproduces Figure 2 (a-f) of the paper: application and sequential
// performance of the restricted buddy policy across the same sweep as
// Figure 1 ({2,3,4,5} block sizes x grow {1,2} x clustered/unclustered).
//
// Paper shape: larger block-size configurations win where large files
// dominate (SC up to +25%, TP up to +20%); SC/TP are insensitive to grow
// policy and clustering; TS is the most sensitive — clustering helps it
// (up to +20% sequential), and the larger grow factor helps its
// sequential throughput via the block-size/contiguity interaction of
// Figure 3.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 2: Application and Sequential Performance, Restricted Buddy",
      "Figure 2 (a-f)", disk_config);

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    for (int num_sizes = 2; num_sizes <= 5; ++num_sizes) {
      for (bool clustered : {true, false}) {
        for (uint32_t grow : {1u, 2u}) {
          sweep.Add(
              FormatString("fig2 %s %d-sizes g=%u %s",
                           workload::WorkloadKindToString(kind).c_str(),
                           num_sizes, grow,
                           clustered ? "clustered" : "unclustered"),
              [=](const runner::RunContext& ctx)
                  -> StatusOr<exp::RunRecord> {
                exp::ExperimentConfig config =
                    bench::BenchExperimentConfig();
                config.seed = ctx.seed;
                exp::Experiment experiment(
                    workload::MakeWorkload(kind),
                    bench::RestrictedBuddyFactory(num_sizes, grow,
                                                  clustered),
                    disk_config, config);
                auto perf = experiment.RunPerformancePair();
                if (!perf.ok()) return perf.status();
                exp::RunRecord record;
                record.MergeMetrics(perf->application.ToRecord(), "app.");
                record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
                return record;
              },
              [=](const bench::CellStats& cs) {
                return std::vector<std::string>{
                    FormatString("%d sizes", num_sizes),
                    FormatString("g=%u", grow),
                    clustered ? "clustered" : "unclustered",
                    cs.Pct("app.throughput_of_max"),
                    cs.Pct("seq.throughput_of_max"),
                    cs.Fixed("seq.extents_per_file", 1)};
              });
        }
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Config", "Grow", "Clustering", "Application",
                 "Sequential", "ExtentsPerFile"});
    for (int i = 0; i < 4 * 2 * 2; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
