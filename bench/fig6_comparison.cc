// Reproduces Figure 6 of the paper: the head-to-head comparison of all
// four allocation policies on sequential (6a) and application (6b)
// performance, using each policy's selected configuration:
//   - Koch buddy (section 4.1),
//   - restricted buddy: 5 block sizes, clustered, grow factor 1 (the
//     paper's section 4.2 selection),
//   - extent based: first fit, 3 ranges (the section 4.3 selection),
//   - fixed block baseline: 4K for TS, 16K for TP/SC.
//
// Paper shape (6a sequential): every multiblock policy saturates the
// array for SC/TP (>90%); TS stays under ~20% for all policies; the fixed
// block policy trails everywhere. (6b application): buddy leads SC (its
// 64M blocks), TP is bounded by random 8K I/O for every policy.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner("Figure 6: Comparative Performance of the Policies",
                   "Figure 6 (a, b)", disk_config);

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    const std::vector<
        std::pair<std::string, exp::Experiment::AllocatorFactory>>
        policies = {
            {"buddy", bench::BuddyFactory()},
            {"restricted-buddy", bench::RestrictedBuddyFactory(5, 1, true)},
            {"extent", bench::ExtentFactory(kind, 3,
                                            alloc::FitPolicy::kFirstFit)},
            {"fixed", bench::FixedBlockFactory(kind)},
        };
    for (const auto& [name, factory] : policies) {
      sweep.Add(
          FormatString("fig6 %s %s",
                       workload::WorkloadKindToString(kind).c_str(),
                       name.c_str()),
          [kind, factory, disk_config](const runner::RunContext& ctx)
              -> StatusOr<exp::RunRecord> {
            exp::ExperimentConfig config = bench::BenchExperimentConfig();
            config.seed = ctx.seed;
            exp::Experiment experiment(workload::MakeWorkload(kind),
                                       factory, disk_config, config);
            auto perf = experiment.RunPerformancePair();
            if (!perf.ok()) return perf.status();
            exp::RunRecord record;
            record.MergeMetrics(perf->application.ToRecord(), "app.");
            record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
            return record;
          },
          [](const bench::CellStats& cs) {
            return std::vector<std::string>{
                cs.Pct("seq.throughput_of_max"),
                cs.Pct("app.throughput_of_max")};
          });
    }
  }

  const auto rows = sweep.Run();
  Table seq({"Workload", "Buddy", "RestrictedBuddy", "Extent(ff,3)",
             "FixedBlock"});
  Table app({"Workload", "Buddy", "RestrictedBuddy", "Extent(ff,3)",
             "FixedBlock"});
  size_t next_row = 0;
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    std::vector<std::string> seq_row = {workload::WorkloadKindToString(kind)};
    std::vector<std::string> app_row = {workload::WorkloadKindToString(kind)};
    for (int policy = 0; policy < 4; ++policy) {
      seq_row.push_back(rows[next_row][0]);
      app_row.push_back(rows[next_row][1]);
      ++next_row;
    }
    seq.AddRow(seq_row);
    app.AddRow(app_row);
  }
  std::printf("Figure 6a: Sequential performance (%% of max bandwidth)\n%s\n",
              seq.ToString().c_str());
  std::printf("Figure 6b: Application performance (%% of max bandwidth)\n%s\n",
              app.ToString().c_str());
  return 0;
}
