#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alloc/buddy_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "util/units.h"

namespace rofs::bench {

exp::Experiment::AllocatorFactory BuddyFactory() {
  return [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::BuddyAllocator>(
        total_du, /*max_extent_du=*/64 * kMiB / kKiB);
  };
}

std::vector<uint64_t> BlockSizeLadderDu(int num_sizes) {
  // 1K disk units: {1K, 8K, 64K, 1M, 16M}.
  const std::vector<uint64_t> full = {1, 8, 64, 1024, 16384};
  return std::vector<uint64_t>(full.begin(), full.begin() + num_sizes);
}

exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered) {
  alloc::RestrictedBuddyConfig cfg;
  cfg.block_sizes_du = BlockSizeLadderDu(num_sizes);
  cfg.grow_factor = grow_factor;
  cfg.clustered = clustered;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit) {
  alloc::ExtentAllocatorConfig cfg;
  cfg.range_means_du.clear();
  for (uint64_t bytes : workload::ExtentRangeMeansBytes(kind, num_ranges)) {
    cfg.range_means_du.push_back(bytes / kKiB);
  }
  cfg.fit = fit;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind) {
  const uint64_t block_du = workload::FixedBlockBytesFor(kind) / kKiB;
  return [block_du](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::FixedBlockAllocator>(total_du, block_du);
  };
}

disk::DiskSystemConfig PaperDiskConfig() {
  return disk::DiskSystemConfig::Array(8);
}

exp::ExperimentConfig BenchExperimentConfig() {
  exp::ExperimentConfig cfg;
  const char* fast = std::getenv("ROFS_FAST");
  if (fast != nullptr && fast[0] != '\0') {
    cfg.warmup_ms = 5'000;
    cfg.min_measure_ms = 20'000;
    cfg.max_measure_ms = 60'000;
    cfg.seq_min_measure_ms = 40'000;
    cfg.seq_max_measure_ms = 200'000;
    cfg.stable_tolerance_pp = 1.0;
  }
  return cfg;
}

void DieOnError(const Status& status, const std::string& context) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL: %s: %s\n", context.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

runner::SweepOptions ParseSweepOptions(int argc, char** argv) {
  runner::SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--jobs") == 0 ||
         std::strcmp(argv[i], "-j") == 0) &&
        i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = std::atoi(argv[i] + 7);
    }
  }
  return options;
}

Sweep::Sweep(int argc, char** argv)
    : options_(ParseSweepOptions(argc, argv)) {
  options_.jobs = runner::SweepRunner::ResolveJobs(options_.jobs);
  options_.progress = [](const runner::RunResult& r, size_t done,
                         size_t total) {
    std::fprintf(stderr, "[%zu/%zu] %s: %s (%.1fs)\n", done, total,
                 r.label.c_str(),
                 r.status.ok() ? "ok" : r.status.ToString().c_str(),
                 r.wall_ms / 1000.0);
  };
}

void Sweep::Add(std::string label, RunFn fn, uint64_t stream) {
  runner::RunSpec spec;
  spec.label = std::move(label);
  spec.stream = stream;
  spec.run = std::move(fn);
  specs_.push_back(std::move(spec));
}

std::vector<std::vector<std::string>> Sweep::Run() {
  const auto t0 = std::chrono::steady_clock::now();
  runner::SweepRunner sweep_runner(options_);
  std::vector<runner::RunResult> results = sweep_runner.Run(specs_);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  double run_s = 0;
  std::vector<std::vector<std::string>> rows;
  rows.reserve(results.size());
  for (runner::RunResult& r : results) {
    DieOnError(r.status, r.label);
    run_s += r.wall_ms / 1000.0;
    rows.push_back(std::move(r.cells));
  }
  std::fprintf(stderr,
               "sweep: %zu runs on %d thread(s), wall %.1fs, "
               "sum-of-runs %.1fs (%.1fx)\n",
               results.size(), sweep_runner.jobs(), wall_s, run_s,
               wall_s > 0 ? run_s / wall_s : 0.0);
  return rows;
}

}  // namespace rofs::bench
