#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "alloc/buddy_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "util/units.h"

namespace rofs::bench {

exp::Experiment::AllocatorFactory BuddyFactory() {
  return [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::BuddyAllocator>(
        total_du, /*max_extent_du=*/64 * kMiB / kKiB);
  };
}

std::vector<uint64_t> BlockSizeLadderDu(int num_sizes) {
  // 1K disk units: {1K, 8K, 64K, 1M, 16M}.
  const std::vector<uint64_t> full = {1, 8, 64, 1024, 16384};
  return std::vector<uint64_t>(full.begin(), full.begin() + num_sizes);
}

exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered) {
  alloc::RestrictedBuddyConfig cfg;
  cfg.block_sizes_du = BlockSizeLadderDu(num_sizes);
  cfg.grow_factor = grow_factor;
  cfg.clustered = clustered;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit) {
  alloc::ExtentAllocatorConfig cfg;
  cfg.range_means_du.clear();
  for (uint64_t bytes : workload::ExtentRangeMeansBytes(kind, num_ranges)) {
    cfg.range_means_du.push_back(bytes / kKiB);
  }
  cfg.fit = fit;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind) {
  const uint64_t block_du = workload::FixedBlockBytesFor(kind) / kKiB;
  return [block_du](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::FixedBlockAllocator>(total_du, block_du);
  };
}

disk::DiskSystemConfig PaperDiskConfig() {
  return disk::DiskSystemConfig::Array(8);
}

exp::ExperimentConfig BenchExperimentConfig() {
  exp::ExperimentConfig cfg;
  const char* fast = std::getenv("ROFS_FAST");
  if (fast != nullptr && fast[0] != '\0') {
    cfg.warmup_ms = 5'000;
    cfg.min_measure_ms = 20'000;
    cfg.max_measure_ms = 60'000;
    cfg.seq_min_measure_ms = 40'000;
    cfg.seq_max_measure_ms = 200'000;
    cfg.stable_tolerance_pp = 1.0;
  }
  return cfg;
}

void DieOnError(const Status& status, const std::string& context) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL: %s: %s\n", context.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

}  // namespace rofs::bench
