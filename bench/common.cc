#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alloc/buddy_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "exp/reporting.h"
#include "obs/trace_writer.h"
#include "sim/event_queue.h"
#include "util/table.h"
#include "util/units.h"

namespace rofs::bench {

namespace {

/// Observability options of the Sweep currently driving this process,
/// folded into every BenchExperimentConfig() so drivers pick them up
/// without touching their cell lambdas. Set once by the Sweep ctor before
/// any cell runs; defaults keep observability off.
obs::Options g_bench_obs;

}  // namespace

exp::Experiment::AllocatorFactory BuddyFactory() {
  return [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::BuddyAllocator>(
        total_du, /*max_extent_du=*/64 * kMiB / kKiB);
  };
}

std::vector<uint64_t> BlockSizeLadderDu(int num_sizes) {
  // 1K disk units: {1K, 8K, 64K, 1M, 16M}.
  const std::vector<uint64_t> full = {1, 8, 64, 1024, 16384};
  return std::vector<uint64_t>(full.begin(), full.begin() + num_sizes);
}

exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered) {
  alloc::RestrictedBuddyConfig cfg;
  cfg.block_sizes_du = BlockSizeLadderDu(num_sizes);
  cfg.grow_factor = grow_factor;
  cfg.clustered = clustered;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit) {
  alloc::ExtentAllocatorConfig cfg;
  cfg.range_means_du.clear();
  for (uint64_t bytes : workload::ExtentRangeMeansBytes(kind, num_ranges)) {
    cfg.range_means_du.push_back(bytes / kKiB);
  }
  cfg.fit = fit;
  return [cfg](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::ExtentAllocator>(total_du, cfg);
  };
}

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind) {
  const uint64_t block_du = workload::FixedBlockBytesFor(kind) / kKiB;
  return [block_du](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    return std::make_unique<alloc::FixedBlockAllocator>(total_du, block_du);
  };
}

disk::DiskSystemConfig PaperDiskConfig() {
  return disk::DiskSystemConfig::Array(8);
}

exp::ExperimentConfig BenchExperimentConfig() {
  exp::ExperimentConfig cfg;
  const char* fast = std::getenv("ROFS_FAST");
  if (fast != nullptr && fast[0] != '\0') {
    cfg.warmup_ms = 5'000;
    cfg.min_measure_ms = 20'000;
    cfg.max_measure_ms = 60'000;
    cfg.seq_min_measure_ms = 40'000;
    cfg.seq_max_measure_ms = 200'000;
    cfg.stable_tolerance_pp = 1.0;
  }
  cfg.obs = g_bench_obs;
  // Intra-run engine knobs shared by every driver: ROFS_SIM_THREADS=N
  // shards the event loop per drive (output byte-identical for any
  // N >= 1, and identical to the classic engine on FCFS configs — see
  // DESIGN.md §11), ROFS_SIM_WHEEL=1 keeps idle users in the timer
  // wheel. Environment-driven so the 12 figure drivers pick them up
  // without per-driver flag plumbing.
  if (const char* threads = std::getenv("ROFS_SIM_THREADS");
      threads != nullptr && threads[0] != '\0') {
    cfg.engine.threads = std::atoi(threads);
  }
  if (const char* wheel = std::getenv("ROFS_SIM_WHEEL");
      wheel != nullptr && wheel[0] != '\0') {
    cfg.engine.timer_wheel = wheel[0] != '0';
  }
  return cfg;
}

void DieOnError(const Status& status, const std::string& context) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL: %s: %s\n", context.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

runner::SweepOptions ParseSweepOptions(int argc, char** argv) {
  runner::SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--jobs") == 0 ||
         std::strcmp(argv[i], "-j") == 0) &&
        i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = std::atoi(argv[i] + 7);
    }
  }
  return options;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.sweep = ParseSweepOptions(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--replicates") == 0 ||
         std::strcmp(argv[i], "-r") == 0) &&
        i + 1 < argc) {
      options.replicates = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--replicates=", 13) == 0) {
      options.replicates = std::atoi(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
      options.jsonl_path = argv[++i];
    } else if (std::strncmp(argv[i], "--jsonl=", 8) == 0) {
      options.jsonl_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      options.csv_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      options.obs.metrics = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      options.trace_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-events") == 0 && i + 1 < argc) {
      options.obs.trace_events =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strncmp(argv[i], "--trace-events=", 15) == 0) {
      options.obs.trace_events =
          static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strcmp(argv[i], "--window-ms") == 0 && i + 1 < argc) {
      options.obs.window_ms = std::atof(argv[++i]);
    } else if (std::strncmp(argv[i], "--window-ms=", 12) == 0) {
      options.obs.window_ms = std::atof(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      options.progress = true;
    }
  }
  if (options.jsonl_path.empty()) {
    if (const char* env = std::getenv("ROFS_JSONL");
        env != nullptr && env[0] != '\0') {
      options.jsonl_path = env;
    }
  }
  if (options.csv_path.empty()) {
    if (const char* env = std::getenv("ROFS_CSV");
        env != nullptr && env[0] != '\0') {
      options.csv_path = env;
    }
  }
  if (!options.obs.metrics) {
    if (const char* env = std::getenv("ROFS_METRICS");
        env != nullptr && env[0] != '\0') {
      options.obs.metrics = true;
    }
  }
  if (options.trace_path.empty()) {
    if (const char* env = std::getenv("ROFS_TRACE");
        env != nullptr && env[0] != '\0') {
      options.trace_path = env;
    }
  }
  if (const char* env = std::getenv("ROFS_TRACE_EVENTS");
      env != nullptr && env[0] != '\0' &&
      options.obs.trace_events == obs::Options{}.trace_events) {
    options.obs.trace_events = static_cast<size_t>(std::atoll(env));
  }
  if (options.obs.window_ms <= 0) {
    if (const char* env = std::getenv("ROFS_WINDOW_MS");
        env != nullptr && env[0] != '\0') {
      options.obs.window_ms = std::atof(env);
    }
  }
  options.obs.trace = !options.trace_path.empty();
  if (!options.progress) {
    if (const char* env = std::getenv("ROFS_PROGRESS");
        env != nullptr && env[0] != '\0') {
      options.progress = true;
    }
  }
  return options;
}

const stats::Summary& CellStats::Of(const std::string& metric) const {
  const auto it = summaries_.find(metric);
  if (it == summaries_.end()) {
    std::fprintf(stderr,
                 "FATAL: formatter asked for metric '%s' that no replicate "
                 "recorded\n",
                 metric.c_str());
    std::exit(1);
  }
  return it->second;
}

std::string CellStats::Pct(const std::string& metric) const {
  const stats::Summary& s = Of(metric);
  if (replicates_ <= 1) return FormatString("%.1f%%", s.mean * 100.0);
  return FormatString("%.1f±%.1f%%", s.mean * 100.0,
                      s.ci_half_width * 100.0);
}

std::string CellStats::Fixed(const std::string& metric, int decimals,
                             const char* suffix) const {
  const stats::Summary& s = Of(metric);
  if (replicates_ <= 1) {
    return FormatString("%.*f%s", decimals, s.mean, suffix);
  }
  return FormatString("%.*f±%.*f%s", decimals, s.mean, decimals,
                      s.ci_half_width, suffix);
}

Sweep::Sweep(int argc, char** argv)
    : options_(ParseBenchOptions(argc, argv)) {
  options_.sweep.jobs = runner::SweepRunner::ResolveJobs(options_.sweep.jobs);
  options_.replicates =
      runner::SweepRunner::ResolveReplicates(options_.replicates);
  g_bench_obs = options_.obs;
  // Heartbeat state shared with the progress callback below. The callback
  // runs on the collector thread only, so plain members suffice; the
  // throttle keeps long sweeps from scrolling one line per run.
  struct Heartbeat {
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    std::chrono::steady_clock::time_point last{};
  };
  auto heartbeat = options_.progress ? std::make_shared<Heartbeat>() : nullptr;
  options_.sweep.progress = [heartbeat](const runner::RunResult& r,
                                        size_t done, size_t total) {
    std::fprintf(stderr, "[%zu/%zu] %s: %s (%.1fs)\n", done, total,
                 r.label.c_str(),
                 r.status.ok() ? "ok" : r.status.ToString().c_str(),
                 r.wall_ms / 1000.0);
    if (heartbeat == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    if (done < total && now - heartbeat->last < std::chrono::seconds(1)) {
      return;
    }
    heartbeat->last = now;
    const double elapsed =
        std::chrono::duration<double>(now - heartbeat->t0).count();
    const double eta =
        done > 0 ? elapsed * static_cast<double>(total - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::fprintf(stderr,
                 "progress: %zu/%zu runs (%.0f%%), elapsed %.1fs, "
                 "eta %.1fs\n",
                 done, total,
                 100.0 * static_cast<double>(done) /
                     static_cast<double>(total),
                 elapsed, eta);
  };
  experiment_ = "bench";
  if (argc >= 1 && argv[0] != nullptr && argv[0][0] != '\0') {
    std::string name = argv[0];
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    if (!name.empty()) experiment_ = std::move(name);
  }
}

void Sweep::Add(std::string label, RecordFn fn, FormatFn format) {
  Cell cell;
  cell.label = std::move(label);
  cell.run = std::move(fn);
  cell.format = std::move(format);
  cells_.push_back(std::move(cell));
}

std::vector<std::vector<std::string>> Sweep::Run() {
  const int replicates = options_.replicates;
  const size_t total_runs =
      cells_.size() * static_cast<size_t>(replicates);
  records_.assign(total_runs, exp::RunRecord{});

  // One spec per cell; ExpandReplicates fans each out over RNG streams
  // 0..R-1, cell-major, so cell c's replicate r writes records_[c*R + r]
  // (its expanded submission index) — a private slot, no locking needed.
  std::vector<runner::RunSpec> specs;
  specs.reserve(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    runner::RunSpec spec;
    spec.label = cells_[c].label;
    spec.run = [this, c, replicates](const runner::RunContext& ctx)
        -> StatusOr<std::vector<std::string>> {
      // Traced runs register their buffers under this ambient label; the
      // replicate suffix keeps labels unique so the merged trace orders
      // deterministically for any job count.
      obs::ScopedRunLabel run_label(
          cells_[c].label + " r" +
          std::to_string(ctx.index % static_cast<size_t>(replicates)));
      StatusOr<exp::RunRecord> record = cells_[c].run(ctx);
      if (!record.ok()) return record.status();
      exp::RunRecord r = std::move(record).value();
      r.experiment = experiment_;
      r.cell = cells_[c].label;
      r.replicate = static_cast<int>(ctx.index % replicates);
      r.seed = ctx.seed;
      records_[ctx.index] = std::move(r);
      return std::vector<std::string>{};
    };
    specs.push_back(std::move(spec));
  }

  const uint64_t events0 = sim::RetiredDispatchedEvents();
  const auto t0 = std::chrono::steady_clock::now();
  runner::SweepRunner sweep_runner(options_.sweep);
  std::vector<runner::RunResult> results = sweep_runner.Run(
      runner::SweepRunner::ExpandReplicates(std::move(specs), replicates));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Every experiment's EventQueue has been destroyed by now, so the
  // retired-events counter covers the whole sweep (no per-event cost).
  const uint64_t events = sim::RetiredDispatchedEvents() - events0;
  double run_s = 0;
  for (const runner::RunResult& r : results) {
    DieOnError(r.status, r.label);
    run_s += r.wall_ms / 1000.0;
  }
  std::fprintf(stderr,
               "sweep: %zu runs on %d thread(s), wall %.1fs, "
               "sum-of-runs %.1fs (%.1fx)\n",
               results.size(), sweep_runner.jobs(), wall_s, run_s,
               wall_s > 0 ? run_s / wall_s : 0.0);
  std::fprintf(stderr,
               "sweep: %llu events dispatched, %.2fM events/s wall\n",
               static_cast<unsigned long long>(events),
               wall_s > 0 ? events / wall_s / 1e6 : 0.0);

  // Aggregate each cell across its replicates and format its row.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells_.size());
  for (size_t c = 0; c < cells_.size(); ++c) {
    stats::MetricSet metrics;
    for (int r = 0; r < replicates; ++r) {
      metrics.AddAll(records_[c * replicates + r].metrics);
    }
    CellStats cell_stats(replicates,
                         metrics.Summarize(options_.confidence));
    rows.push_back(cells_[c].format(cell_stats));
  }

  std::string jsonl = options_.jsonl_path;
  if (jsonl.empty() && replicates > 1) jsonl = experiment_ + ".jsonl";
  if (!jsonl.empty()) {
    DieOnError(exp::WriteJsonl(jsonl, records_), "write " + jsonl);
    std::fprintf(stderr, "sweep: wrote %zu records -> %s\n",
                 records_.size(), jsonl.c_str());
  }
  if (!options_.csv_path.empty()) {
    DieOnError(exp::WriteCsv(options_.csv_path, records_),
               "write " + options_.csv_path);
    std::fprintf(stderr, "sweep: wrote %zu records -> %s\n",
                 records_.size(), options_.csv_path.c_str());
    // Windowed time-series companion (long format, one row per window);
    // written only when some record carries a series (--window-ms).
    const std::string series_path = options_.csv_path + ".series.csv";
    DieOnError(exp::WriteSeriesCsv(series_path, records_),
               "write " + series_path);
  }

  if (options_.obs.trace && !options_.trace_path.empty()) {
    // Wall-clock lanes (pid 0 in the export): one span per runner job,
    // on a timeline starting at the sweep's earliest run.
    double first_start = 0;
    bool have_start = false;
    for (const runner::RunResult& r : results) {
      if (!have_start || r.wall_start_ms < first_start) {
        first_start = r.wall_start_ms;
        have_start = true;
      }
    }
    for (const runner::RunResult& r : results) {
      obs::TraceCollector::Global().AddWallSpan(
          r.label, r.wall_start_ms - first_start, r.wall_ms);
    }
    obs::WriteChromeTrace(options_.trace_path);
  }
  return rows;
}

}  // namespace rofs::bench
