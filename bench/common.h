#ifndef ROFS_BENCH_COMMON_H_
#define ROFS_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "exp/run_record.h"
#include "obs/options.h"
#include "runner/sweep_runner.h"
#include "stats/summary.h"
#include "workload/workloads.h"

namespace rofs::bench {

/// Allocator factories for the policies of paper section 4, parameterized
/// the way the paper sweeps them.
exp::Experiment::AllocatorFactory BuddyFactory();

/// `num_sizes` in 2..5 selects a prefix-with-largest subset of the ladder
/// {1K, 8K, 64K, 1M, 16M} exactly as the paper's table in section 4.2.
exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered);

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit);

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind);

/// The restricted-buddy block-size ladder for a size count (disk units).
std::vector<uint64_t> BlockSizeLadderDu(int num_sizes);

/// The paper's default disk system: 8 striped CDC Wren IV drives.
disk::DiskSystemConfig PaperDiskConfig();

/// Standard experiment settings for the reproduction benches. Honors the
/// ROFS_FAST environment variable (any non-empty value): shorter
/// measurement windows for smoke runs. Also carries the observability
/// options the current Sweep was constructed with (see BenchOptions::obs),
/// so every driver's cell picks up --metrics / --trace-out without
/// driver-side plumbing.
exp::ExperimentConfig BenchExperimentConfig();

/// Fails loudly: prints the status and exits non-zero. Benches prefer a
/// visible crash over silently missing table rows.
void DieOnError(const Status& status, const std::string& context);

/// Parses the sweep-parallelism knobs shared by every bench driver:
/// `--jobs N` / `--jobs=N` / `-j N` on the command line, else the
/// ROFS_JOBS environment variable, else the hardware thread count
/// (resolution happens inside SweepRunner).
runner::SweepOptions ParseSweepOptions(int argc, char** argv);

/// Every knob a bench driver accepts: the sweep-parallelism options plus
/// the replication and artifact flags this layer adds on top.
struct BenchOptions {
  runner::SweepOptions sweep;
  /// Replicates per grid cell: `--replicates N` / `--replicates=N` /
  /// `-r N`, else ROFS_REPLICATES, else 1 (resolved in the Sweep ctor).
  int replicates = 0;
  /// Two-sided confidence level of the reported intervals.
  double confidence = 0.95;
  /// `--jsonl PATH` / ROFS_JSONL and `--csv PATH` / ROFS_CSV artifact
  /// destinations. When replicates > 1 and no JSONL path was given, the
  /// artifact defaults to "<experiment>.jsonl" in the working directory.
  std::string jsonl_path;
  std::string csv_path;
  /// Observability: `--metrics` / ROFS_METRICS adds obs.* metric columns
  /// to the JSONL/CSV artifacts; `--trace-out PATH` / ROFS_TRACE enables
  /// sim-time tracing and writes a merged Chrome trace-event JSON
  /// (Perfetto-loadable) after the sweep; `--trace-events N` /
  /// ROFS_TRACE_EVENTS caps the per-run trace buffer; `--window-ms N` /
  /// ROFS_WINDOW_MS samples windowed time-series into the JSONL records
  /// and a "<csv>.series.csv" companion. No flag changes stdout or the
  /// artifact rows that exist without them.
  obs::Options obs;
  std::string trace_path;
  /// `--progress` / ROFS_PROGRESS: a throttled (~1/s) heartbeat on stderr
  /// with runs done/total, elapsed wall time, and an ETA. stdout stays
  /// byte-identical.
  bool progress = false;
};

BenchOptions ParseBenchOptions(int argc, char** argv);

/// Aggregated view of one grid cell handed to its formatter after all
/// replicates have run: per-metric replication summaries, plus helpers
/// that format a cell exactly like the pre-replication drivers when there
/// is a single replicate and as `mean ± 95% CI half-width` otherwise.
class CellStats {
 public:
  CellStats(int replicates, std::map<std::string, stats::Summary> summaries)
      : replicates_(replicates), summaries_(std::move(summaries)) {}

  int replicates() const { return replicates_; }
  /// Dies if the metric was never recorded (a driver/formatter mismatch
  /// is a bug, not a runtime condition).
  const stats::Summary& Of(const std::string& metric) const;
  double Mean(const std::string& metric) const { return Of(metric).mean; }

  /// Percentage cell: "88.0%" for one replicate, "88.0±1.2%" otherwise.
  std::string Pct(const std::string& metric) const;
  /// Fixed-point cell with `decimals` digits and an optional unit suffix:
  /// "3.5", "120ms"; "3.5±0.2", "120±8ms" with replicates.
  std::string Fixed(const std::string& metric, int decimals,
                    const char* suffix = "") const;

 private:
  int replicates_;
  std::map<std::string, stats::Summary> summaries_;
};

/// The sweep grid of one bench driver. Add() one cell per grid point: the
/// run callback builds its own Experiment from the context seed and
/// returns the cell's metrics as an exp::RunRecord; the formatter turns
/// the cell's aggregated CellStats into the printed table cells. Run()
/// executes cells x replicates runs on a thread pool (replicate r on RNG
/// stream r, so replicate 0 reproduces the single-run results exactly and
/// grid cells keep common random numbers), aggregates each cell across
/// its replicates, writes the JSONL/CSV artifacts, and returns the
/// formatted rows in submission order — stdout and artifacts are
/// byte-identical for any job count. Dies with the run's label on the
/// first failed run. Progress and wall-clock timing go to stderr so they
/// never perturb the comparable output.
class Sweep {
 public:
  using RecordFn =
      std::function<StatusOr<exp::RunRecord>(const runner::RunContext&)>;
  using FormatFn = std::function<std::vector<std::string>(const CellStats&)>;

  Sweep(int argc, char** argv);

  /// Adds one grid cell.
  void Add(std::string label, RecordFn fn, FormatFn format);

  /// Runs all cells (and their replicates); returns each cell's formatted
  /// row in submission order.
  std::vector<std::vector<std::string>> Run();

  int jobs() const { return options_.sweep.jobs; }
  int replicates() const { return options_.replicates; }

  /// All replicate records in cell-major order (cell c, replicate r at
  /// index c * replicates + r); filled by Run().
  const std::vector<exp::RunRecord>& records() const { return records_; }

 private:
  struct Cell {
    std::string label;
    RecordFn run;
    FormatFn format;
  };

  BenchOptions options_;
  std::string experiment_;
  std::vector<Cell> cells_;
  std::vector<exp::RunRecord> records_;
};

}  // namespace rofs::bench

#endif  // ROFS_BENCH_COMMON_H_
