#ifndef ROFS_BENCH_COMMON_H_
#define ROFS_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "runner/sweep_runner.h"
#include "workload/workloads.h"

namespace rofs::bench {

/// Allocator factories for the policies of paper section 4, parameterized
/// the way the paper sweeps them.
exp::Experiment::AllocatorFactory BuddyFactory();

/// `num_sizes` in 2..5 selects a prefix-with-largest subset of the ladder
/// {1K, 8K, 64K, 1M, 16M} exactly as the paper's table in section 4.2.
exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered);

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit);

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind);

/// The restricted-buddy block-size ladder for a size count (disk units).
std::vector<uint64_t> BlockSizeLadderDu(int num_sizes);

/// The paper's default disk system: 8 striped CDC Wren IV drives.
disk::DiskSystemConfig PaperDiskConfig();

/// Standard experiment settings for the reproduction benches. Honors the
/// ROFS_FAST environment variable (any non-empty value): shorter
/// measurement windows for smoke runs.
exp::ExperimentConfig BenchExperimentConfig();

/// Fails loudly: prints the status and exits non-zero. Benches prefer a
/// visible crash over silently missing table rows.
void DieOnError(const Status& status, const std::string& context);

/// Parses the sweep-parallelism knobs shared by every bench driver:
/// `--jobs N` / `--jobs=N` / `-j N` on the command line, else the
/// ROFS_JOBS environment variable, else the hardware thread count
/// (resolution happens inside SweepRunner).
runner::SweepOptions ParseSweepOptions(int argc, char** argv);

/// The sweep grid of one bench driver. Add() one run per grid cell (the
/// callback builds its own Experiment and returns the formatted table
/// cells for its row), then Run() executes every cell on a thread pool
/// and returns the rows in submission order — byte-identical stdout for
/// any job count. Dies with the run's label on the first failed run.
/// Progress and wall-clock timing go to stderr so they never perturb the
/// comparable output.
class Sweep {
 public:
  using RunFn = std::function<StatusOr<std::vector<std::string>>(
      const runner::RunContext&)>;

  Sweep(int argc, char** argv);

  /// Adds one grid cell. Cells share RNG stream 0 (common random numbers
  /// across configurations, as the serial drivers always did); pass a
  /// non-zero `stream` for replicates that need independent draws.
  void Add(std::string label, RunFn fn, uint64_t stream = 0);

  /// Runs all cells; returns each cell's row in submission order.
  std::vector<std::vector<std::string>> Run();

  int jobs() const { return options_.jobs; }

 private:
  runner::SweepOptions options_;
  std::vector<runner::RunSpec> specs_;
};

}  // namespace rofs::bench

#endif  // ROFS_BENCH_COMMON_H_
