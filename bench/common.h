#ifndef ROFS_BENCH_COMMON_H_
#define ROFS_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>

#include "alloc/allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "workload/workloads.h"

namespace rofs::bench {

/// Allocator factories for the policies of paper section 4, parameterized
/// the way the paper sweeps them.
exp::Experiment::AllocatorFactory BuddyFactory();

/// `num_sizes` in 2..5 selects a prefix-with-largest subset of the ladder
/// {1K, 8K, 64K, 1M, 16M} exactly as the paper's table in section 4.2.
exp::Experiment::AllocatorFactory RestrictedBuddyFactory(int num_sizes,
                                                         uint32_t grow_factor,
                                                         bool clustered);

exp::Experiment::AllocatorFactory ExtentFactory(workload::WorkloadKind kind,
                                                int num_ranges,
                                                alloc::FitPolicy fit);

exp::Experiment::AllocatorFactory FixedBlockFactory(
    workload::WorkloadKind kind);

/// The restricted-buddy block-size ladder for a size count (disk units).
std::vector<uint64_t> BlockSizeLadderDu(int num_sizes);

/// The paper's default disk system: 8 striped CDC Wren IV drives.
disk::DiskSystemConfig PaperDiskConfig();

/// Standard experiment settings for the reproduction benches. Honors the
/// ROFS_FAST environment variable (any non-empty value): shorter
/// measurement windows for smoke runs.
exp::ExperimentConfig BenchExperimentConfig();

/// Fails loudly: prints the status and exits non-zero. Benches prefer a
/// visible crash over silently missing table rows.
void DieOnError(const Status& status, const std::string& context);

}  // namespace rofs::bench

#endif  // ROFS_BENCH_COMMON_H_
