// Ablation from the paper's "further investigation" list: "the impact of
// a RAID in the underlying disk system will reduce the small write
// performance" (section 6). Runs the TP workload (random 8K writes) and
// the SC workload (large sequential bursts) over every disk-system
// configuration of section 2.1 — striped, mirrored, RAID5, and Gray'90
// parity striping — with the selected restricted-buddy policy.
//
// Expected shape: RAID5 hurts TP (read-modify-write on every 8K write)
// far more than SC (large writes amortize into full-stripe writes);
// mirroring halves capacity and taxes writes less.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  exp::PrintBanner("Ablation: disk-system configuration (RAID impact)",
                   "Section 6 (further investigation)",
                   bench::PaperDiskConfig());

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kTransactionProcessing,
        workload::WorkloadKind::kSuperComputer}) {
    for (disk::LayoutKind layout :
         {disk::LayoutKind::kStriped, disk::LayoutKind::kMirrored,
          disk::LayoutKind::kRaid5, disk::LayoutKind::kParityStriped}) {
      sweep.Add(
          FormatString("raid ablation %s %s",
                       workload::WorkloadKindToString(kind).c_str(),
                       disk::LayoutKindToString(layout).c_str()),
          [=](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
            disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
            disk_config.layout = layout;
            // Mirroring halves the logical capacity: the TP/SC populations
            // no longer fit, so scale the file sizes down proportionally.
            workload::WorkloadSpec spec = workload::MakeWorkload(kind);
            if (layout == disk::LayoutKind::kMirrored) {
              for (auto& type : spec.types) {
                type.initial_bytes_mean /= 2;
                type.initial_bytes_dev /= 2;
              }
            }
            exp::ExperimentConfig config = bench::BenchExperimentConfig();
            config.seed = ctx.seed;
            exp::Experiment experiment(
                spec, bench::RestrictedBuddyFactory(5, 1, true),
                disk_config, config);
            auto perf = experiment.RunPerformancePair();
            if (!perf.ok()) return perf.status();
            exp::RunRecord record;
            record.MergeMetrics(perf->application.ToRecord(), "app.");
            record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
            return record;
          },
          [=](const bench::CellStats& cs) {
            disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
            disk_config.layout = layout;
            disk::DiskSystem probe(disk_config);
            return std::vector<std::string>{
                disk::LayoutKindToString(layout),
                FormatBytes(probe.capacity_bytes()),
                cs.Pct("app.throughput_of_max"),
                cs.Pct("seq.throughput_of_max"),
                cs.Fixed("app.disk_full_events", 0)};
          });
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kTransactionProcessing,
        workload::WorkloadKind::kSuperComputer}) {
    Table table({"Layout", "Capacity", "Application", "Sequential",
                 "DiskFullEvents"});
    for (int i = 0; i < 4; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
  }
  return 0;
}
