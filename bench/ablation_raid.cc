// Ablation from the paper's "further investigation" list: "the impact of
// a RAID in the underlying disk system will reduce the small write
// performance" (section 6). Runs the TP workload (random 8K writes) and
// the SC workload (large sequential bursts) over every disk-system
// configuration of section 2.1 — striped, mirrored, RAID5, and Gray'90
// parity striping — with the selected restricted-buddy policy.
//
// Expected shape: RAID5 hurts TP (read-modify-write on every 8K write)
// far more than SC (large writes amortize into full-stripe writes);
// mirroring halves capacity and taxes writes less.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main() {
  exp::PrintBanner("Ablation: disk-system configuration (RAID impact)",
                   "Section 6 (further investigation)",
                   bench::PaperDiskConfig());

  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kTransactionProcessing,
        workload::WorkloadKind::kSuperComputer}) {
    Table table({"Layout", "Capacity", "Application", "Sequential",
                 "DiskFullEvents"});
    for (disk::LayoutKind layout :
         {disk::LayoutKind::kStriped, disk::LayoutKind::kMirrored,
          disk::LayoutKind::kRaid5, disk::LayoutKind::kParityStriped}) {
      disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
      disk_config.layout = layout;
      // Mirroring halves the logical capacity: the TP/SC populations no
      // longer fit, so scale the file sizes down proportionally.
      workload::WorkloadSpec spec = workload::MakeWorkload(kind);
      if (layout == disk::LayoutKind::kMirrored) {
        for (auto& type : spec.types) {
          type.initial_bytes_mean /= 2;
          type.initial_bytes_dev /= 2;
        }
      }
      exp::Experiment experiment(spec,
                                 bench::RestrictedBuddyFactory(5, 1, true),
                                 disk_config,
                                 bench::BenchExperimentConfig());
      auto perf = experiment.RunPerformancePair();
      bench::DieOnError(perf.status(),
                        "raid ablation " + disk::LayoutKindToString(layout));
      disk::DiskSystem probe(disk_config);
      table.AddRow({disk::LayoutKindToString(layout),
                    FormatBytes(probe.capacity_bytes()),
                    exp::Pct(perf->application.utilization_of_max),
                    exp::Pct(perf->sequential.utilization_of_max),
                    FormatString("%llu", static_cast<unsigned long long>(
                                             perf->application
                                                 .disk_full_events))});
      std::fflush(stdout);
    }
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
  }
  return 0;
}
