// Extension from the paper's future-work list: "In the small file
// environment we might want to incorporate policies from a log structured
// file system to allocate blocks [ROSE90]" (section 6).
//
// Compares the log-structured policy against the read-optimized
// restricted buddy and the fixed-block baseline on the TS workload and on
// a write-heavy TS variant (the regime LFS targets: many small files,
// writes dominating). Expected shape: the log wins as the write share
// grows — all small writes stream to the log head — while the
// read-optimized policies keep the edge on the read-dominated mix.

#include <cstdio>

#include "alloc/log_structured_allocator.h"
#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

namespace {

workload::WorkloadSpec WriteHeavyTs() {
  workload::WorkloadSpec w = workload::MakeTimeSharing();
  w.name = "TS-write-heavy";
  for (auto& t : w.types) {
    // Swap the read/write emphasis: 20% reads, 50% writes.
    t.read_ratio = 0.20;
    t.write_ratio = 0.50;
  }
  return w;
}

exp::Experiment::AllocatorFactory LfsFactory() {
  return [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
    alloc::LogStructuredConfig cfg;
    cfg.segment_du = 1024;  // 1 MB segments.
    return std::make_unique<alloc::LogStructuredAllocator>(total_du, cfg);
  };
}

}  // namespace

int main(int argc, char** argv) {
  exp::PrintBanner(
      "Extension: log-structured allocation for small files",
      "Section 6 (future work, [ROSE90])", bench::PaperDiskConfig());

  const std::vector<workload::WorkloadSpec> specs = {
      workload::MakeTimeSharing(), WriteHeavyTs()};

  bench::Sweep sweep(argc, argv);
  for (const workload::WorkloadSpec& spec : specs) {
    const std::vector<
        std::pair<std::string, exp::Experiment::AllocatorFactory>>
        policies = {
            {"log-structured", LfsFactory()},
            {"restricted-buddy", bench::RestrictedBuddyFactory(5, 1, true)},
            {"fixed-block-4K",
             bench::FixedBlockFactory(workload::WorkloadKind::kTimeSharing)},
        };
    for (const auto& [name, factory] : policies) {
      sweep.Add(
          FormatString("lfs extension %s %s", spec.name.c_str(),
                       name.c_str()),
          [spec, factory = factory](const runner::RunContext& ctx)
              -> StatusOr<exp::RunRecord> {
            exp::ExperimentConfig config = bench::BenchExperimentConfig();
            config.seed = ctx.seed;
            exp::Experiment experiment(spec, factory,
                                       bench::PaperDiskConfig(), config);
            auto frag = experiment.RunAllocationTest();
            if (!frag.ok()) return frag.status();
            auto perf = experiment.RunPerformancePair();
            if (!perf.ok()) return perf.status();
            exp::RunRecord record;
            record.MergeMetrics(frag->ToRecord(), "alloc.");
            record.MergeMetrics(perf->application.ToRecord(), "app.");
            record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
            return record;
          },
          [name = name](const bench::CellStats& cs) {
            return std::vector<std::string>{
                name, cs.Pct("alloc.internal_frag"),
                cs.Pct("alloc.external_frag"),
                cs.Pct("app.throughput_of_max"),
                cs.Pct("seq.throughput_of_max")};
          });
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (const workload::WorkloadSpec& spec : specs) {
    Table table({"Policy", "IntFrag", "ExtFrag", "Application",
                 "Sequential"});
    for (int i = 0; i < 3; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s\n%s\n", spec.name.c_str(),
                table.ToString().c_str());
  }
  return 0;
}
