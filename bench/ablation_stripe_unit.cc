// Ablation from the paper's "further investigation" list: sensitivity of
// the policies to the stripe unit parameter ("The different policies may
// show different sensitivities to the stripe size parameter", section 6).
//
// Sweeps the stripe unit for the SC and TP workloads under the selected
// restricted buddy and extent configurations, reporting application and
// sequential throughput.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

int main() {
  exp::PrintBanner("Ablation: stripe unit sensitivity",
                   "Section 6 (further investigation)",
                   bench::PaperDiskConfig());

  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kSuperComputer,
        workload::WorkloadKind::kTransactionProcessing}) {
    Table table({"Stripe unit", "Policy", "Application", "Sequential"});
    for (uint64_t stripe : {KiB(8), KiB(24), KiB(96), KiB(384)}) {
      disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
      disk_config.stripe_unit_bytes = stripe;
      std::vector<std::pair<std::string,
                            exp::Experiment::AllocatorFactory>>
          policies = {
              {"restricted-buddy",
               bench::RestrictedBuddyFactory(5, 1, true)},
              {"extent(ff,3)",
               bench::ExtentFactory(kind, 3, alloc::FitPolicy::kFirstFit)},
          };
      for (auto& [name, factory] : policies) {
        exp::Experiment experiment(workload::MakeWorkload(kind), factory,
                                   disk_config,
                                   bench::BenchExperimentConfig());
        auto perf = experiment.RunPerformancePair();
        bench::DieOnError(perf.status(), "stripe ablation " + name);
        table.AddRow({FormatBytes(stripe), name,
                      exp::Pct(perf->application.utilization_of_max),
                      exp::Pct(perf->sequential.utilization_of_max)});
        std::fflush(stdout);
      }
    }
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
  }
  return 0;
}
