// Ablation from the paper's "further investigation" list: sensitivity of
// the policies to the stripe unit parameter ("The different policies may
// show different sensitivities to the stripe size parameter", section 6).
//
// Sweeps the stripe unit for the SC and TP workloads under the selected
// restricted buddy and extent configurations, reporting application and
// sequential throughput.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

int main(int argc, char** argv) {
  exp::PrintBanner("Ablation: stripe unit sensitivity",
                   "Section 6 (further investigation)",
                   bench::PaperDiskConfig());

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kSuperComputer,
        workload::WorkloadKind::kTransactionProcessing}) {
    for (uint64_t stripe : {KiB(8), KiB(24), KiB(96), KiB(384)}) {
      const std::vector<
          std::pair<std::string, exp::Experiment::AllocatorFactory>>
          policies = {
              {"restricted-buddy",
               bench::RestrictedBuddyFactory(5, 1, true)},
              {"extent(ff,3)",
               bench::ExtentFactory(kind, 3, alloc::FitPolicy::kFirstFit)},
          };
      for (const auto& [name, factory] : policies) {
        sweep.Add(
            FormatString("stripe ablation %s %s %s",
                         workload::WorkloadKindToString(kind).c_str(),
                         FormatBytes(stripe).c_str(), name.c_str()),
            [kind, stripe, factory = factory](const runner::RunContext& ctx)
                -> StatusOr<exp::RunRecord> {
              disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
              disk_config.stripe_unit_bytes = stripe;
              exp::ExperimentConfig config = bench::BenchExperimentConfig();
              config.seed = ctx.seed;
              exp::Experiment experiment(workload::MakeWorkload(kind),
                                         factory, disk_config, config);
              auto perf = experiment.RunPerformancePair();
              if (!perf.ok()) return perf.status();
              exp::RunRecord record;
              record.MergeMetrics(perf->application.ToRecord(), "app.");
              record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
              return record;
            },
            [stripe, name = name](const bench::CellStats& cs) {
              return std::vector<std::string>{
                  FormatBytes(stripe), name,
                  cs.Pct("app.throughput_of_max"),
                  cs.Pct("seq.throughput_of_max")};
            });
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kSuperComputer,
        workload::WorkloadKind::kTransactionProcessing}) {
    Table table({"Stripe unit", "Policy", "Application", "Sequential"});
    for (int i = 0; i < 4 * 2; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
  }
  return 0;
}
