// Reproduces Table 3 of the paper: the Koch buddy allocation policy's
// internal/external fragmentation (allocation test) and application /
// sequential throughput for the SC, TP and TS workloads.
//
// Paper values for comparison:
//   SC: int 43.1%  ext 13.4%  app 88.0%  seq 94.4%
//   TP: int 15.2%  ext  9.0%  app 27.7%  seq 93.9%
//   TS: int 18.4%  ext  2.3%  app  8.4%  seq 12.0%

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner("Table 3: Results for Buddy Allocation", "Table 3",
                   disk_config);

  const char* paper[] = {"43.1% 13.4% 88.0% 94.4%",
                         "15.2%  9.0% 27.7% 93.9%",
                         "18.4%  2.3%  8.4% 12.0%"};

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    sweep.Add(
        FormatString("table3 %s",
                     workload::WorkloadKindToString(kind).c_str()),
        [=](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
          exp::ExperimentConfig config = bench::BenchExperimentConfig();
          config.seed = ctx.seed;
          exp::Experiment experiment(workload::MakeWorkload(kind),
                                     bench::BuddyFactory(), disk_config,
                                     config);
          auto alloc_result = experiment.RunAllocationTest();
          if (!alloc_result.ok()) return alloc_result.status();
          auto perf = experiment.RunPerformancePair();
          if (!perf.ok()) return perf.status();
          exp::RunRecord record;
          record.MergeMetrics(alloc_result->ToRecord(), "alloc.");
          record.MergeMetrics(perf->application.ToRecord(), "app.");
          record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
          return record;
        },
        [=](const bench::CellStats& cs) {
          return std::vector<std::string>{
              workload::WorkloadKindToString(kind),
              cs.Pct("alloc.internal_frag"),
              cs.Pct("alloc.external_frag"),
              cs.Pct("app.throughput_of_max"),
              cs.Pct("seq.throughput_of_max")};
        });
  }

  Table table({"Workload", "Internal Frag", "External Frag",
               "Application", "Sequential", "(paper: int/ext/app/seq)"});
  int row = 0;
  for (auto& cells : sweep.Run()) {
    cells.push_back(paper[row++]);
    table.AddRow(cells);
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
