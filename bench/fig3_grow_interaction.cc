// Reproduces the Figure 3 analysis: how contiguous allocation and the
// grow factor interact. When the grow factor is 1, a file moves to 64K
// blocks at 72K of length; 72K is not a multiple of 64K, so the new block
// cannot be contiguous and the file pays a seek. With grow factor 2 the
// 64K block is not required until the file is already 144K — most
// time-sharing files never get there.
//
// For each grow factor the bench grows a fresh file to a range of sizes
// (on the paper's {1K,8K,64K} ladder), counts physical discontinuities,
// and measures the whole-file sequential read time on the 8-disk array.

#include <cstdio>
#include <memory>

#include "alloc/restricted_buddy.h"
#include "bench/common.h"
#include "disk/disk_system.h"
#include "exp/reporting.h"
#include "fs/read_optimized_fs.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

namespace {

struct Probe {
  size_t extents;
  uint64_t discontinuities;
  double read_ms;
};

Probe GrowAndRead(uint32_t grow_factor, uint64_t file_bytes) {
  disk::DiskSystem disk(bench::PaperDiskConfig());
  alloc::RestrictedBuddyConfig cfg;
  cfg.block_sizes_du = {1, 8, 64};  // The ladder of Figure 3.
  cfg.grow_factor = grow_factor;
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(), cfg);
  fs::ReadOptimizedFs fs(&allocator, &disk);
  const fs::FileId id = fs.Create(KiB(8));
  // Grow in 8K appends, like a time-sharing file being written out.
  sim::TimeMs done = 0;
  for (uint64_t size = 0; size < file_bytes; size += KiB(8)) {
    bench::DieOnError(fs.Extend(id, KiB(8), done, &done), "extend");
  }
  const fs::File& f = fs.file(id);
  Probe p{f.alloc.extents.size(), 0, 0.0};
  for (size_t i = 1; i < f.alloc.extents.size(); ++i) {
    p.discontinuities +=
        f.alloc.extents[i].start_du != f.alloc.extents[i - 1].end_du();
  }
  const sim::TimeMs start = done + 1000.0;
  p.read_ms = fs.Read(id, 0, file_bytes, start) - start;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  exp::PrintBanner("Figure 3: Grow factor vs contiguous allocation",
                   "Figure 3", bench::PaperDiskConfig());

  bench::Sweep sweep(argc, argv);
  for (uint64_t kb : {8, 16, 32, 64, 72, 96, 128, 144, 192, 256}) {
    sweep.Add(
        FormatString("fig3 %lluK", static_cast<unsigned long long>(kb)),
        [=](const runner::RunContext&) -> StatusOr<exp::RunRecord> {
          const Probe g1 = GrowAndRead(1, KiB(kb));
          const Probe g2 = GrowAndRead(2, KiB(kb));
          exp::RunRecord record;
          record.Set("g1.extents", static_cast<double>(g1.extents));
          record.Set("g1.jumps", static_cast<double>(g1.discontinuities));
          record.Set("g1.read_ms", g1.read_ms);
          record.Set("g2.extents", static_cast<double>(g2.extents));
          record.Set("g2.jumps", static_cast<double>(g2.discontinuities));
          record.Set("g2.read_ms", g2.read_ms);
          return record;
        },
        [=](const bench::CellStats& cs) {
          return std::vector<std::string>{
              FormatString("%lluK", static_cast<unsigned long long>(kb)),
              cs.Fixed("g1.extents", 0), cs.Fixed("g1.jumps", 0),
              cs.Fixed("g1.read_ms", 1, "ms"), cs.Fixed("g2.extents", 0),
              cs.Fixed("g2.jumps", 0), cs.Fixed("g2.read_ms", 1, "ms")};
        });
  }

  Table table({"File size", "g=1 extents", "g=1 jumps", "g=1 read",
               "g=2 extents", "g=2 jumps", "g=2 read"});
  for (auto& row : sweep.Run()) table.AddRow(row);
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper claim: with g=1 any file over 72K pays a seek for its first\n"
      "64K block; with g=2 the 64K block is deferred until 144K, so the\n"
      "typical 96K time-sharing file stays fully contiguous.\n");
  return 0;
}
