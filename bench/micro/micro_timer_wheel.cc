// Microbenchmark of the hierarchical timer wheel (DESIGN.md §11.5)
// against the event heap it replaces for user think-time expiry: a
// steady population of N idle timers, each firing and immediately
// re-arming with a fresh think delay — the op generator's inner loop.
// The heap pays O(log N) sift work and a 48-byte callback slot per
// reschedule; the wheel pays O(1) bucketing on one 32-byte pooled node,
// so the gap widens exactly where ISSUE 8 needs it (10^5-10^6 users).

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "sim/event_queue.h"
#include "sim/timer_wheel.h"
#include "util/random.h"

namespace rofs {
namespace {

constexpr size_t kDelays = 16384;

/// Pre-drawn think delays shared by both variants, so the measurement
/// compares the structures, not the RNG. The mean delay scales with the
/// population (0.5 ms per user, at least 100 ms): a million concurrent
/// users are only realistic when almost all of them are idle for
/// minutes, and that ratio — not the raw count — sets the timers-per-
/// tick density the wheel buckets by.
std::vector<double> ThinkDelays(size_t users) {
  const double mean = std::max(100.0, 0.5 * static_cast<double>(users));
  Rng rng(42);
  std::vector<double> v(kDelays);
  for (double& d : v) d = mean * (0.5 + rng.NextDouble());
  return v;
}

// ---------------------------------------------------------------------------
// Heap mode: every idle user is one event-queue entry whose callback
// re-arms itself (what the op generator does without the wheel).
// ---------------------------------------------------------------------------

struct ThinkPayload {
  sim::EventQueue* queue;
  const std::vector<double>* delays;
  uint64_t* fired;
  uint64_t user;
  void operator()() const {
    ++*fired;
    queue->Schedule(queue->now() + (*delays)[(user + *fired) % kDelays],
                    ThinkPayload{queue, delays, fired, user});
  }
};

void BM_ThinkChurn_EventHeap(benchmark::State& state) {
  const size_t kUsers = static_cast<size_t>(state.range(0));
  const std::vector<double> delays = ThinkDelays(kUsers);
  sim::EventQueue queue;
  queue.Reserve(kUsers + 1);
  uint64_t fired = 0;
  for (size_t u = 0; u < kUsers; ++u) {
    queue.Schedule(delays[u % kDelays],
                   ThinkPayload{&queue, &delays, &fired, u});
  }
  for (auto _ : state) {
    queue.RunNext();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ThinkChurn_EventHeap)
    ->RangeMultiplier(32)
    ->Range(1024, 1 << 20)
    ->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Wheel mode: the same churn through TimerWheel::Schedule/PopDue, with
// the pump clock following next_deadline() exactly as the op generator's
// wheel pump does.
// ---------------------------------------------------------------------------

void BM_ThinkChurn_TimerWheel(benchmark::State& state) {
  const size_t kUsers = static_cast<size_t>(state.range(0));
  const std::vector<double> delays = ThinkDelays(kUsers);
  sim::TimerWheel wheel(/*tick_ms=*/1.0);
  wheel.Reserve(kUsers);
  for (size_t u = 0; u < kUsers; ++u) {
    wheel.Schedule(delays[u % kDelays], u);
  }
  std::vector<sim::TimerEntry> due;
  size_t cursor = 0;
  uint64_t fired = 0;
  double now = 0.0;
  for (auto _ : state) {
    if (cursor == due.size()) {
      due.clear();
      cursor = 0;
      now = wheel.next_deadline();
      wheel.PopDue(now, &due);
    }
    const sim::TimerEntry& e = due[cursor++];
    ++fired;
    wheel.Schedule(now + delays[(e.payload + fired) % kDelays], e.payload);
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ThinkChurn_TimerWheel)
    ->RangeMultiplier(32)
    ->Range(1024, 1 << 20)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs

BENCHMARK_MAIN();
