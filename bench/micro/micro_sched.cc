// Microbenchmarks of the disk scheduler queues: steady-state
// Enqueue/PickNext churn at a fixed pending population, per policy.
// The scheduler sits on the simulator's per-I/O hot path (one
// Enqueue + one PickNext per disk request), so its per-request cost
// must stay small against Disk::Access itself (~100ns, see
// micro_disk's BM_DiskAccess).

#include <benchmark/benchmark.h>

#include "sched/scheduler.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs {
namespace {

constexpr uint64_t kMaxCylinder = 1599;  // CDC Wren IV.

sched::Request MakeRequest(uint64_t cylinder, uint64_t seq) {
  sched::Request r;
  r.offset_bytes = cylinder * KiB(216);
  r.length_bytes = KiB(8);
  r.arrival = static_cast<sim::TimeMs>(seq);
  r.seq = seq;
  r.cylinder = cylinder;
  r.handle = static_cast<uint32_t>(seq & 0xff);
  return r;
}

/// One Enqueue + one PickNext per iteration with `range(0)` requests
/// pending, random cylinders — the per-request scheduling overhead at
/// that queue depth.
void BM_SchedChurn(benchmark::State& state, const char* policy_text) {
  auto spec = sched::ParseSchedulerSpec(policy_text);
  auto scheduler = sched::MakeScheduler(*spec, kMaxCylinder);
  const uint64_t depth = static_cast<uint64_t>(state.range(0));
  scheduler->Reserve(depth + 1);
  Rng rng(7);
  uint64_t seq = 0;
  for (; seq < depth; ++seq) {
    scheduler->Enqueue(MakeRequest(rng.UniformInt(0, kMaxCylinder), seq));
  }
  uint64_t head = 0;
  sched::Request picked;
  uint64_t effective_seek = 0;
  bool was_oldest = false;
  for (auto _ : state) {
    scheduler->Enqueue(MakeRequest(rng.UniformInt(0, kMaxCylinder), seq++));
    scheduler->PickNext(head, &picked, &effective_seek, &was_oldest);
    head = picked.cylinder;
    benchmark::DoNotOptimize(effective_seek);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_SchedChurn, fcfs, "fcfs")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SchedChurn, sstf, "sstf")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SchedChurn, scan, "scan")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SchedChurn, cscan, "cscan")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SchedChurn, look, "look")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SchedChurn, batch16, "batch(16)")
    ->Arg(4)->Arg(64)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs

BENCHMARK_MAIN();
