// Microbenchmarks of the simulation-core hot paths rewritten in the
// cache-locality pass: event scheduling/dispatch, buffer-cache LRU
// touch/insert, and buddy alloc/free churn. Each structure is measured
// against a self-contained copy of the previous implementation
// (std::priority_queue + std::function, std::list + std::unordered_map,
// std::set free lists), so the speedup claims are reproducible on any
// checkout rather than requiring two builds.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "alloc/buddy_allocator.h"
#include "fs/buffer_cache.h"
#include "sim/event_queue.h"
#include "util/random.h"

namespace rofs {
namespace {

// ---------------------------------------------------------------------------
// Reference copies of the seed structures.
// ---------------------------------------------------------------------------

/// The seed event queue: binary std::priority_queue of shared-ptr-free
/// entries whose callbacks are std::function (heap-allocated past 16
/// bytes of capture on libstdc++).
class RefEventQueue {
 public:
  using Callback = std::function<void()>;

  void Schedule(double when, Callback cb) {
    if (when < now_) when = now_;
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
  }

  bool RunNext() {
    if (heap_.empty()) return false;
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.time;
    e.cb();
    return true;
  }

  double now() const { return now_; }
  size_t size() const { return heap_.size(); }

 private:
  struct Entry {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
};

/// The seed buffer cache: std::list LRU chain + unordered_map index, one
/// list-node allocation per insertion.
class RefLruCache {
 public:
  explicit RefLruCache(uint64_t capacity) : capacity_(capacity) {}

  bool Touch(uint64_t page) {
    auto it = index_.find(page);
    if (it == index_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  void Insert(uint64_t page) {
    auto it = index_.find(page);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(page);
    index_[page] = lru_.begin();
  }

 private:
  uint64_t capacity_;
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

/// The seed buddy free lists: one ordered set of addresses per order,
/// lowest-address allocation, buddy coalescing on free.
class RefBuddy {
 public:
  explicit RefBuddy(uint64_t total_du) : total_du_(total_du) {
    uint32_t orders = 0;
    while ((uint64_t{1} << orders) <= total_du) ++orders;
    free_.resize(orders);
    uint64_t addr = 0;
    while (addr < total_du) {
      uint64_t size = uint64_t{1} << (orders - 1);
      while (addr % size != 0 || addr + size > total_du) size >>= 1;
      free_[OrderOf(size)].insert(addr);
      addr += size;
    }
  }

  bool Allocate(uint32_t order, uint64_t* addr) {
    uint32_t o = order;
    while (o < free_.size() && free_[o].empty()) ++o;
    if (o >= free_.size()) return false;
    uint64_t block = *free_[o].begin();
    free_[o].erase(free_[o].begin());
    while (o > order) {
      --o;
      free_[o].insert(block + (uint64_t{1} << o));
    }
    *addr = block;
    return true;
  }

  void Free(uint64_t addr, uint32_t order) {
    while (order + 1 < free_.size()) {
      const uint64_t size = uint64_t{1} << order;
      const uint64_t buddy = addr ^ size;
      if (buddy + size > total_du_) break;
      auto it = free_[order].find(buddy);
      if (it == free_[order].end()) break;
      free_[order].erase(it);
      addr = addr < buddy ? addr : buddy;
      ++order;
    }
    free_[order].insert(addr);
  }

 private:
  static uint32_t OrderOf(uint64_t size) {
    uint32_t o = 0;
    while ((uint64_t{1} << o) < size) ++o;
    return o;
  }
  uint64_t total_du_;
  std::vector<std::set<uint64_t>> free_;
};

// ---------------------------------------------------------------------------
// Event queue: schedule + dispatch at steady-state population.
// ---------------------------------------------------------------------------

// A capture the size of the simulator's completion callbacks (two
// pointers + three words, 40 bytes): inline for util::InlineFunction's
// 48-byte buffer, heap-allocated by libstdc++'s 16-byte std::function.
struct CallbackPayload {
  uint64_t* counter;
  const uint64_t* salt;
  uint64_t a, b, c;
  void operator()() const { *counter += a ^ b ^ c ^ *salt; }
};

template <typename Queue>
void RunEventChurn(benchmark::State& state, Queue& queue) {
  const size_t kPopulation = static_cast<size_t>(state.range(0));
  // Pre-draw the delays so the measurement compares the queues, not the
  // random number generator.
  constexpr size_t kDelays = 16384;
  static const std::vector<double>& delays = *[] {
    Rng rng(42);
    auto* v = new std::vector<double>(kDelays);
    for (double& d : *v) d = rng.NextDouble() * 100.0;
    return v;
  }();
  uint64_t counter = 0;
  const uint64_t salt = 0x5eed;
  auto payload = [&](uint64_t i) {
    return CallbackPayload{&counter, &salt, i, i * 3, i * 7};
  };
  for (size_t i = 0; i < kPopulation; ++i) {
    queue.Schedule(delays[i % kDelays], payload(i));
  }
  uint64_t i = kPopulation;
  for (auto _ : state) {
    queue.RunNext();
    queue.Schedule(queue.now() + delays[i % kDelays], payload(i));
    ++i;
  }
  benchmark::DoNotOptimize(counter);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EventChurn_QuadHeapInline(benchmark::State& state) {
  sim::EventQueue queue;
  queue.Reserve(2 * static_cast<size_t>(state.range(0)));
  RunEventChurn(state, queue);
}
BENCHMARK(BM_EventChurn_QuadHeapInline)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kNanosecond);

void BM_EventChurn_RefPriorityQueueStdFunction(benchmark::State& state) {
  RefEventQueue queue;
  RunEventChurn(state, queue);
}
BENCHMARK(BM_EventChurn_RefPriorityQueueStdFunction)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Buffer cache: mixed touch/insert over a working set larger than the
// cache (the application test's page-level access pattern).
// ---------------------------------------------------------------------------

template <typename Cache>
void RunLruChurn(benchmark::State& state, Cache& cache) {
  constexpr uint64_t kCapacity = 8192;
  constexpr uint64_t kWorkingSet = kCapacity * 2;
  constexpr size_t kTrace = 65536;
  static const std::vector<uint64_t>& pages = *[] {
    Rng rng(7);
    auto* v = new std::vector<uint64_t>(kTrace);
    for (uint64_t& p : *v) p = rng.UniformInt(0, kWorkingSet - 1);
    return v;
  }();
  for (uint64_t p = 0; p < kCapacity; ++p) cache.Insert(p);
  size_t i = 0;
  for (auto _ : state) {
    const uint64_t page = pages[i];
    i = (i + 1) % kTrace;
    if (!cache.Touch(page)) cache.Insert(page);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_LruChurn_FlatSlots(benchmark::State& state) {
  // page_du = 1: Touch/Insert address pages directly.
  fs::BufferCache cache(/*capacity_pages=*/8192, /*page_du=*/1);
  RunLruChurn(state, cache);
}
BENCHMARK(BM_LruChurn_FlatSlots)->Unit(benchmark::kNanosecond);

void BM_LruChurn_RefListMap(benchmark::State& state) {
  RefLruCache cache(8192);
  RunLruChurn(state, cache);
}
BENCHMARK(BM_LruChurn_RefListMap)->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// Buddy free lists: alloc/free churn on a fragmented space.
// ---------------------------------------------------------------------------

constexpr uint64_t kSpaceDu = 2'764'800;  // The paper's 2.8 GB array.

template <typename Buddy>
void RunBuddyChurn(benchmark::State& state, Buddy& buddy) {
  // Pre-drawn order sequence, identical for both variants.
  constexpr size_t kOrders = 65536;
  static const std::vector<uint32_t>& orders = *[] {
    Rng rng(3);
    auto* v = new std::vector<uint32_t>(kOrders);
    for (uint32_t& o : *v) o = static_cast<uint32_t>(rng.UniformInt(0, 6));
    return v;
  }();
  // Fragment to mid-life scale: ~120k mixed-order blocks (~80% of the
  // 2.7M-unit array), half freed, leaves free lists tens of thousands of
  // blocks long — the regime where the free-space index is actually hot.
  std::vector<std::pair<uint64_t, uint32_t>> held;
  held.reserve(120'000);
  for (int i = 0; i < 120'000; ++i) {
    uint64_t addr = 0;
    if (buddy.Allocate(orders[i % kOrders], &addr)) {
      held.push_back({addr, orders[i % kOrders]});
    }
  }
  for (size_t i = 0; i < held.size(); i += 2) {
    buddy.Free(held[i].first, held[i].second);
    held[i].second = UINT32_MAX;
  }
  size_t cursor = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto& h = held[cursor];
    if (h.second == UINT32_MAX) {
      uint64_t addr = 0;
      const uint32_t order = orders[i];
      i = (i + 1) % kOrders;
      if (buddy.Allocate(order, &addr)) h = {addr, order};
    } else {
      buddy.Free(h.first, h.second);
      h.second = UINT32_MAX;
    }
    cursor = (cursor + 1) % held.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

/// Exposes the bitmap allocator's protected block interface to the churn
/// driver (the churn is block-level; Extend/FreeRun work in extents).
class BitmapBuddy : public alloc::BuddyAllocator {
 public:
  explicit BitmapBuddy(uint64_t total_du) : BuddyAllocator(total_du) {}
  bool Allocate(uint32_t order, uint64_t* addr) {
    return AllocateBlock(order, addr);
  }
  void Free(uint64_t addr, uint32_t order) { FreeBlock(addr, order); }
};

void BM_BuddyChurn_Bitmap(benchmark::State& state) {
  BitmapBuddy buddy(kSpaceDu);
  RunBuddyChurn(state, buddy);
}
BENCHMARK(BM_BuddyChurn_Bitmap)->Unit(benchmark::kNanosecond);

void BM_BuddyChurn_RefOrderedSets(benchmark::State& state) {
  RefBuddy buddy(kSpaceDu);
  RunBuddyChurn(state, buddy);
}
BENCHMARK(BM_BuddyChurn_RefOrderedSets)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs

BENCHMARK_MAIN();
