// Microbenchmarks of the file-system layer: logical-to-physical mapping
// cost as extent counts grow, cached vs uncached operation cost, and the
// buffer-cache data structure itself.

#include <memory>

#include <benchmark/benchmark.h>

#include "alloc/fixed_block_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "fs/buffer_cache.h"
#include "fs/read_optimized_fs.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs::fs {
namespace {

// Mapping cost for a random 8K read in a file with many extents (the
// fixed-block TP relation case: tens of thousands of blocks).
void BM_MapRangeManyExtents(benchmark::State& state) {
  const int64_t extents = state.range(0);
  disk::DiskSystem disk(disk::DiskSystemConfig::Array(8));
  alloc::FixedBlockAllocator allocator(disk.capacity_du(), 8);
  ReadOptimizedFs fs(&allocator, &disk);
  fs.set_io_enabled(false);
  const FileId id = fs.Create(KiB(8));
  sim::TimeMs done = 0;
  // 8K blocks -> `extents` extents.
  if (!fs.Extend(id, static_cast<uint64_t>(extents) * KiB(8), 0.0, &done)
           .ok()) {
    state.SkipWithError("allocation failed");
    return;
  }
  fs.set_io_enabled(true);
  Rng rng(1);
  const uint64_t logical = fs.file(id).logical_bytes;
  sim::TimeMs t = 0;
  for (auto _ : state) {
    const uint64_t offset =
        RoundDown(rng.UniformInt(0, logical - KiB(8) - 1), KiB(8));
    t = fs.Read(id, offset, KiB(8), t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapRangeManyExtents)->Arg(16)->Arg(1024)->Arg(65536)
    ->Unit(benchmark::kNanosecond);

void BM_CachedRead(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  disk::DiskSystem disk(disk::DiskSystemConfig::Array(8));
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(),
                                            alloc::RestrictedBuddyConfig{});
  FsOptions options;
  if (cached) options.cache_bytes = MiB(64);
  ReadOptimizedFs fs(&allocator, &disk, options);
  const FileId id = fs.Create(KiB(8));
  sim::TimeMs done = 0;
  if (!fs.Extend(id, MiB(32), 0.0, &done).ok()) {
    state.SkipWithError("allocation failed");
    return;
  }
  Rng rng(2);
  sim::TimeMs t = done;
  for (auto _ : state) {
    const uint64_t offset =
        RoundDown(rng.UniformInt(0, MiB(32) - KiB(8) - 1), KiB(8));
    t = fs.Read(id, offset, KiB(8), t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(cached ? "64M-cache" : "uncached");
}
BENCHMARK(BM_CachedRead)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

void BM_BufferCacheTouch(benchmark::State& state) {
  BufferCache cache(8192, 8);
  Rng rng(3);
  for (int i = 0; i < 8192; ++i) cache.Insert(rng.UniformInt(0, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch(rng.UniformInt(0, 1 << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCacheTouch)->Unit(benchmark::kNanosecond);

void BM_ExtendTruncateChurn(benchmark::State& state) {
  disk::DiskSystem disk(disk::DiskSystemConfig::Array(8));
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(),
                                            alloc::RestrictedBuddyConfig{});
  ReadOptimizedFs fs(&allocator, &disk);
  fs.set_io_enabled(false);
  std::vector<FileId> ids;
  sim::TimeMs done = 0;
  for (int i = 0; i < 256; ++i) {
    ids.push_back(fs.Create(KiB(8)));
    (void)fs.Extend(ids.back(), KiB(64), 0.0, &done);
  }
  Rng rng(4);
  for (auto _ : state) {
    const FileId id = ids[rng.UniformInt(0, ids.size() - 1)];
    if (rng.Bernoulli(0.5)) {
      (void)fs.Extend(id, KiB(8), 0.0, &done);
    } else {
      fs.Truncate(id, KiB(8));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtendTruncateChurn)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs::fs

BENCHMARK_MAIN();
