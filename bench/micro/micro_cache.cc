// Microbenchmarks of the pluggable buffer-cache hierarchy: per-policy
// hit and churn cost through the CachePolicy seam (the LRU case doubles
// as the regression guard for the seed cache's flat-slot hot path),
// range access, prefetch installation, and the dirty-page FIFO.

#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "fs/buffer_cache.h"
#include "fs/cache_policy.h"
#include "util/random.h"

namespace rofs::fs {
namespace {

constexpr const char* kPolicies[] = {"lru", "clock", "2q", "arc"};

BufferCache PolicyCache(int64_t policy_index, uint64_t pages,
                        uint64_t page_du) {
  auto spec = ParseCachePolicySpec(kPolicies[policy_index]);
  return BufferCache(pages, page_du, *spec);
}

// Pure hit path: every access finds its page resident, so the cost is
// the table probe plus the policy's OnAccess (list move for LRU/2Q/ARC,
// one byte store for CLOCK).
void BM_CacheHit(benchmark::State& state) {
  BufferCache cache = PolicyCache(state.range(0), 4096, 8);
  for (uint64_t p = 0; p < 4096; ++p) cache.Insert(p * 8);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Touch(rng.UniformInt(0, 4095) * 8));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kPolicies[state.range(0)]);
}
BENCHMARK(BM_CacheHit)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

// Steady-state replacement churn: a working set 8x the cache, so most
// inserts evict through PickVictim (ghost-list maintenance included for
// 2Q/ARC).
void BM_CacheChurn(benchmark::State& state) {
  BufferCache cache = PolicyCache(state.range(0), 4096, 8);
  Rng rng(2);
  for (auto _ : state) {
    const uint64_t du = rng.UniformInt(0, 8 * 4096 - 1) * 8;
    if (!cache.Touch(du)) cache.Insert(du);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kPolicies[state.range(0)]);
}
BENCHMARK(BM_CacheChurn)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

// The range-first API on multi-page requests (8 pages per call).
void BM_CacheRangeAccess(benchmark::State& state) {
  BufferCache cache = PolicyCache(state.range(0), 4096, 8);
  cache.Install(0, 4096 * 8);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Access(rng.UniformInt(0, 4095 - 8) * 8, 64));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kPolicies[state.range(0)]);
}
BENCHMARK(BM_CacheRangeAccess)->DenseRange(0, 3)->Unit(benchmark::kNanosecond);

// Write-back pipeline: install dirty ranges and drain the dirty FIFO in
// coalesced runs, with the flush callback swallowing the output.
void BM_CacheWriteBackDrain(benchmark::State& state) {
  BufferCache cache(4096, 8);
  cache.set_flush_fn([](uint64_t, uint64_t) {});
  Rng rng(4);
  uint64_t start = 0;
  uint64_t n = 0;
  for (auto _ : state) {
    cache.InstallDirty(rng.UniformInt(0, 8 * 4096 - 1) * 8, 4 * 8);
    while (cache.dirty_pages() > 64) {
      benchmark::DoNotOptimize(cache.PopOldestDirty(&start, &n));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteBackDrain)->Unit(benchmark::kNanosecond);

// Speculative installation: an 8-page readahead window where half the
// pages are typically already resident.
void BM_CachePrefetchInstall(benchmark::State& state) {
  BufferCache cache(4096, 8);
  Rng rng(5);
  for (auto _ : state) {
    cache.InstallPrefetch(rng.UniformInt(0, 2 * 4096 - 1) * 8, 8 * 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachePrefetchInstall)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs::fs

BENCHMARK_MAIN();
