// Microbenchmarks of the allocator hot paths: cost of extend/truncate/
// delete for each policy, and of the free-space index operations.
// These are operation-cost ablations, not paper experiments: the paper's
// tables/figures are produced by the sibling drivers in bench/.

#include <memory>

#include <benchmark/benchmark.h>

#include "alloc/buddy_allocator.h"
#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/free_extent_map.h"
#include "alloc/restricted_buddy.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs::alloc {
namespace {

constexpr uint64_t kSpaceDu = 2'764'800;  // The paper's 2.8 GB array.

std::unique_ptr<Allocator> MakeAllocator(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<BuddyAllocator>(kSpaceDu);
    case 1: {
      RestrictedBuddyConfig cfg;
      cfg.clustered = true;
      return std::make_unique<RestrictedBuddyAllocator>(kSpaceDu, cfg);
    }
    case 2: {
      RestrictedBuddyConfig cfg;
      cfg.clustered = false;
      return std::make_unique<RestrictedBuddyAllocator>(kSpaceDu, cfg);
    }
    case 3: {
      ExtentAllocatorConfig cfg;
      cfg.range_means_du = {512, 1024, 16384};
      return std::make_unique<ExtentAllocator>(kSpaceDu, cfg);
    }
    default:
      return std::make_unique<FixedBlockAllocator>(kSpaceDu, 4);
  }
}

const char* AllocatorName(int kind) {
  switch (kind) {
    case 0:
      return "buddy";
    case 1:
      return "restricted-clustered";
    case 2:
      return "restricted-unclustered";
    case 3:
      return "extent-first-fit";
    default:
      return "fixed-4K";
  }
}

// Steady-state churn: extend/truncate/delete on a ~70% full system.
void BM_AllocatorChurn(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  auto allocator = MakeAllocator(kind);
  Rng rng(7);
  std::vector<FileAllocState> files(512);
  for (auto& f : files) {
    allocator->OnCreateFile(&f);
    (void)allocator->Extend(&f, rng.UniformInt(8, 4096));
  }
  uint64_t ops = 0;
  for (auto _ : state) {
    FileAllocState& f = files[rng.UniformInt(0, files.size() - 1)];
    const double u = rng.NextDouble();
    if (u < 0.5) {
      benchmark::DoNotOptimize(allocator->Extend(&f, rng.UniformInt(1, 64)));
    } else if (u < 0.8) {
      benchmark::DoNotOptimize(
          allocator->TruncateTail(&f, rng.UniformInt(1, 64)));
    } else {
      allocator->DeleteFile(&f);
      allocator->OnCreateFile(&f);
    }
    ++ops;
  }
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  state.SetLabel(AllocatorName(kind));
}
BENCHMARK(BM_AllocatorChurn)->DenseRange(0, 4)->Unit(benchmark::kNanosecond);

// Cost of allocating one full large file, policy by policy.
void BM_AllocateLargeFile(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto allocator = MakeAllocator(kind);
    FileAllocState f;
    f.pref_extent_du = 16384;
    allocator->OnCreateFile(&f);
    state.ResumeTiming();
    benchmark::DoNotOptimize(allocator->Extend(&f, 200'000));  // ~200 MB.
  }
  state.SetLabel(AllocatorName(kind));
}
BENCHMARK(BM_AllocateLargeFile)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_FreeExtentMapFirstFit(benchmark::State& state) {
  FreeExtentMap map;
  map.Free(0, kSpaceDu);
  Rng rng(3);
  // Fragment the map.
  std::vector<std::pair<uint64_t, uint64_t>> held;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t n = rng.UniformInt(1, 256);
    if (auto a = map.AllocateFirstFit(n)) held.push_back({*a, n});
  }
  for (size_t i = 0; i < held.size(); i += 2) {
    map.Free(held[i].first, held[i].second);
  }
  for (auto _ : state) {
    const uint64_t n = rng.UniformInt(1, 256);
    auto a = map.AllocateFirstFit(n);
    benchmark::DoNotOptimize(a);
    if (a) map.Free(*a, n);
  }
}
BENCHMARK(BM_FreeExtentMapFirstFit)->Unit(benchmark::kNanosecond);

void BM_FreeExtentMapBestFit(benchmark::State& state) {
  FreeExtentMap map;
  map.Free(0, kSpaceDu);
  Rng rng(3);
  std::vector<std::pair<uint64_t, uint64_t>> held;
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t n = rng.UniformInt(1, 256);
    if (auto a = map.AllocateBestFit(n)) held.push_back({*a, n});
  }
  for (size_t i = 0; i < held.size(); i += 2) {
    map.Free(held[i].first, held[i].second);
  }
  for (auto _ : state) {
    const uint64_t n = rng.UniformInt(1, 256);
    auto a = map.AllocateBestFit(n);
    benchmark::DoNotOptimize(a);
    if (a) map.Free(*a, n);
  }
}
BENCHMARK(BM_FreeExtentMapBestFit)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs::alloc

BENCHMARK_MAIN();
