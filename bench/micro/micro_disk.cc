// Microbenchmarks of the disk subsystem model: single-access timing cost,
// striping map decomposition, and event-queue throughput. These measure
// simulator speed (events/second), which bounds how much simulated time
// the paper experiments can cover.

#include <benchmark/benchmark.h>

#include "disk/disk_system.h"
#include "sim/event_queue.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs {
namespace {

void BM_DiskAccess(benchmark::State& state) {
  disk::Disk d(disk::CdcWrenIV());
  Rng rng(1);
  const uint64_t cap = d.geometry().capacity_bytes();
  sim::TimeMs t = 0;
  for (auto _ : state) {
    const uint64_t offset = rng.UniformInt(0, cap - KiB(64) - 1);
    t = d.Access(t, offset, KiB(8));
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskAccess)->Unit(benchmark::kNanosecond);

void BM_StripedRead(benchmark::State& state) {
  const uint64_t n_du = static_cast<uint64_t>(state.range(0));
  disk::DiskSystem sys(disk::DiskSystemConfig::Array(8));
  Rng rng(2);
  sim::TimeMs t = 0;
  for (auto _ : state) {
    const uint64_t start = rng.UniformInt(0, sys.capacity_du() - n_du - 1);
    t = sys.Read(t, start, n_du);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripedRead)->Arg(8)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kNanosecond);

void BM_Raid5SmallWrite(benchmark::State& state) {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(8);
  cfg.layout = disk::LayoutKind::kRaid5;
  disk::DiskSystem sys(cfg);
  Rng rng(3);
  sim::TimeMs t = 0;
  for (auto _ : state) {
    const uint64_t start = rng.UniformInt(0, sys.capacity_du() - 16);
    t = sys.Write(t, start, 8);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Raid5SmallWrite)->Unit(benchmark::kNanosecond);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(4);
  // Keep a steady population of 1000 pending events.
  int pending = 0;
  for (auto _ : state) {
    while (pending < 1000) {
      q.Schedule(q.now() + rng.Uniform(0.0, 100.0), [&pending] { --pending; });
      ++pending;
    }
    q.RunNext();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace rofs

BENCHMARK_MAIN();
