// Reproduces Figure 5 of the paper: application and sequential
// performance of the extent-based policies (1..5 ranges, first/best fit).
//
// Paper shape: throughput is nearly insensitive to first vs best fit
// (first fit slightly ahead thanks to low-address clustering); sequential
// performance tracks the average number of extents per file (Table 4) —
// fewest extents, fewest seeks, best throughput.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main() {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 5: Application and Sequential Performance, Extent Based",
      "Figure 5", disk_config);

  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Ranges", "Fit", "Application", "Sequential",
                 "ExtentsPerFile"});
    for (int ranges = 1; ranges <= 5; ++ranges) {
      for (alloc::FitPolicy fit :
           {alloc::FitPolicy::kFirstFit, alloc::FitPolicy::kBestFit}) {
        exp::Experiment experiment(
            workload::MakeWorkload(kind),
            bench::ExtentFactory(kind, ranges, fit), disk_config,
            bench::BenchExperimentConfig());
        auto perf = experiment.RunPerformancePair();
        bench::DieOnError(perf.status(), "fig5 performance tests");
        table.AddRow(
            {FormatString("%d", ranges), alloc::FitPolicyToString(fit),
             exp::Pct(perf->application.utilization_of_max),
             exp::Pct(perf->sequential.utilization_of_max),
             FormatString("%.1f", perf->sequential.avg_extents_per_file)});
        std::fflush(stdout);
      }
    }
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
