// Reproduces Figure 5 of the paper: application and sequential
// performance of the extent-based policies (1..5 ranges, first/best fit).
//
// Paper shape: throughput is nearly insensitive to first vs best fit
// (first fit slightly ahead thanks to low-address clustering); sequential
// performance tracks the average number of extents per file (Table 4) —
// fewest extents, fewest seeks, best throughput.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 5: Application and Sequential Performance, Extent Based",
      "Figure 5", disk_config);

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    for (int ranges = 1; ranges <= 5; ++ranges) {
      for (alloc::FitPolicy fit :
           {alloc::FitPolicy::kFirstFit, alloc::FitPolicy::kBestFit}) {
        sweep.Add(
            FormatString("fig5 %s %d-ranges %s",
                         workload::WorkloadKindToString(kind).c_str(),
                         ranges, alloc::FitPolicyToString(fit).c_str()),
            [=](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
              exp::ExperimentConfig config = bench::BenchExperimentConfig();
              config.seed = ctx.seed;
              exp::Experiment experiment(
                  workload::MakeWorkload(kind),
                  bench::ExtentFactory(kind, ranges, fit), disk_config,
                  config);
              auto perf = experiment.RunPerformancePair();
              if (!perf.ok()) return perf.status();
              exp::RunRecord record;
              record.MergeMetrics(perf->application.ToRecord(), "app.");
              record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
              return record;
            },
            [=](const bench::CellStats& cs) {
              return std::vector<std::string>{
                  FormatString("%d", ranges), alloc::FitPolicyToString(fit),
                  cs.Pct("app.throughput_of_max"),
                  cs.Pct("seq.throughput_of_max"),
                  cs.Fixed("seq.extents_per_file", 1)};
            });
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Ranges", "Fit", "Application", "Sequential",
                 "ExtentsPerFile"});
    for (int i = 0; i < 5 * 2; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
