// Reproduces Figure 4 of the paper: internal and external fragmentation
// of the extent-based policies, sweeping 1..5 extent-size ranges and both
// fit policies, for each workload.
//
// Paper shape: "even with a wide range of extent sizes, neither internal
// nor external fragmentation surpasses 5%", and best fit consistently
// fragments less than first fit.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main() {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 4: Internal and External Fragmentation, Extent Based",
      "Figure 4", disk_config);

  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Ranges", "Fit", "Internal Frag", "External Frag",
                 "Util@full"});
    for (int ranges = 1; ranges <= 5; ++ranges) {
      for (alloc::FitPolicy fit :
           {alloc::FitPolicy::kFirstFit, alloc::FitPolicy::kBestFit}) {
        exp::Experiment experiment(
            workload::MakeWorkload(kind),
            bench::ExtentFactory(kind, ranges, fit), disk_config,
            bench::BenchExperimentConfig());
        auto result = experiment.RunAllocationTest();
        bench::DieOnError(result.status(), "fig4 allocation test");
        table.AddRow({FormatString("%d", ranges),
                      alloc::FitPolicyToString(fit),
                      exp::Pct(result->internal_fragmentation),
                      exp::Pct(result->external_fragmentation),
                      exp::Pct(result->utilization)});
      }
    }
    std::printf("Workload %s (paper: all bars < 5%%)\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
