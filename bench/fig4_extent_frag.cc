// Reproduces Figure 4 of the paper: internal and external fragmentation
// of the extent-based policies, sweeping 1..5 extent-size ranges and both
// fit policies, for each workload.
//
// Paper shape: "even with a wide range of extent sizes, neither internal
// nor external fragmentation surpasses 5%", and best fit consistently
// fragments less than first fit.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 4: Internal and External Fragmentation, Extent Based",
      "Figure 4", disk_config);

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    for (int ranges = 1; ranges <= 5; ++ranges) {
      for (alloc::FitPolicy fit :
           {alloc::FitPolicy::kFirstFit, alloc::FitPolicy::kBestFit}) {
        sweep.Add(
            FormatString("fig4 %s %d-ranges %s",
                         workload::WorkloadKindToString(kind).c_str(),
                         ranges, alloc::FitPolicyToString(fit).c_str()),
            [=](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
              exp::ExperimentConfig config = bench::BenchExperimentConfig();
              config.seed = ctx.seed;
              exp::Experiment experiment(
                  workload::MakeWorkload(kind),
                  bench::ExtentFactory(kind, ranges, fit), disk_config,
                  config);
              auto result = experiment.RunAllocationTest();
              if (!result.ok()) return result.status();
              exp::RunRecord record;
              record.MergeMetrics(result->ToRecord(), "alloc.");
              return record;
            },
            [=](const bench::CellStats& cs) {
              return std::vector<std::string>{
                  FormatString("%d", ranges), alloc::FitPolicyToString(fit),
                  cs.Pct("alloc.internal_frag"),
                  cs.Pct("alloc.external_frag"),
                  cs.Pct("alloc.utilization")};
            });
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Ranges", "Fit", "Internal Frag", "External Frag",
                 "Util@full"});
    for (int i = 0; i < 5 * 2; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s (paper: all bars < 5%%)\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
