// Figure 7 (extension, ROADMAP item 2): the contiguity-vs-scheduling
// grid. The paper's disk model is strictly FCFS, which silently charges
// every allocator the full cost of its seek pattern; a seek-optimizing
// scheduler (SSTF/SCAN/C-SCAN/LOOK, or the starvation-bounded batch
// variant) absorbs part of that cost whenever queues are deep. This
// driver runs the TP application test (random 8K I/O — the most
// seek-bound of the paper's workloads) over
//
//   allocator  x  scheduler  x  offered load,
//
// with the extent policy (contiguous layouts) against the fixed-block
// policy (scattered layouts) and load scaled by multiplying the user
// population. Expected shape: scheduling is a wash at low load (queues
// are empty: nothing to reorder) and for contiguous layouts (no seeks to
// absorb), but lifts the scattered allocator at high load — the
// scheduler recovers part of the contiguity advantage the paper credits
// to allocation policy alone.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common.h"
#include "exp/reporting.h"
#include "sched/scheduler.h"
#include "util/table.h"

using namespace rofs;

namespace {

/// The TP workload with every user population multiplied by `factor`
/// (more concurrent request streams => deeper disk queues).
workload::WorkloadSpec ScaledTp(uint32_t factor) {
  workload::WorkloadSpec spec =
      workload::MakeWorkload(workload::WorkloadKind::kTransactionProcessing);
  for (workload::FileTypeSpec& type : spec.types) {
    type.num_users *= factor;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 7: Disk Scheduling vs Allocation Contiguity (extension)",
      "extension (no paper figure)", disk_config);

  // ROFS_FIG7_SMOKE=1 shrinks the grid to one load level and two
  // policies — the cell CI pins with a golden and the jobs=1-vs-N
  // determinism comparison (the 16x cells dominate the full grid's
  // wall time).
  const bool smoke = std::getenv("ROFS_FIG7_SMOKE") != nullptr;
  const std::vector<uint32_t> kLoads =
      smoke ? std::vector<uint32_t>{4} : std::vector<uint32_t>{1, 4, 16};
  const std::vector<const char*> kPolicies =
      smoke ? std::vector<const char*>{"fcfs", "cscan"}
            : std::vector<const char*>{"fcfs",  "sstf", "scan",
                                       "cscan", "look", "batch(16)"};
  const workload::WorkloadKind kind =
      workload::WorkloadKind::kTransactionProcessing;
  const std::vector<std::pair<std::string, exp::Experiment::AllocatorFactory>>
      allocators = {
          {"extent", bench::ExtentFactory(kind, 3, alloc::FitPolicy::kFirstFit)},
          {"fixed", bench::FixedBlockFactory(kind)},
      };

  bench::Sweep sweep(argc, argv);
  for (const uint32_t load : kLoads) {
    for (const char* policy : kPolicies) {
      for (const auto& [name, factory] : allocators) {
        sweep.Add(
            FormatString("fig7 TPx%u %s %s", load, policy, name.c_str()),
            [load, policy, factory,
             disk_config](const runner::RunContext& ctx)
                -> StatusOr<exp::RunRecord> {
              disk::DiskSystemConfig cell_disk = disk_config;
              ROFS_ASSIGN_OR_RETURN(cell_disk.scheduler,
                                    sched::ParseSchedulerSpec(policy));
              exp::ExperimentConfig config = bench::BenchExperimentConfig();
              config.seed = ctx.seed;
              exp::Experiment experiment(ScaledTp(load), factory, cell_disk,
                                         config);
              auto perf = experiment.RunApplicationTest();
              if (!perf.ok()) return perf.status();
              exp::RunRecord record;
              record.MergeMetrics(perf->ToRecord(), "app.");
              return record;
            },
            [](const bench::CellStats& cs) {
              return std::vector<std::string>{
                  cs.Pct("app.throughput_of_max"),
                  cs.Fixed("app.mean_op_latency_ms", 1, "ms")};
            });
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (const uint32_t load : kLoads) {
    Table table({"Scheduler", "Extent(ff,3)", "Latency", "Fixed", "Latency"});
    for (const char* policy : kPolicies) {
      std::vector<std::string> row = {policy};
      for (size_t a = 0; a < allocators.size(); ++a) {
        row.push_back(rows[next_row][0]);
        row.push_back(rows[next_row][1]);
        ++next_row;
      }
      table.AddRow(row);
    }
    std::printf(
        "Figure 7: TP application throughput (%% of max bandwidth), "
        "%ux users\n%s\n",
        load, table.ToString().c_str());
  }
  return 0;
}
