// Reproduces Table 4 of the paper: the average number of extents per file
// for each extent-based configuration (1..5 ranges) and workload, taken
// at the end of the allocation test.
//
// Paper values:
//            SC    TP   TS
//   1 range  162   267   5
//   2 ranges 124    13   9
//   3 ranges  97    12   9
//   4 ranges 151    14   7
//   5 ranges 162   108   6
//
// The headline mechanism: adding a 16M range lets the TP relations and
// the SC 500M file switch from 512K extents to 16M extents, collapsing
// their extent counts; the 5-range configuration adds a tiny range that
// drags the average back up.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner("Table 4: Average Number of Extents Per File", "Table 4",
                   disk_config);

  const char* paper[5][3] = {{"162", "267", "5"},
                             {"124", "13", "9"},
                             {"97", "12", "9"},
                             {"151", "14", "7"},
                             {"162", "108", "6"}};

  bench::Sweep sweep(argc, argv);
  for (int ranges = 1; ranges <= 5; ++ranges) {
    for (workload::WorkloadKind kind :
         {workload::WorkloadKind::kSuperComputer,
          workload::WorkloadKind::kTransactionProcessing,
          workload::WorkloadKind::kTimeSharing}) {
      sweep.Add(
          FormatString("table4 %d-ranges %s", ranges,
                       workload::WorkloadKindToString(kind).c_str()),
          [=](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
            exp::ExperimentConfig config = bench::BenchExperimentConfig();
            config.seed = ctx.seed;
            exp::Experiment experiment(
                workload::MakeWorkload(kind),
                bench::ExtentFactory(kind, ranges,
                                     alloc::FitPolicy::kFirstFit),
                disk_config, config);
            auto result = experiment.RunAllocationTest();
            if (!result.ok()) return result.status();
            exp::RunRecord record;
            record.MergeMetrics(result->ToRecord(), "alloc.");
            return record;
          },
          [](const bench::CellStats& cs) {
            return std::vector<std::string>{
                cs.Fixed("alloc.extents_per_file", 0)};
          });
    }
  }

  const auto rows = sweep.Run();
  Table table({"Ranges", "SC", "TP", "TS", "(paper SC/TP/TS)"});
  size_t next_row = 0;
  for (int ranges = 1; ranges <= 5; ++ranges) {
    std::vector<std::string> row = {FormatString("%d", ranges)};
    for (int col = 0; col < 3; ++col) row.push_back(rows[next_row++][0]);
    row.push_back(FormatString("%s / %s / %s", paper[ranges - 1][0],
                               paper[ranges - 1][1], paper[ranges - 1][2]));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
