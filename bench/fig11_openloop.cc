// Figure 11 (extension, ROADMAP item 3): open- vs closed-loop latency.
// The paper's tests are closed-loop — every user waits for its previous
// operation before thinking up the next, so offered load self-throttles
// and saturation shows up as flat throughput, never as queueing delay.
// This driver injects the same operation mix from open-loop arrival
// processes (workload/arrivals.h) at swept offered rates and reports
// mean operation latency, delivered throughput, and the peak pending-op
// backlog per cell. Below saturation the open rows match the closed
// baseline; past it their latency diverges (the backlog grows without
// bound for the duration of the run) while delivered throughput pins at
// capacity — the classic open-loop hockey stick the closed-loop tests
// structurally cannot show. The burstier processes (MMPP, heavy-tailed
// Pareto) bend upward earlier at the same average rate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/arrivals.h"

using namespace rofs;

namespace {

/// The fig8 small-file mix without delete churn: 8 users, 20 ms think
/// time. Closed-loop, this self-paces near 190 ops/s on the two-drive
/// array below — the open-loop rate sweep brackets that capacity.
workload::WorkloadSpec LoopWorkload() {
  workload::WorkloadSpec w;
  w.name = "openloop";
  workload::FileTypeSpec files;
  files.name = "files";
  files.num_files = 150;
  files.num_users = 8;
  files.process_time_ms = 20;
  files.hit_frequency_ms = 20;
  files.rw_bytes_mean = KiB(8);
  files.extend_bytes_mean = KiB(8);
  files.truncate_bytes = KiB(8);
  files.initial_bytes_mean = KiB(64);
  files.initial_bytes_dev = KiB(16);
  files.read_ratio = 0.6;
  files.write_ratio = 0.2;
  files.extend_ratio = 0.1;
  w.types.push_back(files);
  return w;
}

disk::DiskSystemConfig LoopDisk() {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(2);
  for (auto& g : cfg.disks) g.cylinders = 200;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  exp::PrintBanner("Figure 11: Latency vs Offered Load, Open vs Closed Loop "
                   "(extension)",
                   "extension (no paper figure)", LoopDisk());

  // ROFS_FIG11_SMOKE=1 shrinks to the closed baseline plus one Poisson
  // rate — the cells CI pins with a golden and the determinism cmps.
  const bool smoke = std::getenv("ROFS_FIG11_SMOKE") != nullptr;
  const std::vector<const char*> kKinds =
      smoke ? std::vector<const char*>{"poisson"}
            : std::vector<const char*>{"poisson", "mmpp", "pareto"};
  // Offered rates bracketing the system's open-loop capacity (~100
  // ops/s on this array): under, near, and past saturation.
  const std::vector<int> kRates =
      smoke ? std::vector<int>{60} : std::vector<int>{60, 100, 160};

  struct CellSpec {
    std::string label;
    std::string arrivals;  // ParseArrivalSpec input; "closed" = baseline.
    int rate;              // 0 for the closed baseline (self-paced).
  };
  std::vector<CellSpec> cells;
  cells.push_back({"fig11 closed", "closed", 0});
  for (const char* kind : kKinds) {
    for (const int rate : kRates) {
      cells.push_back({FormatString("fig11 %s %d/s", kind, rate),
                       FormatString("%s(%d)", kind, rate), rate});
    }
  }

  bench::Sweep sweep(argc, argv);
  for (const CellSpec& cell : cells) {
    sweep.Add(
        cell.label,
        [&cell](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
          exp::ExperimentConfig config = bench::BenchExperimentConfig();
          config.seed = ctx.seed;
          workload::WorkloadSpec workload = LoopWorkload();
          ROFS_ASSIGN_OR_RETURN(workload.arrivals,
                                workload::ParseArrivalSpec(cell.arrivals));
          exp::Experiment experiment(
              workload, bench::RestrictedBuddyFactory(4, 1, false),
              LoopDisk(), config);
          auto perf = experiment.RunApplicationTest();
          if (!perf.ok()) return perf.status();
          exp::RunRecord record;
          record.MergeMetrics(perf->ToRecord(), "app.");
          const double measured_s = perf->measured_ms / 1000.0;
          // Open loop: ops_executed counts *injections* (offered work);
          // completions are what the system actually delivered. The
          // closed baseline offers exactly what it delivers.
          const double delivered =
              measured_s > 0.0
                  ? static_cast<double>(perf->open_loop ? perf->completed_ops
                                                        : perf->ops_executed) /
                        measured_s
                  : 0.0;
          const double offered =
              perf->open_loop && measured_s > 0.0
                  ? static_cast<double>(perf->offered_ops) / measured_s
                  : delivered;
          record.Set("fig11.offered_per_s", offered);
          record.Set("fig11.delivered_per_s", delivered);
          record.Set("fig11.delivered_frac",
                     offered > 0.0 ? delivered / offered : 0.0);
          record.Set("fig11.latency_ms", perf->mean_op_latency_ms);
          record.Set("fig11.pending_peak",
                     static_cast<double>(perf->pending_peak));
          return record;
        },
        [](const bench::CellStats& cs) {
          return std::vector<std::string>{
              cs.Fixed("fig11.offered_per_s", 0),
              cs.Fixed("fig11.delivered_per_s", 0),
              cs.Pct("fig11.delivered_frac"),
              cs.Fixed("fig11.latency_ms", 1, "ms"),
              cs.Fixed("fig11.pending_peak", 0)};
        });
  }

  const auto rows = sweep.Run();
  Table table({"Arrivals", "Offered/s", "Delivered/s", "Delivered",
               "Latency", "Peak pending"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string arrivals =
        cells[i].rate == 0
            ? "closed"
            : cells[i].arrivals.substr(0, cells[i].arrivals.find('('));
    const std::string name =
        cells[i].rate == 0
            ? arrivals
            : FormatString("%s @%d/s", arrivals.c_str(), cells[i].rate);
    table.AddRow({name, rows[i][0], rows[i][1], rows[i][2], rows[i][3],
                  rows[i][4]});
  }
  std::printf(
      "Figure 11: mean operation latency vs offered load (closed baseline "
      "vs open-loop arrival processes)\n%s\n",
      table.ToString().c_str());
  return 0;
}
