// Extension ablation: the buffer cache and metadata I/O (neither modeled
// in the paper's experiments; see DESIGN.md). Two questions:
//
//  1. The paper's designs aim at "minimizing the bandwidth dedicated to
//     the transfer of meta data". How much application throughput does
//     per-operation descriptor I/O cost, and does descriptor caching
//     recover it?
//  2. How does a modest buffer cache shift the TS picture, where the
//     paper's policies are seek-bound?

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

int main(int argc, char** argv) {
  exp::PrintBanner("Ablation: buffer cache and metadata I/O",
                   "extensions (DESIGN.md)", bench::PaperDiskConfig());

  struct Setup {
    const char* label;
    fs::FsOptions options;
  };
  std::vector<Setup> setups;
  setups.push_back({"paper model (no cache, no metadata)", {}});
  {
    fs::FsOptions o;
    o.model_metadata_io = true;
    setups.push_back({"metadata I/O, no cache", o});
  }
  {
    fs::FsOptions o;
    o.model_metadata_io = true;
    o.cache_bytes = MiB(16);
    setups.push_back({"metadata I/O + 16M cache", o});
  }
  {
    fs::FsOptions o;
    o.cache_bytes = MiB(16);
    setups.push_back({"16M cache", o});
  }
  {
    fs::FsOptions o;
    o.cache_bytes = MiB(64);
    setups.push_back({"64M cache", o});
  }

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kTimeSharing,
        workload::WorkloadKind::kTransactionProcessing}) {
    for (const Setup& setup : setups) {
      sweep.Add(
          FormatString("cache/metadata ablation %s %s",
                       workload::WorkloadKindToString(kind).c_str(),
                       setup.label),
          [kind, setup](const runner::RunContext& ctx)
              -> StatusOr<exp::RunRecord> {
            exp::ExperimentConfig config = bench::BenchExperimentConfig();
            config.fs_options = setup.options;
            config.seed = ctx.seed;
            exp::Experiment experiment(
                workload::MakeWorkload(kind),
                bench::RestrictedBuddyFactory(5, 1, true),
                bench::PaperDiskConfig(), config);
            auto perf = experiment.RunPerformancePair();
            if (!perf.ok()) return perf.status();
            exp::RunRecord record;
            record.MergeMetrics(perf->application.ToRecord(), "app.");
            record.MergeMetrics(perf->sequential.ToRecord(), "seq.");
            return record;
          },
          [label = std::string(setup.label)](const bench::CellStats& cs) {
            return std::vector<std::string>{
                label, cs.Pct("app.throughput_of_max"),
                cs.Pct("seq.throughput_of_max")};
          });
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind :
       {workload::WorkloadKind::kTimeSharing,
        workload::WorkloadKind::kTransactionProcessing}) {
    Table table({"Setup", "Application", "Sequential"});
    for (size_t i = 0; i < setups.size(); ++i) {
      table.AddRow(rows[next_row++]);
    }
    std::printf("Workload %s (restricted buddy, 5 sizes, clustered)\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
  }
  return 0;
}
