// Figure 10 (extension, ROADMAP item 3): the long-horizon aging study.
// The paper measures every policy on a freshly initialized disk; this
// driver asks how much of that ranking survives age. Each cell ages one
// allocation policy with create/delete churn (AgingDriver: half the ops
// delete and recreate a file at a fresh size, the other half steer
// utilization toward a fixed target), probing whole-file sequential read
// bandwidth between rounds. The curve of probe bandwidth vs churn age is
// the figure; the table reports its endpoints — initial and steady
// bandwidth (fraction of the disk system's sequential maximum), the
// retained fraction, the round where the curve entered its steady window
// (stats::DetectSteadyWindow), and the final extents-per-file.
//
// The study runs on a passive (queue-free) file system — churn with I/O
// disabled, probes at a monotonic clock — so its output is byte-identical
// for any --jobs setting by construction.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "alloc/fixed_block_allocator.h"
#include "alloc/log_structured_allocator.h"
#include "bench/common.h"
#include "exp/reporting.h"
#include "fs/read_optimized_fs.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/aging.h"

using namespace rofs;

namespace {

/// A small-file churn mix (fig8's shape): enough files that the free map
/// sees real delete/recreate pressure, small enough that forty rounds of
/// churn run quickly. Initial population ~37 MB on an ~86 MB disk pair,
/// so the target utilization of 0.5 is reached from below.
workload::WorkloadSpec AgingWorkload() {
  workload::WorkloadSpec w;
  w.name = "aging";
  workload::FileTypeSpec files;
  files.name = "files";
  files.num_files = 600;
  files.num_users = 1;
  files.rw_bytes_mean = KiB(8);
  files.extend_bytes_mean = KiB(8);
  files.truncate_bytes = KiB(8);
  files.initial_bytes_mean = KiB(64);
  files.initial_bytes_dev = KiB(16);
  w.types.push_back(files);
  return w;
}

/// Two drives, fixed across policies (~86 MB).
disk::DiskSystemConfig AgingDisk() {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(2);
  for (auto& g : cfg.disks) g.cylinders = 200;
  return cfg;
}

struct Policy {
  const char* name;
  exp::Experiment::AllocatorFactory factory;
};

std::vector<Policy> Policies() {
  std::vector<Policy> policies;
  policies.push_back({"fixed-4K", [](uint64_t total_du) {
                        return std::unique_ptr<alloc::Allocator>(
                            std::make_unique<alloc::FixedBlockAllocator>(
                                total_du, /*block_du=*/4));
                      }});
  policies.push_back(
      {"rbuddy", bench::RestrictedBuddyFactory(4, 1, /*clustered=*/false)});
  policies.push_back({"extent",
                      bench::ExtentFactory(workload::WorkloadKind::kTimeSharing,
                                           3, alloc::FitPolicy::kFirstFit)});
  policies.push_back({"log", [](uint64_t total_du) {
                        alloc::LogStructuredConfig cfg;
                        return std::unique_ptr<alloc::Allocator>(
                            std::make_unique<alloc::LogStructuredAllocator>(
                                total_du, cfg));
                      }});
  return policies;
}

}  // namespace

int main(int argc, char** argv) {
  exp::PrintBanner("Figure 10: Read Bandwidth vs Churn Age (extension)",
                   "extension (no paper figure)", AgingDisk());

  // ROFS_FIG10_SMOKE=1 shrinks to two policies over a short horizon —
  // the cells CI pins with a golden and the jobs-determinism cmp.
  // ROFS_FAST shortens the horizon without dropping policies.
  const bool smoke = std::getenv("ROFS_FIG10_SMOKE") != nullptr;
  const bool fast = smoke || std::getenv("ROFS_FAST") != nullptr;
  workload::AgingOptions options;
  options.target_util = 0.5;
  options.rounds = fast ? 8 : 40;
  options.ops_per_round = fast ? 400 : 2000;
  options.probe_files = fast ? 16 : 32;

  std::vector<Policy> policies = Policies();
  if (smoke) policies.resize(2);

  bench::Sweep sweep(argc, argv);
  for (const Policy& policy : policies) {
    sweep.Add(
        FormatString("fig10 %s", policy.name),
        [&policy, options](const runner::RunContext& ctx)
            -> StatusOr<exp::RunRecord> {
          disk::DiskSystem disk(AgingDisk());
          std::unique_ptr<alloc::Allocator> allocator =
              policy.factory(disk.capacity_du());
          fs::ReadOptimizedFs fs(allocator.get(), &disk);
          workload::AgingOptions opts = options;
          opts.seed = ctx.seed;
          const workload::WorkloadSpec workload = AgingWorkload();
          workload::AgingDriver driver(&workload, &fs, opts);
          ROFS_RETURN_IF_ERROR(driver.CreateInitialFiles());
          for (int r = 0; r < opts.rounds; ++r) driver.RunRound();
          const std::vector<workload::AgingRound>& rounds = driver.rounds();
          const workload::AgingRound& first = rounds.front();
          const workload::AgingRound& last = rounds.back();
          const int steady = driver.DetectSteadyRound();
          // Steady bandwidth averages the detected window (falls back to
          // the final round while the curve is still drifting).
          double steady_bw = last.read_bw_frac;
          if (steady >= 0) {
            double sum = 0.0;
            for (size_t r = static_cast<size_t>(steady); r < rounds.size();
                 ++r) {
              sum += rounds[r].read_bw_frac;
            }
            steady_bw = sum / static_cast<double>(rounds.size() -
                                                  static_cast<size_t>(steady));
          }
          exp::RunRecord record;
          record.Set("fig10.read_bw_initial", first.read_bw_frac);
          record.Set("fig10.read_bw_steady", steady_bw);
          record.Set("fig10.retained",
                     first.read_bw_frac > 0.0
                         ? steady_bw / first.read_bw_frac
                         : 0.0);
          record.Set("fig10.steady_round", static_cast<double>(steady));
          record.Set("fig10.extents_per_file", last.extents_per_file);
          record.Set("fig10.internal_frag", last.internal_frag);
          record.Set("fig10.util_final", last.utilization);
          record.Set("fig10.churn_ops",
                     static_cast<double>(driver.churn_ops()));
          return record;
        },
        [](const bench::CellStats& cs) {
          return std::vector<std::string>{
              cs.Pct("fig10.read_bw_initial"),
              cs.Pct("fig10.read_bw_steady"),
              cs.Pct("fig10.retained"),
              cs.Fixed("fig10.steady_round", 0),
              cs.Fixed("fig10.extents_per_file", 1)};
        });
  }

  const auto rows = sweep.Run();
  Table table({"Policy", "Initial bw", "Steady bw", "Retained", "Steady@",
               "Ext/file"});
  for (size_t i = 0; i < policies.size(); ++i) {
    table.AddRow({policies[i].name, rows[i][0], rows[i][1], rows[i][2],
                  rows[i][3], rows[i][4]});
  }
  std::printf(
      "Figure 10: sequential read bandwidth (%% of max) after churn aging "
      "(%d rounds x %llu ops, util target %.2f)\n%s\n",
      options.rounds,
      static_cast<unsigned long long>(options.ops_per_round),
      options.target_util, table.ToString().c_str());
  return 0;
}
