// Reproduces Figure 1 (a-f) of the paper: internal and external
// fragmentation of the restricted buddy policy across the full design
// sweep — {2,3,4,5} block sizes x grow factor {1,2} x {clustered,
// unclustered} — for each of the SC, TP and TS workloads.
//
// Paper shape: every configuration stays under 6% fragmentation; the
// time-sharing workload fragments most; fragmentation rises with the
// number/size of block sizes; grow factor 2 cuts TS internal
// fragmentation by about one third; unclustered raises external
// fragmentation slightly.

#include <cstdio>

#include "bench/common.h"
#include "exp/reporting.h"
#include "util/table.h"

using namespace rofs;

int main(int argc, char** argv) {
  const disk::DiskSystemConfig disk_config = bench::PaperDiskConfig();
  exp::PrintBanner(
      "Figure 1: Internal and External Fragmentation, Restricted Buddy",
      "Figure 1 (a-f)", disk_config);

  bench::Sweep sweep(argc, argv);
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    for (int num_sizes = 2; num_sizes <= 5; ++num_sizes) {
      for (bool clustered : {true, false}) {
        for (uint32_t grow : {1u, 2u}) {
          sweep.Add(
              FormatString("fig1 %s %d-sizes g=%u %s",
                           workload::WorkloadKindToString(kind).c_str(),
                           num_sizes, grow,
                           clustered ? "clustered" : "unclustered"),
              [=](const runner::RunContext& ctx)
                  -> StatusOr<exp::RunRecord> {
                exp::ExperimentConfig config =
                    bench::BenchExperimentConfig();
                config.seed = ctx.seed;
                exp::Experiment experiment(
                    workload::MakeWorkload(kind),
                    bench::RestrictedBuddyFactory(num_sizes, grow,
                                                  clustered),
                    disk_config, config);
                auto result = experiment.RunAllocationTest();
                if (!result.ok()) return result.status();
                exp::RunRecord record;
                record.MergeMetrics(result->ToRecord(), "alloc.");
                return record;
              },
              [=](const bench::CellStats& cs) {
                return std::vector<std::string>{
                    FormatString("%d sizes", num_sizes),
                    FormatString("g=%u", grow),
                    clustered ? "clustered" : "unclustered",
                    cs.Pct("alloc.internal_frag"),
                    cs.Pct("alloc.external_frag"),
                    cs.Pct("alloc.utilization")};
              });
        }
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (workload::WorkloadKind kind : workload::AllWorkloadKinds()) {
    Table table({"Config", "Grow", "Clustering", "Internal Frag",
                 "External Frag", "Util@full"});
    for (int i = 0; i < 4 * 2 * 2; ++i) table.AddRow(rows[next_row++]);
    std::printf("Workload %s (paper: all bars < 6%%)\n%s\n",
                workload::WorkloadKindToString(kind).c_str(),
                table.ToString().c_str());
    std::fflush(stdout);
  }
  return 0;
}
