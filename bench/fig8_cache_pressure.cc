// Figure 8 (extension, ROADMAP item 4): the buffer-pressure grid. The
// paper evaluates every allocation policy under one fixed LRU cache;
// this driver asks how much the observed I/O volume depends on that
// silent assumption. It runs an application test over
//
//   replacement policy  x  access pattern  x  buffer pressure,
//
// with the cache held at a fixed 8 MB while pressure multiplies the
// file population on a fixed disk. Each op picks a file uniformly, so
// the bytes touched between two picks of the same file — the reuse
// distance the cache must span — grows linearly with the population:
// p1 fits in the cache, p4 is ~3x it. The access axis contrasts the
// sequential-burst pattern (cursor reads — readahead territory) with
// uniform random 8K I/O (pure recency stress) and Zipf(0.99)-skewed
// random picks (a hot head worth pinning — where scan-resistant
// policies separate from plain LRU). The headline metric is
// *physical blocks read per 1000 operations* — disk units actually
// fetched, demand plus readahead, normalized by work done so cells
// with different stabilization windows stay comparable. Readahead (4
// pages) and bounded write-back (64 dirty pages) are on in every cell
// so speculative and deferred I/O are part of the comparison.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "exp/reporting.h"
#include "fs/cache_policy.h"
#include "util/table.h"
#include "util/units.h"

using namespace rofs;

namespace {

/// One point on the access-pattern axis: the sequential-burst cursor
/// pattern, uniform random 8K I/O, or Zipf-skewed random picks (theta
/// concentrates ops on a hot head of the population, so a
/// recency/frequency-aware policy can hold the head resident even when
/// the full population exceeds the cache).
struct AccessSpec {
  const char* label;
  const char* title;
  bool random;
  double zipf_theta;
};

/// A small-file churn mix in the shape of the paper's time-sharing
/// workload. `pressure` multiplies the file population: ops pick files
/// uniformly (or Zipf-skewed), so the population sets the reuse
/// distance a fixed cache must span (~150 files * ~40K touched per
/// pick = ~6 MB at p1).
workload::WorkloadSpec CacheWorkload(const AccessSpec& access,
                                     uint32_t pressure) {
  workload::WorkloadSpec w;
  w.name = std::string("cache-") + access.label;
  w.zipf_theta = access.zipf_theta;
  workload::FileTypeSpec files;
  files.name = "files";
  files.num_files = 150 * pressure;
  files.num_users = 8;
  files.process_time_ms = 20;
  files.hit_frequency_ms = 20;
  files.rw_bytes_mean = KiB(8);
  files.extend_bytes_mean = KiB(8);
  files.truncate_bytes = KiB(8);
  files.initial_bytes_mean = KiB(64);
  files.initial_bytes_dev = KiB(16);
  files.read_ratio = 0.55;
  files.write_ratio = 0.15;
  files.extend_ratio = 0.20;
  files.delete_ratio = 0.5;
  files.access = access.random ? workload::AccessPattern::kRandom
                               : workload::AccessPattern::kSequentialBurst;
  w.types.push_back(files);
  return w;
}

/// Two drives, fixed across the grid (~86 MB): big enough that the
/// largest population initializes well below the fill band, small
/// enough that every cell ages to the band quickly.
disk::DiskSystemConfig CacheDisk() {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(2);
  for (auto& g : cfg.disks) g.cylinders = 200;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  exp::PrintBanner(
      "Figure 8: Cache Replacement Policy vs Buffer Pressure (extension)",
      "extension (no paper figure)", CacheDisk());

  // ROFS_FIG8_SMOKE=1 shrinks the grid to two policies at one pressure
  // on the sequential pattern — the cell CI pins with a golden and the
  // jobs=1-vs-N determinism comparison.
  const bool smoke = std::getenv("ROFS_FIG8_SMOKE") != nullptr;
  const std::vector<const char*> kPolicies =
      smoke ? std::vector<const char*>{"lru", "arc"}
            : std::vector<const char*>{"lru", "clock", "2q", "arc"};
  const std::vector<uint32_t> kPressures =
      smoke ? std::vector<uint32_t>{2} : std::vector<uint32_t>{1, 2, 4};
  const std::vector<AccessSpec> kAccess =
      smoke ? std::vector<AccessSpec>{{"seq", "sequential-burst", false, 0.0}}
            : std::vector<AccessSpec>{
                  {"seq", "sequential-burst", false, 0.0},
                  {"rand", "uniform random", true, 0.0},
                  {"zipf", "Zipf(0.99) random", true, 0.99}};

  bench::Sweep sweep(argc, argv);
  for (const AccessSpec& access : kAccess) {
    for (const char* policy : kPolicies) {
      for (const uint32_t pressure : kPressures) {
        sweep.Add(
            FormatString("fig8 %s %s p%u", access.label, policy, pressure),
            [access, policy,
             pressure](const runner::RunContext& ctx)
                -> StatusOr<exp::RunRecord> {
              exp::ExperimentConfig config = bench::BenchExperimentConfig();
              config.seed = ctx.seed;
              // The headline metric is an obs gauge; metrics are part of
              // this figure, not an opt-in.
              config.obs.metrics = true;
              config.fs_options.cache_bytes = MiB(8);
              ROFS_ASSIGN_OR_RETURN(config.fs_options.cache_policy,
                                    fs::ParseCachePolicySpec(policy));
              config.fs_options.readahead_pages = 4;
              config.fs_options.writeback_dirty_max = 64;
              exp::Experiment experiment(
                  CacheWorkload(access, pressure),
                  bench::RestrictedBuddyFactory(4, 1, false),
                  CacheDisk(), config);
              auto perf = experiment.RunApplicationTest();
              if (!perf.ok()) return perf.status();
              exp::RunRecord record;
              record.MergeMetrics(perf->ToRecord(), "app.");
              // The headline: physical blocks read per 1000 executed
              // ops — stabilization windows differ between cells, so
              // raw du counts are not comparable; per-op volume is.
              double phys_read_du = 0.0;
              for (const auto& [name, value] : perf->obs_metrics) {
                if (name == "fs.physical_read_du") phys_read_du = value;
              }
              record.Set("app.phys_read_du_per_kop",
                         perf->ops_executed == 0
                             ? 0.0
                             : phys_read_du * 1000.0 /
                                   static_cast<double>(perf->ops_executed));
              return record;
            },
            [](const bench::CellStats& cs) {
              return std::vector<std::string>{
                  cs.Fixed("app.phys_read_du_per_kop", 0),
                  cs.Pct("app.obs.cache.hit_rate")};
            });
      }
    }
  }

  const auto rows = sweep.Run();
  size_t next_row = 0;
  for (const AccessSpec& access : kAccess) {
    std::vector<std::string> headers = {"Policy"};
    for (const uint32_t pressure : kPressures) {
      headers.push_back(FormatString("p%u rd-du/kop", pressure));
      headers.push_back(FormatString("p%u hit", pressure));
    }
    Table table(headers);
    for (const char* policy : kPolicies) {
      std::vector<std::string> row = {policy};
      for (size_t p = 0; p < kPressures.size(); ++p) {
        row.push_back(rows[next_row][0]);
        row.push_back(rows[next_row][1]);
        ++next_row;
      }
      table.AddRow(row);
    }
    std::printf(
        "Figure 8: physical blocks read per 1000 ops, %s access "
        "(8 MB cache, readahead 4, write-back 64)\n%s\n",
        access.title, table.ToString().c_str());
  }
  return 0;
}
