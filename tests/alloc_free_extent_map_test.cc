#include "alloc/free_extent_map.h"

#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rofs::alloc {
namespace {

TEST(FreeExtentMapTest, StartsEmpty) {
  FreeExtentMap m;
  EXPECT_EQ(m.free_du(), 0u);
  EXPECT_EQ(m.num_fragments(), 0u);
  EXPECT_EQ(m.LargestFragment(), 0u);
  EXPECT_FALSE(m.AllocateFirstFit(1).has_value());
}

TEST(FreeExtentMapTest, FirstFitTakesLowestAddress) {
  FreeExtentMap m;
  m.Free(100, 50);
  m.Free(300, 50);
  auto a = m.AllocateFirstFit(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 100u);
  EXPECT_EQ(m.free_du(), 90u);
  // Remainder split from the front.
  EXPECT_TRUE(m.IsFree(110, 40));
}

TEST(FreeExtentMapTest, FirstFitSkipsTooSmallExtents) {
  FreeExtentMap m;
  m.Free(0, 5);
  m.Free(100, 50);
  auto a = m.AllocateFirstFit(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 100u);
  EXPECT_TRUE(m.IsFree(0, 5));
}

TEST(FreeExtentMapTest, BestFitPrefersTightestHole) {
  FreeExtentMap m;
  m.Free(0, 100);
  m.Free(200, 12);
  m.Free(400, 50);
  auto a = m.AllocateBestFit(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 200u);  // The 12-unit hole fits tightest.
  EXPECT_TRUE(m.IsFree(210, 2));
}

TEST(FreeExtentMapTest, BestFitExactSizeLeavesNoRemainder) {
  FreeExtentMap m;
  m.Free(0, 100);
  m.Free(200, 10);
  auto a = m.AllocateBestFit(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 200u);
  EXPECT_EQ(m.num_fragments(), 1u);
}

TEST(FreeExtentMapTest, BestFitTieBreaksTowardLowAddress) {
  FreeExtentMap m;
  m.Free(500, 10);
  m.Free(100, 10);
  auto a = m.AllocateBestFit(10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 100u);
}

TEST(FreeExtentMapTest, FreeCoalescesWithBothNeighbors) {
  FreeExtentMap m;
  m.Free(0, 10);
  m.Free(20, 10);
  EXPECT_EQ(m.num_fragments(), 2u);
  m.Free(10, 10);  // Bridges the two.
  EXPECT_EQ(m.num_fragments(), 1u);
  EXPECT_EQ(m.LargestFragment(), 30u);
  EXPECT_TRUE(m.IsFree(0, 30));
}

TEST(FreeExtentMapTest, FreeCoalescesLeftOnly) {
  FreeExtentMap m;
  m.Free(0, 10);
  m.Free(10, 5);
  EXPECT_EQ(m.num_fragments(), 1u);
  EXPECT_EQ(m.LargestFragment(), 15u);
}

TEST(FreeExtentMapTest, AllocateAtCarvesInterior) {
  FreeExtentMap m;
  m.Free(0, 100);
  EXPECT_TRUE(m.AllocateAt(40, 20));
  EXPECT_EQ(m.free_du(), 80u);
  EXPECT_EQ(m.num_fragments(), 2u);
  EXPECT_TRUE(m.IsFree(0, 40));
  EXPECT_TRUE(m.IsFree(60, 40));
  EXPECT_FALSE(m.IsFree(40, 1));
}

TEST(FreeExtentMapTest, AllocateAtFailsWhenNotFullyFree) {
  FreeExtentMap m;
  m.Free(0, 50);
  EXPECT_FALSE(m.AllocateAt(40, 20));  // Tail extends past the extent.
  EXPECT_FALSE(m.AllocateAt(60, 5));   // Entirely outside.
  EXPECT_EQ(m.free_du(), 50u);
}

TEST(FreeExtentMapTest, ConsistencyAfterMixedOps) {
  FreeExtentMap m;
  m.Free(0, 1000);
  m.AllocateFirstFit(100);
  m.AllocateBestFit(50);
  m.AllocateAt(500, 100);
  m.Free(0, 60);
  EXPECT_EQ(m.CheckConsistency(), m.free_du());
}

// Property test: random alloc/free against a reference bool-vector model.
TEST(FreeExtentMapTest, RandomizedAgainstReferenceModel) {
  constexpr uint64_t kSpace = 2000;
  FreeExtentMap m;
  m.Free(0, kSpace);
  std::vector<bool> used(kSpace, false);
  std::vector<std::pair<uint64_t, uint64_t>> allocated;
  Rng rng(77);
  for (int step = 0; step < 5000; ++step) {
    if (rng.Bernoulli(0.55) || allocated.empty()) {
      const uint64_t n = rng.UniformInt(1, 64);
      const bool best = rng.Bernoulli(0.5);
      auto a = best ? m.AllocateBestFit(n) : m.AllocateFirstFit(n);
      if (a.has_value()) {
        for (uint64_t i = *a; i < *a + n; ++i) {
          ASSERT_FALSE(used[i]) << "double allocation at " << i;
          used[i] = true;
        }
        allocated.push_back({*a, n});
      } else {
        // No free extent of length n may exist.
        uint64_t run = 0, longest = 0;
        for (uint64_t i = 0; i < kSpace; ++i) {
          run = used[i] ? 0 : run + 1;
          longest = std::max(longest, run);
        }
        EXPECT_LT(longest, n);
      }
    } else {
      const size_t idx = rng.UniformInt(0, allocated.size() - 1);
      const auto [addr, n] = allocated[idx];
      m.Free(addr, n);
      for (uint64_t i = addr; i < addr + n; ++i) used[i] = false;
      allocated[idx] = allocated.back();
      allocated.pop_back();
    }
    if (step % 250 == 0) {
      uint64_t free_count = 0;
      for (bool u : used) free_count += !u;
      EXPECT_EQ(m.free_du(), free_count);
      EXPECT_EQ(m.CheckConsistency(), free_count);
    }
  }
}

}  // namespace
}  // namespace rofs::alloc
