#include "workload/op_generator.h"

#include <memory>

#include <gtest/gtest.h>

#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "fs/read_optimized_fs.h"
#include "util/units.h"
#include "workload/workloads.h"

namespace rofs::workload {
namespace {

// A small two-type workload that exercises every op cheaply.
WorkloadSpec TinyWorkload() {
  WorkloadSpec w;
  w.name = "tiny";
  FileTypeSpec a;
  a.name = "a";
  a.num_files = 50;
  a.num_users = 4;
  a.process_time_ms = 10;
  a.hit_frequency_ms = 10;
  a.rw_bytes_mean = KiB(8);
  a.initial_bytes_mean = KiB(32);
  a.initial_bytes_dev = KiB(8);
  a.read_ratio = 0.5;
  a.write_ratio = 0.2;
  a.extend_ratio = 0.2;
  a.delete_ratio = 0.5;
  w.types.push_back(a);
  FileTypeSpec b = a;
  b.name = "b";
  b.num_files = 5;
  b.initial_bytes_mean = MiB(1);
  b.initial_bytes_dev = 0;
  b.access = AccessPattern::kRandom;
  w.types.push_back(b);
  return w;
}

class OpGeneratorTest : public ::testing::Test {
 protected:
  OpGeneratorTest()
      : disk_(disk::DiskSystemConfig::Array(2)),
        allocator_(disk_.capacity_du(), alloc::RestrictedBuddyConfig{}),
        fs_(&allocator_, &disk_),
        workload_(TinyWorkload()) {}

  std::unique_ptr<OpGenerator> MakeGen(OpMode mode) {
    OpGeneratorOptions opts;
    opts.mode = mode;
    opts.seed = 99;
    return std::make_unique<OpGenerator>(&workload_, &fs_, &queue_, opts);
  }

  disk::DiskSystem disk_;
  alloc::RestrictedBuddyAllocator allocator_;
  fs::ReadOptimizedFs fs_;
  sim::EventQueue queue_;
  WorkloadSpec workload_;
};

TEST_F(OpGeneratorTest, CreateInitialFilesMakesAllFiles) {
  auto gen = MakeGen(OpMode::kApplication);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  EXPECT_EQ(fs_.num_files(), 55u);
  EXPECT_EQ(gen->files_of_type(0).size(), 50u);
  EXPECT_EQ(gen->files_of_type(1).size(), 5u);
  // Sizes within the initial distributions.
  for (fs::FileId id : gen->files_of_type(0)) {
    EXPECT_GE(fs_.file(id).logical_bytes, KiB(24));
    EXPECT_LE(fs_.file(id).logical_bytes, KiB(40));
  }
  for (fs::FileId id : gen->files_of_type(1)) {
    EXPECT_EQ(fs_.file(id).logical_bytes, MiB(1));
  }
}

TEST_F(OpGeneratorTest, SchedulesOneEventPerUser) {
  auto gen = MakeGen(OpMode::kApplication);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  gen->ScheduleUserStreams();
  EXPECT_EQ(queue_.size(), 8u);  // 4 + 4 users.
}

TEST_F(OpGeneratorTest, EventsPerpetuateAndExecuteOps) {
  auto gen = MakeGen(OpMode::kApplication);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  gen->ScheduleUserStreams();
  queue_.RunUntil(5'000);
  EXPECT_GT(gen->ops_executed(), 20u);
  EXPECT_FALSE(queue_.empty());
  EXPECT_GT(gen->op_latency_ms().count(), 0u);
}

TEST_F(OpGeneratorTest, DeterministicAcrossRuns) {
  uint64_t ops1, ops2;
  {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(2));
    alloc::RestrictedBuddyAllocator alloc2(disk.capacity_du(),
                                           alloc::RestrictedBuddyConfig{});
    fs::ReadOptimizedFs f(&alloc2, &disk);
    sim::EventQueue q;
    OpGeneratorOptions opts;
    opts.seed = 5;
    OpGenerator gen(&workload_, &f, &q, opts);
    ASSERT_TRUE(gen.CreateInitialFiles().ok());
    gen.ScheduleUserStreams();
    q.RunUntil(3000);
    ops1 = gen.ops_executed();
  }
  {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(2));
    alloc::RestrictedBuddyAllocator alloc2(disk.capacity_du(),
                                           alloc::RestrictedBuddyConfig{});
    fs::ReadOptimizedFs f(&alloc2, &disk);
    sim::EventQueue q;
    OpGeneratorOptions opts;
    opts.seed = 5;
    OpGenerator gen(&workload_, &f, &q, opts);
    ASSERT_TRUE(gen.CreateInitialFiles().ok());
    gen.ScheduleUserStreams();
    q.RunUntil(3000);
    ops2 = gen.ops_executed();
  }
  EXPECT_EQ(ops1, ops2);
}

TEST_F(OpGeneratorTest, AllocationModeDoesNoIo) {
  auto gen = MakeGen(OpMode::kAllocation);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  fs_.set_io_enabled(false);
  gen->ScheduleUserStreams();
  disk_.ResetStats();
  queue_.RunUntil(5'000);
  EXPECT_EQ(disk_.physical_bytes(), 0u);
  EXPECT_GT(gen->ops_executed(), 0u);
}

TEST_F(OpGeneratorTest, UpperBoundConvertsExtendsToTruncates) {
  auto gen = MakeGen(OpMode::kFill);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  fs_.set_io_enabled(false);
  // Force the bound below current utilization: every extend becomes a
  // truncate, so utilization must fall monotonically.
  gen->set_upper_bound_util(0.0);
  gen->ScheduleUserStreams();
  const double before = fs_.SpaceUtilization();
  queue_.RunUntil(20'000);
  EXPECT_LT(fs_.SpaceUtilization(), before);
  EXPECT_EQ(gen->disk_full_count(), 0u);
}

TEST_F(OpGeneratorTest, FillModeRaisesUtilization) {
  auto gen = MakeGen(OpMode::kFill);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  fs_.set_io_enabled(false);
  gen->set_upper_bound_util(0.95);
  gen->ScheduleUserStreams();
  const double before = fs_.SpaceUtilization();
  queue_.RunUntil(200'000);
  EXPECT_GT(fs_.SpaceUtilization(), before);
}

TEST_F(OpGeneratorTest, BytesMovedCallbackFiresAtCompletion) {
  auto gen = MakeGen(OpMode::kApplication);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  gen->ScheduleUserStreams();
  uint64_t total_bytes = 0;
  double last_time = 0;
  gen->on_bytes_moved = [&](uint64_t bytes, sim::TimeMs done) {
    total_bytes += bytes;
    EXPECT_LE(done, queue_.now() + 1e-9)
        << "bytes credited before completion";
    last_time = done;
  };
  queue_.RunUntil(10'000);
  EXPECT_GT(total_bytes, 0u);
  EXPECT_GT(last_time, 0.0);
}

TEST_F(OpGeneratorTest, SequentialModeMovesWholeFiles) {
  auto gen = MakeGen(OpMode::kSequential);
  ASSERT_TRUE(gen->CreateInitialFiles().ok());
  gen->ScheduleUserStreams();
  uint64_t max_op_bytes = 0;
  gen->on_bytes_moved = [&](uint64_t bytes, sim::TimeMs) {
    max_op_bytes = std::max(max_op_bytes, bytes);
  };
  queue_.RunUntil(30'000);
  // Whole-file transfers of the 1M type must appear.
  EXPECT_EQ(max_op_bytes, MiB(1));
}

TEST_F(OpGeneratorTest, DiskFullCallbackStopsAllocationTest) {
  // A small disk that the tiny workload can fill quickly.
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(1);
  cfg.disks[0].cylinders = 40;  // ~8.4 MB.
  disk::DiskSystem disk(cfg);
  alloc::RestrictedBuddyConfig rb;
  rb.block_sizes_du = {1, 8, 64};
  rb.clustered = false;
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(), rb);
  fs::ReadOptimizedFs f(&allocator, &disk);
  f.set_io_enabled(false);
  sim::EventQueue q;
  OpGeneratorOptions opts;
  opts.mode = OpMode::kAllocation;
  opts.upper_bound_util = 2.0;
  OpGenerator gen(&workload_, &f, &q, opts);
  // Initialization itself may fill this tiny disk.
  const Status init = gen.CreateInitialFiles();
  if (init.ok()) {
    gen.on_disk_full = [&q] { q.Stop(); };
    gen.ScheduleUserStreams();
    q.RunUntil(1e12);
  }
  EXPECT_TRUE(gen.hit_disk_full());
  EXPECT_GT(f.SpaceUtilization(), 0.9);
}

}  // namespace
}  // namespace rofs::workload
