#include "exp/run_record.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace rofs::exp {
namespace {

TEST(RunRecord, SetGetHas) {
  RunRecord r;
  EXPECT_FALSE(r.Has("x"));
  EXPECT_EQ(r.Get("x"), 0.0);
  EXPECT_EQ(r.Get("x", -1.0), -1.0);
  r.Set("x", 2.5);
  EXPECT_TRUE(r.Has("x"));
  EXPECT_EQ(r.Get("x"), 2.5);
}

TEST(RunRecord, MergeMetricsPrefixesNamesAndKeepsExistingTags) {
  RunRecord a;
  a.Set("ops", 10);
  a.tags["result_kind"] = "allocation";

  RunRecord b;
  b.Set("ops", 20);
  b.Set("throughput", 0.5);
  b.tags["result_kind"] = "perf";
  b.tags["extra"] = "yes";

  RunRecord cell;
  cell.MergeMetrics(a, "alloc.");
  cell.MergeMetrics(b, "app.");
  EXPECT_EQ(cell.Get("alloc.ops"), 10.0);
  EXPECT_EQ(cell.Get("app.ops"), 20.0);
  EXPECT_EQ(cell.Get("app.throughput"), 0.5);
  // First-merged tag wins; new keys are still merged in.
  EXPECT_EQ(cell.tags.at("result_kind"), "allocation");
  EXPECT_EQ(cell.tags.at("extra"), "yes");
}

TEST(RunRecord, ToJsonIsDeterministicAndEscaped) {
  RunRecord r;
  r.experiment = "unit";
  r.cell = "cell \"A\"\n";
  r.replicate = 2;
  r.seed = 42;
  r.tags["kind"] = "x";
  r.Set("b", 0.1);
  r.Set("a", 1);
  const std::string json = r.ToJson();
  EXPECT_EQ(json,
            "{\"experiment\":\"unit\",\"cell\":\"cell \\\"A\\\"\\n\","
            "\"replicate\":2,\"seed\":42,\"tags\":{\"kind\":\"x\"},"
            "\"metrics\":{\"a\":1,\"b\":0.1}}");
  // Serialization is a pure function of the record.
  EXPECT_EQ(json, r.ToJson());
}

TEST(RunRecord, CsvUnionHeaderAndBlanksForAbsentCells) {
  RunRecord a;
  a.experiment = "unit";
  a.cell = "one";
  a.Set("m1", 1);
  RunRecord b;
  b.experiment = "unit";
  b.cell = "two, with comma";
  b.replicate = 1;
  b.seed = 7;
  b.tags["k"] = "v";
  b.Set("m2", 2);

  const std::string csv = RecordsToCsv({a, b});
  EXPECT_EQ(csv,
            "experiment,cell,replicate,seed,tag.k,m1,m2\n"
            "unit,one,0,0,,1,\n"
            "unit,\"two, with comma\",1,7,v,,2\n");
}

TEST(RunRecord, JsonlOneLinePerRecord) {
  RunRecord a;
  a.experiment = "unit";
  RunRecord b;
  b.experiment = "unit";
  b.replicate = 1;
  const std::string jsonl = RecordsToJsonl({a, b});
  EXPECT_EQ(jsonl, a.ToJson() + "\n" + b.ToJson() + "\n");
}

TEST(ResultRecords, AllocationResultRoundTrips) {
  AllocationResult a;
  a.internal_fragmentation = 0.12;
  a.external_fragmentation = 0.034;
  a.utilization = 0.9;
  a.avg_extents_per_file = 3.25;
  a.ops_executed = 12345;
  a.simulated_ms = 6789.5;
  a.alloc_stats.alloc_calls = 11;
  a.alloc_stats.blocks_allocated = 22;
  a.alloc_stats.blocks_freed = 33;
  a.alloc_stats.splits = 44;
  a.alloc_stats.coalesces = 55;
  a.alloc_stats.failed_allocs = 66;

  const RunRecord r = a.ToRecord();
  EXPECT_EQ(r.tags.at("result_kind"), "allocation");
  const AllocationResult back = AllocationResult::FromRecord(r);
  EXPECT_EQ(back.internal_fragmentation, a.internal_fragmentation);
  EXPECT_EQ(back.external_fragmentation, a.external_fragmentation);
  EXPECT_EQ(back.utilization, a.utilization);
  EXPECT_EQ(back.avg_extents_per_file, a.avg_extents_per_file);
  EXPECT_EQ(back.ops_executed, a.ops_executed);
  EXPECT_EQ(back.simulated_ms, a.simulated_ms);
  EXPECT_EQ(back.alloc_stats.alloc_calls, a.alloc_stats.alloc_calls);
  EXPECT_EQ(back.alloc_stats.blocks_allocated,
            a.alloc_stats.blocks_allocated);
  EXPECT_EQ(back.alloc_stats.blocks_freed, a.alloc_stats.blocks_freed);
  EXPECT_EQ(back.alloc_stats.splits, a.alloc_stats.splits);
  EXPECT_EQ(back.alloc_stats.coalesces, a.alloc_stats.coalesces);
  EXPECT_EQ(back.alloc_stats.failed_allocs, a.alloc_stats.failed_allocs);
}

TEST(ResultRecords, PerfResultRoundTrips) {
  PerfResult p;
  p.utilization_of_max = 0.88;
  p.stabilized = true;
  p.measured_ms = 120000.5;
  p.ops_executed = 999;
  p.bytes_moved = 1 << 30;
  p.disk_full_events = 3;
  p.avg_extents_per_file = 1.5;
  p.internal_fragmentation = 0.07;
  p.mean_op_latency_ms = 42.5;
  p.alloc_stats.coalesces = 17;

  const RunRecord r = p.ToRecord();
  EXPECT_EQ(r.tags.at("result_kind"), "perf");
  const PerfResult back = PerfResult::FromRecord(r);
  EXPECT_EQ(back.utilization_of_max, p.utilization_of_max);
  EXPECT_EQ(back.stabilized, p.stabilized);
  EXPECT_EQ(back.measured_ms, p.measured_ms);
  EXPECT_EQ(back.ops_executed, p.ops_executed);
  EXPECT_EQ(back.bytes_moved, p.bytes_moved);
  EXPECT_EQ(back.disk_full_events, p.disk_full_events);
  EXPECT_EQ(back.avg_extents_per_file, p.avg_extents_per_file);
  EXPECT_EQ(back.internal_fragmentation, p.internal_fragmentation);
  EXPECT_EQ(back.mean_op_latency_ms, p.mean_op_latency_ms);
  EXPECT_EQ(back.alloc_stats.coalesces, p.alloc_stats.coalesces);
}

}  // namespace
}  // namespace rofs::exp
