#include "util/inline_function.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace rofs::util {
namespace {

using Fn = InlineFunction<int(int), 48>;

TEST(InlineFunctionTest, EmptyAndNullptr) {
  Fn f;
  EXPECT_FALSE(f);
  EXPECT_FALSE(f.is_inline());
  Fn g = nullptr;
  EXPECT_FALSE(g);
}

TEST(InlineFunctionTest, SmallCaptureStaysInline) {
  int base = 40;
  Fn f = [&base](int x) { return base + x; };
  ASSERT_TRUE(f);
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(2), 42);
}

TEST(InlineFunctionTest, LargeCaptureFallsBackToHeap) {
  struct Big {
    uint64_t words[16];  // 128 bytes > 48-byte buffer.
  };
  Big big{};
  big.words[3] = 7;
  Fn f = [big](int x) { return static_cast<int>(big.words[3]) + x; };
  ASSERT_TRUE(f);
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(1), 8);
}

TEST(InlineFunctionTest, MoveTransfersAndEmptiesSource) {
  int calls = 0;
  Fn f = [&calls](int x) {
    ++calls;
    return x * 2;
  };
  Fn g = std::move(f);
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move) — part of the contract.
  ASSERT_TRUE(g);
  EXPECT_EQ(g(21), 42);
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunctionTest, MoveOnlyCaptureWorks) {
  // std::function cannot hold this at all (it requires copyability).
  auto p = std::make_unique<int>(99);
  Fn f = [p = std::move(p)](int x) { return *p + x; };
  ASSERT_TRUE(f);
  Fn g = std::move(f);
  EXPECT_EQ(g(1), 100);
}

TEST(InlineFunctionTest, NonTrivialDestructorRunsExactlyOnce) {
  // The null-destroy fast path must apply only to trivially-destructible
  // callables; a capture with a real destructor must still be destroyed
  // exactly once across moves, reassignment, and wrapper destruction.
  int destroyed = 0;
  struct Tracker {
    int* destroyed;
    bool armed = true;
    explicit Tracker(int* d) : destroyed(d) {}
    Tracker(Tracker&& o) noexcept : destroyed(o.destroyed), armed(o.armed) {
      o.armed = false;
    }
    Tracker(const Tracker&) = delete;
    ~Tracker() {
      if (armed) ++*destroyed;
    }
  };
  {
    Fn f = [t = Tracker(&destroyed)](int x) { return x; };
    EXPECT_TRUE(f.is_inline());
    Fn g = std::move(f);
    EXPECT_EQ(destroyed, 0);
    g = [](int x) { return x + 1; };  // Reassignment destroys the Tracker.
    EXPECT_EQ(destroyed, 1);
    EXPECT_EQ(g(0), 1);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunctionTest, EmplaceReplacesInPlace) {
  int destroyed = 0;
  struct Tracker {
    int* destroyed;
    bool armed = true;
    explicit Tracker(int* d) : destroyed(d) {}
    Tracker(Tracker&& o) noexcept : destroyed(o.destroyed), armed(o.armed) {
      o.armed = false;
    }
    Tracker(const Tracker&) = delete;
    ~Tracker() {
      if (armed) ++*destroyed;
    }
  };
  Fn f;
  f.Emplace([t = Tracker(&destroyed)](int x) { return x * 3; });
  EXPECT_EQ(f(2), 6);
  f.Emplace([](int x) { return x * 5; });  // Destroys the first callable.
  EXPECT_EQ(destroyed, 1);
  EXPECT_EQ(f(2), 10);
}

TEST(InlineFunctionTest, MoveAssignOverSelfContentDestroysOld) {
  int calls_a = 0;
  int calls_b = 0;
  Fn a = [&calls_a](int x) {
    ++calls_a;
    return x;
  };
  Fn b = [&calls_b](int x) {
    ++calls_b;
    return -x;
  };
  a = std::move(b);
  EXPECT_EQ(a(5), -5);
  EXPECT_EQ(calls_a, 0);
  EXPECT_EQ(calls_b, 1);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace rofs::util
