#include "bench/common.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/run_record.h"
#include "util/random.h"
#include "util/table.h"

namespace rofs::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct SweepOutput {
  std::vector<std::vector<std::string>> rows;
  std::string jsonl;
  std::vector<exp::RunRecord> records;
};

/// Runs a two-cell sweep whose metrics are a deterministic function of
/// the per-run seed, under the given command line.
SweepOutput RunFakeSweep(std::vector<std::string> args,
                         const std::string& jsonl_path) {
  args.insert(args.begin(), "bench_sweep_test");
  args.push_back("--jsonl");
  args.push_back(jsonl_path);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());

  Sweep sweep(static_cast<int>(argv.size()), argv.data());
  for (int c = 0; c < 2; ++c) {
    sweep.Add(
        FormatString("cell%d", c),
        [c](const runner::RunContext& ctx) -> StatusOr<exp::RunRecord> {
          Rng rng(ctx.seed);
          exp::RunRecord record;
          record.Set("value", static_cast<double>(rng.Next() % 1000) / 10.0 +
                                  100.0 * c);
          record.Set("frac", rng.NextDouble());
          return record;
        },
        [](const CellStats& cs) {
          return std::vector<std::string>{cs.Fixed("value", 1),
                                          cs.Pct("frac")};
        });
  }
  SweepOutput out;
  out.rows = sweep.Run();
  out.jsonl = ReadFile(jsonl_path);
  out.records = sweep.records();
  return out;
}

TEST(BenchSweepReplicates, ByteIdenticalRowsAndJsonlAcrossJobCounts) {
  const std::string dir = ::testing::TempDir();
  const auto serial = RunFakeSweep({"--replicates", "4", "--jobs", "1"},
                                   dir + "/rofs_sweep_j1.jsonl");
  const auto parallel = RunFakeSweep({"--replicates", "4", "--jobs", "8"},
                                     dir + "/rofs_sweep_j8.jsonl");
  EXPECT_EQ(serial.rows, parallel.rows);
  ASSERT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
}

TEST(BenchSweepReplicates, RecordsAreCellMajorWithStreamSeeds) {
  const std::string dir = ::testing::TempDir();
  const auto out = RunFakeSweep({"--replicates", "3", "--jobs", "2"},
                                dir + "/rofs_sweep_records.jsonl");
  ASSERT_EQ(out.records.size(), 6u);
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < 3; ++r) {
      const exp::RunRecord& record = out.records[c * 3 + r];
      EXPECT_EQ(record.cell, FormatString("cell%d", c));
      EXPECT_EQ(record.replicate, r);
      EXPECT_EQ(record.experiment, "bench_sweep_test");
      EXPECT_TRUE(record.Has("value"));
    }
  }
  // Replicate 0 runs on the base seed itself; others on distinct streams.
  EXPECT_EQ(out.records[0].seed, 1u);
  EXPECT_NE(out.records[1].seed, out.records[0].seed);
  EXPECT_NE(out.records[2].seed, out.records[1].seed);
  // Grid cells share common random numbers: same streams, same seeds.
  EXPECT_EQ(out.records[0].seed, out.records[3].seed);
  EXPECT_EQ(out.records[1].seed, out.records[4].seed);
}

TEST(BenchSweepReplicates, SingleReplicateFormatsWithoutCi) {
  const std::string dir = ::testing::TempDir();
  const auto out = RunFakeSweep({"--replicates", "1", "--jobs", "2"},
                                dir + "/rofs_sweep_single.jsonl");
  ASSERT_EQ(out.rows.size(), 2u);
  for (const auto& row : out.rows) {
    for (const std::string& cell : row) {
      EXPECT_EQ(cell.find("±"), std::string::npos) << cell;
    }
  }
  // CI cells appear once replicated.
  const auto rep = RunFakeSweep({"--replicates", "3", "--jobs", "2"},
                                dir + "/rofs_sweep_rep.jsonl");
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_NE(rep.rows[0][0].find("±"), std::string::npos) << rep.rows[0][0];
  EXPECT_NE(rep.rows[0][1].find("±"), std::string::npos) << rep.rows[0][1];
}

}  // namespace
}  // namespace rofs::bench
