#include "workload/trace_replay.h"

#include <gtest/gtest.h>

#include <memory>

#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "exp/trace.h"
#include "util/table.h"
#include "util/units.h"

namespace rofs::workload {
namespace {

TEST(TraceParseTest, ParsesWellFormedTrace) {
  auto ops = TraceReplayer::Parse(R"(
# a comment
0,create,db,1048576
5.5,read,db,8192,0
9,extend,db,65536
12,write,db,4096
20,truncate,db,1024
25,delete,db,0
)");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 6u);
  EXPECT_DOUBLE_EQ((*ops)[1].time_ms, 5.5);
  EXPECT_EQ((*ops)[1].op, "read");
  EXPECT_EQ((*ops)[1].offset, 0u);
  EXPECT_EQ((*ops)[3].offset, UINT64_MAX);  // Sequential cursor.
}

TEST(TraceParseTest, AcceptsCrlfAndTrailingComments) {
  // Windows line endings and trailing comments after the fields must not
  // leak into the parsed values.
  auto ops = TraceReplayer::Parse(
      "0,create,db,1024\r\n"
      "5,read,db,512,0   # warm the cache\r\n"
      "9,write,db,256\n");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 3u);
  EXPECT_EQ((*ops)[0].bytes, 1024u);
  EXPECT_EQ((*ops)[1].op, "read");
  EXPECT_EQ((*ops)[1].offset, 0u);
  EXPECT_EQ((*ops)[2].bytes, 256u);
}

TEST(TraceParseTest, SkipsNativeHeaderRow) {
  auto ops = TraceReplayer::Parse(
      "time_ms,op,file,bytes\n"
      "0,create,db,1024\n");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  EXPECT_EQ(ops->size(), 1u);
}

TEST(TraceParseTest, AutoDetectsOpTraceColumns) {
  // The header rofs_sim --trace emits switches the parser to the OpTrace
  // column layout: issue time, op, file, and bytes land on the native
  // fields; completion/latency/type describe the recorded run and drop.
  auto ops = TraceReplayer::Parse(
      "issued_ms,completed_ms,latency_ms,type,op,file,bytes\n"
      "0.000,4.500,4.500,files,read,7,8192\r\n"
      "1.250,9.000,7.750,files,write,3,4096\n"
      "# dropped=0\n");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 2u);
  EXPECT_DOUBLE_EQ((*ops)[0].time_ms, 0.0);
  EXPECT_EQ((*ops)[0].op, "read");
  EXPECT_EQ((*ops)[0].file_key, "7");
  EXPECT_EQ((*ops)[0].bytes, 8192u);
  EXPECT_EQ((*ops)[0].offset, UINT64_MAX);  // Sequential cursor.
  EXPECT_EQ((*ops)[1].op, "write");
  EXPECT_EQ((*ops)[1].bytes, 4096u);
  // Wrong column count in OpTrace mode is an error, not a fallback.
  EXPECT_FALSE(TraceReplayer::Parse(
                   "issued_ms,completed_ms,latency_ms,type,op,file,bytes\n"
                   "0,read,db,8\n")
                   .ok());
}

TEST(TraceParseTest, OpTraceDeleteSplitsIntoDeleteAndRecreate) {
  // The generator's delete is delete + recreate + write-in-full; its
  // OpTrace row carries the recreate size, so replay splits it to
  // reproduce the recorded byte volume.
  auto ops = TraceReplayer::Parse(
      "issued_ms,completed_ms,latency_ms,type,op,file,bytes\n"
      "2.000,3.000,1.000,files,delete,5,8192\n");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 2u);
  EXPECT_EQ((*ops)[0].op, "delete");
  EXPECT_EQ((*ops)[0].bytes, 0u);
  EXPECT_EQ((*ops)[1].op, "create");
  EXPECT_EQ((*ops)[1].bytes, 8192u);
  EXPECT_DOUBLE_EQ((*ops)[1].time_ms, 2.0);
}

TEST(TraceParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(TraceReplayer::Parse("0,read,db\n").ok());  // Too few.
  EXPECT_FALSE(TraceReplayer::Parse("0,munge,db,8\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("x,read,db,8\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("0,read,db,xyz\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("0,read,,8\n").ok());
  // Decreasing times.
  EXPECT_FALSE(TraceReplayer::Parse("5,read,a,8\n1,read,a,8\n").ok());
  const auto err = TraceReplayer::Parse("0,read,db,8\nbroken\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest()
      : disk_(disk::DiskSystemConfig::Array(4)),
        allocator_(disk_.capacity_du(), alloc::RestrictedBuddyConfig{}),
        fs_(&allocator_, &disk_) {}

  disk::DiskSystem disk_;
  alloc::RestrictedBuddyAllocator allocator_;
  fs::ReadOptimizedFs fs_;
};

TEST_F(TraceReplayTest, FilesCreatedOnFirstTouch) {
  auto ops = TraceReplayer::Parse("0,create,a,8192\n1,extend,b,4096\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.ops, 2u);
  EXPECT_EQ(replayer.file_bindings().size(), 2u);
  const fs::FileId a = replayer.file_bindings().at("a");
  const fs::FileId b = replayer.file_bindings().at("b");
  EXPECT_EQ(fs_.file(a).logical_bytes, 8192u);
  EXPECT_EQ(fs_.file(b).logical_bytes, 4096u);
}

TEST_F(TraceReplayTest, OpenLoopAccountsBytesAndMakespan) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,1048576\n"
      "100,read,f,65536,0\n"
      "100,read,f,65536,524288\n"
      "200,write,f,8192,0\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.ops, 4u);
  EXPECT_EQ(stats.bytes_read, 2u * 65536);
  EXPECT_EQ(stats.bytes_written, 1048576u + 8192u);
  EXPECT_GT(stats.makespan_ms, 200.0);
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_EQ(stats.failed_allocations, 0u);
}

TEST_F(TraceReplayTest, SequentialCursorAdvancesAndWraps) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,16384\n"
      "1,read,f,8192\n"
      "2,read,f,8192\n"
      "3,read,f,8192\n");  // Third read wraps to offset 0.
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.bytes_read, 3u * 8192);
}

TEST_F(TraceReplayTest, DeleteThenTouchRecreates) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,8192\n"
      "1,delete,f,0\n"
      "2,extend,f,4096\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  replayer.ReplayOpenLoop(&queue);
  const fs::FileId f = replayer.file_bindings().at("f");
  EXPECT_TRUE(fs_.file(f).exists);
  EXPECT_EQ(fs_.file(f).logical_bytes, 4096u);
}

TEST_F(TraceReplayTest, ClosedLoopPreservesThinkTime) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,1048576\n"
      "1000,read,f,8192,0\n"   // 1s of think time after the create.
      "1001,read,f,8192,0\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayClosedLoop(&queue);
  EXPECT_EQ(stats.ops, 3u);
  // Makespan >= create completion + 1000ms think + read service.
  EXPECT_GT(stats.makespan_ms, 1000.0);
}

// The point of the facility: the same trace distinguishes policies. After
// interleaved growth of two files, a whole-file sequential read is slow on
// the scattered fixed-block layout and fast on the contiguous restricted
// buddy layout. (The growth phase itself can favor fixed block — the
// interleaved appends land adjacently in free-list order — which is
// exactly the read-vs-write trade the paper's title is about.)
TEST_F(TraceReplayTest, PoliciesDifferOnTheSameTrace) {
  // Interleave growth of two files.
  std::string text;
  text += "0,create,a,4096\n0,create,b,4096\n";
  double t = 1;
  for (int i = 0; i < 60; ++i) {
    text += FormatString("%.0f,extend,a,4096\n", t++);
    text += FormatString("%.0f,extend,b,4096\n", t++);
  }
  auto ops = TraceReplayer::Parse(text);
  ASSERT_TRUE(ops.ok());

  // Replays the aging trace, then times a whole-file read of `a`.
  auto read_time_after_replay = [&](alloc::Allocator* allocator) {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(4));
    fs::ReadOptimizedFs fs(allocator, &disk);
    TraceReplayer replayer(*ops, &fs);
    sim::EventQueue queue;
    const TraceReplayStats stats = replayer.ReplayClosedLoop(&queue);
    const fs::FileId a = replayer.file_bindings().at("a");
    const sim::TimeMs start = stats.makespan_ms + 1000.0;
    return fs.Read(a, 0, fs.file(a).logical_bytes, start) - start;
  };
  alloc::FixedBlockAllocator fixed(disk_.capacity_du(), 4);
  alloc::RestrictedBuddyAllocator rbuddy(disk_.capacity_du(),
                                         alloc::RestrictedBuddyConfig{});
  const double fixed_read = read_time_after_replay(&fixed);
  const double rbuddy_read = read_time_after_replay(&rbuddy);
  EXPECT_GT(fixed_read, 2.0 * rbuddy_read);
}

// Closes the trace loop: run an instrumented experiment, emit its
// OpTrace CSV, feed that CSV back through TraceReplayer onto an
// identically configured fresh file system, and check the replayed byte
// volume against the recorded one. The workload is chosen so replay is
// exact: whole-file 8K reads/writes on files whose sizes stay 8K
// multiples (initial 8K, extends of 8K, dev 0), so every sequential-
// cursor read lands on a full 8K window and moved bytes equal recorded
// bytes row for row.
TEST(TraceRoundTripTest, ReplayReproducesRecordedVolume) {
  WorkloadSpec workload;
  workload.name = "roundtrip";
  FileTypeSpec files;
  files.name = "files";
  files.num_files = 40;
  files.num_users = 4;
  files.process_time_ms = 20;
  files.hit_frequency_ms = 20;
  files.rw_bytes_mean = KiB(8);
  files.extend_bytes_mean = KiB(8);
  files.truncate_bytes = KiB(8);
  files.initial_bytes_mean = KiB(8);
  files.read_ratio = 0.5;
  files.write_ratio = 0.3;
  files.extend_ratio = 0.2;
  files.access = AccessPattern::kRandom;
  workload.types.push_back(files);

  const auto disk_config = [] {
    disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(2);
    for (auto& g : cfg.disks) g.cylinders = 60;
    return cfg;
  };
  const alloc::RestrictedBuddyConfig alloc_config{};

  exp::ExperimentConfig config;
  config.seed = 11;
  config.fill_lower = 0.30;
  config.fill_upper = 0.50;
  config.warmup_ms = 500;
  config.min_measure_ms = 1000;
  config.max_measure_ms = 4000;
  config.sample_interval_ms = 500;

  exp::OpTrace trace;
  exp::Experiment experiment(
      workload,
      [&](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
        return std::make_unique<alloc::RestrictedBuddyAllocator>(
            total_du, alloc_config);
      },
      disk_config(), config);
  experiment.set_instrument(
      [&trace](OpGenerator* gen) { trace.Attach(gen); });
  auto perf = experiment.RunApplicationTest();
  ASSERT_TRUE(perf.ok()) << perf.status().ToString();
  ASSERT_EQ(perf->disk_full_events, 0u);
  ASSERT_EQ(trace.dropped(), 0u);
  ASSERT_GT(trace.size(), 100u);

  // Recorded ground truth, straight from the CSV the tool would write.
  const std::string csv = trace.ToCsv(workload);
  auto parsed = TraceReplayer::Parse(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_GE(parsed->size(), trace.size());  // Delete rows split in two.
  uint64_t recorded_read = 0, recorded_written = 0;
  for (const TraceOp& op : *parsed) {
    if (op.op == "read") recorded_read += op.bytes;
    if (op.op == "write" || op.op == "extend" || op.op == "create") {
      recorded_written += op.bytes;
    }
  }

  // The trace records user operations only; the initial file population
  // is the simulation's starting image, so the replay prepends it (the
  // experiment creates files 0..N-1 at the initial size before any
  // traced op runs).
  std::string prelude;
  for (uint32_t f = 0; f < files.num_files; ++f) {
    prelude += FormatString("0,create,%u,%llu\n", f,
                            static_cast<unsigned long long>(KiB(8)));
  }
  auto prelude_ops = TraceReplayer::Parse(prelude);
  ASSERT_TRUE(prelude_ops.ok());
  std::vector<TraceOp> replay_ops = std::move(*prelude_ops);
  replay_ops.insert(replay_ops.end(), parsed->begin(), parsed->end());

  disk::DiskSystem disk(disk_config());
  alloc::RestrictedBuddyAllocator allocator(disk.capacity_du(),
                                            alloc_config);
  fs::ReadOptimizedFs fs(&allocator, &disk);
  TraceReplayer replayer(std::move(replay_ops), &fs);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);

  EXPECT_EQ(stats.ops, parsed->size() + files.num_files);
  EXPECT_EQ(stats.bytes_read, recorded_read);
  EXPECT_EQ(stats.bytes_written,
            recorded_written + files.num_files * KiB(8));
  EXPECT_EQ(stats.failed_allocations, 0u);
  EXPECT_EQ(replayer.file_bindings().size(), files.num_files);
}

}  // namespace
}  // namespace rofs::workload
