#include "workload/trace_replay.h"

#include <gtest/gtest.h>

#include "alloc/extent_allocator.h"
#include "alloc/fixed_block_allocator.h"
#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "util/table.h"
#include "util/units.h"

namespace rofs::workload {
namespace {

TEST(TraceParseTest, ParsesWellFormedTrace) {
  auto ops = TraceReplayer::Parse(R"(
# a comment
0,create,db,1048576
5.5,read,db,8192,0
9,extend,db,65536
12,write,db,4096
20,truncate,db,1024
25,delete,db,0
)");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 6u);
  EXPECT_DOUBLE_EQ((*ops)[1].time_ms, 5.5);
  EXPECT_EQ((*ops)[1].op, "read");
  EXPECT_EQ((*ops)[1].offset, 0u);
  EXPECT_EQ((*ops)[3].offset, UINT64_MAX);  // Sequential cursor.
}

TEST(TraceParseTest, RejectsMalformedLines) {
  EXPECT_FALSE(TraceReplayer::Parse("0,read,db\n").ok());  // Too few.
  EXPECT_FALSE(TraceReplayer::Parse("0,munge,db,8\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("x,read,db,8\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("0,read,db,xyz\n").ok());
  EXPECT_FALSE(TraceReplayer::Parse("0,read,,8\n").ok());
  // Decreasing times.
  EXPECT_FALSE(TraceReplayer::Parse("5,read,a,8\n1,read,a,8\n").ok());
  const auto err = TraceReplayer::Parse("0,read,db,8\nbroken\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest()
      : disk_(disk::DiskSystemConfig::Array(4)),
        allocator_(disk_.capacity_du(), alloc::RestrictedBuddyConfig{}),
        fs_(&allocator_, &disk_) {}

  disk::DiskSystem disk_;
  alloc::RestrictedBuddyAllocator allocator_;
  fs::ReadOptimizedFs fs_;
};

TEST_F(TraceReplayTest, FilesCreatedOnFirstTouch) {
  auto ops = TraceReplayer::Parse("0,create,a,8192\n1,extend,b,4096\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.ops, 2u);
  EXPECT_EQ(replayer.file_bindings().size(), 2u);
  const fs::FileId a = replayer.file_bindings().at("a");
  const fs::FileId b = replayer.file_bindings().at("b");
  EXPECT_EQ(fs_.file(a).logical_bytes, 8192u);
  EXPECT_EQ(fs_.file(b).logical_bytes, 4096u);
}

TEST_F(TraceReplayTest, OpenLoopAccountsBytesAndMakespan) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,1048576\n"
      "100,read,f,65536,0\n"
      "100,read,f,65536,524288\n"
      "200,write,f,8192,0\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.ops, 4u);
  EXPECT_EQ(stats.bytes_read, 2u * 65536);
  EXPECT_EQ(stats.bytes_written, 1048576u + 8192u);
  EXPECT_GT(stats.makespan_ms, 200.0);
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_EQ(stats.failed_allocations, 0u);
}

TEST_F(TraceReplayTest, SequentialCursorAdvancesAndWraps) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,16384\n"
      "1,read,f,8192\n"
      "2,read,f,8192\n"
      "3,read,f,8192\n");  // Third read wraps to offset 0.
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayOpenLoop(&queue);
  EXPECT_EQ(stats.bytes_read, 3u * 8192);
}

TEST_F(TraceReplayTest, DeleteThenTouchRecreates) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,8192\n"
      "1,delete,f,0\n"
      "2,extend,f,4096\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  replayer.ReplayOpenLoop(&queue);
  const fs::FileId f = replayer.file_bindings().at("f");
  EXPECT_TRUE(fs_.file(f).exists);
  EXPECT_EQ(fs_.file(f).logical_bytes, 4096u);
}

TEST_F(TraceReplayTest, ClosedLoopPreservesThinkTime) {
  auto ops = TraceReplayer::Parse(
      "0,create,f,1048576\n"
      "1000,read,f,8192,0\n"   // 1s of think time after the create.
      "1001,read,f,8192,0\n");
  ASSERT_TRUE(ops.ok());
  TraceReplayer replayer(std::move(*ops), &fs_);
  sim::EventQueue queue;
  const TraceReplayStats stats = replayer.ReplayClosedLoop(&queue);
  EXPECT_EQ(stats.ops, 3u);
  // Makespan >= create completion + 1000ms think + read service.
  EXPECT_GT(stats.makespan_ms, 1000.0);
}

// The point of the facility: the same trace distinguishes policies. After
// interleaved growth of two files, a whole-file sequential read is slow on
// the scattered fixed-block layout and fast on the contiguous restricted
// buddy layout. (The growth phase itself can favor fixed block — the
// interleaved appends land adjacently in free-list order — which is
// exactly the read-vs-write trade the paper's title is about.)
TEST_F(TraceReplayTest, PoliciesDifferOnTheSameTrace) {
  // Interleave growth of two files.
  std::string text;
  text += "0,create,a,4096\n0,create,b,4096\n";
  double t = 1;
  for (int i = 0; i < 60; ++i) {
    text += FormatString("%.0f,extend,a,4096\n", t++);
    text += FormatString("%.0f,extend,b,4096\n", t++);
  }
  auto ops = TraceReplayer::Parse(text);
  ASSERT_TRUE(ops.ok());

  // Replays the aging trace, then times a whole-file read of `a`.
  auto read_time_after_replay = [&](alloc::Allocator* allocator) {
    disk::DiskSystem disk(disk::DiskSystemConfig::Array(4));
    fs::ReadOptimizedFs fs(allocator, &disk);
    TraceReplayer replayer(*ops, &fs);
    sim::EventQueue queue;
    const TraceReplayStats stats = replayer.ReplayClosedLoop(&queue);
    const fs::FileId a = replayer.file_bindings().at("a");
    const sim::TimeMs start = stats.makespan_ms + 1000.0;
    return fs.Read(a, 0, fs.file(a).logical_bytes, start) - start;
  };
  alloc::FixedBlockAllocator fixed(disk_.capacity_du(), 4);
  alloc::RestrictedBuddyAllocator rbuddy(disk_.capacity_du(),
                                         alloc::RestrictedBuddyConfig{});
  const double fixed_read = read_time_after_replay(&fixed);
  const double rbuddy_read = read_time_after_replay(&rbuddy);
  EXPECT_GT(fixed_read, 2.0 * rbuddy_read);
}

}  // namespace
}  // namespace rofs::workload
