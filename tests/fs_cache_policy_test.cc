#include "fs/cache_policy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "alloc/restricted_buddy.h"
#include "disk/disk_system.h"
#include "exp/experiment.h"
#include "fs/buffer_cache.h"
#include "util/random.h"
#include "util/units.h"
#include "workload/file_type.h"

namespace rofs::fs {
namespace {

// --- Spec parsing (mirrors sched_policy_test.cc's SchedulerSpecTest).

TEST(CachePolicySpecTest, ParsesEveryPolicy) {
  const std::pair<const char*, CachePolicyKind> cases[] = {
      {"lru", CachePolicyKind::kLru},
      {"clock", CachePolicyKind::kClock},
      {"2q", CachePolicyKind::k2Q},
      {"arc", CachePolicyKind::kArc},
  };
  for (const auto& [text, kind] : cases) {
    auto spec = ParseCachePolicySpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_EQ(spec->kind, kind);
    EXPECT_EQ(spec->Label(), text);
  }
}

TEST(CachePolicySpecTest, RejectsUnknownPolicy) {
  auto spec = ParseCachePolicySpec("mru");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("unknown cache policy"),
            std::string::npos);
}

TEST(CachePolicySpecTest, DefaultIsLru) {
  CachePolicySpec spec;
  EXPECT_EQ(spec.kind, CachePolicyKind::kLru);
  EXPECT_EQ(spec.Label(), "lru");
  BufferCache cache(4, 1);
  EXPECT_EQ(cache.policy_kind(), CachePolicyKind::kLru);
}

// --- CLOCK.

BufferCache MakeCache(const char* policy, uint64_t pages, uint64_t page_du) {
  auto spec = ParseCachePolicySpec(policy);
  EXPECT_TRUE(spec.ok());
  return BufferCache(pages, page_du, *spec);
}

TEST(ClockPolicyTest, ReferencedPageGetsSecondChance) {
  BufferCache cache = MakeCache("clock", 2, 1);
  cache.Insert(0);
  cache.Insert(1);
  EXPECT_TRUE(cache.Touch(0));  // ref(0) = 1.
  cache.Insert(2);              // Sweep clears ref(0), evicts 1.
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ClockPolicyTest, DescribeQueuesCountsReferencedPages) {
  BufferCache cache = MakeCache("clock", 4, 1);
  cache.Insert(0);
  cache.Insert(1);
  cache.Insert(2);
  cache.Touch(0);
  cache.Touch(2);
  EXPECT_EQ(cache.DescribeQueues(), "clock:3 ref:2");
}

// The satellite regression: invalidating a page must clear its reference
// bit, so the unrelated page that recycles the slot does not inherit a
// second chance it never earned.
TEST(ClockPolicyTest, InvalidateClearsReferenceBitOfRecycledSlot) {
  BufferCache cache = MakeCache("clock", 2, 1);
  cache.Insert(0);
  cache.Insert(1);
  cache.Touch(0);
  cache.Touch(1);  // Both referenced.
  cache.InvalidateRange(1, 1);
  cache.Insert(2);  // Recycles page 1's slot; must start with ref = 0.
  cache.Insert(3);  // Sweep: clears ref(0), finds 2 unreferenced.
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(2))
      << "recycled slot inherited a stale reference bit";
  EXPECT_TRUE(cache.Contains(3));
}

// --- 2Q.

TEST(TwoQPolicyTest, GhostHitPromotesToAm) {
  // Capacity 4: Kin = 1, A1out holds 2 ghosts.
  BufferCache cache = MakeCache("2q", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  cache.Insert(4);   // Evicts 0 from A1in; ghost {0}.
  EXPECT_TRUE(cache.Touch(1));  // A1in hit: deliberately no reorder.
  cache.Insert(5);   // Evicts 1 (still A1in tail); ghost {1, 0}.
  EXPECT_FALSE(cache.Contains(1));
  cache.Insert(1);   // Ghost hit: 1 comes back straight into Am.
  EXPECT_EQ(cache.DescribeQueues(), "a1in:3 am:1 a1out:1");
  EXPECT_TRUE(cache.Contains(1));
}

TEST(TwoQPolicyTest, AmSurvivesSequentialScan) {
  BufferCache cache = MakeCache("2q", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  cache.Insert(4);  // Ghost {0}.
  cache.Insert(0);  // Promote 0 to Am (evicts 1 on the way).
  ASSERT_TRUE(cache.Contains(0));
  // A long one-shot scan churns only the admission queue; the hot page
  // in Am is never threatened.
  for (uint64_t p = 100; p < 140; ++p) cache.Insert(p);
  EXPECT_TRUE(cache.Contains(0))
      << "sequential scan flushed Am — no scan resistance";
  EXPECT_TRUE(cache.Touch(0));
}

TEST(TwoQPolicyTest, InvalidatePurgesQueueMembershipAndGhost) {
  BufferCache cache = MakeCache("2q", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  cache.Insert(4);  // Ghost {0}.
  cache.Insert(0);  // 0 in Am now.
  cache.InvalidateRange(0, 1);
  EXPECT_FALSE(cache.Contains(0));
  // Re-inserting the same address must be a cold start (A1in), not an
  // Am promotion from stale history.
  cache.Insert(0);
  EXPECT_NE(cache.DescribeQueues().find("am:0"), std::string::npos)
      << cache.DescribeQueues();
  // Churn the admission queue: 0 must age out like any cold page.
  for (uint64_t p = 200; p < 208; ++p) cache.Insert(p);
  EXPECT_FALSE(cache.Contains(0))
      << "invalidated page kept stale Am membership: "
      << cache.DescribeQueues();
}

// --- ARC.

TEST(ArcPolicyTest, ReaccessMovesT1ToT2) {
  BufferCache cache = MakeCache("arc", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  EXPECT_EQ(cache.DescribeQueues(), "t1:4 t2:0 b1:0 b2:0 p:0");
  cache.Touch(3);
  EXPECT_EQ(cache.DescribeQueues(), "t1:3 t2:1 b1:0 b2:0 p:0");
}

TEST(ArcPolicyTest, GhostHitGrowsRecencyTargetAndPromotes) {
  BufferCache cache = MakeCache("arc", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  cache.Touch(3);    // t1:[2,1,0] t2:[3].
  cache.Insert(4);   // Evicts 0 (T1 tail) into B1.
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(3));
  cache.Insert(0);   // B1 ghost hit: p grows, 0 resurrects into T2.
  EXPECT_EQ(cache.DescribeQueues(), "t1:2 t2:2 b1:1 b2:0 p:1");
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ArcPolicyTest, InvalidatePurgesResidencyAndGhosts) {
  BufferCache cache = MakeCache("arc", 4, 1);
  for (uint64_t p = 0; p < 4; ++p) cache.Insert(p);
  cache.Touch(2);  // 2 in T2.
  cache.InvalidateRange(2, 1);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.DescribeQueues(), "t1:3 t2:0 b1:0 b2:0 p:0");
  // The address comes back cold: T1, no ghost-driven promotion.
  cache.Insert(2);
  EXPECT_EQ(cache.DescribeQueues(), "t1:4 t2:0 b1:0 b2:0 p:0");
}

// --- Cross-policy invariants.

TEST(CachePolicyInvariantTest, HitsPlusMissesEqualsRequestsUnderChurn) {
  for (const char* policy : {"lru", "clock", "2q", "arc"}) {
    auto spec = ParseCachePolicySpec(policy);
    ASSERT_TRUE(spec.ok());
    BufferCache cache(64, 8, *spec);
    Rng rng(42);
    constexpr uint64_t kSpanDu = 64 * 8 * 3;
    for (int step = 0; step < 20'000; ++step) {
      const uint64_t du = rng.UniformInt(0, kSpanDu - 1);
      switch (rng.UniformInt(0, 4)) {
        case 0:
          cache.Access(du, 1 + rng.UniformInt(0, 31));
          break;
        case 1:
          cache.Install(du, 1 + rng.UniformInt(0, 31));
          break;
        case 2:
          cache.InstallPrefetch(du, 1 + rng.UniformInt(0, 31));
          break;
        case 3:
          cache.Touch(du);
          break;
        default:
          cache.InvalidateRange(du, 1 + rng.UniformInt(0, 63));
          break;
      }
      ASSERT_LE(cache.size_pages(), cache.capacity_pages());
    }
    EXPECT_EQ(cache.hits() + cache.misses(), cache.requests()) << policy;
    EXPECT_GT(cache.requests(), 0u) << policy;
    // Residency after an install, for every policy.
    cache.Install(0, 8);
    EXPECT_TRUE(cache.Contains(0)) << policy;
  }
}

TEST(CachePolicyInvariantTest, PrefetchInstallsAreNotRequests) {
  for (const char* policy : {"lru", "clock", "2q", "arc"}) {
    auto spec = ParseCachePolicySpec(policy);
    ASSERT_TRUE(spec.ok());
    BufferCache cache(8, 1, *spec);
    cache.InstallPrefetch(0, 4);
    EXPECT_EQ(cache.requests(), 0u) << policy;
    EXPECT_EQ(cache.prefetch_issued(), 4u) << policy;
    EXPECT_EQ(cache.prefetch_hits(), 0u) << policy;
    // First demand use attributes the prefetch, once per page.
    EXPECT_TRUE(cache.Access(0, 2));
    EXPECT_EQ(cache.prefetch_hits(), 2u) << policy;
    EXPECT_TRUE(cache.Access(0, 2));
    EXPECT_EQ(cache.prefetch_hits(), 2u) << policy;
    EXPECT_EQ(cache.hits(), 2u) << policy;
  }
}

// --- End-to-end policy separation under a skewed workload.

// Physical disk units read per operation for one full application run
// under the given policy, on a Zipf(theta)-skewed population that
// exceeds the cache. The churn half of the mix (delete +
// rewrite-in-full) sweeps one-shot pages through the cache, so a
// policy that protects the re-referenced hot head from those sweeps
// fetches less from disk per unit of work. (Per-op, not raw: the
// better policy also completes more ops in the same measured window.)
double PhysicalReadsPerOpUnder(const char* policy, double zipf_theta) {
  workload::WorkloadSpec w;
  w.name = "zipf-cache";
  w.zipf_theta = zipf_theta;
  workload::FileTypeSpec files;
  files.name = "files";
  files.num_files = 300;
  files.num_users = 8;
  files.process_time_ms = 20;
  files.hit_frequency_ms = 20;
  files.rw_bytes_mean = KiB(8);
  files.extend_bytes_mean = KiB(8);
  files.truncate_bytes = KiB(8);
  files.initial_bytes_mean = KiB(64);
  files.initial_bytes_dev = KiB(16);
  files.read_ratio = 0.55;
  files.write_ratio = 0.15;
  files.extend_ratio = 0.20;
  files.delete_ratio = 0.5;
  files.access = workload::AccessPattern::kRandom;
  w.types.push_back(files);

  disk::DiskSystemConfig disk = disk::DiskSystemConfig::Array(2);
  for (auto& g : disk.disks) g.cylinders = 200;

  exp::ExperimentConfig config;
  config.seed = 7;
  config.fill_lower = 0.40;
  config.fill_upper = 0.60;
  config.warmup_ms = 5'000;
  config.min_measure_ms = 120'000;
  config.max_measure_ms = 240'000;
  config.sample_interval_ms = 10'000;
  config.stable_tolerance_pp = 5.0;
  config.obs.metrics = true;
  config.fs_options.cache_bytes = MiB(1);
  auto spec = ParseCachePolicySpec(policy);
  EXPECT_TRUE(spec.ok()) << policy;
  config.fs_options.cache_policy = *spec;

  exp::Experiment experiment(
      w,
      [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
        alloc::RestrictedBuddyConfig cfg;
        cfg.block_sizes_du = {1, 8, 64, 1024};
        return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du,
                                                                 cfg);
      },
      disk, config);
  auto perf = experiment.RunApplicationTest();
  EXPECT_TRUE(perf.ok()) << policy << ": " << perf.status().ToString();
  if (!perf.ok()) return 0;
  EXPECT_GT(perf->ops_executed, 1000u) << policy;
  for (const auto& [name, value] : perf->obs_metrics) {
    if (name == "fs.physical_read_du") {
      return value / static_cast<double>(perf->ops_executed);
    }
  }
  ADD_FAILURE() << "fs.physical_read_du metric missing under " << policy;
  return 0;
}

TEST(CachePolicyWorkloadTest, ArcBeatsLruOnZipfSkew) {
  const double lru = PhysicalReadsPerOpUnder("lru", 0.99);
  const double arc = PhysicalReadsPerOpUnder("arc", 0.99);
  ASSERT_GT(lru, 0.0);
  ASSERT_GT(arc, 0.0);
  // ARC's ghost lists learn the skew and keep the hot head resident
  // through the churn sweeps; plain recency cannot tell the head from
  // the sweep. Demand a real margin, not a tie.
  EXPECT_LT(arc, 0.97 * lru) << "arc=" << arc << " lru=" << lru;
}

// --- Write-back engine mechanics (policy-independent, run under LRU).

TEST(WriteBackTest, PopOldestDirtyCoalescesAdjacentPages) {
  BufferCache cache(8, 2);  // page_du = 2.
  cache.InstallDirty(6, 2);   // Page 3.
  cache.InstallDirty(8, 2);   // Page 4 — physically follows page 3.
  cache.InstallDirty(0, 2);   // Page 0.
  EXPECT_EQ(cache.dirty_pages(), 3u);
  uint64_t start = 0;
  uint64_t n = 0;
  ASSERT_TRUE(cache.PopOldestDirty(&start, &n));
  EXPECT_EQ(start, 6u);  // Pages 3+4 coalesce into one run.
  EXPECT_EQ(n, 4u);
  ASSERT_TRUE(cache.PopOldestDirty(&start, &n));
  EXPECT_EQ(start, 0u);
  EXPECT_EQ(n, 2u);
  EXPECT_FALSE(cache.PopOldestDirty(&start, &n));
  EXPECT_EQ(cache.dirty_pages(), 0u);
  EXPECT_EQ(cache.flushed_pages(), 3u);
  // The pages stay resident, just clean.
  EXPECT_TRUE(cache.Contains(6));
  EXPECT_TRUE(cache.Contains(0));
}

TEST(WriteBackTest, EvictingDirtyPageFlushesThroughCallback) {
  BufferCache cache(2, 1);
  std::vector<std::pair<uint64_t, uint64_t>> flushes;
  cache.set_flush_fn([&flushes](uint64_t start_du, uint64_t n_du) {
    flushes.emplace_back(start_du, n_du);
  });
  cache.InstallDirty(0, 1);
  cache.InstallDirty(1, 1);
  cache.Insert(2);  // Evicts dirty page 0.
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0], (std::pair<uint64_t, uint64_t>{0, 1}));
  EXPECT_EQ(cache.flushed_pages(), 1u);
  EXPECT_EQ(cache.dirty_pages(), 1u);
}

TEST(WriteBackTest, InvalidateDropsDirtyWithoutFlushing) {
  BufferCache cache(4, 1);
  std::vector<std::pair<uint64_t, uint64_t>> flushes;
  cache.set_flush_fn([&flushes](uint64_t start_du, uint64_t n_du) {
    flushes.emplace_back(start_du, n_du);
  });
  cache.InstallDirty(5, 1);
  EXPECT_EQ(cache.dirty_pages(), 1u);
  cache.InvalidateRange(5, 1);  // Freed space: the data just vanishes.
  EXPECT_EQ(cache.dirty_pages(), 0u);
  EXPECT_TRUE(flushes.empty());
  EXPECT_EQ(cache.flushed_pages(), 0u);
  uint64_t start = 0;
  uint64_t n = 0;
  EXPECT_FALSE(cache.PopOldestDirty(&start, &n));
}

}  // namespace
}  // namespace rofs::fs
