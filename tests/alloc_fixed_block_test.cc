#include "alloc/fixed_block_allocator.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rofs::alloc {
namespace {

TEST(FixedBlockTest, TrailingPartialBlockExcluded) {
  FixedBlockAllocator a(1003, 4);
  EXPECT_EQ(a.total_du(), 1000u);
  EXPECT_EQ(a.free_du(), 1000u);
}

TEST(FixedBlockTest, AllocationIsWholeBlocks) {
  FixedBlockAllocator a(1000, 4);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 5).ok());
  EXPECT_EQ(f.allocated_du, 8u);  // Two 4-unit blocks.
  EXPECT_EQ(f.extents.size(), 2u);
  for (const Extent& e : f.extents) EXPECT_EQ(e.length_du, 4u);
}

TEST(FixedBlockTest, FreshDiskAllocatesSequentially) {
  FixedBlockAllocator a(1000, 4);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 40).ok());
  for (size_t i = 0; i < f.extents.size(); ++i) {
    EXPECT_EQ(f.extents[i].start_du, i * 4);
  }
}

// The V7 aging behaviour: with no contiguity bias, interleaved growth of
// several files immediately scatters each file's logically sequential
// blocks across the disk.
TEST(FixedBlockTest, InterleavedGrowthScattersBlocks) {
  FixedBlockAllocator a(4000, 4);
  std::vector<FileAllocState> files(10);
  for (int round = 0; round < 20; ++round) {
    for (auto& f : files) ASSERT_TRUE(a.Extend(&f, 4).ok());
  }
  for (const auto& f : files) {
    int contiguous = 0;
    for (size_t i = 1; i < f.extents.size(); ++i) {
      contiguous += f.extents[i].start_du == f.extents[i - 1].end_du();
    }
    // Blocks of the same file are 10 blocks apart: never contiguous.
    EXPECT_EQ(contiguous, 0);
  }
}

// And once the free list has been churned, even a single file allocated
// alone gets non-sequential blocks.
TEST(FixedBlockTest, ChurnedFreeListYieldsNonSequentialBlocks) {
  FixedBlockAllocator a(400, 4);
  std::vector<FileAllocState> files(10);
  // Exhaust the disk with interleaved growth.
  for (int round = 0; round < 10; ++round) {
    for (auto& f : files) ASSERT_TRUE(a.Extend(&f, 4).ok());
  }
  EXPECT_EQ(a.free_du(), 0u);
  // Free every other file: the free list now interleaves their blocks.
  for (size_t i = 0; i < files.size(); i += 2) a.DeleteFile(&files[i]);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 100).ok());
  int contiguous = 0;
  for (size_t i = 1; i < f.extents.size(); ++i) {
    contiguous += f.extents[i].start_du == f.extents[i - 1].end_du();
  }
  EXPECT_LT(contiguous, static_cast<int>(f.extents.size()) / 2);
}

TEST(FixedBlockTest, FreeListFifoReusesOldestFreedBlock) {
  FixedBlockAllocator a(100, 4);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 100).ok());
  EXPECT_EQ(a.free_du(), 0u);
  // Free one block; the next allocation must reuse it (FIFO free list).
  a.TruncateTail(&f, 4);  // Frees the *last* block (at 96).
  FileAllocState g;
  ASSERT_TRUE(a.Extend(&g, 4).ok());
  EXPECT_EQ(g.extents[0].start_du, 96u);  // The block just freed.
}

TEST(FixedBlockTest, TruncateRoundsToWholeBlocks) {
  FixedBlockAllocator a(1000, 4);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 40).ok());
  const uint64_t freed = a.TruncateTail(&f, 6);
  EXPECT_EQ(freed, 4u);  // Only whole blocks can be freed.
  EXPECT_EQ(f.allocated_du, 36u);
}

TEST(FixedBlockTest, ExhaustionAndRecovery) {
  FixedBlockAllocator a(40, 4);
  FileAllocState f;
  ASSERT_TRUE(a.Extend(&f, 40).ok());
  FileAllocState g;
  EXPECT_TRUE(a.Extend(&g, 4).IsResourceExhausted());
  a.DeleteFile(&f);
  EXPECT_TRUE(a.Extend(&g, 4).ok());
  EXPECT_EQ(a.CheckConsistency(), a.free_du());
}

TEST(FixedBlockTest, ConsistencyUnderChurn) {
  FixedBlockAllocator a(2000, 4);
  Rng rng(29);
  std::vector<FileAllocState> files(20);
  for (int step = 0; step < 2000; ++step) {
    FileAllocState& f = files[rng.UniformInt(0, files.size() - 1)];
    const double u = rng.NextDouble();
    if (u < 0.5) {
      (void)a.Extend(&f, rng.UniformInt(1, 50));
    } else if (u < 0.8) {
      a.TruncateTail(&f, rng.UniformInt(1, 40));
    } else {
      a.DeleteFile(&f);
    }
  }
  EXPECT_EQ(a.CheckConsistency(), a.free_du());
  uint64_t used = 0;
  for (const auto& f : files) used += f.allocated_du;
  EXPECT_EQ(used + a.free_du(), a.total_du());
}

}  // namespace
}  // namespace rofs::alloc
