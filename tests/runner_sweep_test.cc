#include "runner/sweep_runner.h"

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/table.h"

namespace rofs::runner {
namespace {

/// A miniature "simulation": draws from the run's private RNG stream and
/// sleeps a stream-dependent amount so parallel completion order differs
/// from submission order.
RunSpec MakeRngSpec(uint64_t base_seed, uint64_t stream,
                    const std::string& label) {
  RunSpec spec;
  spec.label = label;
  spec.base_seed = base_seed;
  spec.stream = stream;
  spec.run = [](const RunContext& ctx)
      -> StatusOr<std::vector<std::string>> {
    Rng rng(ctx.seed);
    const uint64_t a = rng.Next();
    std::this_thread::sleep_for(std::chrono::microseconds(a % 2000));
    const double b = rng.NextDouble();
    return std::vector<std::string>{FormatString("%llu",
                                                 static_cast<unsigned long long>(a)),
                                    FormatString("%.17g", b)};
  };
  return spec;
}

std::vector<RunSpec> MakeGrid(size_t n) {
  std::vector<RunSpec> specs;
  for (size_t i = 0; i < n; ++i) {
    specs.push_back(MakeRngSpec(/*base_seed=*/42, /*stream=*/i,
                                FormatString("cell-%zu", i)));
  }
  return specs;
}

TEST(SweepRunnerTest, Jobs1AndJobs8ProduceIdenticalResults) {
  const std::vector<RunSpec> specs = MakeGrid(32);

  SweepOptions serial;
  serial.jobs = 1;
  std::vector<RunResult> r1 = SweepRunner(serial).Run(specs);

  SweepOptions parallel;
  parallel.jobs = 8;
  std::vector<RunResult> r8 = SweepRunner(parallel).Run(specs);

  ASSERT_EQ(r1.size(), specs.size());
  ASSERT_EQ(r8.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(r1[i].status.ok());
    EXPECT_TRUE(r8[i].status.ok());
    EXPECT_EQ(r1[i].index, i);
    EXPECT_EQ(r8[i].index, i);
    EXPECT_EQ(r1[i].label, r8[i].label);
    // The payload — every formatted digit — must match bit for bit.
    EXPECT_EQ(r1[i].cells, r8[i].cells) << "row " << i;
  }
}

TEST(SweepRunnerTest, ResultsArriveInSubmissionOrder) {
  SweepOptions options;
  options.jobs = 8;
  std::vector<RunResult> results = SweepRunner(options).Run(MakeGrid(16));
  ASSERT_EQ(results.size(), 16u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, FormatString("cell-%zu", i));
  }
}

TEST(SweepRunnerTest, StreamsGetDistinctSeeds) {
  // Stream 0 is the base stream; others must all differ.
  EXPECT_EQ(SplitSeed(42, 0), 42u);
  std::vector<uint64_t> seen;
  for (uint64_t s = 0; s < 100; ++s) {
    const uint64_t seed = SplitSeed(42, s);
    for (uint64_t prior : seen) EXPECT_NE(seed, prior) << "stream " << s;
    seen.push_back(seed);
  }
}

TEST(SweepRunnerTest, ExceptionBecomesInternalStatus) {
  std::vector<RunSpec> specs = MakeGrid(3);
  specs[1].run = [](const RunContext&)
      -> StatusOr<std::vector<std::string>> {
    throw std::runtime_error("boom");
  };
  SweepOptions options;
  options.jobs = 4;
  std::vector<RunResult> results = SweepRunner(options).Run(specs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInternal);
  EXPECT_NE(results[1].status.message().find("boom"), std::string::npos);
  EXPECT_TRUE(results[2].status.ok());  // The sweep survives the throw.
}

TEST(SweepRunnerTest, ErrorStatusIsReportedNotFatal) {
  std::vector<RunSpec> specs = MakeGrid(2);
  specs[0].run = [](const RunContext&)
      -> StatusOr<std::vector<std::string>> {
    return Status::ResourceExhausted("disk full");
  };
  std::vector<RunResult> results = SweepRunner().Run(specs);
  EXPECT_TRUE(results[0].status.IsResourceExhausted());
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_TRUE(results[1].status.ok());
}

TEST(SweepRunnerTest, RetriesFailedRunsUpToMaxAttempts) {
  RunSpec spec;
  spec.label = "flaky";
  spec.run = [](const RunContext& ctx)
      -> StatusOr<std::vector<std::string>> {
    if (ctx.attempt < 3) return Status::Internal("transient");
    return std::vector<std::string>{"ok on attempt 3"};
  };
  SweepOptions options;
  options.jobs = 2;
  options.max_attempts = 3;
  std::vector<RunResult> results = SweepRunner(options).Run({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_EQ(results[0].cells,
            std::vector<std::string>{"ok on attempt 3"});
}

TEST(SweepRunnerTest, ExhaustedRetriesKeepLastError) {
  RunSpec spec;
  spec.label = "always-fails";
  spec.run = [](const RunContext&)
      -> StatusOr<std::vector<std::string>> {
    return Status::Internal("permanent");
  };
  SweepOptions options;
  options.max_attempts = 2;
  std::vector<RunResult> results = SweepRunner(options).Run({spec});
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_EQ(results[0].attempts, 2);
}

TEST(SweepRunnerTest, SlowRunIsMarkedDeadlineExceeded) {
  std::vector<RunSpec> specs;
  {
    RunSpec slow;
    slow.label = "slow";
    slow.run = [](const RunContext&)
        -> StatusOr<std::vector<std::string>> {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      return std::vector<std::string>{"too late"};
    };
    specs.push_back(std::move(slow));
  }
  specs.push_back(MakeRngSpec(1, 1, "fast"));
  SweepOptions options;
  options.jobs = 2;
  options.timeout_ms = 50;
  std::vector<RunResult> results = SweepRunner(options).Run(specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.IsDeadlineExceeded());
  EXPECT_TRUE(results[0].cells.empty());  // Late payload discarded.
  EXPECT_TRUE(results[1].status.ok());
}

TEST(SweepRunnerTest, ProgressFiresOncePerRunInOrder) {
  std::vector<size_t> done_counts;
  std::vector<size_t> indices;
  SweepOptions options;
  options.jobs = 4;
  options.progress = [&](const RunResult& r, size_t done, size_t total) {
    done_counts.push_back(done);
    indices.push_back(r.index);
    EXPECT_EQ(total, 10u);
  };
  SweepRunner(options).Run(MakeGrid(10));
  ASSERT_EQ(done_counts.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(done_counts[i], i + 1);
    EXPECT_EQ(indices[i], i);
  }
}

TEST(SweepRunnerTest, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(SweepRunner::ResolveJobs(3), 3);
  EXPECT_GE(SweepRunner::ResolveJobs(0), 1);
  EXPECT_GE(SweepRunner::ResolveJobs(-5), 1);
}

TEST(SweepRunnerTest, ResolveReplicatesPrefersExplicitRequest) {
  EXPECT_EQ(SweepRunner::ResolveReplicates(4), 4);
  EXPECT_GE(SweepRunner::ResolveReplicates(0), 1);
  EXPECT_GE(SweepRunner::ResolveReplicates(-2), 1);
}

TEST(SweepRunnerTest, ExpandReplicatesIsCellMajorOverStreams) {
  std::vector<RunSpec> specs;
  for (int c = 0; c < 2; ++c) {
    RunSpec spec;
    spec.label = FormatString("cell%d", c);
    spec.base_seed = 100 + c;
    spec.run = [](const RunContext&) -> StatusOr<std::vector<std::string>> {
      return std::vector<std::string>{};
    };
    specs.push_back(std::move(spec));
  }

  const auto expanded = SweepRunner::ExpandReplicates(specs, 3);
  ASSERT_EQ(expanded.size(), 6u);
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < 3; ++r) {
      const RunSpec& e = expanded[c * 3 + r];
      EXPECT_EQ(e.base_seed, 100u + c);
      EXPECT_EQ(e.stream, static_cast<uint64_t>(r));
      if (r == 0) {
        EXPECT_EQ(e.label, specs[c].label);
      } else {
        EXPECT_EQ(e.label, specs[c].label + FormatString(" [r%d]", r));
      }
    }
  }
}

TEST(SweepRunnerTest, ExpandReplicatesOneIsIdentity) {
  const std::vector<RunSpec> grid = MakeGrid(3);
  const auto expanded = SweepRunner::ExpandReplicates(MakeGrid(3), 1);
  ASSERT_EQ(expanded.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(expanded[i].label, grid[i].label);
    EXPECT_EQ(expanded[i].base_seed, grid[i].base_seed);
    EXPECT_EQ(expanded[i].stream, grid[i].stream);
  }
}

TEST(SweepRunnerTest, ReplicatedSweepIsByteIdenticalAcrossJobCounts) {
  // Replicates draw distinct seeds; stream 0 reproduces the base seed.
  auto run_all = [](int jobs) {
    SweepOptions options;
    options.jobs = jobs;
    std::vector<RunSpec> grid = MakeGrid(4);
    std::string out;
    for (const RunResult& r :
         SweepRunner(options).Run(SweepRunner::ExpandReplicates(grid, 3))) {
      for (const std::string& cell : r.cells) out += cell + "|";
      out += "\n";
    }
    return out;
  };
  const std::string serial = run_all(1);
  EXPECT_EQ(serial, run_all(8));

  // Within one cell, different replicates saw different seeds.
  SweepOptions options;
  options.jobs = 2;
  const auto results =
      SweepRunner(options).Run(SweepRunner::ExpandReplicates(MakeGrid(1), 2));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].cells, results[1].cells);
}

}  // namespace
}  // namespace rofs::runner
