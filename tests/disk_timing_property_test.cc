// Property tests for the disk timing model: bounds, monotonicity, FCFS
// ordering, and busy-time accounting under random request streams.

#include <gtest/gtest.h>

#include "disk/disk_model.h"
#include "disk/disk_system.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs::disk {
namespace {

TEST(DiskTimingPropertyTest, ServiceTimeBounds) {
  const DiskGeometry g = CdcWrenIV();
  Disk d(g);
  Rng rng(1);
  sim::TimeMs prev_completion = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t len = rng.UniformInt(1, 64) * KiB(1);
    const uint64_t offset =
        rng.UniformInt(0, (g.capacity_bytes() - len) / 512) * 512;
    const sim::TimeMs arrival = prev_completion;  // Closed loop.
    const sim::TimeMs done = d.Access(arrival, offset, len);
    const double service = done - arrival;
    // Lower bound: the media transfer itself.
    ASSERT_GE(service, g.TransferTime(len) - 1e-9);
    // Upper bound: worst seek + full rotation + transfer + per-cylinder
    // track re-seeks.
    const double crossings =
        static_cast<double>(len / g.cylinder_bytes() + 2);
    ASSERT_LE(service, g.SeekTime(g.cylinders) + g.rotation_ms +
                           g.TransferTime(len) +
                           crossings * g.SeekTime(1) + 1e-9);
    ASSERT_GE(done, prev_completion);
    prev_completion = done;
  }
}

TEST(DiskTimingPropertyTest, CompletionsMonotoneUnderFcfs) {
  Disk d(CdcWrenIV());
  Rng rng(2);
  sim::TimeMs arrival = 0.0;
  sim::TimeMs last_done = 0.0;
  for (int i = 0; i < 2000; ++i) {
    arrival += rng.Exponential(3.0);
    const uint64_t offset = rng.UniformInt(0, 100'000) * KiB(1);
    const sim::TimeMs done = d.Access(arrival, offset, KiB(8));
    // FCFS: a later-arriving request can never complete before an
    // earlier one.
    ASSERT_GE(done, last_done);
    ASSERT_GE(done, arrival);
    last_done = done;
  }
}

TEST(DiskTimingPropertyTest, BusyTimeNeverExceedsWallClock) {
  Disk d(CdcWrenIV());
  Rng rng(3);
  sim::TimeMs arrival = 0.0;
  sim::TimeMs done = 0.0;
  for (int i = 0; i < 2000; ++i) {
    arrival += rng.Exponential(10.0);
    const uint64_t offset = rng.UniformInt(0, 300'000) * KiB(1);
    done = d.Access(arrival, offset, KiB(rng.UniformInt(1, 48)));
  }
  EXPECT_LE(d.busy_time_ms(), done + 1e-6);
  EXPECT_GT(d.Utilization(done), 0.0);
  EXPECT_LE(d.Utilization(done), 1.0 + 1e-9);
}

TEST(DiskTimingPropertyTest, CloserRequestsAreNeverSlowerOnAverage) {
  // Seek affinity: many short-distance accesses must cost less in total
  // than the same accesses spread across the whole disk.
  const DiskGeometry g = CdcWrenIV();
  Disk near(g);
  Disk far(g);
  Rng rng_near(4), rng_far(4);
  sim::TimeMs t_near = 0, t_far = 0;
  const uint64_t cyl = g.cylinder_bytes();
  for (int i = 0; i < 500; ++i) {
    t_near = near.Access(t_near, (rng_near.UniformInt(0, 9)) * cyl, KiB(8));
    t_far = far.Access(t_far, (rng_far.UniformInt(0, 1500)) * cyl, KiB(8));
  }
  EXPECT_LT(t_near, t_far);
}

TEST(DiskTimingPropertyTest, SystemCompletionIsMaxOfSubRequests) {
  DiskSystem sys(DiskSystemConfig::Array(8));
  Rng rng(5);
  sim::TimeMs arrival = 0.0;
  for (int i = 0; i < 500; ++i) {
    arrival += rng.Exponential(20.0);
    const uint64_t n = rng.UniformInt(1, 2048);
    const uint64_t start = rng.UniformInt(0, sys.capacity_du() - n - 1);
    const sim::TimeMs done = sys.Read(arrival, start, n);
    sim::TimeMs max_busy = 0;
    for (uint32_t d = 0; d < sys.num_disks(); ++d) {
      max_busy = std::max(max_busy, sys.disk(d).busy_until());
    }
    // The request completes exactly when its slowest sub-request does,
    // which is bounded by the busiest disk.
    ASSERT_LE(done, max_busy + 1e-9);
    ASSERT_GE(done, arrival);
  }
}

TEST(DiskTimingPropertyTest, ThroughputScalesWithArraySize) {
  double prev_rate = 0.0;
  for (uint32_t disks : {1u, 2u, 4u, 8u}) {
    DiskSystem sys(DiskSystemConfig::Array(disks));
    const uint64_t n = sys.capacity_du() / 2;
    const sim::TimeMs done = sys.Read(0.0, 0, n);
    const double rate = static_cast<double>(n) / done;
    EXPECT_GT(rate, prev_rate * 1.8) << disks << " disks";
    prev_rate = rate;
  }
}

TEST(DiskTimingPropertyTest, WriteAndReadCostTheSameOnStriped) {
  // No write-back caching is modeled: a raw write equals a raw read.
  DiskSystem a(DiskSystemConfig::Array(8));
  DiskSystem b(DiskSystemConfig::Array(8));
  Rng rng(6);
  sim::TimeMs ta = 0, tb = 0;
  for (int i = 0; i < 200; ++i) {
    const uint64_t n = rng.UniformInt(1, 512);
    const uint64_t start = rng.UniformInt(0, a.capacity_du() - n - 1);
    ta = a.Read(ta, start, n);
    tb = b.Write(tb, start, n);
  }
  EXPECT_DOUBLE_EQ(ta, tb);
}

}  // namespace
}  // namespace rofs::disk
