#include "stats/summary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/chi_squared.h"
#include "stats/student_t.h"
#include "stats/welford.h"

namespace rofs::stats {
namespace {

TEST(Welford, MatchesClosedFormMeanAndSampleVariance) {
  // Textbook set: mean 5, sample variance 32/7.
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  Welford w;
  for (double x : xs) w.Add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(w.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
}

TEST(Welford, EmptyAndSingleton) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.variance(), 0.0);
  w.Add(3.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_EQ(w.variance(), 0.0);  // Sample variance undefined; reported 0.
}

TEST(Welford, MergeEqualsSequential) {
  const std::vector<double> xs = {0.1, -2.5, 3.75, 10, 1e6, -7, 0.25, 42};
  Welford all;
  for (double x : xs) all.Add(x);

  Welford left, right;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9 * std::abs(all.mean()));
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9 * all.variance());
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(StudentT, CdfBasics) {
  // Symmetric around zero; CDF(0) = 1/2 for any dof.
  EXPECT_NEAR(StudentTCdf(0.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(0.0, 30), 0.5, 1e-12);
  // dof=1 is the Cauchy distribution: CDF(1) = 3/4.
  EXPECT_NEAR(StudentTCdf(1.0, 1), 0.75, 1e-9);
  EXPECT_NEAR(StudentTCdf(-1.0, 1), 0.25, 1e-9);
}

TEST(StudentT, CriticalValuesMatchTables) {
  // Standard two-sided 95% critical values.
  EXPECT_NEAR(StudentTCriticalValue(1, 0.95), 12.706, 5e-3);
  EXPECT_NEAR(StudentTCriticalValue(2, 0.95), 4.303, 5e-3);
  EXPECT_NEAR(StudentTCriticalValue(4, 0.95), 2.776, 5e-3);
  EXPECT_NEAR(StudentTCriticalValue(9, 0.95), 2.262, 5e-3);
  EXPECT_NEAR(StudentTCriticalValue(29, 0.95), 2.045, 5e-3);
  // 99% two-sided.
  EXPECT_NEAR(StudentTCriticalValue(9, 0.99), 3.250, 5e-3);
  // Large dof converges to the normal quantile 1.96.
  EXPECT_NEAR(StudentTCriticalValue(1000, 0.95), 1.962, 5e-3);
}

TEST(Summary, CiHalfWidthFormula) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = Summarize(xs, 0.95);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  const double expected =
      StudentTCriticalValue(7, 0.95) * std::sqrt(32.0 / 7.0 / 8.0);
  EXPECT_NEAR(s.ci_half_width, expected, 1e-9);
  // The interval brackets the mean the data was drawn around.
  EXPECT_LT(s.mean - s.ci_half_width, 5.0 + 1e-12);
  EXPECT_GT(s.mean + s.ci_half_width, 5.0 - 1e-12);
}

TEST(Summary, SingleSampleHasZeroHalfWidth) {
  const Summary s = Summarize(std::vector<double>{7.25});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.25);
  EXPECT_EQ(s.ci_half_width, 0.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 17.5);
}

TEST(MetricSet, AggregatesAcrossReplicates) {
  MetricSet set;
  set.AddAll({{"a", 1.0}, {"b", 10.0}});
  set.AddAll({{"a", 3.0}, {"b", 10.0}});
  const auto summaries = set.Summarize(0.95);
  ASSERT_EQ(summaries.count("a"), 1u);
  ASSERT_EQ(summaries.count("b"), 1u);
  EXPECT_DOUBLE_EQ(summaries.at("a").mean, 2.0);
  EXPECT_EQ(summaries.at("a").count, 2u);
  EXPECT_DOUBLE_EQ(summaries.at("b").mean, 10.0);
  EXPECT_EQ(summaries.at("b").ci_half_width, 0.0);  // Zero variance.
}

TEST(ChiSquared, MatchesClosedFormsAndTables) {
  // dof = 2 is exponential: cdf(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquaredCdf(2.0, 2), 1.0 - std::exp(-1.0), 1e-12);
  // dof = 1 is a squared standard normal: cdf(1) = erf(1/sqrt(2)).
  EXPECT_NEAR(ChiSquaredCdf(1.0, 1), 0.6826894921370859, 1e-12);
  // Classic table 95th percentiles.
  EXPECT_NEAR(ChiSquaredCdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(11.070, 5), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquaredCdf(30.144, 19), 0.95, 1e-3);
  // Edges and monotonicity.
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 4), 0.0);
  double prev = 0.0;
  for (double x = 0.5; x < 40.0; x += 0.5) {
    const double cdf = ChiSquaredCdf(x, 7);
    EXPECT_GE(cdf, prev);
    prev = cdf;
  }
  EXPECT_GT(ChiSquaredCdf(100.0, 7), 0.999999);
}

TEST(ChiSquared, RegularizedLowerGammaSpansTheSeriesSplit) {
  // The implementation switches from series to continued fraction at
  // x = a + 1; the function must be continuous across the seam.
  const double a = 9.5;
  const double below = RegularizedLowerGamma(a, a + 1.0 - 1e-9);
  const double above = RegularizedLowerGamma(a, a + 1.0 + 1e-9);
  EXPECT_NEAR(below, above, 1e-8);
  EXPECT_DOUBLE_EQ(RegularizedLowerGamma(3.0, 0.0), 0.0);
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(RegularizedLowerGamma(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
}

}  // namespace
}  // namespace rofs::stats
