#include "obs/timeseries.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/restricted_buddy.h"
#include "exp/experiment.h"
#include "exp/run_record.h"
#include "stats/steady.h"
#include "util/units.h"

namespace rofs {
namespace {

TEST(WindowSeriesTest, AppendAndLookup) {
  obs::WindowSeries s;
  s.AddColumn("ops");
  s.AddColumn("hits");
  s.Reserve(4);
  EXPECT_TRUE(s.empty());

  const double r0[] = {10.0, 3.0};
  const double r1[] = {12.0, 5.0};
  s.Append(100.0, r0);
  s.Append(200.0, r1);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.column_name(1), "hits");
  ASSERT_NE(s.Find("ops"), nullptr);
  EXPECT_DOUBLE_EQ((*s.Find("ops"))[1], 12.0);
  EXPECT_EQ(s.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(s.times()[0], 100.0);

  s.PrefixColumns("app.");
  EXPECT_EQ(s.column_name(0), "app.ops");
  EXPECT_NE(s.Find("app.hits"), nullptr);
}

TEST(SteadyDetectTest, FlatSeriesIsSteadyImmediately) {
  std::vector<double> flat(16, 100.0);
  // Identical blocks: zero-width CIs that trivially overlap.
  EXPECT_EQ(stats::DetectSteadyWindow(flat, 4), 0);
}

TEST(SteadyDetectTest, RampThenFlatDetectsTheKnee) {
  // Ramp 10..80 over 8 windows, then flat with tiny jitter. Block
  // length 6: long enough that a block straddling the ramp separates
  // from the flat one (with k <= 4 a linear ramp's within-block spread
  // grows with its slope, so adjacent CIs always just barely overlap).
  std::vector<double> v;
  for (int i = 0; i < 8; ++i) v.push_back(10.0 * (i + 1));
  for (int i = 0; i < 12; ++i) v.push_back(100.0 + (i % 2 ? 0.5 : -0.5));
  const int onset = stats::DetectSteadyWindow(v, 6);
  ASSERT_GE(onset, 0);
  // The detector cannot fire while the leading block is mostly ramp.
  EXPECT_GE(onset, 3);
  EXPECT_LE(onset, 8);
}

TEST(SteadyDetectTest, MonotoneRampNeverSettles) {
  std::vector<double> ramp;
  for (int i = 0; i < 24; ++i) ramp.push_back(10.0 * i);
  EXPECT_EQ(stats::DetectSteadyWindow(ramp, 6), -1);
}

TEST(SteadyDetectTest, ShortSeriesAndSmallBlocksAreRejected) {
  std::vector<double> v(3, 1.0);
  EXPECT_EQ(stats::DetectSteadyWindow(v, 2), -1);   // n < 2k.
  EXPECT_EQ(stats::DetectSteadyWindow(v, 1), -1);   // k < 2.
  EXPECT_EQ(stats::SteadyBlockLength(4), 2u);
  EXPECT_EQ(stats::SteadyBlockLength(20), 5u);
  EXPECT_EQ(stats::SteadyBlockLength(1000), 8u);
}

TEST(SteadyDetectTest, NoisyStationarySeriesSettles) {
  // Deterministic bounded noise around a constant level.
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) {
    v.push_back(50.0 + ((i * 7919) % 11) - 5.0);
  }
  EXPECT_GE(stats::DetectSteadyWindow(v, 5), 0);
}

exp::ExperimentConfig WindowedConfig(double window_ms) {
  exp::ExperimentConfig cfg;
  cfg.sample_interval_ms = 2'000;
  cfg.warmup_ms = 2'000;
  cfg.min_measure_ms = 6'000;
  cfg.max_measure_ms = 20'000;
  cfg.stable_tolerance_pp = 1.0;
  cfg.obs.metrics = true;
  cfg.obs.window_ms = window_ms;
  return cfg;
}

exp::Experiment MakeTinyExperiment(const exp::ExperimentConfig& cfg,
                                   int sim_threads) {
  disk::DiskSystemConfig disk = disk::DiskSystemConfig::Array(2);
  for (auto& g : disk.disks) g.cylinders = 200;

  workload::WorkloadSpec w;
  w.name = "tiny";
  workload::FileTypeSpec t;
  t.name = "small";
  t.num_files = 200;
  t.num_users = 6;
  t.process_time_ms = 20;
  t.hit_frequency_ms = 20;
  t.rw_bytes_mean = KiB(8);
  t.extend_bytes_mean = KiB(8);
  t.truncate_bytes = KiB(8);
  t.initial_bytes_mean = KiB(64);
  t.initial_bytes_dev = KiB(16);
  t.read_ratio = 0.6;
  t.write_ratio = 0.2;
  t.extend_ratio = 0.15;
  t.delete_ratio = 0.5;
  w.types.push_back(t);

  exp::ExperimentConfig threaded = cfg;
  threaded.engine.threads = sim_threads;
  return exp::Experiment(
      w,
      [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
        alloc::RestrictedBuddyConfig rb;
        rb.block_sizes_du = {1, 8, 64, 1024};
        return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du,
                                                                 rb);
      },
      disk, threaded);
}

TEST(WindowedMetricsTest, MeasurementProducesConsistentWindows) {
  exp::Experiment e = MakeTinyExperiment(WindowedConfig(1'000), 0);
  auto result = e.RunApplicationTest();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const obs::WindowSeries& s = result->series;
  ASSERT_FALSE(s.empty());
  // One row per elapsed window of the measurement phase.
  EXPECT_NEAR(static_cast<double>(s.rows()), result->measured_ms / 1'000,
              1.0);
  const std::vector<double>* ops = s.Find("ops");
  ASSERT_NE(ops, nullptr);
  // Window deltas of the op counter must sum to the ops measured.
  double total = 0;
  for (double v : *ops) total += v;
  EXPECT_LE(total, static_cast<double>(result->ops_executed));
  EXPECT_GT(total, 0.0);
  // Window end times are evenly spaced by window_ms.
  for (size_t i = 1; i < s.rows(); ++i) {
    EXPECT_NEAR(s.times()[i] - s.times()[i - 1], 1'000, 1e-9);
  }
  // The steady-state verdict is stamped as a metric.
  bool found = false;
  for (const auto& [name, value] : result->obs_metrics) {
    if (name == "steady.window") {
      found = true;
      EXPECT_GE(value, -1.0);
      EXPECT_LT(value, static_cast<double>(s.rows()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(WindowedMetricsTest, SeriesIdenticalAcrossSimThreads) {
  exp::Experiment e1 = MakeTinyExperiment(WindowedConfig(1'000), 1);
  exp::Experiment e8 = MakeTinyExperiment(WindowedConfig(1'000), 8);
  auto r1 = e1.RunApplicationTest();
  auto r8 = e8.RunApplicationTest();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r8.ok()) << r8.status().ToString();

  exp::RunRecord a = r1->ToRecord();
  exp::RunRecord b = r8->ToRecord();
  // Byte-identical serialized records, series included.
  EXPECT_EQ(a.ToJson(), b.ToJson());
  ASSERT_EQ(r1->series.rows(), r8->series.rows());
  ASSERT_GT(r1->series.rows(), 0u);
}

TEST(WindowedMetricsTest, SeriesRidesIntoRecordJsonAndCsv) {
  exp::Experiment e = MakeTinyExperiment(WindowedConfig(2'000), 0);
  auto result = e.RunApplicationTest();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  exp::RunRecord r = result->ToRecord();
  r.experiment = "test";
  r.cell = "cell";
  EXPECT_NE(r.ToJson().find("\"series\":{\"t_ms\":["), std::string::npos);

  const std::string csv = exp::SeriesToCsv({r});
  EXPECT_NE(csv.find("experiment,cell,replicate,seed,t_ms,"), std::string::npos);
  // One line per window plus the header.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, r.series.rows() + 1);

  // Without a window the record serializes with no series key at all.
  exp::ExperimentConfig cfg = WindowedConfig(0);
  cfg.obs.window_ms = 0;
  exp::Experiment plain = MakeTinyExperiment(cfg, 0);
  auto plain_result = plain.RunApplicationTest();
  ASSERT_TRUE(plain_result.ok());
  EXPECT_EQ(plain_result->ToRecord().ToJson().find("\"series\""),
            std::string::npos);
}

}  // namespace
}  // namespace rofs
