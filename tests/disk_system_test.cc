#include "disk/disk_system.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace rofs::disk {
namespace {

DiskSystemConfig DefaultConfig(LayoutKind layout = LayoutKind::kStriped) {
  DiskSystemConfig cfg = DiskSystemConfig::Array(8);
  cfg.layout = layout;
  return cfg;
}

TEST(DiskSystemTest, PaperCapacityAndBandwidth) {
  DiskSystem sys(DefaultConfig());
  // 8 * 1600 * 9 * 24K = 2.64 GiB (~2.8 GB decimal, paper Table 1).
  EXPECT_EQ(sys.capacity_bytes(), 8ull * 1600 * 9 * 24 * 1024);
  EXPECT_EQ(sys.capacity_du(), sys.capacity_bytes() / KiB(1));
  const double mb_per_s =
      sys.MaxSequentialBandwidthBytesPerMs() * 1000.0 / 1e6;
  EXPECT_NEAR(mb_per_s, 10.8, 0.7);  // Paper: 10.8 MB/sec.
}

TEST(DiskSystemTest, StripedReadUsesParallelism) {
  DiskSystem sys(DefaultConfig());
  // 192K spanning all 8 disks (24K stripe unit) should take roughly the
  // time of one 24K access, not eight.
  const sim::TimeMs wide = sys.Read(0.0, 0, 192);
  DiskSystem sys2(DefaultConfig());
  const sim::TimeMs narrow = sys2.Read(0.0, 0, 24);
  EXPECT_LT(wide, narrow * 2.5);
  EXPECT_EQ(sys.logical_bytes_read(), 192 * KiB(1));
}

TEST(DiskSystemTest, SameDiskRequestsSerialize) {
  DiskSystem sys(DefaultConfig());
  // Two requests inside the same stripe chunk (disk 0).
  const sim::TimeMs t1 = sys.Read(0.0, 0, 8);
  const sim::TimeMs t2 = sys.Read(0.0, 8, 8);
  EXPECT_GT(t2, t1);
}

TEST(DiskSystemTest, DifferentDiskRequestsOverlap) {
  DiskSystem sys(DefaultConfig());
  const sim::TimeMs t1 = sys.Read(0.0, 0, 8);    // Disk 0.
  const sim::TimeMs t2 = sys.Read(0.0, 24, 8);   // Disk 1.
  // Both start immediately; completion times are near-identical.
  EXPECT_NEAR(t1, t2, 1.0);
}

TEST(DiskSystemTest, WholeDiskScanApproachesMaxBandwidth) {
  DiskSystem sys(DefaultConfig());
  const uint64_t n = sys.capacity_du() / 4;
  const sim::TimeMs done = sys.Read(0.0, 0, n);
  const double rate = static_cast<double>(n * KiB(1)) / done;
  EXPECT_GT(rate / sys.MaxSequentialBandwidthBytesPerMs(), 0.9);
}

TEST(DiskSystemTest, MirroredWriteCostsMoreThanRead) {
  DiskSystemConfig cfg = DefaultConfig(LayoutKind::kMirrored);
  DiskSystem sys(cfg);
  const sim::TimeMs r = sys.Read(0.0, 0, 24);
  DiskSystem sys2(cfg);
  const sim::TimeMs w = sys2.Write(0.0, 0, 24);
  EXPECT_GE(w, r);
  // Mirrored write moves twice the physical bytes.
  EXPECT_EQ(sys2.physical_bytes(), 2 * 24 * KiB(1));
}

TEST(DiskSystemTest, MirroredReadPicksIdleReplica) {
  DiskSystemConfig cfg = DefaultConfig(LayoutKind::kMirrored);
  DiskSystem sys(cfg);
  // Two concurrent reads of the same chunk: the second should be served by
  // the mirror, so both finish at about the same time.
  const sim::TimeMs t1 = sys.Read(0.0, 0, 24);
  const sim::TimeMs t2 = sys.Read(0.0, 0, 24);
  EXPECT_NEAR(t1, t2, 1e-9);
}

TEST(DiskSystemTest, Raid5SmallWritePenalty) {
  DiskSystemConfig cfg = DefaultConfig(LayoutKind::kRaid5);
  DiskSystem striped_cfg_sys(DefaultConfig());
  const sim::TimeMs striped_write = striped_cfg_sys.Write(0.0, 0, 8);
  DiskSystem raid5(cfg);
  const sim::TimeMs raid5_write = raid5.Write(0.0, 0, 8);
  // Read-modify-write makes the small write strictly slower than RAID0.
  EXPECT_GT(raid5_write, striped_write);
}

TEST(DiskSystemTest, StatsResetClearsCounters) {
  DiskSystem sys(DefaultConfig());
  sys.Read(0.0, 0, 100);
  sys.Write(0.0, 200, 50);
  EXPECT_GT(sys.logical_bytes_read(), 0u);
  EXPECT_GT(sys.logical_bytes_written(), 0u);
  EXPECT_GT(sys.physical_bytes(), 0u);
  sys.ResetStats();
  EXPECT_EQ(sys.logical_bytes_read(), 0u);
  EXPECT_EQ(sys.logical_bytes_written(), 0u);
  EXPECT_EQ(sys.physical_bytes(), 0u);
}

TEST(DiskSystemTest, HeterogeneousArrayLevelsToSmallestDrive) {
  DiskSystemConfig cfg;
  DiskGeometry big = CdcWrenIV();
  DiskGeometry small = CdcWrenIV();
  small.cylinders = 800;
  cfg.disks = {big, small, big, small};
  DiskSystem sys(cfg);
  // Each drive contributes the smallest drive's capacity.
  const uint64_t small_du = small.capacity_bytes() / KiB(1);
  EXPECT_EQ(sys.capacity_du(), small_du / 24 * 24 * 4);
}

TEST(DiskSystemTest, DescribeMentionsLayoutAndCapacity) {
  DiskSystem sys(DefaultConfig());
  const std::string desc = sys.DescribeConfig();
  EXPECT_NE(desc.find("striped"), std::string::npos);
  EXPECT_NE(desc.find("8 disks"), std::string::npos);
}

}  // namespace
}  // namespace rofs::disk
