#include "workload/workloads.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace rofs::workload {
namespace {

TEST(FileTypeSpecTest, ValidateAcceptsDefaults) {
  FileTypeSpec t;
  t.name = "t";
  EXPECT_TRUE(t.Validate().ok());
}

TEST(FileTypeSpecTest, ValidateRejectsBadRatios) {
  FileTypeSpec t;
  t.name = "t";
  t.read_ratio = 0.9;
  t.write_ratio = 0.3;
  EXPECT_FALSE(t.Validate().ok());
  t.write_ratio = 0.05;
  t.extend_ratio = -0.1;
  EXPECT_FALSE(t.Validate().ok());
}

TEST(FileTypeSpecTest, ValidateRejectsZeroCounts) {
  FileTypeSpec t;
  t.name = "t";
  t.num_files = 0;
  EXPECT_FALSE(t.Validate().ok());
  t.num_files = 1;
  t.num_users = 0;
  EXPECT_FALSE(t.Validate().ok());
}

TEST(FileTypeSpecTest, DeallocateRatioIsRemainder) {
  FileTypeSpec t;
  t.read_ratio = 0.6;
  t.write_ratio = 0.15;
  t.extend_ratio = 0.15;
  EXPECT_NEAR(t.deallocate_ratio(), 0.10, 1e-12);
}

TEST(FileTypeSpecTest, InitialSizeUniformWithinDeviation) {
  FileTypeSpec t;
  t.initial_bytes_mean = KiB(8);
  t.initial_bytes_dev = KiB(4);
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t v = t.DrawInitialBytes(rng);
    EXPECT_GE(v, KiB(4));
    EXPECT_LE(v, KiB(12));
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20'000, static_cast<double>(KiB(8)), KiB(8) * 0.02);
}

TEST(FileTypeSpecTest, OpMixMatchesRatios) {
  FileTypeSpec t;
  t.read_ratio = 0.60;
  t.write_ratio = 0.15;
  t.extend_ratio = 0.15;
  t.delete_ratio = 0.50;
  Rng rng(2);
  int counts[5] = {0, 0, 0, 0, 0};
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(t.DrawOp(rng))];
  }
  EXPECT_NEAR(counts[0] / double(kDraws), 0.60, 0.01);   // read
  EXPECT_NEAR(counts[1] / double(kDraws), 0.15, 0.01);   // write
  EXPECT_NEAR(counts[2] / double(kDraws), 0.15, 0.01);   // extend
  EXPECT_NEAR(counts[3] / double(kDraws), 0.05, 0.005);  // truncate
  EXPECT_NEAR(counts[4] / double(kDraws), 0.05, 0.005);  // delete
}

TEST(FileTypeSpecTest, AllocationMixExcludesReadsAndWrites) {
  FileTypeSpec t;
  t.read_ratio = 0.60;
  t.write_ratio = 0.15;
  t.extend_ratio = 0.15;
  t.delete_ratio = 0.0;
  Rng rng(3);
  int counts[5] = {0, 0, 0, 0, 0};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(t.DrawAllocOp(rng))];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
  // extend : deallocate = 15 : 10 renormalized.
  EXPECT_NEAR(counts[2] / double(kDraws), 0.6, 0.01);
  EXPECT_NEAR(counts[3] / double(kDraws), 0.4, 0.01);
}

TEST(FileTypeSpecTest, SequentialMixOnlyReadsAndWrites) {
  FileTypeSpec t;
  t.read_ratio = 0.6;
  t.write_ratio = 0.3;
  t.extend_ratio = 0.05;
  Rng rng(4);
  int reads = 0, writes = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    const OpKind op = t.DrawSequentialOp(rng);
    ASSERT_TRUE(op == OpKind::kRead || op == OpKind::kWrite);
    (op == OpKind::kRead ? reads : writes)++;
  }
  EXPECT_NEAR(reads / double(kDraws), 2.0 / 3.0, 0.01);
  (void)writes;
}

TEST(WorkloadsTest, AllThreeValidate) {
  for (WorkloadKind kind : AllWorkloadKinds()) {
    const WorkloadSpec w = MakeWorkload(kind);
    EXPECT_TRUE(w.Validate().ok()) << w.name;
  }
}

TEST(WorkloadsTest, PaperFileSizes) {
  const WorkloadSpec tp = MakeTransactionProcessing();
  ASSERT_EQ(tp.types.size(), 3u);
  EXPECT_EQ(tp.types[0].num_files, 10u);               // 10 relations
  EXPECT_EQ(tp.types[0].initial_bytes_mean, MB(210));  // 210M (decimal)
  EXPECT_EQ(tp.types[1].num_files, 5u);                // 5 app logs, 5M
  EXPECT_EQ(tp.types[1].initial_bytes_mean, MB(5));
  EXPECT_EQ(tp.types[2].num_files, 1u);                // 1 txn log, 10M
  EXPECT_EQ(tp.types[2].initial_bytes_mean, MB(10));

  const WorkloadSpec sc = MakeSuperComputer();
  ASSERT_EQ(sc.types.size(), 3u);
  EXPECT_EQ(sc.types[0].num_files, 1u);
  EXPECT_EQ(sc.types[0].initial_bytes_mean, MB(500));
  EXPECT_EQ(sc.types[1].num_files, 15u);
  EXPECT_EQ(sc.types[1].initial_bytes_mean, MB(100));
  EXPECT_EQ(sc.types[2].num_files, 10u);
  EXPECT_EQ(sc.types[2].initial_bytes_mean, MB(10));
}

TEST(WorkloadsTest, PaperOpRatios) {
  const WorkloadSpec tp = MakeTransactionProcessing();
  // Relations: read 60%, write 30%, extend 7%, truncate 3%.
  EXPECT_DOUBLE_EQ(tp.types[0].read_ratio, 0.60);
  EXPECT_DOUBLE_EQ(tp.types[0].write_ratio, 0.30);
  EXPECT_DOUBLE_EQ(tp.types[0].extend_ratio, 0.07);
  EXPECT_NEAR(tp.types[0].deallocate_ratio(), 0.03, 1e-12);
  // Logs: 93% / 94% extends.
  EXPECT_DOUBLE_EQ(tp.types[1].extend_ratio, 0.93);
  EXPECT_DOUBLE_EQ(tp.types[2].extend_ratio, 0.94);

  const WorkloadSpec sc = MakeSuperComputer();
  EXPECT_DOUBLE_EQ(sc.types[0].read_ratio, 0.60);
  EXPECT_DOUBLE_EQ(sc.types[0].write_ratio, 0.30);
  EXPECT_DOUBLE_EQ(sc.types[0].extend_ratio, 0.08);
}

TEST(WorkloadsTest, TsSmallFilesGetTwoThirdsOfRequests) {
  const WorkloadSpec ts = MakeTimeSharing();
  ASSERT_EQ(ts.types.size(), 2u);
  const double small_rate =
      ts.types[0].num_users / ts.types[0].process_time_ms;
  const double large_rate =
      ts.types[1].num_users / ts.types[1].process_time_ms;
  EXPECT_NEAR(small_rate / (small_rate + large_rate), 2.0 / 3.0, 0.02);
  EXPECT_EQ(ts.types[0].initial_bytes_mean, KB(8));
  EXPECT_EQ(ts.types[1].initial_bytes_mean, KB(96));
}

TEST(WorkloadsTest, TsRandomAccessOnlyInTp) {
  EXPECT_EQ(MakeTransactionProcessing().types[0].access,
            AccessPattern::kRandom);
  for (const auto& t : MakeTimeSharing().types) {
    EXPECT_EQ(t.access, AccessPattern::kSequentialBurst);
  }
}

TEST(WorkloadsTest, InitialBytesFitTheArrayWithHeadroom) {
  const uint64_t capacity = 8ull * 1600 * 9 * 24 * 1024;
  for (WorkloadKind kind : AllWorkloadKinds()) {
    const WorkloadSpec w = MakeWorkload(kind);
    const double frac =
        static_cast<double>(w.TotalInitialBytes()) / capacity;
    EXPECT_GT(frac, 0.55) << w.name;
    EXPECT_LT(frac, 0.92) << w.name;  // Room for the fill phase.
  }
}

TEST(ExtentRangesTest, PaperLadders) {
  EXPECT_EQ(ExtentRangeMeansBytes(WorkloadKind::kTimeSharing, 1),
            (std::vector<uint64_t>{KiB(4)}));
  EXPECT_EQ(ExtentRangeMeansBytes(WorkloadKind::kTimeSharing, 5),
            (std::vector<uint64_t>{KiB(1), KiB(4), KiB(8), KiB(16), MiB(1)}));
  EXPECT_EQ(ExtentRangeMeansBytes(WorkloadKind::kSuperComputer, 2),
            (std::vector<uint64_t>{KiB(512), MiB(16)}));
  EXPECT_EQ(ExtentRangeMeansBytes(WorkloadKind::kTransactionProcessing, 5),
            (std::vector<uint64_t>{KiB(10), KiB(512), MiB(1), MiB(10),
                                   MiB(16)}));
  // All ladders sorted ascending (required by the allocator).
  for (auto kind : AllWorkloadKinds()) {
    for (int n = 1; n <= 5; ++n) {
      const auto v = ExtentRangeMeansBytes(kind, n);
      EXPECT_EQ(v.size(), static_cast<size_t>(n));
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
    }
  }
}

TEST(ExtentRangesTest, FixedBlockBaselineSizes) {
  EXPECT_EQ(FixedBlockBytesFor(WorkloadKind::kTimeSharing), KiB(4));
  EXPECT_EQ(FixedBlockBytesFor(WorkloadKind::kTransactionProcessing),
            KiB(16));
  EXPECT_EQ(FixedBlockBytesFor(WorkloadKind::kSuperComputer), KiB(16));
}

}  // namespace
}  // namespace rofs::workload
