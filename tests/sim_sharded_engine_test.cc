#include "sim/sharded_engine.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace rofs::sim {
namespace {

/// One observed dispatch/commit, for order assertions.
struct Step {
  TimeMs time;
  std::string tag;
  bool operator==(const Step& other) const {
    return time == other.time && tag == other.tag;
  }
};

std::string Render(const std::vector<Step>& steps) {
  std::string out;
  for (const Step& s : steps) {
    out += std::to_string(s.time) + ":" + s.tag + " ";
  }
  return out;
}

TEST(ShardedEngineTest, CommitsEffectsInTimeShardEmissionOrder) {
  // Three shards each emit effects out of time order within one shard
  // phase; the central queue must receive them sorted by (time, shard,
  // per-shard emission index).
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/3, /*threads=*/1);
  auto* log = new std::vector<Step>();

  for (uint32_t s = 0; s < 3; ++s) {
    engine.shard_queue(s)->Schedule(1.0, [&engine, log, s] {
      // Emission order within a shard: later time first, so commit
      // order must NOT be emission order.
      engine.EmitEffect(20.0, [log, s] { log->push_back({20.0, "s" + std::to_string(s) + "a"}); });
      engine.EmitEffect(10.0, [log, s] { log->push_back({10.0, "s" + std::to_string(s) + "b"}); });
      engine.EmitEffect(10.0, [log, s] { log->push_back({10.0, "s" + std::to_string(s) + "c"}); });
    });
  }
  engine.Run();

  // At time 10: shards 0,1,2, and within a shard emission order (b then
  // c). At time 20: shards 0,1,2.
  const std::vector<Step> expected = {
      {10.0, "s0b"}, {10.0, "s0c"}, {10.0, "s1b"}, {10.0, "s1c"},
      {10.0, "s2b"}, {10.0, "s2c"}, {20.0, "s0a"}, {20.0, "s1a"},
      {20.0, "s2a"},
  };
  EXPECT_EQ(*log, expected) << Render(*log);
  EXPECT_EQ(engine.effects_committed(), 9u);
  delete log;
}

TEST(ShardedEngineTest, CentralContextEffectSchedulesDirectly) {
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/2, /*threads=*/1);
  EXPECT_EQ(ShardedEngine::CurrentShard(), -1);

  bool ran = false;
  engine.EmitEffect(5.0, [&ran] { ran = true; });
  EXPECT_EQ(central.size(), 1u);  // Scheduled, not buffered.
  engine.Run();
  EXPECT_TRUE(ran);
}

TEST(ShardedEngineTest, EffectsRunInCentralContext) {
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/2, /*threads=*/1);
  int shard_seen = -2;
  int effect_seen = -2;

  engine.shard_queue(1)->Schedule(1.0, [&engine, &shard_seen, &effect_seen] {
    shard_seen = ShardedEngine::CurrentShard();
    engine.EmitEffect(2.0, [&effect_seen] {
      effect_seen = ShardedEngine::CurrentShard();
    });
  });
  engine.Run();
  EXPECT_EQ(shard_seen, 1);
  EXPECT_EQ(effect_seen, -1);
}

TEST(ShardedEngineTest, CentralWinsTiesAndIsNeverOvertaken) {
  // A central event at t=5 submits shard work at the same t=5. The shard
  // event must run after the submitting central event (central wins the
  // tie), and its effect lands back centrally, still at t=5, after any
  // remaining central t=5 events that existed at round start.
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/2, /*threads=*/1);
  auto* log = new std::vector<Step>();

  central.Schedule(5.0, [&engine, log] {
    log->push_back({5.0, "central-submit"});
    engine.shard_queue(0)->Schedule(5.0, [&engine, log] {
      log->push_back({5.0, "shard-service"});
      engine.EmitEffect(5.0, [log] { log->push_back({5.0, "completion"}); });
    });
  });
  central.Schedule(5.0, [log] { log->push_back({5.0, "central-second"}); });
  engine.Run();

  const std::vector<Step> expected = {
      {5.0, "central-submit"},
      {5.0, "central-second"},
      {5.0, "shard-service"},
      {5.0, "completion"},
  };
  EXPECT_EQ(*log, expected) << Render(*log);
  delete log;
}

TEST(ShardedEngineTest, CentralHorizonStopsAtEarliestShardEvent) {
  // A shard event pending at t=10 must run before a central event at
  // t=11, even though the central queue was populated first.
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/1, /*threads=*/1);
  auto* log = new std::vector<Step>();

  central.Schedule(11.0, [log] { log->push_back({11.0, "central"}); });
  engine.shard_queue(0)->Schedule(10.0, [&engine, log] {
    log->push_back({10.0, "shard"});
    engine.EmitEffect(10.5, [log] { log->push_back({10.5, "effect"}); });
  });
  engine.Run();

  const std::vector<Step> expected = {
      {10.0, "shard"}, {10.5, "effect"}, {11.0, "central"}};
  EXPECT_EQ(*log, expected) << Render(*log);
  delete log;
}

TEST(ShardedEngineTest, StopAbortsTheRoundLoop) {
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/1, /*threads=*/1);
  bool later_ran = false;

  central.Schedule(1.0, [&central] { central.Stop(); });
  central.Schedule(2.0, [&later_ran] { later_ran = true; });
  engine.Run();

  EXPECT_TRUE(engine.stopped());
  EXPECT_FALSE(later_ran);
}

TEST(ShardedEngineTest, RunUntilIsInclusiveLikeEventQueue) {
  EventQueue central;
  ShardedEngine engine(&central, /*num_shards=*/1, /*threads=*/1);
  int ran = 0;
  engine.shard_queue(0)->Schedule(10.0, [&ran] { ++ran; });
  central.Schedule(10.0, [&ran] { ++ran; });
  central.Schedule(10.5, [&ran] { ++ran; });

  EXPECT_EQ(engine.RunUntil(10.0), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.RunUntil(10.5), 1u);
  EXPECT_EQ(ran, 3);
}

/// A deterministic synthetic cascade: `drivers` central streams each
/// submit batches of shard work (big enough to cross the engine's
/// parallel threshold), every shard event emits a completion effect, and
/// completions re-submit until a fixed op budget is spent. Per-shard
/// dispatch logs are shard-local (no cross-thread writes); the returned
/// transcript concatenates the central log and every shard log.
std::string RunSyntheticCascade(uint32_t shards, int threads) {
  EventQueue central;
  ShardedEngine engine(&central, shards, threads);
  std::vector<std::vector<Step>> shard_logs(shards);
  std::vector<Step> central_log;
  uint64_t lcg = 12345;
  auto next_rand = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(lcg >> 33);
  };

  int budget = 40;
  std::function<void(TimeMs)> submit_wave = [&](TimeMs when) {
    central.Schedule(when, [&, when] {
      central_log.push_back({central.now(), "wave"});
      if (--budget < 0) return;
      // 3 batches per shard so a wave holds shards * 3 * 8 events — past
      // the 64-event parallel threshold at 4+ shards.
      for (uint32_t s = 0; s < engine.num_shards(); ++s) {
        for (int b = 0; b < 3; ++b) {
          const TimeMs at = when + 0.25 + (next_rand() % 100) * 0.01;
          for (int e = 0; e < 8; ++e) {
            engine.shard_queue(s)->Schedule(
                at + e * 0.001,
                [&engine, &shard_logs, s, cl = &central_log, cq = &central] {
                  auto* q = engine.shard_queue(s);
                  shard_logs[s].push_back({q->now(), "svc"});
                  engine.EmitEffect(q->now() + 0.5, [cl, cq] {
                    cl->push_back({cq->now(), "done"});
                  });
                });
          }
        }
      }
      submit_wave(when + 1.0 + (next_rand() % 50) * 0.01);
    });
  };
  submit_wave(1.0);
  engine.Run();

  std::string out = Render(central_log);
  for (uint32_t s = 0; s < shards; ++s) {
    out += "| shard" + std::to_string(s) + " " + Render(shard_logs[s]);
  }
  out += "| windows=" + std::to_string(engine.windows());
  out += " effects=" + std::to_string(engine.effects_committed());
  out += " dispatched=" + std::to_string(engine.total_dispatched());
  out += " depth=" + std::to_string(engine.total_max_heap_depth());
  return out;
}

TEST(ShardedEngineTest, TranscriptIdenticalForAnyThreadCount) {
  const std::string t1 = RunSyntheticCascade(4, 1);
  const std::string t2 = RunSyntheticCascade(4, 2);
  const std::string t4 = RunSyntheticCascade(4, 4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
  EXPECT_NE(t1.find("svc"), std::string::npos);
  EXPECT_NE(t1.find("done"), std::string::npos);
}

}  // namespace
}  // namespace rofs::sim
