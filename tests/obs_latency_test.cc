#include "obs/latency.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/restricted_buddy.h"
#include "exp/experiment.h"
#include "obs/metrics.h"
#include "util/units.h"

namespace rofs::obs {
namespace {

std::map<std::string, double> Snapshot(const Registry& registry) {
  std::vector<std::pair<std::string, double>> flat;
  registry.Snapshot(&flat);
  return std::map<std::string, double>(flat.begin(), flat.end());
}

TEST(OpAttributionTest, PhasesPartitionMeasuredLatency) {
  Registry registry;
  OpAttribution attr(&registry);
  attr.set_armed(true);

  const uint32_t ledger = attr.BeginOp();
  ASSERT_NE(ledger, OpAttribution::kNoLedger);
  EXPECT_EQ(attr.target().ledger, ledger);
  EXPECT_EQ(attr.target().mode, OpAttribution::Mode::kOp);

  AccessPhases p;
  p.queue_wait_ms = 2.0;
  p.seek_ms = 1.0;
  p.rotation_ms = 0.5;
  p.transfer_ms = 0.25;
  attr.OnAccess(attr.target(), p);
  attr.ClearTarget();
  // Raw phase sum 3.75 == measured latency: recorded verbatim, and the
  // op spent 1.25 ms outside the disks ("other").
  attr.FoldOp(ledger, 5.0);
  EXPECT_EQ(attr.live_ledgers(), 0u);

  const auto m = Snapshot(registry);
  EXPECT_DOUBLE_EQ(m.at("lat.queue.sum"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("lat.seek.sum"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("lat.rotation.sum"), 0.5);
  EXPECT_DOUBLE_EQ(m.at("lat.transfer.sum"), 0.25);
  EXPECT_DOUBLE_EQ(m.at("lat.cache.sum"), 0.0);
  EXPECT_DOUBLE_EQ(m.at("lat.other.sum"), 1.25);
  EXPECT_EQ(m.at("lat.queue.count"), 1.0);
}

TEST(OpAttributionTest, OverlappingAccessesScaleToLatency) {
  Registry registry;
  OpAttribution attr(&registry);
  attr.set_armed(true);

  const uint32_t ledger = attr.BeginOp();
  // Two parallel accesses, 4 ms of raw service each, but the op only
  // took 4 ms wall-clock: the fold scales every slot by 1/2.
  AccessPhases p;
  p.queue_wait_ms = 1.0;
  p.seek_ms = 1.0;
  p.rotation_ms = 1.0;
  p.transfer_ms = 1.0;
  attr.OnAccess(attr.target(), p);
  attr.OnAccess(attr.target(), p);
  attr.ClearTarget();
  attr.FoldOp(ledger, 4.0);

  const auto m = Snapshot(registry);
  EXPECT_DOUBLE_EQ(m.at("lat.queue.sum"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("lat.seek.sum"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("lat.rotation.sum"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("lat.transfer.sum"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("lat.other.sum"), 0.0);
  const double partition = m.at("lat.cache.sum") + m.at("lat.queue.sum") +
                           m.at("lat.seek.sum") + m.at("lat.rotation.sum") +
                           m.at("lat.transfer.sum") + m.at("lat.other.sum");
  EXPECT_DOUBLE_EQ(partition, 4.0);
}

TEST(OpAttributionTest, CacheModeChargesTotalToCacheSlot) {
  Registry registry;
  OpAttribution attr(&registry);
  attr.set_armed(true);

  const uint32_t ledger = attr.BeginOp();
  OpAttribution::Target cache = attr.target();
  cache.mode = OpAttribution::Mode::kOpCache;
  AccessPhases p;
  p.queue_wait_ms = 0.5;
  p.seek_ms = 1.5;
  attr.OnAccess(cache, p);
  attr.ClearTarget();
  attr.FoldOp(ledger, 3.0);

  const auto m = Snapshot(registry);
  EXPECT_DOUBLE_EQ(m.at("lat.cache.sum"), 2.0);
  EXPECT_DOUBLE_EQ(m.at("lat.queue.sum"), 0.0);
  EXPECT_DOUBLE_EQ(m.at("lat.other.sum"), 1.0);
}

TEST(OpAttributionTest, FlushAndUntrackedModes) {
  Registry registry;
  OpAttribution attr(&registry);
  attr.set_armed(true);

  AccessPhases p;
  p.transfer_ms = 2.5;
  attr.OnAccess({OpAttribution::kNoLedger, OpAttribution::Mode::kFlush}, p);
  attr.OnAccess({OpAttribution::kNoLedger, OpAttribution::Mode::kNone}, p);

  const auto m = Snapshot(registry);
  EXPECT_DOUBLE_EQ(m.at("lat.flush.sum"), 2.5);
  EXPECT_EQ(m.at("lat.flush.count"), 1.0);
  EXPECT_EQ(m.at("lat.transfer.count"), 0.0);
}

TEST(OpAttributionTest, TakeActivePrefersCurrentAndClearsFinishing) {
  Registry registry;
  OpAttribution attr(&registry);

  const uint32_t a = attr.BeginOp();
  attr.ClearTarget();
  attr.SetFinishing({a, OpAttribution::Mode::kOp});
  const OpAttribution::Target t = attr.TakeActive();
  EXPECT_EQ(t.ledger, a);
  // A second take sees nothing: finishing is consumed.
  EXPECT_EQ(attr.TakeActive().ledger, OpAttribution::kNoLedger);

  // With a current target set, it wins over a stale finishing one.
  const uint32_t b = attr.BeginOp();
  attr.SetFinishing({a, OpAttribution::Mode::kOpCache});
  EXPECT_EQ(attr.TakeActive().ledger, b);
  attr.ClearTarget();
  attr.FoldOp(a, 1.0);
  attr.FoldOp(b, 1.0);
  EXPECT_EQ(attr.live_ledgers(), 0u);
}

TEST(OpAttributionTest, LedgerPoolReusesFreedSlots) {
  Registry registry;
  OpAttribution attr(&registry);

  const uint32_t a = attr.BeginOp();
  attr.ClearTarget();
  const uint32_t b = attr.BeginOp();
  attr.ClearTarget();
  EXPECT_NE(a, b);
  EXPECT_EQ(attr.live_ledgers(), 2u);
  attr.FoldOp(a, 1.0);
  const uint32_t c = attr.BeginOp();
  attr.ClearTarget();
  EXPECT_EQ(c, a);  // Free list reuse, no growth.
  attr.FoldOp(b, 1.0);
  attr.FoldOp(c, 1.0);
  EXPECT_EQ(attr.live_ledgers(), 0u);
}

// End to end: with --metrics on, the six obs.lat.* phase sums partition
// the total measured op latency (op.latency_ms.sum) up to rounding.
TEST(OpAttributionTest, EndToEndPhaseSumsMatchMeasuredLatency) {
  disk::DiskSystemConfig disk = disk::DiskSystemConfig::Array(2);
  for (auto& g : disk.disks) g.cylinders = 200;

  workload::WorkloadSpec w;
  w.name = "tiny";
  workload::FileTypeSpec t;
  t.name = "small";
  t.num_files = 200;
  t.num_users = 6;
  t.process_time_ms = 20;
  t.hit_frequency_ms = 20;
  t.rw_bytes_mean = KiB(8);
  t.extend_bytes_mean = KiB(8);
  t.truncate_bytes = KiB(8);
  t.initial_bytes_mean = KiB(64);
  t.initial_bytes_dev = KiB(16);
  t.read_ratio = 0.6;
  t.write_ratio = 0.2;
  t.extend_ratio = 0.15;
  t.delete_ratio = 0.5;
  w.types.push_back(t);

  exp::ExperimentConfig cfg;
  cfg.sample_interval_ms = 2'000;
  cfg.warmup_ms = 2'000;
  cfg.min_measure_ms = 6'000;
  cfg.max_measure_ms = 20'000;
  cfg.stable_tolerance_pp = 1.0;
  cfg.obs.metrics = true;

  exp::Experiment e(
      w,
      [](uint64_t total_du) -> std::unique_ptr<alloc::Allocator> {
        alloc::RestrictedBuddyConfig rb;
        rb.block_sizes_du = {1, 8, 64, 1024};
        return std::make_unique<alloc::RestrictedBuddyAllocator>(total_du,
                                                                 rb);
      },
      disk, cfg);
  auto result = e.RunApplicationTest();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::map<std::string, double> m(result->obs_metrics.begin(),
                                  result->obs_metrics.end());
  ASSERT_TRUE(m.count("lat.queue.count"));
  const double folded_ops = m.at("lat.queue.count");
  const double measured_ops = m.at("op.latency_ms.count");
  EXPECT_EQ(folded_ops, measured_ops);
  EXPECT_GT(folded_ops, 0.0);

  const double partition = m.at("lat.cache.sum") + m.at("lat.queue.sum") +
                           m.at("lat.seek.sum") + m.at("lat.rotation.sum") +
                           m.at("lat.transfer.sum") + m.at("lat.other.sum");
  const double measured = m.at("op.latency_ms.sum");
  EXPECT_NEAR(partition, measured, 1e-6 * std::max(1.0, measured));
  // The disks did real work during measurement, so the mechanical phases
  // are non-trivial, and no phase exceeds the total.
  EXPECT_GT(m.at("lat.seek.sum") + m.at("lat.rotation.sum") +
                m.at("lat.transfer.sum"),
            0.0);
  EXPECT_LE(m.at("lat.queue.sum"), measured + 1e-9);
}

}  // namespace
}  // namespace rofs::obs
