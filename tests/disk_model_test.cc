#include "disk/disk_model.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace rofs::disk {
namespace {

class DiskModelTest : public ::testing::Test {
 protected:
  DiskGeometry g_ = CdcWrenIV();
};

TEST_F(DiskModelTest, FirstAccessPaysLatencyAndTransferOnly) {
  Disk d(g_);
  // Head starts at cylinder 0; access within cylinder 0: no seek, mean
  // rotational latency plus transfer.
  const sim::TimeMs done = d.Access(0.0, 0, KiB(24));
  EXPECT_DOUBLE_EQ(done, g_.AvgRotationalLatency() + g_.rotation_ms);
  EXPECT_EQ(d.seeks(), 0u);
  EXPECT_EQ(d.bytes_transferred(), KiB(24));
}

TEST_F(DiskModelTest, SeekDistanceScalesCost) {
  Disk near(g_);
  Disk far(g_);
  const uint64_t cyl = g_.cylinder_bytes();
  const sim::TimeMs t_near = near.Access(0.0, cyl * 10, KiB(8));
  const sim::TimeMs t_far = far.Access(0.0, cyl * 1000, KiB(8));
  EXPECT_DOUBLE_EQ(t_far - t_near, (1000 - 10) * g_.seek_incremental_ms);
  EXPECT_EQ(near.seeks(), 1u);
}

TEST_F(DiskModelTest, SequentialContinuationIsFree) {
  Disk d(g_);
  const sim::TimeMs first = d.Access(0.0, 0, KiB(8));
  // Continues exactly where the last access ended, same cylinder: only
  // media transfer.
  const sim::TimeMs second = d.Access(first, KiB(8), KiB(8));
  EXPECT_DOUBLE_EQ(second - first, g_.TransferTime(KiB(8)));
}

TEST_F(DiskModelTest, NonSequentialSameCylinderPaysRotationalLatency) {
  Disk d(g_);
  const sim::TimeMs first = d.Access(0.0, 0, KiB(8));
  const sim::TimeMs second = d.Access(first, KiB(100), KiB(8));
  EXPECT_DOUBLE_EQ(second - first,
                   g_.AvgRotationalLatency() + g_.TransferTime(KiB(8)));
}

TEST_F(DiskModelTest, TransferAcrossCylinderBoundaryPaysTrackSeek) {
  Disk d(g_);
  const uint64_t cyl = g_.cylinder_bytes();
  // Read 48K starting 24K before a cylinder boundary.
  const sim::TimeMs done = d.Access(0.0, cyl - KiB(24), KiB(48));
  const double expected = g_.SeekTime(1) /* seek to cylinder 0->0? */;
  (void)expected;
  // Position: cylinder 0 (head already there) -> latency + transfer +
  // one single-track seek inside the transfer.
  EXPECT_DOUBLE_EQ(done, g_.AvgRotationalLatency() + g_.TransferTime(KiB(48)) +
                             g_.SeekTime(1));
  EXPECT_EQ(d.bytes_transferred(), KiB(48));
}

TEST_F(DiskModelTest, FcfsQueueingSerializesRequests) {
  Disk d(g_);
  const sim::TimeMs t1 = d.Access(0.0, 0, KiB(8));
  // Arrives while the first is in service: starts when the disk frees.
  const sim::TimeMs t2 = d.Access(0.1, KiB(512), KiB(8));
  EXPECT_GT(t2, t1);
  // An idle-arrival baseline for the same movement costs less wall time
  // from arrival.
  EXPECT_GT(t2 - 0.1, t1 - 0.0);
}

TEST_F(DiskModelTest, IdleGapDoesNotAccumulateBusyTime) {
  Disk d(g_);
  const sim::TimeMs t1 = d.Access(0.0, 0, KiB(8));
  const sim::TimeMs t2 = d.Access(t1 + 1000.0, KiB(8), KiB(8));
  EXPECT_NEAR(t2 - (t1 + 1000.0), g_.TransferTime(KiB(8)), 1e-9);
  EXPECT_LT(d.busy_time_ms(), t2);
  EXPECT_NEAR(d.busy_time_ms(),
              (t1 - 0.0) + g_.TransferTime(KiB(8)), 1e-9);
}

TEST_F(DiskModelTest, UtilizationFractionOfWallClock) {
  Disk d(g_);
  const sim::TimeMs t1 = d.Access(0.0, 0, KiB(24));
  const double util_busy = d.Utilization(t1);
  EXPECT_NEAR(util_busy, 1.0, 1e-9);
  EXPECT_NEAR(d.Utilization(t1 * 2), 0.5, 1e-9);
}

TEST_F(DiskModelTest, ResetStatsPreservesHeadState) {
  Disk d(g_);
  const uint64_t cyl = g_.cylinder_bytes();
  const sim::TimeMs t1 = d.Access(0.0, cyl * 100, KiB(8));
  d.ResetStats();
  EXPECT_EQ(d.bytes_transferred(), 0u);
  EXPECT_EQ(d.seeks(), 0u);
  // Head is still at cylinder 100: accessing cylinder 100 again needs no
  // seek.
  const sim::TimeMs t2 = d.Access(t1, cyl * 100 + KiB(48), KiB(8));
  EXPECT_DOUBLE_EQ(t2 - t1,
                   g_.AvgRotationalLatency() + g_.TransferTime(KiB(8)));
  EXPECT_EQ(d.seeks(), 0u);
}

TEST_F(DiskModelTest, LargeTransferApproachesFullBandwidth) {
  Disk d(g_);
  const uint64_t bytes = g_.cylinder_bytes() * 100;
  const sim::TimeMs done = d.Access(0.0, 0, bytes);
  const double achieved = static_cast<double>(bytes) / done;
  EXPECT_GT(achieved / g_.SequentialBandwidth(), 0.95);
}

}  // namespace
}  // namespace rofs::disk
