#include "obs/metrics.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace rofs::obs {
namespace {

TEST(CounterTest, IncAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(3.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Max(2.0);  // Smaller: no change.
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(HistogramTest, EmptyIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, ExactMomentsApproximatePercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Percentiles are bucket-interpolated, so only order and bounds are
  // guaranteed; for a uniform 1..1000 sample they should also be in the
  // right region.
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_GT(p95, 500.0);
}

TEST(HistogramTest, PercentileClampedToExactExtremes) {
  Histogram h;
  h.Record(5.0);
  h.Record(5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 5.0);
}

TEST(HistogramTest, TinyAndHugeValuesStayBounded) {
  Histogram h;
  h.Record(1e-12);  // Below the smallest bucket boundary.
  h.Record(1e15);   // Far up the ladder.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.max(), 1e15);
  EXPECT_GE(h.Percentile(50), h.min());
  EXPECT_LE(h.Percentile(50), h.max());
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry reg;
  Counter* c1 = reg.AddCounter("x");
  Counter* c2 = reg.AddCounter("x");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.AddGauge("y");
  Gauge* g2 = reg.AddGauge("y");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.AddHistogram("z");
  Histogram* h2 = reg.AddHistogram("z");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, SnapshotSortedByNameNotRegistrationOrder) {
  Registry reg;
  reg.AddGauge("zebra")->Set(1);
  reg.AddCounter("apple")->Inc(2);
  reg.AddGauge("mango")->Set(3);
  std::vector<std::pair<std::string, double>> snap;
  reg.Snapshot(&snap);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "apple");
  EXPECT_EQ(snap[1].first, "mango");
  EXPECT_EQ(snap[2].first, "zebra");
  EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
}

TEST(RegistryTest, HistogramExpandsToSevenEntries) {
  Registry reg;
  Histogram* h = reg.AddHistogram("lat");
  h->Record(1.0);
  h->Record(3.0);
  std::vector<std::pair<std::string, double>> snap;
  reg.Snapshot(&snap);
  ASSERT_EQ(snap.size(), 7u);
  EXPECT_EQ(snap[0].first, "lat.count");
  EXPECT_EQ(snap[1].first, "lat.max");
  EXPECT_EQ(snap[2].first, "lat.min");
  EXPECT_EQ(snap[3].first, "lat.p50");
  EXPECT_EQ(snap[4].first, "lat.p95");
  EXPECT_EQ(snap[5].first, "lat.p99");
  EXPECT_EQ(snap[6].first, "lat.sum");
  EXPECT_DOUBLE_EQ(snap[0].second, 2.0);
  EXPECT_DOUBLE_EQ(snap[1].second, 3.0);
  EXPECT_DOUBLE_EQ(snap[2].second, 1.0);
  EXPECT_DOUBLE_EQ(snap[6].second, 4.0);
}

TEST(RegistryTest, SnapshotAppendsDeterministically) {
  // Two registries built in different orders produce identical snapshots.
  Registry a;
  a.AddCounter("c")->Inc(5);
  a.AddGauge("g")->Set(2.5);
  Registry b;
  b.AddGauge("g")->Set(2.5);
  b.AddCounter("c")->Inc(5);
  std::vector<std::pair<std::string, double>> sa, sb;
  a.Snapshot(&sa);
  b.Snapshot(&sb);
  EXPECT_EQ(sa, sb);
}

TEST(RegistryDeathTest, KindMismatchDies) {
  Registry reg;
  reg.AddCounter("m");
  EXPECT_DEATH(reg.AddGauge("m"), "registered twice");
}

}  // namespace
}  // namespace rofs::obs
