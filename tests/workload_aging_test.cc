// Unit tests for the churn-aging driver (workload/aging.h): option
// validation, the utilization-steering churn mix, read-bandwidth decay
// under small-block allocation, and byte-exact determinism — the driver
// runs against a passive (queue-free) file system, so two same-seed runs
// must produce identical curves with no tolerance at all.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/fixed_block_allocator.h"
#include "disk/disk_system.h"
#include "fs/read_optimized_fs.h"
#include "util/units.h"
#include "workload/aging.h"

namespace rofs::workload {
namespace {

WorkloadSpec SmallWorkload() {
  WorkloadSpec w;
  w.name = "aging-test";
  FileTypeSpec files;
  files.name = "files";
  files.num_files = 200;
  files.num_users = 1;
  files.rw_bytes_mean = KiB(4);
  files.extend_bytes_mean = KiB(4);
  files.truncate_bytes = KiB(4);
  files.initial_bytes_mean = KiB(32);
  files.initial_bytes_dev = KiB(8);
  w.types.push_back(files);
  return w;
}

disk::DiskSystemConfig SmallDisk() {
  disk::DiskSystemConfig cfg = disk::DiskSystemConfig::Array(2);
  for (auto& g : cfg.disks) g.cylinders = 100;
  return cfg;
}

std::vector<double> RunSeries(const AgingOptions& options) {
  const WorkloadSpec workload = SmallWorkload();
  disk::DiskSystem disk(SmallDisk());
  alloc::FixedBlockAllocator allocator(disk.capacity_du(), /*block_du=*/4);
  fs::ReadOptimizedFs fs(&allocator, &disk);
  AgingDriver driver(&workload, &fs, options);
  EXPECT_TRUE(driver.CreateInitialFiles().ok());
  for (int r = 0; r < options.rounds; ++r) driver.RunRound();
  return driver.read_bw_series();
}

TEST(AgingOptionsTest, ValidatesParameters) {
  AgingOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  AgingOptions bad = ok;
  bad.seed = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.target_util = 1.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.target_util = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.ops_per_round = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.rounds = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.probe_files = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(AgingDriverTest, RoundsReportSaneMetrics) {
  const WorkloadSpec workload = SmallWorkload();
  disk::DiskSystem disk(SmallDisk());
  alloc::FixedBlockAllocator allocator(disk.capacity_du(), 4);
  fs::ReadOptimizedFs fs(&allocator, &disk);
  AgingOptions options;
  options.seed = 5;
  options.rounds = 4;
  options.ops_per_round = 200;
  options.probe_files = 16;
  AgingDriver driver(&workload, &fs, options);
  ASSERT_TRUE(driver.CreateInitialFiles().ok());
  for (int r = 0; r < options.rounds; ++r) {
    const AgingRound round = driver.RunRound();
    EXPECT_EQ(round.round, r);
    EXPECT_GT(round.utilization, 0.0);
    EXPECT_LT(round.utilization, 1.0);
    EXPECT_GT(round.read_bw_frac, 0.0);
    EXPECT_LE(round.read_bw_frac, 1.0);
    EXPECT_GE(round.extents_per_file, 1.0);
  }
  EXPECT_EQ(driver.rounds().size(), 4u);
  EXPECT_EQ(driver.churn_ops(), 4u * 200u);
  // The driver never touches an event queue, so DetectSteadyRound is a
  // pure function of the series.
  const int steady = driver.DetectSteadyRound();
  EXPECT_GE(steady, -1);
  EXPECT_LT(steady, options.rounds);
}

TEST(AgingDriverTest, ChurnDegradesSequentialReads) {
  AgingOptions options;
  options.seed = 9;
  options.rounds = 10;
  options.ops_per_round = 1000;
  options.probe_files = 32;
  const std::vector<double> series = RunSeries(options);
  ASSERT_EQ(series.size(), 10u);
  // Small fixed blocks under delete/recreate churn scatter files across
  // the free map: late-round probes must be measurably slower than the
  // freshly initialized layout.
  EXPECT_LT(series.back(), series.front() * 0.95);
}

TEST(AgingDriverTest, SameSeedIsByteIdentical) {
  AgingOptions options;
  options.seed = 21;
  options.rounds = 5;
  options.ops_per_round = 300;
  options.probe_files = 16;
  const std::vector<double> a = RunSeries(options);
  const std::vector<double> b = RunSeries(options);
  EXPECT_EQ(a, b);
  AgingOptions other = options;
  other.seed = 22;
  EXPECT_NE(RunSeries(other), a);
}

TEST(AgingDriverTest, ChurnSteersUtilizationTowardTarget) {
  const WorkloadSpec workload = SmallWorkload();
  disk::DiskSystem disk(SmallDisk());
  alloc::FixedBlockAllocator allocator(disk.capacity_du(), 4);
  fs::ReadOptimizedFs fs(&allocator, &disk);
  AgingOptions options;
  options.seed = 17;
  options.rounds = 8;
  options.ops_per_round = 1500;
  options.target_util = 0.6;
  AgingDriver driver(&workload, &fs, options);
  ASSERT_TRUE(driver.CreateInitialFiles().ok());
  for (int r = 0; r < options.rounds; ++r) driver.RunRound();
  EXPECT_NEAR(driver.rounds().back().utilization, 0.6, 0.15);
}

}  // namespace
}  // namespace rofs::workload
