// Tests for the tracked rotational-position model (the optional
// refinement over the paper's mean-latency model).

#include <gtest/gtest.h>

#include "disk/disk_model.h"
#include "disk/disk_system.h"
#include "util/random.h"
#include "util/units.h"

namespace rofs::disk {
namespace {

TEST(RotationModelTest, TrackedLatencyDependsOnArrivalPhase) {
  const DiskGeometry g = CdcWrenIV();
  // Two identical accesses issued at different platter phases must see
  // different waits.
  Disk d1(g, RotationModel::kTracked);
  Disk d2(g, RotationModel::kTracked);
  const double s1 = d1.Access(0.0, KiB(12), KiB(1)) - 0.0;
  const double s2 = d2.Access(g.rotation_ms / 3.0, KiB(12), KiB(1)) -
                    g.rotation_ms / 3.0;
  EXPECT_NE(s1, s2);
}

TEST(RotationModelTest, TrackedSequentialBackToBackHasNoLatency) {
  const DiskGeometry g = CdcWrenIV();
  Disk d(g, RotationModel::kTracked);
  const sim::TimeMs t1 = d.Access(0.0, 0, KiB(8));
  // Issued before t1 completes: serviced back to back, platter aligned.
  const sim::TimeMs t2 = d.Access(t1 - 1.0, KiB(8), KiB(8));
  EXPECT_NEAR(t2 - t1, g.TransferTime(KiB(8)), 1e-9);
}

TEST(RotationModelTest, TrackedIdleSequentialWaitsForSectorAgain) {
  const DiskGeometry g = CdcWrenIV();
  Disk d(g, RotationModel::kTracked);
  const sim::TimeMs t1 = d.Access(0.0, 0, KiB(8));
  // Arrive 1/4 rotation after completion: the sector at 8K comes around
  // after the remaining 3/4 rotation.
  const sim::TimeMs arrival = t1 + g.rotation_ms / 4.0;
  const sim::TimeMs t2 = d.Access(arrival, KiB(8), KiB(8));
  const double latency = (t2 - arrival) - g.TransferTime(KiB(8));
  EXPECT_NEAR(latency, 3.0 / 4.0 * g.rotation_ms, 1e-6);
}

TEST(RotationModelTest, TrackedLatencyAveragesHalfRotation) {
  const DiskGeometry g = CdcWrenIV();
  Disk d(g, RotationModel::kTracked);
  Rng rng(4);
  double latency_sum = 0;
  int n = 0;
  sim::TimeMs t = 0;
  for (int i = 0; i < 20'000; ++i) {
    // Random arrival phase and random target offset within one cylinder
    // (no seek): service = latency + transfer.
    const sim::TimeMs arrival = t + rng.Uniform(0.1, 50.0);
    const uint64_t offset =
        RoundDown(rng.UniformInt(0, g.cylinder_bytes() - KiB(2)), 512);
    t = d.Access(arrival, offset, KiB(1));
    latency_sum += (t - arrival) - g.TransferTime(KiB(1));
    ++n;
  }
  EXPECT_NEAR(latency_sum / n, g.AvgRotationalLatency(),
              g.rotation_ms * 0.02);
}

TEST(RotationModelTest, MeanModelIsDefaultAndDeterministicHalfRotation) {
  const DiskGeometry g = CdcWrenIV();
  Disk d(g);  // Default: mean latency.
  const sim::TimeMs t1 = d.Access(0.0, KiB(100), KiB(1));
  EXPECT_NEAR(t1, g.AvgRotationalLatency() + g.TransferTime(KiB(1)), 1e-9);
}

TEST(RotationModelTest, SystemConfigPlumbsTrackedModel) {
  DiskSystemConfig cfg = DiskSystemConfig::Array(2);
  cfg.rotation_model = RotationModel::kTracked;
  DiskSystem tracked(cfg);
  DiskSystem mean(DiskSystemConfig::Array(2));
  // The same single-unit read at time 0: tracked waits for sector 0
  // (zero latency at phase 0), the mean model charges half a rotation.
  const sim::TimeMs t_tracked = tracked.Read(0.0, 0, 1);
  const sim::TimeMs t_mean = mean.Read(0.0, 0, 1);
  EXPECT_LT(t_tracked, t_mean);
}

// Whole-disk sequential bandwidth should be nearly identical under both
// models (no positioning in steady state).
TEST(RotationModelTest, SequentialScanAgreesAcrossModels) {
  DiskSystemConfig cfg = DiskSystemConfig::Array(4);
  cfg.rotation_model = RotationModel::kTracked;
  DiskSystem tracked(cfg);
  DiskSystem mean(DiskSystemConfig::Array(4));
  const uint64_t n = tracked.capacity_du() / 8;
  const double rate_tracked = static_cast<double>(n) /
                              tracked.Read(0.0, 0, n);
  const double rate_mean = static_cast<double>(n) / mean.Read(0.0, 0, n);
  EXPECT_NEAR(rate_tracked / rate_mean, 1.0, 0.15);
}

}  // namespace
}  // namespace rofs::disk
